//! The WAL record format and its checksummed binary codec.
//!
//! Every record travels as one length-prefixed, CRC-protected frame:
//!
//! ```text
//! [len: u32 LE] [crc32(payload): u32 LE] [payload: len bytes]
//! payload = [bsn: u64 LE] [kind: u8] [body…]
//! ```
//!
//! `bsn` is the *batch sequence number* — a monotonically increasing
//! counter over everything the durable wrapper logs. The frame layout is
//! what makes torn tails detectable: a crash mid-append leaves either a
//! short frame (length prefix runs past the file) or a frame whose CRC
//! does not match, and replay stops exactly there.
//!
//! The encoding is hand-rolled (the workspace is offline — no serde) and
//! little-endian throughout.

use std::collections::HashMap;

/// CRC32 (IEEE 802.3, reflected) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of `data` — the checksum guarding every WAL frame and
/// snapshot body.
pub fn crc32(data: &[u8]) -> u32 {
    !data.iter().fold(!0u32, |c, &b| {
        (c >> 8) ^ CRC_TABLE[((c ^ b as u32) & 0xFF) as usize]
    })
}

/// What one WAL record means.
///
/// `Insert`/`Delete`/`Upsert` are the redo records proper — one per
/// acknowledged update batch. `Swap` and `Compact` pin the two
/// reorganisation points replay cannot re-derive on its own (a background
/// swap landing, an explicit compaction). `Freeze` and `SyncCompact` are
/// *annotations*: no-ops for index replay (the replayed index re-derives
/// them deterministically from its compaction policy) but they make the
/// log self-describing, so an external consumer — the crash-replay oracle,
/// a log inspector — can reconstruct rowID renumbering without modelling
/// the policy. `Commit` appears only in the root journal of a sharded
/// durable index and marks a cross-shard batch as committed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalPayload {
    /// An insert batch; `globals` carries the assigned global rowIDs when
    /// the record belongs to a per-shard WAL.
    Insert {
        keys: Vec<u64>,
        values: Vec<u64>,
        globals: Option<Vec<u32>>,
    },
    /// A delete batch.
    Delete { keys: Vec<u64> },
    /// An upsert batch (delete every copy, insert one row per pair).
    Upsert {
        keys: Vec<u64>,
        values: Vec<u64>,
        globals: Option<Vec<u32>>,
    },
    /// A completed background compaction swapped in at this point. Replay
    /// forces the swap here ([`UpdatableIndex::await_reorganisation`]),
    /// reproducing the exact rowID renumbering independent of
    /// background-thread timing.
    ///
    /// [`UpdatableIndex::await_reorganisation`]: rtx_query::UpdatableIndex::await_reorganisation
    Swap,
    /// An explicit synchronous compaction ran at this point (the
    /// [`checkpoint`](rtx_query::UpdatableIndex::checkpoint) protocol).
    /// Replay re-runs it.
    Compact,
    /// Annotation: the batch logged just before froze its delta and began
    /// a background rebuild.
    Freeze,
    /// Annotation: the batch logged just before triggered a synchronous
    /// policy compaction.
    SyncCompact,
    /// Root-journal record of a sharded durable index: the batch with this
    /// record's `bsn` is committed on every shard, and the global row
    /// allocator stands at `next_row` after it.
    Commit { next_row: u64 },
}

impl WalPayload {
    /// Short display name of the record kind.
    pub fn kind(&self) -> &'static str {
        match self {
            WalPayload::Insert { .. } => "insert",
            WalPayload::Delete { .. } => "delete",
            WalPayload::Upsert { .. } => "upsert",
            WalPayload::Swap => "swap",
            WalPayload::Compact => "compact",
            WalPayload::Freeze => "freeze",
            WalPayload::SyncCompact => "sync-compact",
            WalPayload::Commit { .. } => "commit",
        }
    }

    /// True for the three update-batch kinds.
    pub fn is_update(&self) -> bool {
        matches!(
            self,
            WalPayload::Insert { .. } | WalPayload::Delete { .. } | WalPayload::Upsert { .. }
        )
    }

    fn tag(&self) -> u8 {
        match self {
            WalPayload::Insert { .. } => 1,
            WalPayload::Delete { .. } => 2,
            WalPayload::Upsert { .. } => 3,
            WalPayload::Swap => 4,
            WalPayload::Compact => 5,
            WalPayload::Freeze => 6,
            WalPayload::SyncCompact => 7,
            WalPayload::Commit { .. } => 8,
        }
    }
}

/// One sequenced WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Batch sequence number.
    pub bsn: u64,
    /// What happened.
    pub payload: WalPayload,
}

impl WalRecord {
    /// Creates a record.
    pub fn new(bsn: u64, payload: WalPayload) -> Self {
        WalRecord { bsn, payload }
    }

    /// Encodes the record as one framed byte sequence (length prefix, CRC,
    /// payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(16);
        put_u64(&mut payload, self.bsn);
        payload.push(self.payload.tag());
        match &self.payload {
            WalPayload::Insert {
                keys,
                values,
                globals,
            }
            | WalPayload::Upsert {
                keys,
                values,
                globals,
            } => {
                put_u32(&mut payload, keys.len() as u32);
                for &k in keys {
                    put_u64(&mut payload, k);
                }
                for &v in values {
                    put_u64(&mut payload, v);
                }
                match globals {
                    Some(globals) => {
                        payload.push(1);
                        for &g in globals {
                            put_u32(&mut payload, g);
                        }
                    }
                    None => payload.push(0),
                }
            }
            WalPayload::Delete { keys } => {
                put_u32(&mut payload, keys.len() as u32);
                for &k in keys {
                    put_u64(&mut payload, k);
                }
            }
            WalPayload::Swap
            | WalPayload::Compact
            | WalPayload::Freeze
            | WalPayload::SyncCompact => {}
            WalPayload::Commit { next_row } => put_u64(&mut payload, *next_row),
        }
        let mut frame = Vec::with_capacity(payload.len() + 8);
        put_u32(&mut frame, payload.len() as u32);
        put_u32(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);
        frame
    }

    /// Decodes one frame starting at `buf[offset..]`. Returns the record
    /// and the offset just past its frame, or `None` when the bytes from
    /// `offset` do not hold one intact record — a torn or corrupt tail.
    pub fn decode(buf: &[u8], offset: usize) -> Option<(WalRecord, usize)> {
        let mut r = Reader { buf, pos: offset };
        let len = r.u32()? as usize;
        let crc = r.u32()?;
        let payload = r.bytes(len)?;
        if crc32(payload) != crc {
            return None;
        }
        let end = r.pos;
        let mut p = Reader {
            buf: payload,
            pos: 0,
        };
        let bsn = p.u64()?;
        let tag = p.u8()?;
        let payload = match tag {
            1 | 3 => {
                let n = p.u32()? as usize;
                let keys = p.u64s(n)?;
                let values = p.u64s(n)?;
                let globals = match p.u8()? {
                    0 => None,
                    1 => Some(p.u32s(n)?),
                    _ => return None,
                };
                if tag == 1 {
                    WalPayload::Insert {
                        keys,
                        values,
                        globals,
                    }
                } else {
                    WalPayload::Upsert {
                        keys,
                        values,
                        globals,
                    }
                }
            }
            2 => {
                let n = p.u32()? as usize;
                WalPayload::Delete { keys: p.u64s(n)? }
            }
            4 => WalPayload::Swap,
            5 => WalPayload::Compact,
            6 => WalPayload::Freeze,
            7 => WalPayload::SyncCompact,
            8 => WalPayload::Commit { next_row: p.u64()? },
            _ => return None,
        };
        if p.pos != p.buf.len() {
            return None; // trailing garbage inside a "valid" frame
        }
        Some((WalRecord { bsn, payload }, end))
    }
}

/// Decodes every intact record of a segment byte stream, stopping at the
/// first torn or corrupt frame. Returns the records and the byte offset of
/// the valid prefix (everything past it is tail damage).
pub fn decode_stream(buf: &[u8]) -> (Vec<WalRecord>, usize) {
    let mut records = Vec::new();
    let mut offset = 0;
    while offset < buf.len() {
        match WalRecord::decode(buf, offset) {
            Some((record, next)) => {
                records.push(record);
                offset = next;
            }
            None => break,
        }
    }
    (records, offset)
}

/// Replays a decoded record stream into a rowID-exact logical table —
/// `(global rowID, key, value)` live entries, exactly what
/// [`DynamicOracle`](../index.html) tracks. This is the *oracle-side*
/// replay the annotations exist for: `Freeze`/`Swap` bracket a background
/// renumbering, `Compact`/`SyncCompact` renumber densely in place. Used by
/// the crash-replay tests; exposed because it doubles as a WAL inspector.
#[derive(Debug, Clone, Default)]
pub struct LogicalReplay {
    /// Live `(row, key, value)` entries in ascending row order.
    pub entries: Vec<(u32, u64, u64)>,
    next_row: u32,
    pending_renumber: Option<HashMap<u32, u32>>,
}

impl LogicalReplay {
    /// Starts from a snapshot's rows (dense rowIDs `0..n`, or the
    /// snapshot's explicit globals).
    pub fn from_rows(rows: &[(u64, u64)], globals: Option<&[u32]>, next_row: u64) -> Self {
        let entries: Vec<(u32, u64, u64)> = match globals {
            Some(globals) => rows
                .iter()
                .zip(globals)
                .map(|(&(k, v), &g)| (g, k, v))
                .collect(),
            None => rows
                .iter()
                .enumerate()
                .map(|(row, &(k, v))| (row as u32, k, v))
                .collect(),
        };
        LogicalReplay {
            entries,
            next_row: next_row as u32,
            pending_renumber: None,
        }
    }

    /// Applies one record.
    pub fn apply(&mut self, record: &WalRecord) {
        match &record.payload {
            WalPayload::Insert {
                keys,
                values,
                globals,
            } => self.insert(keys, values, globals.as_deref()),
            WalPayload::Delete { keys } => self.delete(keys),
            WalPayload::Upsert {
                keys,
                values,
                globals,
            } => {
                self.delete(keys);
                self.insert(keys, values, globals.as_deref());
            }
            WalPayload::Swap => self.finish_renumber(),
            WalPayload::Compact | WalPayload::SyncCompact => self.renumber_dense(),
            WalPayload::Freeze => self.begin_renumber(),
            WalPayload::Commit { .. } => {}
        }
    }

    fn insert(&mut self, keys: &[u64], values: &[u64], globals: Option<&[u32]>) {
        for (i, (&k, &v)) in keys.iter().zip(values).enumerate() {
            let row = match globals {
                Some(globals) => globals[i],
                None => {
                    let row = self.next_row;
                    self.next_row += 1;
                    row
                }
            };
            self.entries.push((row, k, v));
        }
    }

    fn delete(&mut self, keys: &[u64]) {
        let doomed: std::collections::HashSet<u64> = keys.iter().copied().collect();
        self.entries.retain(|&(_, k, _)| !doomed.contains(&k));
    }

    fn renumber_dense(&mut self) {
        self.pending_renumber = None;
        for (row, entry) in self.entries.iter_mut().enumerate() {
            entry.0 = row as u32;
        }
        self.next_row = self.entries.len() as u32;
    }

    fn begin_renumber(&mut self) {
        self.pending_renumber = Some(
            self.entries
                .iter()
                .enumerate()
                .map(|(position, &(row, _, _))| (row, position as u32))
                .collect(),
        );
    }

    fn finish_renumber(&mut self) {
        let Some(renumber) = self.pending_renumber.take() else {
            return;
        };
        let mut all_snapshot = true;
        for entry in &mut self.entries {
            if let Some(&new_row) = renumber.get(&entry.0) {
                entry.0 = new_row;
            } else {
                all_snapshot = false;
            }
        }
        if all_snapshot {
            self.next_row = renumber.len() as u32;
        }
    }
}

// --- little-endian primitives -------------------------------------------

pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Bounds-checked little-endian reader over a byte slice.
pub(crate) struct Reader<'a> {
    pub buf: &'a [u8],
    pub pos: usize,
}

impl<'a> Reader<'a> {
    pub fn u8(&mut self) -> Option<u8> {
        let b = *self.buf.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    pub fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.bytes(4)?.try_into().ok()?))
    }

    pub fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.bytes(8)?.try_into().ok()?))
    }

    pub fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    pub fn u64s(&mut self, n: usize) -> Option<Vec<u64>> {
        (0..n).map(|_| self.u64()).collect()
    }

    pub fn u32s(&mut self, n: usize) -> Option<Vec<u32>> {
        (0..n).map(|_| self.u32()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn every_payload_kind_round_trips() {
        let records = vec![
            WalRecord::new(
                1,
                WalPayload::Insert {
                    keys: vec![10, 20],
                    values: vec![100, 200],
                    globals: None,
                },
            ),
            WalRecord::new(
                2,
                WalPayload::Upsert {
                    keys: vec![5],
                    values: vec![55],
                    globals: Some(vec![7]),
                },
            ),
            WalRecord::new(3, WalPayload::Delete { keys: vec![10] }),
            WalRecord::new(4, WalPayload::Swap),
            WalRecord::new(5, WalPayload::Compact),
            WalRecord::new(6, WalPayload::Freeze),
            WalRecord::new(7, WalPayload::SyncCompact),
            WalRecord::new(8, WalPayload::Commit { next_row: 42 }),
        ];
        let mut stream = Vec::new();
        for r in &records {
            stream.extend_from_slice(&r.encode());
        }
        let (decoded, valid) = decode_stream(&stream);
        assert_eq!(decoded, records);
        assert_eq!(valid, stream.len());
    }

    #[test]
    fn torn_and_corrupt_tails_stop_the_decode() {
        let a = WalRecord::new(1, WalPayload::Delete { keys: vec![1, 2] });
        let b = WalRecord::new(2, WalPayload::Swap);
        let mut stream = a.encode();
        let a_len = stream.len();
        stream.extend_from_slice(&b.encode());

        // Truncating anywhere inside the second frame keeps only the first
        // record.
        for cut in a_len..stream.len() {
            let (records, valid) = decode_stream(&stream[..cut]);
            assert_eq!(records, vec![a.clone()], "cut at {cut}");
            assert_eq!(valid, a_len);
        }
        // A flipped payload bit fails the CRC.
        let mut corrupt = stream.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x01;
        let (records, _) = decode_stream(&corrupt);
        assert_eq!(records.len(), 1);
    }

    #[test]
    fn logical_replay_tracks_rows_like_the_oracle() {
        let mut replay = LogicalReplay::from_rows(&[(10, 1), (20, 2)], None, 2);
        replay.apply(&WalRecord::new(
            1,
            WalPayload::Insert {
                keys: vec![30],
                values: vec![3],
                globals: None,
            },
        ));
        replay.apply(&WalRecord::new(2, WalPayload::Delete { keys: vec![10] }));
        assert_eq!(replay.entries, vec![(1, 20, 2), (2, 30, 3)]);
        // Dense renumbering on compaction.
        replay.apply(&WalRecord::new(3, WalPayload::Compact));
        assert_eq!(replay.entries, vec![(0, 20, 2), (1, 30, 3)]);
        // A freeze/swap pair renumbers only the frozen snapshot.
        replay.apply(&WalRecord::new(4, WalPayload::Freeze));
        replay.apply(&WalRecord::new(
            5,
            WalPayload::Insert {
                keys: vec![40],
                values: vec![4],
                globals: None,
            },
        ));
        replay.apply(&WalRecord::new(6, WalPayload::Delete { keys: vec![20] }));
        replay.apply(&WalRecord::new(7, WalPayload::Swap));
        assert_eq!(replay.entries, vec![(1, 30, 3), (2, 40, 4)]);
    }
}
