//! Concurrent service: 32 client threads against one coalesced backend.
//!
//! Every client submits small mixed batches through a [`QueryService`]
//! handle; the coalescer fuses concurrent submissions into large backend
//! batches (recovering the paper's batch-size advantage) executed on a
//! sharded RX backend — fusion and sharding compose. Every client checks
//! its own answers against the exact [`GroundTruth`] oracle, so the run
//! proves correctness under concurrency, not just liveness.
//!
//! The queue is deliberately sized below the peak offered load, so
//! admission control pushes back on some submissions; clients absorb the
//! `Overloaded` rejections with `query_with_retry`'s bounded
//! retry-with-backoff instead of failing.
//!
//! Run with: `cargo run --release --example concurrent_service`

use rtindex::{registry, Device, IndexSpec, QueryBatch, QueryService, ServiceConfig};
use rtx_workloads::GroundTruth;

const CLIENTS: u64 = 32;
const BATCHES_PER_CLIENT: u64 = 24;
const POINTS_PER_BATCH: u64 = 24;

fn main() {
    let device = Device::default_eval();

    // One secondary index over a (key, value) column pair, RX sharded over
    // 4 shards — the coalesced service the clients share.
    let n: u64 = 100_000;
    let keys: Vec<u64> = (0..n).map(|i| (i * 2_654_435_761) % n).collect();
    let values: Vec<u64> = keys.iter().map(|k| k * 3 + 7).collect();
    let truth = GroundTruth::new(&keys, Some(&values));
    let backend = registry()
        .build("RX@4", &IndexSpec::with_values(&device, &keys, &values))
        .expect("sharded build");
    println!(
        "service backend: {} ({} keys), {} clients x {} batches x {} points + 1 range",
        backend.name(),
        backend.key_count(),
        CLIENTS,
        BATCHES_PER_CLIENT,
        POINTS_PER_BATCH
    );

    // A queue depth below the peak offered load (32 clients x 25 ops):
    // submissions can bounce with `Overloaded` and must be retried.
    let config = ServiceConfig::default().with_max_queue_depth(256);
    let service = QueryService::start(backend, config);
    let started = std::time::Instant::now();
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let handle = service.handle();
            let truth = &truth;
            scope.spawn(move || {
                for round in 0..BATCHES_PER_CLIENT {
                    // A small mixed batch unique to this client and round.
                    let base = client * 131_071 + round * 8_191;
                    let points = (0..POINTS_PER_BATCH).map(|i| (base + i * 97) % (n + 50));
                    let lower = (base * 31) % n;
                    let batch = QueryBatch::new()
                        .points(points)
                        .range(lower, lower + 64)
                        .fetch_values(true);
                    let expected = truth.expected_batch(&batch);
                    // Bounded retry-with-backoff: only `Overloaded` is
                    // retried; real errors surface immediately.
                    let out = handle
                        .query_with_retry(&batch, 64, std::time::Duration::from_micros(200))
                        .expect("service answers");
                    assert_eq!(
                        out.results, expected,
                        "client {client} round {round}: oracle-exact results"
                    );
                }
            });
        }
    });
    let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;

    let stats = service.shutdown();
    let total_ops = stats.submitted_ops;
    println!(
        "all {} batches oracle-exact in {elapsed_ms:.1} ms host ({:.3e} ops/s)",
        stats.submitted_batches,
        total_ops as f64 / (elapsed_ms / 1e3)
    );
    println!(
        "coalescing: {} client batches -> {} fused submissions \
         ({:.1} batches / {:.1} ops per submission, peak queue {} ops)",
        stats.coalesced_batches,
        stats.fused_submissions,
        stats.mean_coalesced_batches(),
        stats.mean_fused_ops(),
        stats.peak_queued_ops
    );
    println!(
        "backpressure: {} submissions bounced and were retried",
        stats.rejected_batches
    );
    assert_eq!(stats.submitted_batches, CLIENTS * BATCHES_PER_CLIENT);
    assert_eq!(stats.coalesced_batches, stats.submitted_batches);
    assert!(
        stats.coalesced_batches > stats.fused_submissions,
        "32 concurrent clients must coalesce (got 1 batch per submission)"
    );
}
