//! Figure 11: impact of key multiplicity on point lookups.
//!
//! Every key appears `2^m` times; the cumulative lookup time is normalised by
//! the multiplicity (because each lookup returns that many rows). Duplicates
//! favour all indexes; RX handles them especially well because co-located
//! triangles do not grow the BVH, only the number of (hardware) intersection
//! tests. B+ is excluded: it does not support duplicate keys.

use rtindex_core::RtIndexConfig;
use rtx_workloads as wl;

use crate::indexes::{build_all_indexes, measure_points};
use crate::report::{fmt_ms, Table};
use crate::scale::ExperimentScale;

/// Multiplicity exponents evaluated (the paper sweeps 2^0 .. 2^8).
pub fn multiplicity_exponents(scale: &ExperimentScale) -> Vec<u32> {
    let max = scale.keys_exp.saturating_sub(6).min(8);
    (0..=max).step_by(2).collect()
}

/// Runs the key-multiplicity experiment.
pub fn run(scale: &ExperimentScale) -> Vec<Table> {
    let device = crate::scaled_device(scale);
    let mut table = Table::new(
        "Figure 11: key multiplicity, normalised cumulative lookup time [ms]",
        &["multiplicity [2^m]", "HT", "SA", "RX"],
    );
    for m in multiplicity_exponents(scale) {
        let multiplicity = 1usize << m;
        let distinct = scale.default_keys() / multiplicity;
        let keys = wl::with_multiplicity(distinct, multiplicity, scale.seed);
        let values = wl::value_column(keys.len(), scale.seed + 7);
        let distinct_keys: Vec<u64> = (0..distinct as u64).collect();
        let lookups = wl::point_lookups(
            &distinct_keys,
            scale.default_lookups(),
            scale.seed + m as u64,
        );
        let indexes = build_all_indexes(&device, &keys, Some(&values), RtIndexConfig::default());
        let mut row = vec![m.to_string()];
        for name in ["HT", "SA", "RX"] {
            let cell = indexes
                .iter()
                .find(|ix| ix.name() == name)
                .map(|ix| {
                    let meas = measure_points(ix.as_ref(), &lookups, true);
                    fmt_ms(meas.sim_ms / multiplicity as f64)
                })
                .unwrap_or_else(|| "N/A".to_string());
            row.push(cell);
        }
        table.push_row(row);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_workloads::GroundTruth;

    #[test]
    fn duplicates_do_not_grow_the_rx_bvh_and_all_rows_are_returned() {
        let device = crate::default_device();
        let unique = wl::with_multiplicity(1 << 10, 1, 1);
        let dup = wl::with_multiplicity(1 << 8, 4, 1);
        let rx_unique =
            rtindex_core::RtIndex::build(&device, &unique, RtIndexConfig::default()).unwrap();
        let rx_dup = rtindex_core::RtIndex::build(&device, &dup, RtIndexConfig::default()).unwrap();
        // Same total primitive count -> comparable structure sizes.
        assert_eq!(unique.len(), dup.len());
        let ratio = rx_dup.index_memory_bytes() as f64 / rx_unique.index_memory_bytes() as f64;
        assert!(
            ratio < 1.2,
            "duplicates must not inflate the BVH, ratio {ratio}"
        );

        let values = wl::value_column(dup.len(), 3);
        let truth = GroundTruth::new(&dup, Some(&values));
        let out = rx_dup.point_lookup_batch(&[7, 13], Some(&values)).unwrap();
        assert_eq!(out.results[0].hit_count, 4);
        assert_eq!(out.results[0].value_sum, truth.point_value_sum(7));
    }

    #[test]
    fn normalised_lookup_time_decreases_with_multiplicity_for_rx() {
        let scale = ExperimentScale::tiny();
        let tables = run(&scale);
        let rx: Vec<f64> = tables[0]
            .column("RX")
            .unwrap()
            .iter()
            .map(|v| v.parse().unwrap())
            .collect();
        assert!(rx.len() >= 2);
        assert!(
            rx.last().unwrap() < rx.first().unwrap(),
            "high multiplicity must reduce the normalised time: {rx:?}"
        );
    }

    #[test]
    fn bplus_is_absent_from_the_table() {
        let tables = run(&ExperimentScale::tiny());
        assert!(!tables[0].headers.iter().any(|h| h == "B+"));
    }
}
