//! Cross-client batch fusion: many small [`QueryBatch`]es in, one large
//! submission out, and the split that scatters the fused outcome back.
//!
//! The paper's index wins by amortising fixed per-launch costs over large
//! batches, but service traffic arrives as many *small* per-client
//! submissions. [`FusedBatch`] is the pure bookkeeping for coalescing them:
//! it concatenates client batches while remembering each client's slice
//! (offset, length, whether that client asked for a value fetch), exposes
//! the fused [`QueryBatch`], and [`split`](FusedBatch::split)s the fused
//! [`QueryOutcome`] back into one [`BatchOutcome`] per client.
//!
//! Fusion and splitting are deliberately free of threads and channels — the
//! concurrent service in `rtx-serve` layers those on top — so the
//! round-trip invariant (`split(execute(fused)) == each client executed
//! alone`) is testable in isolation and holds on every backend.
//!
//! Value-fetch semantics: the fused batch requests a value fetch when *any*
//! fused client did, and the split zeroes `value_sum` for the slices that
//! did not ask — exactly what those clients would have received submitting
//! alone. A caller fusing value-fetching batches must therefore ensure the
//! backend has a value column (the service checks this at admission).

use crate::batch::QueryBatch;
use crate::types::{BatchOutcome, QueryOutcome};

/// One client's slice of a [`FusedBatch`]: where its operations landed in
/// the fused submission and what it asked for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusedSlice {
    /// Offset of the client's first operation in the fused batch.
    pub offset: usize,
    /// Number of operations the client submitted (may be 0).
    pub len: usize,
    /// Whether this client requested a value fetch.
    pub fetch_values: bool,
}

/// Accumulates client [`QueryBatch`]es into one fused submission and splits
/// the fused outcome back per client.
///
/// ```
/// use rtx_query::{FusedBatch, QueryBatch};
///
/// let mut fusion = FusedBatch::new();
/// let a = fusion.push(&QueryBatch::new().point(7).range(0, 9));
/// let b = fusion.push(&QueryBatch::of_points(&[1, 2, 3]).fetch_values(true));
/// assert_eq!((a, b), (0, 1));
/// assert_eq!(fusion.op_count(), 5);
/// assert!(fusion.batch().fetches_values(), "any client fetching => fused fetch");
/// ```
#[derive(Debug, Clone, Default)]
pub struct FusedBatch {
    batch: QueryBatch,
    slices: Vec<FusedSlice>,
    /// Total fused operations — survives [`take_batch`](FusedBatch::take_batch)
    /// so a later [`split`](FusedBatch::split) can still check the outcome.
    ops: usize,
}

impl FusedBatch {
    /// An empty fusion.
    pub fn new() -> Self {
        FusedBatch::default()
    }

    /// Appends one client batch and returns its slice index (the position
    /// its [`BatchOutcome`] will occupy in [`split`](FusedBatch::split)'s
    /// result).
    pub fn push(&mut self, client: &QueryBatch) -> usize {
        let offset = self.ops;
        self.batch.append_ops(client);
        if client.fetches_values() && !self.batch.fetches_values() {
            self.batch = std::mem::take(&mut self.batch).fetch_values(true);
        }
        self.ops += client.len();
        self.slices.push(FusedSlice {
            offset,
            len: client.len(),
            fetch_values: client.fetches_values(),
        });
        self.slices.len() - 1
    }

    /// Number of fused client batches.
    pub fn client_count(&self) -> usize {
        self.slices.len()
    }

    /// Total operations across all fused clients.
    pub fn op_count(&self) -> usize {
        self.ops
    }

    /// True when no client batch has been fused yet (an all-empty fusion of
    /// zero-operation batches still counts as pushed clients).
    pub fn is_empty(&self) -> bool {
        self.slices.is_empty()
    }

    /// The per-client slices, in push order.
    pub fn slices(&self) -> &[FusedSlice] {
        &self.slices
    }

    /// The fused submission: every client's operations concatenated in push
    /// order, fetching values when any client asked. Chunking is the
    /// executor's policy, not the clients' — apply it via
    /// [`QueryBatch::with_chunk_size`] after
    /// [`take_batch`](FusedBatch::take_batch) (or on a clone of this).
    pub fn batch(&self) -> &QueryBatch {
        &self.batch
    }

    /// Moves the fused submission out without copying its operations (the
    /// executor's hot path — a fusion can hold tens of thousands of
    /// operations). The slice bookkeeping stays valid: a later
    /// [`split`](FusedBatch::split) of the taken batch's outcome works as
    /// before; [`batch`](FusedBatch::batch) is empty afterwards.
    pub fn take_batch(&mut self) -> QueryBatch {
        std::mem::take(&mut self.batch)
    }

    /// Splits the outcome of executing the fused batch back into one
    /// [`BatchOutcome`] per client, in push order. Slices that did not
    /// request a value fetch get their `value_sum`s zeroed (what they would
    /// have seen submitting alone). Every per-client outcome carries the
    /// launch metrics of the *whole* fused execution — the work was shared,
    /// so clients observe the launches that answered them.
    ///
    /// # Panics
    ///
    /// Panics when `outcome` does not hold one result per fused operation
    /// (an executor bug, not a caller mistake).
    pub fn split(&self, outcome: &QueryOutcome) -> Vec<BatchOutcome> {
        assert_eq!(
            outcome.results.len(),
            self.ops,
            "fused outcome holds {} results for {} fused operations",
            outcome.results.len(),
            self.ops
        );
        self.slices
            .iter()
            .map(|slice| {
                let mut results = outcome.results[slice.offset..slice.offset + slice.len].to_vec();
                if !slice.fetch_values {
                    for r in &mut results {
                        r.value_sum = 0;
                    }
                }
                BatchOutcome {
                    results,
                    metrics: outcome.metrics.clone(),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::QueryOp;
    use crate::types::{LookupResult, MISS};

    fn result(first_row: u32, hit_count: u32, value_sum: u64) -> LookupResult {
        LookupResult {
            first_row,
            hit_count,
            value_sum,
        }
    }

    #[test]
    fn fusion_concatenates_in_push_order() {
        let mut fusion = FusedBatch::new();
        assert!(fusion.is_empty());
        let a = fusion.push(&QueryBatch::new().point(1).range(5, 9));
        let b = fusion.push(&QueryBatch::new());
        let c = fusion.push(&QueryBatch::of_points(&[7]));
        assert_eq!((a, b, c), (0, 1, 2));
        assert_eq!(fusion.client_count(), 3);
        assert_eq!(fusion.op_count(), 3);
        assert!(!fusion.is_empty());
        assert_eq!(
            fusion.batch().ops(),
            &[QueryOp::Point(1), QueryOp::Range(5, 9), QueryOp::Point(7)]
        );
        assert_eq!(
            fusion.slices(),
            &[
                FusedSlice {
                    offset: 0,
                    len: 2,
                    fetch_values: false
                },
                FusedSlice {
                    offset: 2,
                    len: 0,
                    fetch_values: false
                },
                FusedSlice {
                    offset: 2,
                    len: 1,
                    fetch_values: false
                },
            ]
        );
        assert!(!fusion.batch().fetches_values());
    }

    #[test]
    fn any_fetching_client_makes_the_fusion_fetch() {
        let mut fusion = FusedBatch::new();
        fusion.push(&QueryBatch::new().point(1));
        assert!(!fusion.batch().fetches_values());
        fusion.push(&QueryBatch::new().point(2).fetch_values(true));
        fusion.push(&QueryBatch::new().point(3));
        assert!(fusion.batch().fetches_values());
        // The operations survived the flag change.
        assert_eq!(fusion.op_count(), 3);
    }

    #[test]
    fn split_scatters_results_and_strips_unrequested_value_sums() {
        let mut fusion = FusedBatch::new();
        fusion.push(&QueryBatch::new().point(1).point(2)); // no fetch
        fusion.push(&QueryBatch::new()); // empty client
        fusion.push(&QueryBatch::new().range(0, 9).fetch_values(true));
        let outcome = QueryOutcome {
            results: vec![result(0, 1, 10), result(MISS, 0, 0), result(2, 4, 99)],
            metrics: optix_sim::LaunchMetrics {
                simulated_time_s: 2.0,
                ..Default::default()
            },
        };
        let per_client = fusion.split(&outcome);
        assert_eq!(per_client.len(), 3);
        // Client 0 did not fetch: sums stripped, rows/counts intact.
        assert_eq!(per_client[0].results[0], result(0, 1, 0));
        assert_eq!(per_client[0].results[1], result(MISS, 0, 0));
        // Client 1 submitted nothing and gets nothing.
        assert!(per_client[1].results.is_empty());
        // Client 2 fetched: its sum survives.
        assert_eq!(per_client[2].results[0], result(2, 4, 99));
        // Every client sees the shared fused launch metrics.
        for out in &per_client {
            assert_eq!(out.metrics.simulated_time_s, 2.0);
        }
    }

    #[test]
    fn take_batch_moves_ops_out_but_split_still_works() {
        let mut fusion = FusedBatch::new();
        fusion.push(&QueryBatch::new().point(1));
        fusion.push(&QueryBatch::new().range(0, 9).fetch_values(true));
        let fused = fusion.take_batch().with_chunk_size(4);
        assert_eq!(fused.len(), 2);
        assert!(fused.fetches_values());
        assert!(fusion.batch().is_empty(), "the operations moved out");
        assert_eq!(fusion.op_count(), 2, "the bookkeeping did not");
        assert_eq!(fusion.client_count(), 2);

        let outcome = QueryOutcome {
            results: vec![result(5, 1, 50), result(0, 10, 99)],
            ..Default::default()
        };
        let per_client = fusion.split(&outcome);
        assert_eq!(
            per_client[0].results[0],
            result(5, 1, 0),
            "no fetch: stripped"
        );
        assert_eq!(per_client[1].results[0], result(0, 10, 99));
    }

    #[test]
    #[should_panic(expected = "fused outcome holds")]
    fn split_rejects_miscounted_outcomes() {
        let mut fusion = FusedBatch::new();
        fusion.push(&QueryBatch::new().point(1));
        let _ = fusion.split(&QueryOutcome::default());
    }
}
