//! The raytracing pipeline: ray-generation + any-hit programs and
//! `optixLaunch`.
//!
//! A pipeline launch spawns one logical thread per launch index (one per
//! lookup for RTIndeX). Each logical thread runs the user's ray-generation
//! program, which converts its lookup into one or more rays and passes them
//! to [`Tracer::trace`] — our `optixTrace()`. The traversal runs on the BVH of
//! the [`GeometryAccel`] and invokes the user's any-hit program for every
//! intersection, handing it the primitive index (the rowID).
//!
//! While executing, the launch accumulates the hardware counters the cost
//! model needs: instructions for the programmable parts (ray generation,
//! software intersection, any-hit), RT-core work (box and triangle tests),
//! and memory traffic classified by the [`AccessClassifier`].

use gpu_device::{Device, KernelStats, SimulatedTime, ThreadCtx};
use rtx_bvh::{traverse, AnyHitControl, TraversalStats};
use rtx_math::Ray;

use crate::accel::GeometryAccel;
use gpu_device::AccessClassifier;

/// Instruction-cost constants for the programmable pipeline stages. These are
/// the calibration knobs of the reproduction; their ratios (not absolute
/// values) drive the shapes of the paper's figures.
pub mod cost_constants {
    /// Instructions charged per launch index (ray-generation overhead).
    pub const RAYGEN_BASE: u64 = 30;
    /// Instructions charged per `optixTrace` call (setup + handoff).
    pub const TRACE_SETUP: u64 = 20;
    /// Instructions charged per software intersection-program invocation.
    /// The value is deliberately large: a custom intersection program stalls
    /// the fixed-function traversal, diverges within the warp and re-enters
    /// the SM pipeline, which on real hardware costs far more than the
    /// arithmetic of the test itself (this is what makes spheres/AABBs lose
    /// against hardware-tested triangles in Figure 7a).
    pub const SW_INTERSECTION: u64 = 600;
    /// Instructions charged per any-hit program invocation.
    pub const ANY_HIT: u64 = 10;
    /// Bytes read per visited BVH node.
    pub const NODE_BYTES: u64 = 32;
}

/// The user-programmable parts of a pipeline, i.e. the OptiX "program groups"
/// RTIndeX provides.
pub trait ProgramSet: Sync {
    /// Per-ray payload handed to the any-hit program.
    type Payload: Default;
    /// Per-launch-index result written to the output buffer.
    type Output: Send + Default + Clone;

    /// Ray-generation program: convert launch index `idx` into rays, trace
    /// them, and produce the thread's output value.
    fn ray_gen(&self, idx: usize, tracer: &mut Tracer<'_, Self>) -> Self::Output;

    /// Any-hit program: called for every reported intersection with the
    /// primitive index (= rowID) and the hit parameter.
    fn any_hit(&self, payload: &mut Self::Payload, prim_index: u32, t: f32) -> AnyHitControl;
}

/// Handle passed to the ray-generation program; wraps `optixTrace` and
/// data-buffer reads so that all device work is accounted.
pub struct Tracer<'a, PS: ProgramSet + ?Sized> {
    gas: &'a GeometryAccel,
    programs: &'a PS,
    ctx: &'a mut ThreadCtx,
    classifier: &'a mut AccessClassifier,
    traversal: TraversalStats,
    traces: u64,
}

impl<'a, PS: ProgramSet + ?Sized> Tracer<'a, PS> {
    /// Casts `ray` against the acceleration structure, invoking the program
    /// set's any-hit for every intersection. Returns the per-ray traversal
    /// statistics.
    pub fn trace(&mut self, ray: &Ray, payload: &mut PS::Payload) -> TraversalStats {
        self.traces += 1;
        self.ctx.add_instructions(cost_constants::TRACE_SETUP);

        let prims = self.gas.primitives();
        let programs = self.programs;
        let stats = traverse(self.gas.bvh(), prims, ray, |prim, t| {
            programs.any_hit(payload, prim, t)
        });

        // Memory traffic: nodes + primitive data, attributed by locality.
        // The region token groups rays that enter the tree near each other
        // (quantised origin), which is what produces cache reuse for sorted
        // or skewed lookup batches.
        let token = quantize_origin(ray);
        self.classifier.access(
            self.ctx,
            token,
            stats.nodes_visited * cost_constants::NODE_BYTES,
        );
        let prim_bytes = stats.prim_tests() * prims.bytes_per_primitive();
        if prim_bytes > 0 {
            self.classifier
                .access(self.ctx, token.wrapping_add(1), prim_bytes);
        }

        // Programmable-core work.
        self.ctx.add_instructions(
            stats.sw_prim_tests * cost_constants::SW_INTERSECTION
                + stats.any_hit_invocations * cost_constants::ANY_HIT,
        );
        // Fixed-function work. RT cores fetch a node and test all of its
        // children in one step, so the charged unit is the visited node, not
        // the individual child-box test.
        self.ctx.stats.rt_box_tests += stats.nodes_visited;
        self.ctx.stats.rt_triangle_tests += stats.hw_prim_tests;
        self.ctx.stats.sw_intersection_tests += stats.sw_prim_tests;
        self.ctx.stats.bvh_nodes_visited += stats.nodes_visited;
        self.ctx.stats.any_hit_invocations += stats.any_hit_invocations;
        self.ctx.stats.early_aborts += stats.aborted_at_root;

        self.traversal.merge(&stats);
        stats
    }

    /// Records a data-dependent read of `bytes` from a device buffer (e.g.
    /// fetching the projected value for a rowID). `token` identifies the
    /// touched region (such as `rowID / 8`) so that neighbouring fetches can
    /// hit the cache.
    pub fn read_buffer(&mut self, token: u64, bytes: u64) {
        self.ctx.add_instructions(2);
        self.classifier.access(
            self.ctx,
            token.wrapping_mul(2654435761).rotate_left(17),
            bytes,
        );
    }

    /// Records `n` additional instructions of per-thread work (key
    /// conversion, result encoding, …).
    pub fn add_instructions(&mut self, n: u64) {
        self.ctx.add_instructions(n);
    }

    /// Number of `trace` calls made through this tracer so far.
    pub fn trace_count(&self) -> u64 {
        self.traces
    }

    /// Aggregated traversal statistics of the rays traced so far.
    pub fn traversal_stats(&self) -> TraversalStats {
        self.traversal
    }
}

/// Groups rays whose origins are close together; used as the locality token.
fn quantize_origin(ray: &Ray) -> u64 {
    let q = |v: f32| ((v / 64.0).floor() as i64) as u64;
    q(ray.origin.x) ^ q(ray.origin.y).rotate_left(21) ^ q(ray.origin.z).rotate_left(42)
}

/// Result of a pipeline launch.
#[derive(Debug, Clone, Default)]
pub struct LaunchMetrics {
    /// Merged hardware counters of the launch.
    pub kernel: KernelStats,
    /// Aggregated BVH traversal statistics.
    pub traversal: TraversalStats,
    /// Simulated device time of the launch.
    pub simulated_time_s: f64,
    /// Host wall-clock time of the (software) launch.
    pub host_time: std::time::Duration,
}

impl LaunchMetrics {
    /// Simulated time as a typed value.
    pub fn simulated_time(&self) -> SimulatedTime {
        SimulatedTime::from_seconds(self.simulated_time_s)
    }

    /// Merges the metrics of a subsequent launch (used when a workload is
    /// split into several batches).
    pub fn merge(&mut self, other: &LaunchMetrics) {
        self.kernel.merge(&other.kernel);
        self.traversal.merge(&other.traversal);
        self.simulated_time_s += other.simulated_time_s;
        self.host_time += other.host_time;
    }
}

/// Launches the pipeline: runs `programs.ray_gen` for every launch index in
/// `0..width`, writing each result into `out[idx]`.
///
/// `extra_working_set_bytes` describes device data outside the acceleration
/// structure that lookups touch (the projected value column), so the memory
/// model sees the true working-set size.
pub fn launch<PS: ProgramSet>(
    device: &Device,
    gas: &GeometryAccel,
    programs: &PS,
    width: usize,
    extra_working_set_bytes: u64,
    out: &mut [PS::Output],
) -> LaunchMetrics {
    assert!(
        out.len() >= width,
        "output buffer too small: {} < {width}",
        out.len()
    );
    let start = std::time::Instant::now();

    let mut merged = KernelStats {
        threads_launched: width as u64,
        kernel_launches: 1,
        ..KernelStats::new()
    };
    let mut traversal = TraversalStats::default();

    if width > 0 {
        let workers = gpu_device::executor::worker_count().min(width);
        let chunk = width.div_ceil(workers);
        let working_set = gas.memory_bytes() + extra_working_set_bytes;
        let l2 = device.spec().l2_bytes;

        let out_chunks: Vec<&mut [PS::Output]> = out[..width].chunks_mut(chunk).collect();
        let partials = gpu_device::executor::parallel_map(out_chunks, |w, out_chunk| {
            let start_idx = w * chunk;
            let mut ctx = ThreadCtx::new();
            let mut classifier = AccessClassifier::new(l2, working_set);
            let mut local_traversal = TraversalStats::default();
            for (j, slot) in out_chunk.iter_mut().enumerate() {
                ctx.add_instructions(cost_constants::RAYGEN_BASE);
                let mut tracer = Tracer {
                    gas,
                    programs,
                    ctx: &mut ctx,
                    classifier: &mut classifier,
                    traversal: TraversalStats::default(),
                    traces: 0,
                };
                *slot = programs.ray_gen(start_idx + j, &mut tracer);
                local_traversal.merge(&tracer.traversal);
            }
            (ctx.stats, local_traversal)
        });

        for (stats, trav) in partials {
            merged.merge(&stats);
            traversal.merge(&trav);
        }
        merged.threads_launched = width as u64;
        merged.kernel_launches = 1;
    }

    let simulated = device.cost_model().simulated_time(&merged);
    device.profiler().record_kernel(merged);

    LaunchMetrics {
        kernel: merged,
        traversal,
        simulated_time_s: simulated.as_seconds(),
        host_time: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accel::AccelBuildOptions;
    use crate::build_input::{BuildInput, PrimitiveKind};
    use rtx_math::Vec3f;

    /// A minimal program set: each launch index looks up key `idx` with a
    /// perpendicular ray and returns the hit rowID (or u32::MAX on miss).
    struct PointLookup;

    #[derive(Default)]
    struct HitPayload {
        row: Option<u32>,
    }

    impl ProgramSet for PointLookup {
        type Payload = HitPayload;
        type Output = u32;

        fn ray_gen(&self, idx: usize, tracer: &mut Tracer<'_, Self>) -> u32 {
            let ray = Ray::new(
                Vec3f::new(idx as f32, 0.0, -0.5),
                Vec3f::new(0.0, 0.0, 1.0),
                0.0,
                1.0,
            );
            let mut payload = HitPayload::default();
            tracer.trace(&ray, &mut payload);
            payload.row.unwrap_or(u32::MAX)
        }

        fn any_hit(&self, payload: &mut HitPayload, prim: u32, _t: f32) -> AnyHitControl {
            payload.row = Some(prim);
            AnyHitControl::Continue
        }
    }

    fn build_gas(device: &Device, n: usize) -> GeometryAccel {
        let centers: Vec<Vec3f> = (0..n).map(|i| Vec3f::new(i as f32, 0.0, 0.0)).collect();
        GeometryAccel::build(
            device,
            BuildInput::from_centers(PrimitiveKind::Triangle, &centers),
            &AccelBuildOptions::default(),
        )
    }

    #[test]
    fn launch_returns_correct_rowids() {
        let device = Device::default_eval();
        let gas = build_gas(&device, 512);
        let mut out = vec![0u32; 512];
        let metrics = launch(&device, &gas, &PointLookup, 512, 0, &mut out);
        for (i, &row) in out.iter().enumerate() {
            assert_eq!(row, i as u32, "lookup {i}");
        }
        assert_eq!(metrics.kernel.threads_launched, 512);
        assert_eq!(metrics.kernel.kernel_launches, 1);
        assert!(metrics.kernel.instructions > 0);
        assert!(metrics.kernel.rt_triangle_tests > 0);
        assert!(metrics.traversal.any_hit_invocations == 512);
        assert!(metrics.simulated_time_s > 0.0);
    }

    #[test]
    fn launch_records_misses_without_hits() {
        let device = Device::default_eval();
        let gas = build_gas(&device, 16);
        // Launch indices 0..64: indices >= 16 are misses.
        let mut out = vec![0u32; 64];
        let metrics = launch(&device, &gas, &PointLookup, 64, 0, &mut out);
        for (i, &row) in out.iter().enumerate().take(16) {
            assert_eq!(row, i as u32);
        }
        for &row in &out[16..] {
            assert_eq!(row, u32::MAX);
        }
        assert!(
            metrics.kernel.early_aborts > 0,
            "far misses abort at the root"
        );
    }

    #[test]
    fn empty_launch_is_safe() {
        let device = Device::default_eval();
        let gas = build_gas(&device, 4);
        let mut out: Vec<u32> = vec![];
        let metrics = launch(&device, &gas, &PointLookup, 0, 0, &mut out);
        assert_eq!(metrics.kernel.threads_launched, 0);
        assert_eq!(metrics.traversal.nodes_visited, 0);
    }

    #[test]
    #[should_panic(expected = "output buffer too small")]
    fn launch_rejects_short_output() {
        let device = Device::default_eval();
        let gas = build_gas(&device, 4);
        let mut out = vec![0u32; 2];
        let _ = launch(&device, &gas, &PointLookup, 4, 0, &mut out);
    }

    #[test]
    fn metrics_merge_accumulates() {
        let device = Device::default_eval();
        let gas = build_gas(&device, 64);
        let mut out = vec![0u32; 64];
        let mut total = LaunchMetrics::default();
        for _ in 0..4 {
            let m = launch(&device, &gas, &PointLookup, 64, 0, &mut out);
            total.merge(&m);
        }
        assert_eq!(total.kernel.kernel_launches, 4);
        assert_eq!(total.kernel.threads_launched, 256);
        assert!(total.simulated_time().as_seconds() > 0.0);
    }

    #[test]
    fn small_build_served_from_cache_large_build_from_dram() {
        let device = Device::default_eval();
        let small = build_gas(&device, 256);
        let mut out = vec![0u32; 256];
        let m_small = launch(&device, &small, &PointLookup, 256, 0, &mut out);
        assert_eq!(m_small.kernel.dram_bytes_read, 0, "small index fits in L2");

        // A working set much larger than the 72 MiB L2 of the 4090 —
        // simulate by claiming a huge extra working set.
        let m_large = launch(&device, &small, &PointLookup, 256, 10 << 30, &mut out);
        assert!(
            m_large.kernel.dram_bytes_read > 0,
            "large working set must hit DRAM"
        );
    }
}
