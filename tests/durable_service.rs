//! Acceptance test of durability behind the service layer: a durable
//! `"RXD+wal:"` backend served through [`QueryService`], driven with a
//! mixed stream verified in lockstep against the [`DynamicOracle`], then
//! shut down mid-stream and *reopened from disk* into a fresh service that
//! resumes the very same oracle stream — answers stay oracle-exact (rowIDs
//! included) across the restart.
//!
//! Along the way it exercises the new service plumbing end to end:
//! [`ClientHandle::checkpoint`] rides the write fence, and
//! [`ServiceStats`] mirrors the backend's durability counters and memory
//! accounting.

use rtindex::{registry, ClientHandle, Device, IndexSpec, QueryBatch, QueryService, ServiceConfig};
use rtx_workloads::{
    dense_shuffled, mixed_ops, value_column, DynamicOracle, MixedOp, MixedWorkloadConfig,
};

/// Starts a service over the durable index in `dir`: building it from
/// `initial` columns on the first call, reopening from disk when `None`.
fn start_service(
    device: &Device,
    dir: &std::path::Path,
    initial: Option<(&[u64], &[u64])>,
) -> QueryService {
    let name = format!("RXD+wal:{}", dir.display());
    let spec = match initial {
        Some((keys, values)) => IndexSpec::with_values(device, keys, values),
        None => IndexSpec::keys_only(device, &[]),
    };
    let backend = registry()
        .build_updatable(&name, &spec)
        .expect("durable backend");
    QueryService::start_updatable(backend, ServiceConfig::default())
}

/// Applies one mixed op through the service handle and mirrors it into the
/// oracle; lookup ops are checked oracle-exact. Returns verified lookups.
fn drive_one(handle: &ClientHandle, oracle: &mut DynamicOracle, op: &MixedOp) -> usize {
    if op.is_write() {
        let (keys, values) = op.columns();
        let report = match op {
            MixedOp::Insert(_) => handle.insert(&keys, &values),
            MixedOp::Delete(_) => handle.delete(&keys),
            MixedOp::Upsert(_) => handle.upsert(&keys, &values),
            _ => unreachable!("write op"),
        }
        .expect("service write");
        oracle.apply(op);
        // Mirror a policy compaction (it renumbers rowIDs) into the oracle.
        if report.reorganisations >= 1 {
            oracle.compact();
        }
        0
    } else {
        let batch = op.as_query_batch().expect("read op");
        let expected = oracle.expected_batch(&batch);
        let out = handle.query(batch).expect("service query");
        assert_eq!(out.results, expected, "service answers oracle-exact");
        out.results.len()
    }
}

#[test]
fn durable_service_reopens_mid_stream_and_stays_oracle_exact() {
    let device = Device::default_eval();
    let dir = std::env::temp_dir().join(format!(
        "rtx-durable-service-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let keys = dense_shuffled(128, 7);
    let values = value_column(128, 8);
    let mut oracle = DynamicOracle::new(&keys, &values);
    let ops = mixed_ops(&MixedWorkloadConfig::uniform(800, 256, 9));
    let cut = ops.len() / 2;
    let mut verified = 0usize;

    // First life: initial build, half the stream, a checkpoint through the
    // write fence, then a mid-stream shutdown.
    let service = start_service(&device, &dir, Some((&keys, &values)));
    let handle = service.handle();
    for op in &ops[..cut] {
        verified += drive_one(&handle, &mut oracle, op);
    }
    assert_eq!(handle.checkpoint().expect("checkpoint"), 1);
    oracle.compact(); // the checkpoint compacts before snapshotting
    let stats = service.shutdown();
    assert_eq!(stats.checkpoints, 1, "checkpoint rode the write fence");
    // Two snapshots: the initial-build one plus the explicit checkpoint.
    assert_eq!(stats.snapshots, 2, "stats mirror the snapshot counter");
    assert!(stats.last_snapshot_bsn > 0);
    assert!(stats.fsyncs > 0, "default policy fsyncs every commit");
    assert!(
        stats.memory.base_bytes > 0,
        "memory gauges mirror the backend"
    );

    // Second life: reopen the same directory from disk into a fresh
    // service and resume the *same* oracle stream.
    let service = start_service(&device, &dir, None);
    let handle = service.handle();
    for op in &ops[cut..] {
        verified += drive_one(&handle, &mut oracle, op);
    }

    // A full-domain probe at the end: every key, misses and ranges.
    let batch = QueryBatch::new()
        .points(0..264u64)
        .ranges((0..256u64).step_by(11).map(|lo| (lo, lo + 13)))
        .fetch_values(true);
    let expected = oracle.expected_batch(&batch);
    let out = handle.query(batch).expect("final probe");
    assert_eq!(out.results, expected, "post-restart full-domain probe");
    verified += out.results.len();
    assert!(verified > 200, "the stream must actually verify lookups");

    let stats = service.shutdown();
    assert!(
        stats.wal_bytes > 0,
        "the resumed service appended to the reopened WAL"
    );
    assert!(stats.memory.base_bytes > 0);
    let _ = std::fs::remove_dir_all(&dir);
}
