//! Baseline benchmarks: HT / B+ / SA point and range lookups plus the radix
//! sort they build on (the baseline sides of Figures 10–17).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpu_baselines::{radix_sort_pairs, BPlusTree, GpuIndex, SortedArray, WarpHashTable};
use gpu_device::Device;
use rtx_workloads as wl;

fn bench_baseline_point_lookups(c: &mut Criterion) {
    let device = Device::default_eval();
    let keys = wl::dense_shuffled(1 << 16, 42);
    let values = wl::value_column(keys.len(), 43);
    let queries = wl::point_lookups(&keys, 1 << 16, 44);

    let ht = WarpHashTable::build(&device, &keys).unwrap();
    let bp = BPlusTree::build(&device, &keys).unwrap();
    let sa = SortedArray::build(&device, &keys).unwrap();
    let indexes: Vec<(&str, &dyn GpuIndex)> = vec![("HT", &ht), ("B+", &bp), ("SA", &sa)];

    let mut group = c.benchmark_group("baseline_point_lookups");
    group.throughput(Throughput::Elements(queries.len() as u64));
    for (name, index) in indexes {
        group.bench_with_input(BenchmarkId::from_parameter(name), &queries, |b, q| {
            b.iter(|| index.point_lookup_batch(&device, q, Some(&values)))
        });
    }
    group.finish();
}

fn bench_baseline_range_lookups(c: &mut Criterion) {
    let device = Device::default_eval();
    let keys = wl::dense_shuffled(1 << 16, 42);
    let values = wl::value_column(keys.len(), 43);
    let ranges = wl::range_lookups(keys.len() as u64, 1 << 12, 64, 45);

    let bp = BPlusTree::build(&device, &keys).unwrap();
    let sa = SortedArray::build(&device, &keys).unwrap();
    let indexes: Vec<(&str, &dyn GpuIndex)> = vec![("B+", &bp), ("SA", &sa)];

    let mut group = c.benchmark_group("baseline_range_lookups");
    group.throughput(Throughput::Elements(ranges.len() as u64));
    for (name, index) in indexes {
        group.bench_with_input(BenchmarkId::from_parameter(name), &ranges, |b, r| {
            b.iter(|| index.range_lookup_batch(&device, r, Some(&values)).unwrap())
        });
    }
    group.finish();
}

fn bench_radix_sort(c: &mut Criterion) {
    let device = Device::default_eval();
    let mut group = c.benchmark_group("radix_sort");
    for exp in [14u32, 16] {
        let keys = wl::dense_shuffled(1 << exp, 42);
        let rowids: Vec<u32> = (0..keys.len() as u32).collect();
        group.throughput(Throughput::Elements(keys.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(exp), &(), |b, _| {
            b.iter(|| radix_sort_pairs(&device, &keys, &rowids))
        });
    }
    group.finish();
}

/// Shared Criterion configuration: small sample counts and short measurement
/// windows keep `cargo bench --workspace` runnable in CI while still
/// producing stable medians for the simulated workloads.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500))
}

criterion_group! {
    name = benches;
    config = quick();
    targets =
    bench_baseline_point_lookups,
    bench_baseline_range_lookups,
    bench_radix_sort

}
criterion_main!(benches);
