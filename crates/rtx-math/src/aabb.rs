//! Axis-aligned bounding boxes.
//!
//! AABBs play two roles in the reproduction: they are the internal node
//! volumes of every BVH, and they are one of the three primitive types the
//! paper evaluates (Section 3.5), where each key is represented by a small
//! box and intersection is performed by a user-supplied intersection program.

use crate::ray::Ray;
use crate::vec3::Vec3f;

/// An axis-aligned bounding box described by its minimum and maximum corner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Vec3f,
    /// Maximum corner.
    pub max: Vec3f,
}

impl Aabb {
    /// The canonical empty box (`min = +inf`, `max = -inf`); the identity
    /// element of [`Aabb::union`].
    pub const EMPTY: Aabb = Aabb {
        min: Vec3f {
            x: f32::INFINITY,
            y: f32::INFINITY,
            z: f32::INFINITY,
        },
        max: Vec3f {
            x: f32::NEG_INFINITY,
            y: f32::NEG_INFINITY,
            z: f32::NEG_INFINITY,
        },
    };

    /// Creates a box from its two corners.
    #[inline]
    pub fn new(min: Vec3f, max: Vec3f) -> Self {
        Aabb { min, max }
    }

    /// Creates a box containing a single point.
    #[inline]
    pub fn from_point(p: Vec3f) -> Self {
        Aabb { min: p, max: p }
    }

    /// Creates the tightest box containing all `points`. Returns
    /// [`Aabb::EMPTY`] for an empty iterator.
    pub fn from_points<I: IntoIterator<Item = Vec3f>>(points: I) -> Self {
        points
            .into_iter()
            .fold(Aabb::EMPTY, |acc, p| acc.union_point(p))
    }

    /// Returns true when the box contains no point (any `min > max`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y || self.min.z > self.max.z
    }

    /// Smallest box containing both `self` and `other`.
    #[inline]
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Smallest box containing `self` and the point `p`.
    #[inline]
    pub fn union_point(&self, p: Vec3f) -> Aabb {
        Aabb {
            min: self.min.min(p),
            max: self.max.max(p),
        }
    }

    /// Grows the box by `eps` in every direction.
    #[inline]
    pub fn inflate(&self, eps: f32) -> Aabb {
        Aabb {
            min: self.min - Vec3f::splat(eps),
            max: self.max + Vec3f::splat(eps),
        }
    }

    /// Box diagonal (`max - min`).
    #[inline]
    pub fn extent(&self) -> Vec3f {
        self.max - self.min
    }

    /// Centre point of the box.
    #[inline]
    pub fn centroid(&self) -> Vec3f {
        (self.min + self.max) * 0.5
    }

    /// Surface area of the box; the quantity minimised by the SAH builder.
    /// Empty boxes report zero area.
    #[inline]
    pub fn surface_area(&self) -> f32 {
        if self.is_empty() {
            return 0.0;
        }
        let e = self.extent();
        2.0 * (e.x * e.y + e.y * e.z + e.z * e.x)
    }

    /// Index of the longest axis (0 = x, 1 = y, 2 = z).
    #[inline]
    pub fn longest_axis(&self) -> usize {
        self.extent().max_dimension()
    }

    /// Returns true when the point lies inside the box (inclusive bounds).
    #[inline]
    pub fn contains_point(&self, p: Vec3f) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// Returns true when `other` lies completely inside `self`.
    #[inline]
    pub fn contains_aabb(&self, other: &Aabb) -> bool {
        other.is_empty() || (self.contains_point(other.min) && self.contains_point(other.max))
    }

    /// Slab test: returns the entry/exit parameters `(t_enter, t_exit)` of the
    /// ray against the box, clipped to the ray interval, or `None` when the
    /// ray misses the box.
    ///
    /// A ray that *starts inside* the box reports `t_enter = ray.tmin`.
    #[inline]
    pub fn intersect(&self, ray: &Ray) -> Option<(f32, f32)> {
        self.intersect_with_inv(ray, ray.inv_direction())
    }

    /// Slab test with a precomputed reciprocal direction (the hot path used
    /// by BVH traversal, where the reciprocal is computed once per ray).
    #[inline]
    pub fn intersect_with_inv(&self, ray: &Ray, inv_dir: Vec3f) -> Option<(f32, f32)> {
        let mut t_enter = ray.tmin;
        let mut t_exit = ray.tmax;
        for axis in 0..3 {
            let origin = ray.origin.axis(axis);
            let inv = inv_dir.axis(axis);
            let mut t0 = (self.min.axis(axis) - origin) * inv;
            let mut t1 = (self.max.axis(axis) - origin) * inv;
            if t0 > t1 {
                std::mem::swap(&mut t0, &mut t1);
            }
            // NaN (0 * inf) falls through: comparisons with NaN are false, so
            // the interval is left untouched, matching robust slab tests.
            if t0 > t_enter {
                t_enter = t0;
            }
            if t1 < t_exit {
                t_exit = t1;
            }
            if t_enter > t_exit {
                return None;
            }
        }
        Some((t_enter, t_exit))
    }
}

impl Default for Aabb {
    fn default() -> Self {
        Aabb::EMPTY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_box() -> Aabb {
        Aabb::new(Vec3f::ZERO, Vec3f::new(1.0, 1.0, 1.0))
    }

    #[test]
    fn empty_box_properties() {
        assert!(Aabb::EMPTY.is_empty());
        assert_eq!(Aabb::EMPTY.surface_area(), 0.0);
        assert!(!unit_box().is_empty());
    }

    #[test]
    fn union_and_union_point() {
        let a = Aabb::from_point(Vec3f::new(1.0, 1.0, 1.0));
        let b = Aabb::from_point(Vec3f::new(-1.0, 2.0, 0.0));
        let u = a.union(&b);
        assert_eq!(u.min, Vec3f::new(-1.0, 1.0, 0.0));
        assert_eq!(u.max, Vec3f::new(1.0, 2.0, 1.0));
        assert_eq!(Aabb::EMPTY.union(&a), a);
        assert_eq!(a.union(&Aabb::EMPTY), a);
        let up = a.union_point(Vec3f::new(0.0, 0.0, 5.0));
        assert_eq!(up.max.z, 5.0);
    }

    #[test]
    fn from_points_builds_tight_box() {
        let pts = [
            Vec3f::new(0.0, 0.0, 0.0),
            Vec3f::new(2.0, -1.0, 3.0),
            Vec3f::new(1.0, 4.0, -2.0),
        ];
        let b = Aabb::from_points(pts);
        assert_eq!(b.min, Vec3f::new(0.0, -1.0, -2.0));
        assert_eq!(b.max, Vec3f::new(2.0, 4.0, 3.0));
        assert!(Aabb::from_points(std::iter::empty()).is_empty());
    }

    #[test]
    fn surface_area_and_centroid() {
        let b = Aabb::new(Vec3f::ZERO, Vec3f::new(2.0, 3.0, 4.0));
        assert_eq!(b.surface_area(), 2.0 * (6.0 + 12.0 + 8.0));
        assert_eq!(b.centroid(), Vec3f::new(1.0, 1.5, 2.0));
        assert_eq!(b.longest_axis(), 2);
    }

    #[test]
    fn containment() {
        let b = unit_box();
        assert!(b.contains_point(Vec3f::new(0.5, 0.5, 0.5)));
        assert!(b.contains_point(Vec3f::new(0.0, 1.0, 0.0)));
        assert!(!b.contains_point(Vec3f::new(1.5, 0.5, 0.5)));
        let inner = Aabb::new(Vec3f::splat(0.25), Vec3f::splat(0.75));
        assert!(b.contains_aabb(&inner));
        assert!(!inner.contains_aabb(&b));
        assert!(b.contains_aabb(&Aabb::EMPTY));
    }

    #[test]
    fn ray_hits_box_straight_on() {
        let b = unit_box();
        let r = Ray::unbounded(Vec3f::new(-1.0, 0.5, 0.5), Vec3f::new(1.0, 0.0, 0.0));
        let (t0, t1) = b.intersect(&r).expect("hit");
        assert!((t0 - 1.0).abs() < 1e-6);
        assert!((t1 - 2.0).abs() < 1e-6);
    }

    #[test]
    fn ray_misses_box() {
        let b = unit_box();
        let r = Ray::unbounded(Vec3f::new(-1.0, 2.0, 0.5), Vec3f::new(1.0, 0.0, 0.0));
        assert!(b.intersect(&r).is_none());
        // Pointing away from the box.
        let r2 = Ray::unbounded(Vec3f::new(-1.0, 0.5, 0.5), Vec3f::new(-1.0, 0.0, 0.0));
        assert!(b.intersect(&r2).is_none());
    }

    #[test]
    fn ray_starting_inside_reports_tmin() {
        let b = unit_box();
        let r = Ray::unbounded(Vec3f::new(0.5, 0.5, 0.5), Vec3f::new(1.0, 0.0, 0.0));
        let (t0, t1) = b.intersect(&r).expect("hit");
        assert_eq!(t0, 0.0);
        assert!((t1 - 0.5).abs() < 1e-6);
    }

    #[test]
    fn ray_interval_clips_hit() {
        let b = unit_box();
        // Box spans t in [1, 2] along this ray; restrict tmax to 0.5 -> miss.
        let r = Ray::new(
            Vec3f::new(-1.0, 0.5, 0.5),
            Vec3f::new(1.0, 0.0, 0.0),
            0.0,
            0.5,
        );
        assert!(b.intersect(&r).is_none());
    }

    #[test]
    fn axis_parallel_ray_in_plane_of_face() {
        let b = unit_box();
        // Ray travels along x at y exactly on the max face.
        let r = Ray::unbounded(Vec3f::new(-1.0, 1.0, 0.5), Vec3f::new(1.0, 0.0, 0.0));
        // Grazing hits are acceptable either way, but the call must not panic
        // and must return a well-formed interval if it reports a hit.
        if let Some((t0, t1)) = b.intersect(&r) {
            assert!(t0 <= t1);
        }
    }

    #[test]
    fn inflate_grows_box() {
        let b = unit_box().inflate(0.5);
        assert_eq!(b.min, Vec3f::splat(-0.5));
        assert_eq!(b.max, Vec3f::splat(1.5));
    }
}
