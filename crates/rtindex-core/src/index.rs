//! The RTIndeX index structure (RX).
//!
//! An [`RtIndex`] is a secondary index over a GPU-resident column of `u64`
//! keys. Building it converts every key into a scene primitive whose position
//! in the primitive buffer equals the key's rowID, then builds (and usually
//! compacts) a BVH over the scene. Point and range lookups are answered by
//! launching one raytracing pipeline thread per lookup; the any-hit program
//! records the rowIDs of all intersected primitives.
//!
//! The evaluation methodology of the paper is built in: a lookup can
//! optionally be combined with a fetch from a value column of the same
//! length, and the per-lookup sum of fetched values is returned, simulating
//! the typical use of a secondary index.

use gpu_device::{Device, DeviceBuffer};
use optix_sim::{
    launch, AccelBuildOptions, AnyHitControl, BuildInput, GeometryAccel, LaunchMetrics,
    PrimitiveKind, ProgramSet, Tracer,
};
use rtx_bvh::AabbSet;
use rtx_math::Aabb;

use crate::config::RtIndexConfig;
use crate::error::RtIndexError;
use crate::key_mode::KeyMode;
use crate::ray_strategy::{point_lookup_ray, range_lookup_rays};

// The result types are shared by every backend and live in `rtx-query`,
// the single canonical path (the historical `rtindex_core::{MISS, ...}`
// re-exports are gone).
use rtx_query::{BatchOutcome, LookupResult, MISS};

/// The RTIndeX secondary index.
#[derive(Debug)]
pub struct RtIndex {
    config: RtIndexConfig,
    device: Device,
    gas: GeometryAccel,
    /// Device copy of the indexed key column (kept for updates/rebuilds and
    /// for footprint accounting, like the key array of the paper's setup).
    keys: DeviceBuffer<u64>,
    key_count: usize,
}

impl RtIndex {
    /// Builds an index over `keys` on `device` using `config`.
    ///
    /// The position of each key in the slice is its rowID.
    pub fn build(
        device: &Device,
        keys: &[u64],
        config: RtIndexConfig,
    ) -> Result<Self, RtIndexError> {
        Self::validate_build(&config, keys)?;

        let keys_buffer = device.upload(keys);
        let input = Self::build_input(&config, keys);
        let gas = GeometryAccel::build(device, input, &Self::accel_options(&config));

        Ok(RtIndex {
            config,
            device: device.clone(),
            gas,
            keys: keys_buffer,
            key_count: keys.len(),
        })
    }

    /// The build-time validity checks, shared by [`RtIndex::build`] and
    /// [`RtIndex::build_async`] — the async path relies on them having run
    /// on the calling thread so the background build cannot fail.
    fn validate_build(config: &RtIndexConfig, keys: &[u64]) -> Result<(), RtIndexError> {
        if !config.key_mode.supports_primitive(config.primitive) {
            return Err(RtIndexError::UnsupportedPrimitive {
                mode: config.key_mode,
                primitive: config.primitive,
            });
        }
        let max_key = config.key_mode.max_key();
        if let Some(&bad) = keys.iter().find(|&&k| k > max_key) {
            return Err(RtIndexError::KeyOutOfRange {
                key: bad,
                mode: config.key_mode,
                max_key,
            });
        }
        Ok(())
    }

    fn accel_options(config: &RtIndexConfig) -> AccelBuildOptions {
        AccelBuildOptions {
            allow_update: config.allow_update,
            compact: config.compact,
            max_leaf_size: config.max_leaf_size,
            builder: config.builder,
            ..AccelBuildOptions::default()
        }
    }

    /// Starts building an index on a background thread and returns a handle
    /// to claim it with. The build runs through the same staged pipeline as
    /// [`RtIndex::build`] (keys are validated up front, on the calling
    /// thread), so the caller can keep serving lookups from an existing
    /// index while the replacement is constructed — the mechanism behind
    /// `rtx-delta`'s background compaction.
    pub fn build_async(
        device: &Device,
        keys: Vec<u64>,
        config: RtIndexConfig,
    ) -> Result<PendingIndexBuild, RtIndexError> {
        Self::validate_build(&config, &keys)?;
        let device = device.clone();
        Ok(PendingIndexBuild {
            handle: std::thread::Builder::new()
                .name("rtx-index-build".to_string())
                .spawn(move || {
                    RtIndex::build(&device, &keys, config)
                        .expect("keys validated before the background build")
                })
                .expect("spawn index build thread"),
        })
    }

    /// Converts a key column into the build input of the configured
    /// primitive kind and key mode.
    fn build_input(config: &RtIndexConfig, keys: &[u64]) -> BuildInput {
        let mode = &config.key_mode;
        let centers = mode.centers(keys);
        match config.primitive {
            PrimitiveKind::Triangle => {
                if matches!(mode, KeyMode::Extended) {
                    let halves = mode.half_extent_list(keys);
                    BuildInput::triangles_from_centers_anisotropic(&centers, &halves)
                } else {
                    BuildInput::triangles_from_centers(&centers, crate::key_mode::KEY_HALF_EXTENT)
                }
            }
            PrimitiveKind::Sphere => BuildInput::spheres_from_centers(&centers),
            PrimitiveKind::Aabb => {
                if matches!(mode, KeyMode::Extended) {
                    let halves = mode.half_extent_list(keys);
                    BuildInput::Aabbs(AabbSet::new(
                        centers
                            .iter()
                            .zip(halves.iter())
                            .map(|(c, h)| Aabb::new(*c - *h, *c + *h))
                            .collect(),
                    ))
                } else {
                    BuildInput::aabbs_from_centers(&centers, crate::key_mode::KEY_HALF_EXTENT)
                }
            }
        }
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> &RtIndexConfig {
        &self.config
    }

    /// The device the index lives on.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Number of indexed keys.
    pub fn key_count(&self) -> usize {
        self.key_count
    }

    /// The indexed key column (device copy).
    pub fn keys(&self) -> &[u64] {
        self.keys.as_slice()
    }

    /// The underlying acceleration structure.
    pub fn accel(&self) -> &GeometryAccel {
        &self.gas
    }

    /// Device memory occupied by the index structure itself (primitive
    /// buffer + BVH), excluding the original key column.
    pub fn index_memory_bytes(&self) -> u64 {
        self.gas.memory_bytes()
    }

    /// Device memory occupied including the key column the index was built
    /// from.
    pub fn total_memory_bytes(&self) -> u64 {
        self.gas.memory_bytes() + self.keys.size_bytes()
    }

    /// Build metrics of the most recent build or update.
    pub fn build_metrics(&self) -> &optix_sim::BuildMetrics {
        self.gas.metrics()
    }

    fn check_values(&self, values: Option<&[u64]>) -> Result<(), RtIndexError> {
        if let Some(v) = values {
            if v.len() != self.key_count {
                return Err(RtIndexError::ValueColumnLengthMismatch {
                    expected: self.key_count,
                    actual: v.len(),
                });
            }
        }
        Ok(())
    }

    fn check_live_mask(&self, live: Option<&[bool]>) -> Result<(), RtIndexError> {
        if let Some(mask) = live {
            if mask.len() != self.key_count {
                return Err(RtIndexError::LiveMaskLengthMismatch {
                    expected: self.key_count,
                    actual: mask.len(),
                });
            }
        }
        Ok(())
    }

    /// Answers a batch of point lookups.
    ///
    /// Every query key is looked up with one pipeline thread. When `values`
    /// is supplied (one value per rowID), the values of all qualifying rows
    /// are fetched and summed per lookup, mirroring the paper's secondary-
    /// index methodology.
    pub fn point_lookup_batch(
        &self,
        queries: &[u64],
        values: Option<&[u64]>,
    ) -> Result<BatchOutcome, RtIndexError> {
        self.point_lookup_batch_masked(queries, values, None)
    }

    /// Answers a batch of point lookups against a *masked* view of the
    /// index: rowIDs whose entry in `live` is `false` are discarded by the
    /// any-hit program before they reach the result, as if a validity bitmap
    /// resided next to the primitive buffer.
    ///
    /// This is the reconciliation hook used by the dynamic-update layer
    /// (`rtx-delta`): deletes tombstone base rows by clearing their bit
    /// instead of rebuilding the BVH. `live.len()` must equal
    /// [`RtIndex::key_count`].
    pub fn point_lookup_batch_masked(
        &self,
        queries: &[u64],
        values: Option<&[u64]>,
        live: Option<&[bool]>,
    ) -> Result<BatchOutcome, RtIndexError> {
        self.check_values(values)?;
        self.check_live_mask(live)?;
        let program = PointLookupProgram {
            index: self,
            queries,
            values,
            live,
        };
        let mut results = vec![LookupResult::default(); queries.len()];
        let metrics = launch(
            &self.device,
            &self.gas,
            &program,
            queries.len(),
            self.lookup_working_set_bytes(values) + mask_bytes(live),
            &mut results,
        );
        Ok(BatchOutcome { results, metrics })
    }

    /// Answers a batch of inclusive range lookups `[lower, upper]`.
    pub fn range_lookup_batch(
        &self,
        ranges: &[(u64, u64)],
        values: Option<&[u64]>,
    ) -> Result<BatchOutcome, RtIndexError> {
        self.range_lookup_batch_masked(ranges, values, None)
    }

    /// Answers a batch of inclusive range lookups against a masked view of
    /// the index (see [`RtIndex::point_lookup_batch_masked`]).
    pub fn range_lookup_batch_masked(
        &self,
        ranges: &[(u64, u64)],
        values: Option<&[u64]>,
        live: Option<&[bool]>,
    ) -> Result<BatchOutcome, RtIndexError> {
        self.check_values(values)?;
        self.check_live_mask(live)?;
        // Validate ranges up front so errors surface deterministically
        // instead of inside worker threads.
        for &(l, u) in ranges {
            range_lookup_rays(&self.config.key_mode, self.config.range_ray, l, u)?;
        }
        let program = RangeLookupProgram {
            index: self,
            ranges,
            values,
            live,
        };
        let mut results = vec![LookupResult::default(); ranges.len()];
        let metrics = launch(
            &self.device,
            &self.gas,
            &program,
            ranges.len(),
            self.lookup_working_set_bytes(values) + mask_bytes(live),
            &mut results,
        );
        Ok(BatchOutcome { results, metrics })
    }

    /// Collects the *individual* qualifying rowIDs of each query key, in
    /// ascending order, instead of aggregating them.
    ///
    /// This is the second reconciliation hook of the dynamic-update layer:
    /// a delete is answered by rays (exactly like a lookup), and the
    /// returned rowIDs are the entries to tombstone. Rows masked dead by
    /// `live` are omitted, so repeated deletes of the same key are
    /// idempotent.
    pub fn collect_point_rows(
        &self,
        queries: &[u64],
        live: Option<&[bool]>,
    ) -> Result<(Vec<Vec<u32>>, LaunchMetrics), RtIndexError> {
        self.check_live_mask(live)?;
        let program = RowCollectProgram {
            index: self,
            queries,
            live,
        };
        let mut rows: Vec<Vec<u32>> = vec![Vec::new(); queries.len()];
        let metrics = launch(
            &self.device,
            &self.gas,
            &program,
            queries.len(),
            mask_bytes(live),
            &mut rows,
        );
        Ok((rows, metrics))
    }

    /// Bytes of device data a lookup batch touches besides the acceleration
    /// structure (the value column, when supplied).
    fn lookup_working_set_bytes(&self, values: Option<&[u64]>) -> u64 {
        values.map(|v| (v.len() * 8) as u64).unwrap_or(0)
    }

    /// Applies an update by refitting the existing BVH to a new key buffer of
    /// identical length (OptiX update semantics: no keys may be added or
    /// removed, only changed).
    ///
    /// Requires the index to have been built with
    /// [`RtIndexConfig::updatable`]. The paper finds this path degrades
    /// lookup performance when keys move far and recommends
    /// [`RtIndex::rebuild`] instead; both are provided so the trade-off can
    /// be measured.
    pub fn update_keys(&mut self, new_keys: &[u64]) -> Result<(), RtIndexError> {
        if !self.config.allow_update {
            return Err(RtIndexError::UpdatesNotEnabled);
        }
        if new_keys.len() != self.key_count {
            return Err(RtIndexError::KeyCountChanged {
                expected: self.key_count,
                actual: new_keys.len(),
            });
        }
        let max_key = self.config.key_mode.max_key();
        if let Some(&bad) = new_keys.iter().find(|&&k| k > max_key) {
            return Err(RtIndexError::KeyOutOfRange {
                key: bad,
                mode: self.config.key_mode,
                max_key,
            });
        }
        let input = Self::build_input(&self.config, new_keys);
        self.gas
            .update(&self.device, input)
            .map_err(|_| RtIndexError::UpdatesNotEnabled)?;
        self.keys = self.device.upload(new_keys);
        Ok(())
    }

    /// Rebuilds the index from scratch over a new key column (which may have
    /// a different length). This is the update strategy the paper selects.
    /// The rebuild runs through the staged parallel pipeline (see
    /// [`RtIndex::build`]); use [`RtIndex::build_async`] to rebuild without
    /// blocking the serving thread.
    pub fn rebuild(&mut self, new_keys: &[u64]) -> Result<(), RtIndexError> {
        let rebuilt = RtIndex::build(&self.device, new_keys, self.config)?;
        *self = rebuilt;
        Ok(())
    }
}

/// An [`RtIndex`] build running on a background thread, created by
/// [`RtIndex::build_async`].
#[derive(Debug)]
pub struct PendingIndexBuild {
    handle: std::thread::JoinHandle<RtIndex>,
}

impl PendingIndexBuild {
    /// True once the background build has completed and
    /// [`wait`](PendingIndexBuild::wait) would return without blocking.
    pub fn is_finished(&self) -> bool {
        self.handle.is_finished()
    }

    /// Blocks until the build completes and returns the index.
    pub fn wait(self) -> RtIndex {
        self.handle.join().expect("index build thread panicked")
    }
}

/// Payload of the lookup programs: collects qualifying rowIDs.
#[derive(Default)]
struct HitCollector {
    rows: Vec<u32>,
}

/// Bytes of the validity bitmap a masked lookup touches (one bit per row,
/// modelled at byte granularity).
fn mask_bytes(live: Option<&[bool]>) -> u64 {
    live.map(|m| m.len().div_ceil(8) as u64).unwrap_or(0)
}

/// Ray-generation + any-hit programs for point lookups.
struct PointLookupProgram<'a> {
    index: &'a RtIndex,
    queries: &'a [u64],
    values: Option<&'a [u64]>,
    live: Option<&'a [bool]>,
}

impl ProgramSet for PointLookupProgram<'_> {
    type Payload = HitCollector;
    type Output = LookupResult;

    fn ray_gen(&self, idx: usize, tracer: &mut Tracer<'_, Self>) -> LookupResult {
        let key = self.queries[idx];
        let mode = &self.index.config.key_mode;
        // Keys outside the representable range can never have been inserted:
        // report a miss without tracing (mirrors a bounds check in the real
        // ray-generation program).
        if !mode.supports_key(key) {
            tracer.add_instructions(2);
            return LookupResult {
                first_row: MISS,
                hit_count: 0,
                value_sum: 0,
            };
        }
        let ray = point_lookup_ray(mode, self.index.config.point_ray, key);
        let mut payload = HitCollector::default();
        tracer.trace(&ray, &mut payload);
        finalize_result(payload.rows, self.values, self.live, tracer)
    }

    fn any_hit(&self, payload: &mut HitCollector, prim: u32, _t: f32) -> AnyHitControl {
        payload.rows.push(prim);
        AnyHitControl::Continue
    }
}

/// Ray-generation + any-hit programs for range lookups.
struct RangeLookupProgram<'a> {
    index: &'a RtIndex,
    ranges: &'a [(u64, u64)],
    values: Option<&'a [u64]>,
    live: Option<&'a [bool]>,
}

impl ProgramSet for RangeLookupProgram<'_> {
    type Payload = HitCollector;
    type Output = LookupResult;

    fn ray_gen(&self, idx: usize, tracer: &mut Tracer<'_, Self>) -> LookupResult {
        let (lower, upper) = self.ranges[idx];
        let config = &self.index.config;
        let rays = match range_lookup_rays(&config.key_mode, config.range_ray, lower, upper) {
            Ok(rays) => rays,
            // Ranges were validated before the launch; a failure here would
            // be a logic error, but misses are the safe degradation.
            Err(_) => {
                return LookupResult {
                    first_row: MISS,
                    hit_count: 0,
                    value_sum: 0,
                }
            }
        };
        let mut payload = HitCollector::default();
        for ray in &rays {
            tracer.trace(ray, &mut payload);
        }
        finalize_result(payload.rows, self.values, self.live, tracer)
    }

    fn any_hit(&self, payload: &mut HitCollector, prim: u32, _t: f32) -> AnyHitControl {
        payload.rows.push(prim);
        AnyHitControl::Continue
    }
}

/// Ray-generation + any-hit programs collecting raw rowIDs per query.
struct RowCollectProgram<'a> {
    index: &'a RtIndex,
    queries: &'a [u64],
    live: Option<&'a [bool]>,
}

impl ProgramSet for RowCollectProgram<'_> {
    type Payload = HitCollector;
    type Output = Vec<u32>;

    fn ray_gen(&self, idx: usize, tracer: &mut Tracer<'_, Self>) -> Vec<u32> {
        let key = self.queries[idx];
        let mode = &self.index.config.key_mode;
        if !mode.supports_key(key) {
            tracer.add_instructions(2);
            return Vec::new();
        }
        let ray = point_lookup_ray(mode, self.index.config.point_ray, key);
        let mut payload = HitCollector::default();
        tracer.trace(&ray, &mut payload);
        let mut rows = filter_live(payload.rows, self.live, tracer);
        rows.sort_unstable();
        rows
    }

    fn any_hit(&self, payload: &mut HitCollector, prim: u32, _t: f32) -> AnyHitControl {
        payload.rows.push(prim);
        AnyHitControl::Continue
    }
}

/// Drops rowIDs whose validity bit is cleared, charging one bitmap byte per
/// inspected row (512 rows share a 64-byte cache line, so neighbouring hits
/// become cache hits).
fn filter_live<PS: ProgramSet + ?Sized>(
    rows: Vec<u32>,
    live: Option<&[bool]>,
    tracer: &mut Tracer<'_, PS>,
) -> Vec<u32> {
    match live {
        None => rows,
        Some(mask) => {
            let mut kept = Vec::with_capacity(rows.len());
            for row in rows {
                tracer.read_buffer((1 << 62) | (row as u64 / 512), 1);
                if mask[row as usize] {
                    kept.push(row);
                }
            }
            kept
        }
    }
}

/// Turns collected rowIDs into a [`LookupResult`], masking tombstoned rows
/// and fetching and summing the projected values when a value column is
/// present.
fn finalize_result<PS: ProgramSet + ?Sized>(
    rows: Vec<u32>,
    values: Option<&[u64]>,
    live: Option<&[bool]>,
    tracer: &mut Tracer<'_, PS>,
) -> LookupResult {
    let rows = filter_live(rows, live, tracer);
    if rows.is_empty() {
        return LookupResult {
            first_row: MISS,
            hit_count: 0,
            value_sum: 0,
        };
    }
    let mut sum = 0u64;
    if let Some(values) = values {
        for &row in &rows {
            // One cache line holds eight u64 values; neighbouring rowIDs
            // share it, which the access classifier turns into cache hits.
            tracer.read_buffer(row as u64 / 8, 8);
            sum = sum.wrapping_add(values[row as usize]);
        }
    }
    LookupResult {
        first_row: *rows.iter().min().expect("non-empty"),
        hit_count: rows.len() as u32,
        value_sum: sum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ray_strategy::{PointRayStrategy, RangeRayStrategy};

    fn device() -> Device {
        Device::default_eval()
    }

    /// A small shuffled dense key set: keys 0..n in a deterministic
    /// pseudo-random order (rowID i holds key (i * 37 + 11) % n for prime n).
    fn shuffled_keys(n: u64) -> Vec<u64> {
        (0..n).map(|i| (i * 37 + 11) % n).collect()
    }

    #[test]
    fn build_and_point_lookup_round_trip() {
        let dev = device();
        let keys = shuffled_keys(997);
        let index = RtIndex::build(&dev, &keys, RtIndexConfig::default()).expect("build");
        assert_eq!(index.key_count(), 997);

        let queries: Vec<u64> = (0..997).collect();
        let outcome = index.point_lookup_batch(&queries, None).expect("lookup");
        assert_eq!(outcome.results.len(), 997);
        assert_eq!(outcome.hit_count(), 997);
        for (q, r) in queries.iter().zip(&outcome.results) {
            assert_eq!(r.hit_count, 1, "key {q} must have exactly one match");
            assert_eq!(
                keys[r.first_row as usize], *q,
                "rowID must point back at the key"
            );
        }
    }

    #[test]
    fn misses_report_reserved_value() {
        let dev = device();
        let keys: Vec<u64> = (0..100).map(|i| i * 2).collect(); // even keys only
        let index = RtIndex::build(&dev, &keys, RtIndexConfig::default()).expect("build");
        let queries: Vec<u64> = vec![1, 3, 5, 201, 1_000_000];
        let outcome = index.point_lookup_batch(&queries, None).expect("lookup");
        for r in &outcome.results {
            assert_eq!(r.first_row, MISS);
            assert!(!r.is_hit());
        }
        assert_eq!(outcome.hit_count(), 0);
    }

    #[test]
    fn value_aggregation_matches_ground_truth() {
        let dev = device();
        let keys = shuffled_keys(500);
        let values: Vec<u64> = (0..500u64).map(|i| i * 10).collect();
        let index = RtIndex::build(&dev, &keys, RtIndexConfig::default()).expect("build");
        let queries: Vec<u64> = (0..500).collect();
        let outcome = index
            .point_lookup_batch(&queries, Some(&values))
            .expect("lookup");
        // Ground truth: for each query key, find its rowID and take the value.
        let mut expected_total = 0u64;
        for q in &queries {
            let row = keys.iter().position(|k| k == q).unwrap();
            expected_total += values[row];
        }
        assert_eq!(outcome.total_value_sum(), expected_total);
    }

    #[test]
    fn duplicate_keys_return_all_rows() {
        let dev = device();
        // Every key appears 4 times.
        let keys: Vec<u64> = (0..64u64).flat_map(|k| std::iter::repeat_n(k, 4)).collect();
        let values: Vec<u64> = vec![1; keys.len()];
        let index = RtIndex::build(&dev, &keys, RtIndexConfig::default()).expect("build");
        let outcome = index
            .point_lookup_batch(&[7, 13], Some(&values))
            .expect("lookup");
        for r in &outcome.results {
            assert_eq!(r.hit_count, 4);
            assert_eq!(r.value_sum, 4);
        }
    }

    #[test]
    fn range_lookups_return_qualifying_counts() {
        let dev = device();
        let keys = shuffled_keys(1024);
        let values: Vec<u64> = vec![1; 1024];
        let index = RtIndex::build(&dev, &keys, RtIndexConfig::default()).expect("build");
        let ranges = vec![(0u64, 0u64), (10, 19), (1000, 1023), (2000, 3000)];
        let outcome = index
            .range_lookup_batch(&ranges, Some(&values))
            .expect("lookup");
        assert_eq!(outcome.results[0].hit_count, 1);
        assert_eq!(outcome.results[1].hit_count, 10);
        assert_eq!(outcome.results[1].value_sum, 10);
        assert_eq!(outcome.results[2].hit_count, 24);
        assert_eq!(
            outcome.results[3].hit_count, 0,
            "range beyond the key domain misses"
        );
        assert_eq!(outcome.results[3].first_row, MISS);
    }

    #[test]
    fn all_key_modes_answer_lookups_identically() {
        let dev = device();
        let keys = shuffled_keys(512);
        let queries: Vec<u64> = (0..700).collect(); // includes misses >= 512
        let mut reference: Option<Vec<bool>> = None;
        for mode in KeyMode::all() {
            let config = RtIndexConfig::default().with_key_mode(mode);
            let index = RtIndex::build(&dev, &keys, config).expect("build");
            let outcome = index.point_lookup_batch(&queries, None).expect("lookup");
            let hits: Vec<bool> = outcome.results.iter().map(|r| r.is_hit()).collect();
            match &reference {
                None => reference = Some(hits),
                Some(expected) => assert_eq!(&hits, expected, "mode {} differs", mode.name()),
            }
        }
    }

    #[test]
    fn all_primitive_kinds_answer_lookups_identically() {
        let dev = device();
        let keys = shuffled_keys(256);
        let queries: Vec<u64> = (0..300).collect();
        for primitive in PrimitiveKind::all() {
            let config = RtIndexConfig::default().with_primitive(primitive);
            let index = RtIndex::build(&dev, &keys, config).expect("build");
            let outcome = index.point_lookup_batch(&queries, None).expect("lookup");
            for (q, r) in queries.iter().zip(&outcome.results) {
                assert_eq!(r.is_hit(), *q < 256, "primitive {:?}, key {q}", primitive);
            }
        }
    }

    #[test]
    fn all_ray_strategies_agree() {
        let dev = device();
        let keys = shuffled_keys(256);
        let queries: Vec<u64> = (0..256).collect();
        for strategy in [
            PointRayStrategy::Perpendicular,
            PointRayStrategy::ParallelFromOffset,
            PointRayStrategy::ParallelFromZero,
        ] {
            let config = RtIndexConfig::default().with_point_ray(strategy);
            let index = RtIndex::build(&dev, &keys, config).expect("build");
            let outcome = index.point_lookup_batch(&queries, None).expect("lookup");
            assert_eq!(outcome.hit_count(), 256, "strategy {:?}", strategy);
        }
        for strategy in [
            RangeRayStrategy::ParallelFromOffset,
            RangeRayStrategy::ParallelFromZero,
        ] {
            let config = RtIndexConfig::default().with_range_ray(strategy);
            let index = RtIndex::build(&dev, &keys, config).expect("build");
            let outcome = index
                .range_lookup_batch(&[(64, 127)], None)
                .expect("lookup");
            assert_eq!(outcome.results[0].hit_count, 64, "strategy {:?}", strategy);
        }
    }

    #[test]
    fn sixty_four_bit_keys_work_in_3d_mode() {
        let dev = device();
        let keys: Vec<u64> = vec![
            0,
            u32::MAX as u64,
            1 << 40,
            (1 << 45) + 17,
            u64::MAX - 1,
            u64::MAX,
        ];
        let index = RtIndex::build(&dev, &keys, RtIndexConfig::default()).expect("build");
        let outcome = index.point_lookup_batch(&keys, None).expect("lookup");
        for (i, r) in outcome.results.iter().enumerate() {
            assert!(r.is_hit(), "64-bit key #{i} must be found");
            assert_eq!(keys[r.first_row as usize], keys[i]);
        }
        // A nearby key that was never inserted must miss.
        let miss = index
            .point_lookup_batch(&[(1 << 40) + 1], None)
            .expect("lookup");
        assert!(!miss.results[0].is_hit());
    }

    #[test]
    fn key_out_of_range_is_rejected_at_build() {
        let dev = device();
        let err = RtIndex::build(
            &dev,
            &[1 << 24],
            RtIndexConfig::default().with_key_mode(KeyMode::Naive),
        )
        .unwrap_err();
        assert!(matches!(err, RtIndexError::KeyOutOfRange { .. }));
    }

    #[test]
    fn unsupported_primitive_is_rejected_at_build() {
        let dev = device();
        let err = RtIndex::build(
            &dev,
            &[1, 2, 3],
            RtIndexConfig::default()
                .with_key_mode(KeyMode::Extended)
                .with_primitive(PrimitiveKind::Sphere),
        )
        .unwrap_err();
        assert!(matches!(err, RtIndexError::UnsupportedPrimitive { .. }));
    }

    #[test]
    fn value_column_length_is_validated() {
        let dev = device();
        let index = RtIndex::build(&dev, &[1, 2, 3], RtIndexConfig::default()).expect("build");
        let err = index.point_lookup_batch(&[1], Some(&[10, 20])).unwrap_err();
        assert!(matches!(
            err,
            RtIndexError::ValueColumnLengthMismatch {
                expected: 3,
                actual: 2
            }
        ));
    }

    #[test]
    fn updates_require_updatable_config_and_equal_length() {
        let dev = device();
        let keys = shuffled_keys(64);
        let mut read_only = RtIndex::build(&dev, &keys, RtIndexConfig::default()).expect("build");
        assert!(matches!(
            read_only.update_keys(&keys),
            Err(RtIndexError::UpdatesNotEnabled)
        ));

        let mut updatable =
            RtIndex::build(&dev, &keys, RtIndexConfig::default().updatable()).expect("build");
        assert!(matches!(
            updatable.update_keys(&keys[..32]),
            Err(RtIndexError::KeyCountChanged {
                expected: 64,
                actual: 32
            })
        ));

        // Swap two keys and update: lookups must see the new mapping.
        let mut new_keys = keys.clone();
        new_keys.swap(0, 1);
        updatable.update_keys(&new_keys).expect("update");
        let outcome = updatable
            .point_lookup_batch(&[new_keys[0]], None)
            .expect("lookup");
        assert_eq!(outcome.results[0].first_row, 0);
        assert_eq!(updatable.keys()[0], new_keys[0]);
    }

    #[test]
    fn async_build_answers_like_the_synchronous_build() {
        let dev = device();
        let keys = shuffled_keys(256);
        let pending = RtIndex::build_async(&dev, keys.clone(), RtIndexConfig::default())
            .expect("valid keys start the build");
        let sync = RtIndex::build(&dev, &keys, RtIndexConfig::default()).expect("build");
        let index = pending.wait();
        let queries: Vec<u64> = (0..300).collect();
        let a = index.point_lookup_batch(&queries, None).expect("lookup");
        let b = sync.point_lookup_batch(&queries, None).expect("lookup");
        assert_eq!(a.results, b.results);

        // Invalid keys are rejected up front, before any thread spawns.
        let err = RtIndex::build_async(
            &dev,
            vec![u64::MAX],
            RtIndexConfig::default().with_key_mode(crate::KeyMode::Naive),
        )
        .map(|_| ())
        .expect_err("out-of-range key");
        assert!(matches!(err, RtIndexError::KeyOutOfRange { .. }));
    }

    #[test]
    fn rebuild_replaces_the_key_set() {
        let dev = device();
        let mut index =
            RtIndex::build(&dev, &shuffled_keys(64), RtIndexConfig::default()).expect("build");
        let new_keys: Vec<u64> = (1000..1100).collect();
        index.rebuild(&new_keys).expect("rebuild");
        assert_eq!(index.key_count(), 100);
        let outcome = index
            .point_lookup_batch(&[1000, 1099, 50], None)
            .expect("lookup");
        assert!(outcome.results[0].is_hit());
        assert!(outcome.results[1].is_hit());
        assert!(!outcome.results[2].is_hit());
    }

    #[test]
    fn memory_accounting_is_exposed() {
        let dev = device();
        let index =
            RtIndex::build(&dev, &shuffled_keys(4096), RtIndexConfig::default()).expect("build");
        assert!(index.index_memory_bytes() > 0);
        assert!(index.total_memory_bytes() > index.index_memory_bytes());
        assert!(index.build_metrics().simulated_time_s > 0.0);
        // Triangle primitive buffer alone is 36 bytes per key.
        assert!(index.index_memory_bytes() >= 4096 * 36);
    }

    #[test]
    fn masked_lookups_hide_tombstoned_rows() {
        let dev = device();
        let keys = shuffled_keys(256);
        let values: Vec<u64> = (0..256u64).map(|i| i + 1).collect();
        let index = RtIndex::build(&dev, &keys, RtIndexConfig::default()).expect("build");

        // Tombstone every even rowID.
        let live: Vec<bool> = (0..256).map(|row| row % 2 == 1).collect();
        let queries: Vec<u64> = (0..256).collect();
        let out = index
            .point_lookup_batch_masked(&queries, Some(&values), Some(&live))
            .expect("lookup");
        for (q, r) in queries.iter().zip(&out.results) {
            let row = keys.iter().position(|k| k == q).unwrap();
            if row % 2 == 1 {
                assert_eq!(r.first_row as usize, row);
                assert_eq!(r.value_sum, values[row]);
            } else {
                assert_eq!(r.first_row, MISS, "tombstoned key {q} must miss");
                assert_eq!(r.value_sum, 0);
            }
        }
        assert_eq!(out.hit_count(), 128);

        // Range lookups see only the live half as well.
        let ranges = index
            .range_lookup_batch_masked(&[(0, 255)], Some(&values), Some(&live))
            .expect("range");
        assert_eq!(ranges.results[0].hit_count, 128);

        // An all-live mask behaves like no mask at all.
        let all_live = vec![true; 256];
        let unmasked = index
            .point_lookup_batch(&queries, Some(&values))
            .expect("lookup");
        let masked = index
            .point_lookup_batch_masked(&queries, Some(&values), Some(&all_live))
            .expect("lookup");
        assert_eq!(unmasked.results, masked.results);
    }

    #[test]
    fn masked_lookup_validates_mask_length() {
        let dev = device();
        let index = RtIndex::build(&dev, &[1, 2, 3], RtIndexConfig::default()).expect("build");
        let err = index
            .point_lookup_batch_masked(&[1], None, Some(&[true]))
            .unwrap_err();
        assert!(matches!(
            err,
            RtIndexError::LiveMaskLengthMismatch {
                expected: 3,
                actual: 1
            }
        ));
        let err = index
            .range_lookup_batch_masked(&[(0, 1)], None, Some(&[true]))
            .unwrap_err();
        assert!(matches!(err, RtIndexError::LiveMaskLengthMismatch { .. }));
        let err = index.collect_point_rows(&[1], Some(&[true])).unwrap_err();
        assert!(matches!(err, RtIndexError::LiveMaskLengthMismatch { .. }));
    }

    #[test]
    fn collect_point_rows_returns_sorted_live_rows() {
        let dev = device();
        // Every key appears 4 times.
        let keys: Vec<u64> = (0..32u64).flat_map(|k| std::iter::repeat_n(k, 4)).collect();
        let index = RtIndex::build(&dev, &keys, RtIndexConfig::default()).expect("build");

        let (rows, metrics) = index.collect_point_rows(&[7, 500], None).expect("collect");
        let expected: Vec<u32> = keys
            .iter()
            .enumerate()
            .filter(|(_, &k)| k == 7)
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(rows[0], expected);
        assert!(rows[1].is_empty(), "absent key collects no rows");
        assert_eq!(metrics.kernel.threads_launched, 2);

        // Masked rows are omitted (delete idempotence).
        let mut live = vec![true; keys.len()];
        live[expected[0] as usize] = false;
        live[expected[2] as usize] = false;
        let (rows, _) = index
            .collect_point_rows(&[7], Some(&live))
            .expect("collect");
        assert_eq!(rows[0], vec![expected[1], expected[3]]);
    }

    #[test]
    fn empty_index_reports_only_misses() {
        let dev = device();
        let index = RtIndex::build(&dev, &[], RtIndexConfig::default()).expect("build");
        assert_eq!(index.key_count(), 0);
        let outcome = index.point_lookup_batch(&[1, 2, 3], None).expect("lookup");
        assert_eq!(outcome.hit_count(), 0);
        let ranges = index.range_lookup_batch(&[(0, 100)], None).expect("lookup");
        assert_eq!(ranges.results[0].hit_count, 0);
    }
}
