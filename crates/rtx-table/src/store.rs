//! The SoA row store a table owns.
//!
//! Rows live in structure-of-arrays form: one slot-indexed `u64` array per
//! schema column. A row's *slot is its table rowID* — the store never
//! renumbers, so rowIDs follow the global scheme of the dynamic backends:
//! a bulk load of `n` records occupies rowIDs `0..n`, every later insert
//! takes the next fresh rowID, and deletes leave dead slots behind.
//! Secondary-index `first_row` answers translate into this space and stay
//! comparable across every index of the table.
//!
//! The store keeps its own hash over the primary column (deletes and
//! upserts key on it), so CDC deletes resolve without scanning.

use std::collections::HashMap;

use rtx_query::{IndexError, LookupResult, QueryOp};

/// Slot-is-rowID SoA row storage (see the [module docs](self)).
#[derive(Debug, Clone, Default)]
pub struct RowStore {
    /// One slot-indexed array per schema column.
    columns: Vec<Vec<u64>>,
    /// Liveness per slot (`false` = deleted).
    live: Vec<bool>,
    live_count: usize,
    /// Primary-column key → live slots holding it, ascending.
    primary: HashMap<u64, Vec<u32>>,
}

impl RowStore {
    /// An empty store with `num_columns` columns.
    pub fn new(num_columns: usize) -> Self {
        RowStore {
            columns: vec![Vec::new(); num_columns],
            live: Vec::new(),
            live_count: 0,
            primary: HashMap::new(),
        }
    }

    /// Number of schema columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Number of live rows.
    pub fn live_count(&self) -> usize {
        self.live_count
    }

    /// Number of slots ever allocated (live + dead).
    pub fn slot_count(&self) -> usize {
        self.live.len()
    }

    /// Appends a record, returning its rowID. The record must hold exactly
    /// one value per column; the rowID space is bounded by the `u32` rowID
    /// encoding of [`LookupResult`] (the top value is the `MISS` marker).
    pub fn insert(&mut self, record: &[u64]) -> Result<u32, IndexError> {
        if record.len() != self.columns.len() {
            return Err(IndexError::Backend {
                backend: "table".to_string().into(),
                message: format!(
                    "record holds {} values but the table has {} columns",
                    record.len(),
                    self.columns.len()
                ),
            });
        }
        let slot = self.live.len();
        if slot >= rtx_query::MISS as usize {
            return Err(IndexError::CapacityOverflow {
                backend: "table".to_string().into(),
                keys: slot + 1,
                limit: rtx_query::MISS as u64,
            });
        }
        for (column, &value) in self.columns.iter_mut().zip(record) {
            column.push(value);
        }
        self.live.push(true);
        self.live_count += 1;
        self.primary.entry(record[0]).or_default().push(slot as u32);
        Ok(slot as u32)
    }

    /// Deletes every live row whose primary column holds `key`, returning
    /// their rowIDs (ascending). Absent keys delete nothing.
    pub fn delete_primary(&mut self, key: u64) -> Vec<u32> {
        let slots = self.primary.remove(&key).unwrap_or_default();
        for &slot in &slots {
            debug_assert!(self.live[slot as usize]);
            self.live[slot as usize] = false;
        }
        self.live_count -= slots.len();
        slots
    }

    /// The value of `column` at a live or dead `slot`.
    pub fn value_at(&self, column: usize, slot: u32) -> u64 {
        self.columns[column][slot as usize]
    }

    /// True when `slot` holds a live row.
    pub fn is_live(&self, slot: u32) -> bool {
        self.live[slot as usize]
    }

    /// The live values of `column` with their rowIDs, ascending by rowID —
    /// exactly the build input of a fresh index over that column.
    pub fn column_live(&self, column: usize) -> (Vec<u64>, Vec<u32>) {
        let mut keys = Vec::with_capacity(self.live_count);
        let mut rows = Vec::with_capacity(self.live_count);
        for (slot, &live) in self.live.iter().enumerate() {
            if live {
                keys.push(self.columns[column][slot]);
                rows.push(slot as u32);
            }
        }
        (keys, rows)
    }

    /// The live tuples over the named `columns` with their rowIDs,
    /// ascending by rowID — the build input of a fresh composite index.
    pub fn tuples_live(&self, columns: &[usize]) -> (Vec<Vec<u64>>, Vec<u32>) {
        let mut tuples = Vec::with_capacity(self.live_count);
        let mut rows = Vec::with_capacity(self.live_count);
        for (slot, &live) in self.live.iter().enumerate() {
            if live {
                tuples.push(columns.iter().map(|&c| self.columns[c][slot]).collect());
                rows.push(slot as u32);
            }
        }
        (tuples, rows)
    }

    /// Answers one composite prefix-range predicate by scanning every live
    /// row: the leading `prefix.len()` of `columns` must hold the matching
    /// prefix value, and — when `range` is set — the next column must lie
    /// in the inclusive bounds. The scan fallback for composite predicates
    /// no index can serve.
    pub fn scan_composite(
        &self,
        columns: &[usize],
        prefix: &[u64],
        range: Option<(u64, u64)>,
        value_column: Option<usize>,
        fetch: bool,
    ) -> LookupResult {
        let mut result = LookupResult::miss();
        for (slot, &live) in self.live.iter().enumerate() {
            if !live {
                continue;
            }
            let equal = prefix
                .iter()
                .zip(columns)
                .all(|(&want, &c)| self.columns[c][slot] == want);
            let bounded = match range {
                Some((lower, upper)) => {
                    let key = self.columns[columns[prefix.len()]][slot];
                    lower <= key && key <= upper
                }
                None => true,
            };
            if equal && bounded {
                result.first_row = result.first_row.min(slot as u32);
                result.hit_count += 1;
                if fetch {
                    if let Some(vc) = value_column {
                        result.value_sum = result.value_sum.wrapping_add(self.columns[vc][slot]);
                    }
                }
            }
        }
        result
    }

    /// Answers one compiled predicate by scanning every live row:
    /// `first_row` is the smallest matching rowID, `value_sum` (when
    /// `fetch` is set and a value column exists) the wrapping sum of the
    /// value column over the matches. The planner's fallback route.
    pub fn scan(
        &self,
        column: usize,
        op: QueryOp,
        value_column: Option<usize>,
        fetch: bool,
    ) -> LookupResult {
        let mut result = LookupResult::miss();
        for (slot, &live) in self.live.iter().enumerate() {
            if !live {
                continue;
            }
            let key = self.columns[column][slot];
            let hit = match op {
                QueryOp::Point(query) => key == query,
                QueryOp::Range(lower, upper) => lower <= key && key <= upper,
            };
            if hit {
                result.first_row = result.first_row.min(slot as u32);
                result.hit_count += 1;
                if fetch {
                    if let Some(vc) = value_column {
                        result.value_sum = result.value_sum.wrapping_add(self.columns[vc][slot]);
                    }
                }
            }
        }
        result
    }

    /// Approximate host bytes the store occupies.
    pub fn memory_bytes(&self) -> u64 {
        let slots = self.live.len() as u64;
        slots * (self.columns.len() as u64 * 8 + 1) + self.primary.len() as u64 * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_query::MISS;

    fn store() -> RowStore {
        let mut s = RowStore::new(3);
        for r in [[1u64, 10, 100], [2, 20, 200], [1, 30, 300], [3, 20, 400]] {
            s.insert(&r).unwrap();
        }
        s
    }

    #[test]
    fn slots_are_rowids_and_deletes_leave_holes() {
        let mut s = store();
        assert_eq!((s.live_count(), s.slot_count()), (4, 4));
        // Primary key 1 occupies rowIDs 0 and 2.
        assert_eq!(s.delete_primary(1), vec![0, 2]);
        assert_eq!((s.live_count(), s.slot_count()), (2, 4));
        assert!(!s.is_live(0) && s.is_live(1) && !s.is_live(2));
        // Absent keys delete nothing; re-deleting is a no-op.
        assert!(s.delete_primary(1).is_empty());
        assert!(s.delete_primary(99).is_empty());
        // A reinserted key takes a fresh rowID past the holes.
        assert_eq!(s.insert(&[1, 40, 500]).unwrap(), 4);
        assert_eq!(s.delete_primary(1), vec![4]);
    }

    #[test]
    fn column_live_skips_dead_slots_in_rowid_order() {
        let mut s = store();
        s.delete_primary(2);
        let (keys, rows) = s.column_live(1);
        assert_eq!(keys, vec![10, 30, 20]);
        assert_eq!(rows, vec![0, 2, 3]);
    }

    #[test]
    fn scans_answer_points_ranges_and_value_sums() {
        let mut s = store();
        let point = s.scan(0, QueryOp::Point(1), Some(2), true);
        assert_eq!(
            (point.first_row, point.hit_count, point.value_sum),
            (0, 2, 400)
        );
        let range = s.scan(1, QueryOp::Range(20, 30), Some(2), true);
        assert_eq!(
            (range.first_row, range.hit_count, range.value_sum),
            (1, 3, 900)
        );
        // Misses and fetch-less scans.
        assert_eq!(s.scan(0, QueryOp::Point(9), Some(2), true).first_row, MISS);
        assert_eq!(
            s.scan(1, QueryOp::Range(20, 30), Some(2), false).value_sum,
            0
        );
        // Dead rows stop matching.
        s.delete_primary(2);
        let range = s.scan(1, QueryOp::Range(20, 30), Some(2), true);
        assert_eq!((range.first_row, range.hit_count), (2, 2));
    }

    #[test]
    fn composite_scans_and_tuple_projections() {
        let mut s = store();
        let (tuples, rows) = s.tuples_live(&[0, 1]);
        assert_eq!(
            tuples,
            vec![vec![1, 10], vec![2, 20], vec![1, 30], vec![3, 20]]
        );
        assert_eq!(rows, vec![0, 1, 2, 3]);
        // Prefix equality on the leading column.
        let r = s.scan_composite(&[0, 1], &[1], None, Some(2), true);
        assert_eq!((r.first_row, r.hit_count, r.value_sum), (0, 2, 400));
        // Prefix plus a range on the next column.
        let r = s.scan_composite(&[0, 1], &[1], Some((20, 40)), Some(2), true);
        assert_eq!((r.first_row, r.hit_count, r.value_sum), (2, 1, 300));
        // Full-tuple point.
        let r = s.scan_composite(&[0, 1], &[2, 20], None, None, false);
        assert_eq!((r.first_row, r.hit_count), (1, 1));
        // Empty prefix: a bare range on the leading column.
        let r = s.scan_composite(&[1], &[], Some((20, 30)), Some(2), true);
        assert_eq!((r.hit_count, r.value_sum), (3, 900));
        // Dead rows stop matching and tuples skip them.
        s.delete_primary(1);
        let r = s.scan_composite(&[0, 1], &[1], None, None, false);
        assert_eq!(r.first_row, MISS);
        assert_eq!(s.tuples_live(&[0, 1]).1, vec![1, 3]);
    }

    #[test]
    fn record_arity_is_enforced() {
        let mut s = RowStore::new(2);
        assert!(s.insert(&[1]).is_err());
        assert!(s.insert(&[1, 2, 3]).is_err());
        assert_eq!(s.insert(&[1, 2]).unwrap(), 0);
        assert!(s.memory_bytes() > 0);
    }
}
