//! BVH quality metrics.
//!
//! The paper cannot inspect NVIDIA's proprietary BVH, so it infers quality
//! degradation from cache counters. Our BVH is open, so experiments (and
//! tests) can measure quality directly: the surface-area-heuristic cost of
//! the tree, the average leaf size, and the overlap between sibling volumes.

use rtx_math::Aabb;

use crate::node::Bvh;

/// Summary metrics describing how expensive a BVH is to traverse.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BvhQuality {
    /// Surface-area-heuristic cost: Σ over nodes of
    /// `area(node) / area(root) * (interior ? c_trav : prims * c_isect)`.
    pub sah_cost: f64,
    /// Number of leaves.
    pub leaf_count: usize,
    /// Average primitives per leaf.
    pub avg_leaf_size: f64,
    /// Maximum depth.
    pub depth: usize,
    /// Average fraction of a parent's surface area covered by the overlap of
    /// its two children (0 = disjoint children, 1 = fully overlapping).
    /// Rises sharply after destructive refits.
    pub avg_child_overlap: f64,
}

/// Traversal cost constant for visiting an interior node.
const C_TRAVERSE: f64 = 1.0;
/// Intersection cost constant per primitive in a leaf.
const C_INTERSECT: f64 = 1.5;

impl BvhQuality {
    /// Computes the quality metrics of `bvh`.
    pub fn measure(bvh: &Bvh) -> BvhQuality {
        if bvh.nodes.is_empty() {
            return BvhQuality {
                sah_cost: 0.0,
                leaf_count: 0,
                avg_leaf_size: 0.0,
                depth: 0,
                avg_child_overlap: 0.0,
            };
        }
        let root_area = bvh.root_bounds().surface_area() as f64;
        let norm = if root_area > 0.0 { root_area } else { 1.0 };

        let mut sah_cost = 0.0;
        let mut leaf_count = 0usize;
        let mut leaf_prims = 0usize;
        let mut overlap_sum = 0.0;
        let mut interior_count = 0usize;

        for (idx, node) in bvh.nodes.iter().enumerate() {
            let rel_area = node.bounds.surface_area() as f64 / norm;
            if node.is_leaf() {
                sah_cost += rel_area * node.prim_count as f64 * C_INTERSECT;
                leaf_count += 1;
                leaf_prims += node.prim_count as usize;
            } else {
                sah_cost += rel_area * C_TRAVERSE;
                interior_count += 1;
                let left = &bvh.nodes[idx + 1].bounds;
                let right = &bvh.nodes[node.right_child as usize].bounds;
                let parent_area = node.bounds.surface_area() as f64;
                if parent_area > 0.0 {
                    overlap_sum += overlap_area(left, right) as f64 / parent_area;
                }
            }
        }

        BvhQuality {
            sah_cost,
            leaf_count,
            avg_leaf_size: if leaf_count > 0 {
                leaf_prims as f64 / leaf_count as f64
            } else {
                0.0
            },
            depth: bvh.depth(),
            avg_child_overlap: if interior_count > 0 {
                overlap_sum / interior_count as f64
            } else {
                0.0
            },
        }
    }
}

/// Surface area of the intersection of two boxes (0 when disjoint).
fn overlap_area(a: &Aabb, b: &Aabb) -> f32 {
    let min = a.min.max(b.min);
    let max = a.max.min(b.max);
    let inter = Aabb::new(min, max);
    if inter.is_empty() {
        0.0
    } else {
        inter.surface_area()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build, BuildConfig};
    use crate::node::{Bvh, BvhNode};
    use crate::primitives::TriangleSet;
    use rtx_math::{Triangle, Vec3f};

    fn line_of_triangles(n: usize) -> TriangleSet {
        TriangleSet::new(
            (0..n)
                .map(|i| Triangle::key_triangle(Vec3f::new(i as f32, 0.0, 0.0), 0.4))
                .collect(),
        )
    }

    #[test]
    fn empty_bvh_has_zero_quality_metrics() {
        let q = BvhQuality::measure(&Bvh::new(vec![], vec![], false));
        assert_eq!(q.sah_cost, 0.0);
        assert_eq!(q.leaf_count, 0);
        assert_eq!(q.depth, 0);
    }

    #[test]
    fn single_leaf_quality() {
        let prims = line_of_triangles(3);
        let bvh = build(
            &prims,
            &BuildConfig {
                max_leaf_size: 8,
                ..Default::default()
            },
        );
        let q = BvhQuality::measure(&bvh);
        assert_eq!(q.leaf_count, 1);
        assert_eq!(q.avg_leaf_size, 3.0);
        assert_eq!(q.depth, 1);
        assert_eq!(q.avg_child_overlap, 0.0);
    }

    #[test]
    fn quality_metrics_reasonable_for_uniform_line() {
        let prims = line_of_triangles(512);
        let bvh = build(&prims, &BuildConfig::default());
        let q = BvhQuality::measure(&bvh);
        assert!(q.leaf_count >= 128);
        assert!(q.avg_leaf_size <= 4.0);
        assert!(q.sah_cost > 0.0);
        // For well-separated primitives along a line, sibling overlap is low.
        assert!(q.avg_child_overlap < 0.2, "overlap {}", q.avg_child_overlap);
    }

    #[test]
    fn overlapping_children_detected() {
        // Hand-built BVH whose two leaves cover the same region.
        let bounds = rtx_math::Aabb::new(Vec3f::ZERO, Vec3f::new(1.0, 1.0, 1.0));
        let leaf_a = BvhNode::leaf(bounds, 0, 1);
        let leaf_b = BvhNode::leaf(bounds, 1, 1);
        let root = BvhNode::interior(bounds, 2);
        let bvh = Bvh::new(vec![root, leaf_a, leaf_b], vec![0, 1], false);
        let q = BvhQuality::measure(&bvh);
        assert!(q.avg_child_overlap > 0.99);
    }

    #[test]
    fn overlap_area_disjoint_is_zero() {
        let a = rtx_math::Aabb::new(Vec3f::ZERO, Vec3f::new(1.0, 1.0, 1.0));
        let b = rtx_math::Aabb::new(Vec3f::new(2.0, 0.0, 0.0), Vec3f::new(3.0, 1.0, 1.0));
        assert_eq!(overlap_area(&a, &b), 0.0);
        assert!(overlap_area(&a, &a) > 0.0);
    }
}
