//! # rtindex-core
//!
//! RTIndeX (RX): a GPU secondary index that re-phrases database indexing as a
//! raytracing problem, reproduced from
//! *"RTIndeX: Exploiting Hardware-Accelerated GPU Raytracing for Database
//! Indexing"* (PVLDB 16, 2023).
//!
//! Every key of an indexed column becomes a scene primitive whose position in
//! the primitive buffer is the key's rowID; a bounding volume hierarchy over
//! the scene is the index; lookups are rays whose intersections (reported to
//! an any-hit program) are the qualifying rowIDs.
//!
//! The crate exposes the paper's five configuration dimensions:
//!
//! 1. **Key representation** — [`KeyMode`]: Naive, Extended or 3D (with a
//!    configurable [`Decomposition`]),
//! 2. **Primitive type** — triangles, spheres or AABBs
//!    ([`optix_sim::PrimitiveKind`]),
//! 3. **Ray shape** — [`PointRayStrategy`] / [`RangeRayStrategy`],
//! 4. **Key decomposition** — [`Decomposition`],
//! 5. **Updates** — refitting ([`RtIndex::update_keys`]) vs. rebuild
//!    ([`RtIndex::rebuild`]).
//!
//! ```
//! use gpu_device::Device;
//! use rtindex_core::{RtIndex, RtIndexConfig};
//!
//! let device = Device::default_eval();
//! let keys: Vec<u64> = vec![26, 25, 29, 23, 29, 27];
//! let index = RtIndex::build(&device, &keys, RtIndexConfig::default()).unwrap();
//! let out = index.range_lookup_batch(&[(23, 25)], None).unwrap();
//! assert_eq!(out.results[0].hit_count, 2); // rowIDs 1 and 3
//! ```

pub mod adapter;
pub mod config;
pub mod decomposition;
pub mod error;
pub mod index;
pub mod key_mode;
pub mod ray_strategy;
pub mod typed;

pub use adapter::{register_rx, RxAdapter};
pub use config::RtIndexConfig;
pub use decomposition::Decomposition;
pub use error::RtIndexError;
pub use index::{PendingIndexBuild, RtIndex};
pub use key_mode::KeyMode;
pub use ray_strategy::{PointRayStrategy, RangeRayStrategy};
pub use typed::TypedRtIndex;

// Re-export the kinds callers configure the index with.
pub use optix_sim::PrimitiveKind;
pub use rtx_bvh::BuilderKind;
