//! Offline stand-in for the `rand` crate.
//!
//! The build environment of this repository has no access to crates.io, so
//! the workspace vendors the *minimal* slice of the `rand` 0.8 API surface it
//! actually uses: [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] / [`Rng::gen_bool`], and [`seq::SliceRandom::shuffle`].
//!
//! The generator is SplitMix64 — statistically solid for workload generation
//! and fully deterministic given a seed, which is all the reproduction's
//! generators require. The streams differ from upstream `rand`, so seeds are
//! *not* byte-compatible with the real crate; nothing in this repository
//! depends on the concrete stream, only on determinism.

/// A source of random 64-bit values.
pub trait RngCore {
    /// Returns the next value of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32-bit value of the stream.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types from which `gen_range` can sample a value.
pub trait SampleRange<T> {
    /// Draws one value of the range using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_uint_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_uint_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // 53 uniformly distributed mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                self.start + ((self.end - self.start) as f64 * unit) as $t
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

/// Convenience methods on every generator (the `rand::Rng` extension trait).
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! The standard generator.

    use super::{RngCore, SeedableRng};

    /// Deterministic generator (SplitMix64), standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Scramble the seed once so that adjacent seeds produce unrelated
            // streams (seed 42 vs. 43 must not generate shifted sequences).
            let mut rng = StdRng {
                state: seed ^ 0x6A09_E667_F3BC_C909,
            };
            rng.next_u64();
            rng
        }
    }
}

pub mod seq {
    //! Slice utilities (`shuffle`).

    use super::RngCore;

    /// In-place slice shuffling, standing in for `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice with a Fisher–Yates pass.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let va: Vec<u64> = (0..32).map(|_| a.gen_range(0..1_000_000u64)).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.gen_range(0..1_000_000u64)).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(8);
        let vc: Vec<u64> = (0..32).map(|_| c.gen_range(0..1_000_000u64)).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20usize);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5..=7u32);
            assert!((5..=7).contains(&w));
            let f = rng.gen_range(0.0..1.0f64);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count() as f64 / 100_000.0;
        assert!((hits - 0.3).abs() < 0.01, "measured {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut StdRng::seed_from_u64(3));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle must move elements");
        assert!(v.choose(&mut StdRng::seed_from_u64(4)).is_some());
    }

    #[test]
    fn uniformity_is_reasonable() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[rng.gen_range(0..10usize)] += 1;
        }
        for &b in &buckets {
            assert!((b as f64 - 10_000.0).abs() < 500.0, "bucket {b}");
        }
    }
}
