//! Figure 15: 32-bit vs. 64-bit keys.
//!
//! RX is unaffected by the key width (it converts both to the same triangle
//! representation), while SA and HT slow down and grow because they store
//! keys verbatim. B+ only supports 32-bit keys and appears as N/A in the
//! 64-bit column.

use rtindex_core::RtIndexConfig;
use rtx_workloads as wl;

use crate::indexes::{build_all_indexes, measure_points};
use crate::report::{fmt_ms, Table};
use crate::scale::ExperimentScale;

/// Runs the key-size experiment: lookup time and memory footprint for keys
/// drawn from the 32-bit and from the 64-bit domain.
pub fn run(scale: &ExperimentScale) -> Vec<Table> {
    let device = crate::scaled_device(scale);
    let n = scale.default_keys();
    let lookup_count = scale.default_lookups();

    let mut time_table = Table::new(
        "Figure 15a: key size vs. cumulative lookup time [ms]",
        &["key size", "HT", "B+", "SA", "RX"],
    );
    let mut memory_table = Table::new(
        "Figure 15b: key size vs. index size [MiB]",
        &["key size", "HT", "B+", "SA", "RX"],
    );

    for (label, max_key) in [("32-bit", u32::MAX as u64), ("64-bit", u64::MAX / 2)] {
        let keys = wl::sparse_uniform(n, max_key, scale.seed);
        let values = wl::value_column(n, scale.seed + 7);
        let lookups = wl::point_lookups(&keys, lookup_count, scale.seed + 1);
        let indexes = build_all_indexes(&device, &keys, Some(&values), RtIndexConfig::default());
        let mut time_row = vec![label.to_string()];
        let mut memory_row = vec![label.to_string()];
        for name in ["HT", "B+", "SA", "RX"] {
            match indexes.iter().find(|ix| ix.name() == name) {
                Some(ix) => {
                    time_row.push(fmt_ms(measure_points(ix.as_ref(), &lookups, true).sim_ms));
                    memory_row.push(format!(
                        "{:.2}",
                        ix.memory_bytes() as f64 / (1 << 20) as f64
                    ));
                }
                None => {
                    time_row.push("N/A".to_string());
                    memory_row.push("N/A".to_string());
                }
            }
        }
        time_table.push_row(time_row);
        memory_table.push_row(memory_row);
    }
    vec![time_table, memory_table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rx_footprint_is_unchanged_by_key_width_while_baselines_grow_or_slow() {
        let device = crate::default_device();
        let n = 1 << 13;
        let keys32 = wl::sparse_uniform(n, u32::MAX as u64, 1);
        let keys64 = wl::sparse_uniform(n, u64::MAX / 2, 1);

        let rx32 =
            rtindex_core::RtIndex::build(&device, &keys32, RtIndexConfig::default()).unwrap();
        let rx64 =
            rtindex_core::RtIndex::build(&device, &keys64, RtIndexConfig::default()).unwrap();
        let ratio = rx64.index_memory_bytes() as f64 / rx32.index_memory_bytes() as f64;
        assert!(
            (0.85..1.15).contains(&ratio),
            "RX treats 32-bit keys like 64-bit keys, footprint ratio {ratio}"
        );

        // B+ refuses 64-bit keys entirely.
        assert!(gpu_baselines::BPlusTree::build(&device, &keys64).is_err());
        assert!(gpu_baselines::BPlusTree::build(&device, &keys32).is_ok());
    }

    #[test]
    fn lookups_stay_correct_in_the_64bit_domain() {
        let device = crate::default_device();
        let keys = wl::sparse_uniform(1 << 12, u64::MAX / 2, 2);
        let index = rtindex_core::RtIndex::build(&device, &keys, RtIndexConfig::default()).unwrap();
        let out = index.point_lookup_batch(&keys, None).unwrap();
        assert_eq!(out.hit_count(), keys.len());
    }

    #[test]
    fn smoke_has_na_for_bplus_at_64bit() {
        let tables = run(&ExperimentScale::tiny());
        assert_eq!(tables.len(), 2);
        let bplus_cells = tables[0].column("B+").unwrap();
        assert_eq!(bplus_cells[1], "N/A");
        assert_ne!(bplus_cells[0], "N/A");
    }
}
