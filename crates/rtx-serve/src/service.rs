//! The concurrent query service: submission queue, coalescer thread,
//! client handles.
//!
//! One [`QueryService`] wraps one backend (any [`SecondaryIndex`] trait
//! object — plain, sharded, or an updatable RXD) and serves any number of
//! concurrent clients. Clients never touch the backend: they enqueue
//! requests through clonable [`ClientHandle`]s, and a single **coalescer
//! thread** owns the backend and processes the queue in submission order:
//!
//! * consecutive read batches are fused into one large submission
//!   ([`FusedBatch`]) up to the configured coalesce cap, lingering briefly
//!   for more arrivals, then executed once and split back per client;
//! * write batches are **serialized and fenced**: a write never overtakes
//!   reads queued before it and is never overtaken by reads queued after
//!   it, because the queue is drained strictly in order and the coalescer
//!   stops fusing at the first write;
//! * admission control bounds the queue: submissions beyond the configured
//!   depth fail with [`ServeError::Overloaded`] instead of queuing without
//!   bound.
//!
//! Unsupported traffic (value fetches without a value column, range
//! lookups on a range-less backend, writes to a read-only service) is
//! rejected at submission, so a fused execution can only fail if the
//! backend itself does — and such a failure is broadcast to every fused
//! client.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rtx_query::{
    BatchOutcome, Capabilities, DurableStats, ExecArena, FusedBatch, IndexError, MemoryUsage,
    QueryBatch, QueryOps, QueryOutcome, RebalanceReport, SecondaryIndex, ShardLoad, SharedOutcome,
    UpdatableIndex, UpdateReport,
};

/// The reply side of one admitted read: a zero-copy view of the fused
/// outcome (or the fused failure).
type ReadReply = mpsc::Sender<Result<SharedOutcome, IndexError>>;

use crate::adaptive::LingerPolicy;
use crate::config::ServiceConfig;
use crate::error::ServeError;

/// A batched write, applied atomically by the coalescer between fused read
/// submissions.
#[derive(Debug, Clone)]
enum WriteOp {
    /// Insert `(key, value)` rows.
    Insert { keys: Vec<u64>, values: Vec<u64> },
    /// Delete every live row holding one of the keys.
    Delete { keys: Vec<u64> },
    /// Delete every key's rows, then insert one fresh row per pair.
    Upsert { keys: Vec<u64>, values: Vec<u64> },
    /// Ask a durable backend to snapshot and truncate its WAL. Travels
    /// through the write fence so the snapshot captures exactly the
    /// acknowledged prefix of the stream.
    Checkpoint,
}

impl WriteOp {
    /// Queue-admission cost of the write (rows touched, at least 1).
    fn cost(&self) -> usize {
        match self {
            WriteOp::Insert { keys, .. }
            | WriteOp::Delete { keys }
            | WriteOp::Upsert { keys, .. } => keys.len().max(1),
            WriteOp::Checkpoint => 1,
        }
    }
}

/// What one applied write-fence operation produced.
#[derive(Debug, Clone)]
enum WriteOutcome {
    /// The report of a data write.
    Report(UpdateReport),
    /// Snapshots written by a checkpoint.
    Checkpoint(u64),
}

/// One queued client request.
enum Request {
    Read {
        /// Shared with the submitting client so retries re-enqueue a
        /// pointer instead of re-cloning the operations.
        batch: Arc<QueryBatch>,
        reply: ReadReply,
    },
    Write {
        op: WriteOp,
        reply: mpsc::Sender<Result<WriteOutcome, IndexError>>,
    },
}

impl Request {
    fn cost(&self) -> usize {
        match self {
            Request::Read { batch, .. } => batch.len().max(1),
            Request::Write { op, .. } => op.cost(),
        }
    }
}

/// The backend as owned by the coalescer thread.
enum ServiceBackend {
    ReadOnly(Box<dyn SecondaryIndex>),
    Updatable(Box<dyn UpdatableIndex>),
}

impl ServiceBackend {
    fn name(&self) -> &str {
        match self {
            ServiceBackend::ReadOnly(ix) => ix.name(),
            ServiceBackend::Updatable(ix) => ix.name(),
        }
    }

    fn capabilities(&self) -> Capabilities {
        match self {
            ServiceBackend::ReadOnly(ix) => ix.capabilities(),
            ServiceBackend::Updatable(ix) => ix.capabilities(),
        }
    }

    fn has_value_column(&self) -> bool {
        match self {
            ServiceBackend::ReadOnly(ix) => ix.has_value_column(),
            ServiceBackend::Updatable(ix) => ix.has_value_column(),
        }
    }

    fn execute_ops_in(
        &self,
        ops: &QueryOps,
        arena: &mut ExecArena,
    ) -> Result<QueryOutcome, IndexError> {
        match self {
            ServiceBackend::ReadOnly(ix) => ix.execute_ops_in(ops, arena),
            ServiceBackend::Updatable(ix) => ix.execute_ops_in(ops, arena),
        }
    }

    fn apply(&mut self, op: WriteOp) -> Result<WriteOutcome, IndexError> {
        match self {
            // Admission rejects writes on read-only services; this is the
            // defensive backstop, not a reachable path.
            ServiceBackend::ReadOnly(ix) => Err(IndexError::UnsupportedOperation {
                backend: ix.name().into(),
                operation: "updates",
            }),
            ServiceBackend::Updatable(ix) => match op {
                WriteOp::Insert { keys, values } => {
                    ix.insert(&keys, &values).map(WriteOutcome::Report)
                }
                WriteOp::Delete { keys } => ix.delete(&keys).map(WriteOutcome::Report),
                WriteOp::Upsert { keys, values } => {
                    ix.upsert(&keys, &values).map(WriteOutcome::Report)
                }
                WriteOp::Checkpoint => ix.checkpoint().map(WriteOutcome::Checkpoint),
            },
        }
    }

    /// The backend-side gauges mirrored into the service counters after
    /// every fence operation: component-wise memory usage and (for durable
    /// backends) the persistence stats.
    fn gauges(&self) -> (MemoryUsage, Option<DurableStats>) {
        match self {
            ServiceBackend::ReadOnly(ix) => (ix.memory_usage(), ix.durability_stats()),
            ServiceBackend::Updatable(ix) => (ix.memory_usage(), ix.durability_stats()),
        }
    }

    /// Per-shard load counters of a sharded backend (`None` otherwise).
    fn shard_load(&self) -> Option<ShardLoad> {
        match self {
            ServiceBackend::ReadOnly(ix) => ix.shard_load(),
            ServiceBackend::Updatable(ix) => ix.shard_load(),
        }
    }

    /// Hot-shard rebalance on an updatable sharded backend; `None` on
    /// read-only services or backends without shards to move.
    fn rebalance_shards(&mut self) -> Option<RebalanceReport> {
        match self {
            ServiceBackend::ReadOnly(_) => None,
            ServiceBackend::Updatable(ix) => ix.rebalance_shards().ok(),
        }
    }
}

/// The submission queue, protected by [`Shared::queue`].
struct Queue {
    requests: VecDeque<Request>,
    /// Total admission cost of the queued requests.
    queued_cost: usize,
    shutdown: bool,
}

/// Monotonic service counters (updated with relaxed atomics; consistency
/// across counters is best-effort, each counter alone is exact). Shared
/// between [`QueryService`] and the table service
/// ([`TableService`](crate::TableService)); counters a service never
/// touches simply stay 0 in its [`ServiceStats`].
#[derive(Default)]
pub(crate) struct Counters {
    pub(crate) submitted_batches: AtomicU64,
    pub(crate) submitted_ops: AtomicU64,
    pub(crate) rejected_batches: AtomicU64,
    fused_submissions: AtomicU64,
    coalesced_batches: AtomicU64,
    pub(crate) executed_ops: AtomicU64,
    pub(crate) write_batches: AtomicU64,
    pub(crate) peak_queued_ops: AtomicU64,
    pub(crate) write_stall_ns_total: AtomicU64,
    pub(crate) write_stall_ns_max: AtomicU64,
    write_reorganisations: AtomicU64,
    checkpoints: AtomicU64,
    linger_ns_total: AtomicU64,
    linger_decisions: AtomicU64,
    rebalances: AtomicU64,
    rebalanced_rows: AtomicU64,
    /// Gauge: the sharded backend's load-imbalance ratio in permille, as
    /// of the last load check (0 for unsharded backends).
    shard_imbalance_permille: AtomicU64,
    // Table-service counters (a plain QueryService leaves these 0).
    pub(crate) planned_predicates: AtomicU64,
    pub(crate) routed_predicates: AtomicU64,
    pub(crate) scan_fallbacks: AtomicU64,
    pub(crate) ingest_batches: AtomicU64,
    pub(crate) ingest_rollbacks: AtomicU64,
    // Gauges mirrored from the backend after every fence operation (the
    // coalescer owns the backend; clients read these copies).
    wal_bytes: AtomicU64,
    fsyncs: AtomicU64,
    snapshots: AtomicU64,
    last_snapshot_bsn: AtomicU64,
    pub(crate) mem_base_bytes: AtomicU64,
    mem_delta_bytes: AtomicU64,
    mem_tombstone_bytes: AtomicU64,
    mem_wal_buffer_bytes: AtomicU64,
}

/// State shared between the client handles and the coalescer thread.
struct Shared {
    queue: Mutex<Queue>,
    /// Wakes the coalescer when requests arrive or shutdown is signalled.
    work: Condvar,
    config: ServiceConfig,
    backend_name: Arc<str>,
    capabilities: Capabilities,
    has_value_column: bool,
    updatable: bool,
    counters: Counters,
}

/// A point-in-time snapshot of the service counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Read batches admitted into the queue.
    pub submitted_batches: u64,
    /// Operations across all admitted read batches.
    pub submitted_ops: u64,
    /// Submissions rejected by admission control (backpressure).
    pub rejected_batches: u64,
    /// Fused submissions executed on the backend.
    pub fused_submissions: u64,
    /// Client read batches answered through those fused submissions.
    pub coalesced_batches: u64,
    /// Operations executed through fused submissions.
    pub executed_ops: u64,
    /// Write batches applied (serialized, fenced).
    pub write_batches: u64,
    /// Highest queue occupancy observed at any admission, in cost units
    /// (read ops / write rows, at least 1 per request).
    pub peak_queued_ops: u64,
    /// Total nanoseconds the coalescer spent inside write applications —
    /// the time the queue-order fence stalls every request queued behind a
    /// write. A synchronous compaction shows up here as one huge stall; a
    /// background compaction leaves only the swap.
    pub write_stall_ns_total: u64,
    /// Largest single write stall observed, in nanoseconds (the worst-case
    /// fence wait a co-queued request could have experienced).
    pub write_stall_ns_max: u64,
    /// Structural reorganisations (compactions) reported by the backend
    /// across all writes — completed merges and background swaps.
    pub write_reorganisations: u64,
    /// Checkpoints applied through the write fence
    /// ([`ClientHandle::checkpoint`]).
    pub checkpoints: u64,
    /// Total nanoseconds of linger *budget* the coalescer chose across its
    /// drains (fixed config: the configured linger each time; adaptive:
    /// whatever the policy picked). Actual waits are at most this — a
    /// filled fusion stops early.
    pub linger_ns_total: u64,
    /// Drains a linger budget was chosen for.
    pub linger_decisions: u64,
    /// Hot-shard rebalance passes triggered through the write fence.
    pub rebalances: u64,
    /// Rows migrated between shards across those passes.
    pub rebalanced_rows: u64,
    /// Load-imbalance ratio of the sharded backend in permille (hottest
    /// shard over mean; 1000 = perfectly balanced) as of the last check —
    /// 0 for unsharded backends or before any traffic.
    pub shard_imbalance_permille: u64,
    /// Predicates planned by a table service
    /// ([`TableService`](crate::TableService)); 0 for a plain
    /// [`QueryService`].
    pub planned_predicates: u64,
    /// Planned predicates routed to a secondary index.
    pub routed_predicates: u64,
    /// Planned predicates that fell back to a row-store scan.
    pub scan_fallbacks: u64,
    /// Table ingest batches applied through the write fence (including
    /// rejected ones).
    pub ingest_batches: u64,
    /// Table ingest batches rejected and rolled back atomically.
    pub ingest_rollbacks: u64,
    /// Live WAL bytes of a durable backend, as of the last fence operation
    /// (0 for memory-only backends).
    pub wal_bytes: u64,
    /// fsyncs issued by a durable backend since it opened.
    pub fsyncs: u64,
    /// Snapshots written by a durable backend since it opened.
    pub snapshots: u64,
    /// Batch sequence number covered by the latest snapshot (0 before
    /// any; for sharded backends, the oldest shard snapshot).
    pub last_snapshot_bsn: u64,
    /// Component-wise memory usage of the backend, as of the last fence
    /// operation (or service start for read-only backends).
    pub memory: MemoryUsage,
}

impl ServiceStats {
    /// Mean client batches fused per backend submission — the coalescing
    /// factor. 1.0 means no cross-client fusion happened.
    pub fn mean_coalesced_batches(&self) -> f64 {
        if self.fused_submissions == 0 {
            return 0.0;
        }
        self.coalesced_batches as f64 / self.fused_submissions as f64
    }

    /// Mean operations per fused backend submission.
    pub fn mean_fused_ops(&self) -> f64 {
        if self.fused_submissions == 0 {
            return 0.0;
        }
        self.executed_ops as f64 / self.fused_submissions as f64
    }

    /// Mean seconds one applied write stalled the queue. 0.0 when no write
    /// was applied (never a 0/0 NaN).
    pub fn mean_write_stall_s(&self) -> f64 {
        if self.write_batches == 0 {
            return 0.0;
        }
        self.write_stall_ns_total as f64 / 1e9 / self.write_batches as f64
    }

    /// Largest single write stall in seconds (0.0 when no write was
    /// applied).
    pub fn max_write_stall_s(&self) -> f64 {
        self.write_stall_ns_max as f64 / 1e9
    }

    /// Mean linger budget per drain in seconds. 0.0 before any drain.
    pub fn mean_linger_s(&self) -> f64 {
        if self.linger_decisions == 0 {
            return 0.0;
        }
        self.linger_ns_total as f64 / 1e9 / self.linger_decisions as f64
    }

    /// The sharded backend's load-imbalance ratio (hottest shard over
    /// mean) as of the last check; 0.0 for unsharded backends.
    pub fn shard_imbalance_ratio(&self) -> f64 {
        self.shard_imbalance_permille as f64 / 1000.0
    }
}

impl Counters {
    /// A point-in-time snapshot.
    pub(crate) fn snapshot(&self) -> ServiceStats {
        let c = self;
        ServiceStats {
            submitted_batches: c.submitted_batches.load(Ordering::Relaxed),
            submitted_ops: c.submitted_ops.load(Ordering::Relaxed),
            rejected_batches: c.rejected_batches.load(Ordering::Relaxed),
            fused_submissions: c.fused_submissions.load(Ordering::Relaxed),
            coalesced_batches: c.coalesced_batches.load(Ordering::Relaxed),
            executed_ops: c.executed_ops.load(Ordering::Relaxed),
            write_batches: c.write_batches.load(Ordering::Relaxed),
            peak_queued_ops: c.peak_queued_ops.load(Ordering::Relaxed),
            write_stall_ns_total: c.write_stall_ns_total.load(Ordering::Relaxed),
            write_stall_ns_max: c.write_stall_ns_max.load(Ordering::Relaxed),
            write_reorganisations: c.write_reorganisations.load(Ordering::Relaxed),
            checkpoints: c.checkpoints.load(Ordering::Relaxed),
            linger_ns_total: c.linger_ns_total.load(Ordering::Relaxed),
            linger_decisions: c.linger_decisions.load(Ordering::Relaxed),
            rebalances: c.rebalances.load(Ordering::Relaxed),
            rebalanced_rows: c.rebalanced_rows.load(Ordering::Relaxed),
            shard_imbalance_permille: c.shard_imbalance_permille.load(Ordering::Relaxed),
            planned_predicates: c.planned_predicates.load(Ordering::Relaxed),
            routed_predicates: c.routed_predicates.load(Ordering::Relaxed),
            scan_fallbacks: c.scan_fallbacks.load(Ordering::Relaxed),
            ingest_batches: c.ingest_batches.load(Ordering::Relaxed),
            ingest_rollbacks: c.ingest_rollbacks.load(Ordering::Relaxed),
            wal_bytes: c.wal_bytes.load(Ordering::Relaxed),
            fsyncs: c.fsyncs.load(Ordering::Relaxed),
            snapshots: c.snapshots.load(Ordering::Relaxed),
            last_snapshot_bsn: c.last_snapshot_bsn.load(Ordering::Relaxed),
            memory: MemoryUsage {
                base_bytes: c.mem_base_bytes.load(Ordering::Relaxed),
                delta_bytes: c.mem_delta_bytes.load(Ordering::Relaxed),
                tombstone_bytes: c.mem_tombstone_bytes.load(Ordering::Relaxed),
                wal_buffer_bytes: c.mem_wal_buffer_bytes.load(Ordering::Relaxed),
            },
        }
    }
}

impl Shared {
    fn stats(&self) -> ServiceStats {
        self.counters.snapshot()
    }

    /// Copies the backend gauges into the shared counters.
    fn refresh_gauges(&self, backend: &ServiceBackend) {
        let (memory, durable) = backend.gauges();
        let c = &self.counters;
        c.mem_base_bytes.store(memory.base_bytes, Ordering::Relaxed);
        c.mem_delta_bytes
            .store(memory.delta_bytes, Ordering::Relaxed);
        c.mem_tombstone_bytes
            .store(memory.tombstone_bytes, Ordering::Relaxed);
        c.mem_wal_buffer_bytes
            .store(memory.wal_buffer_bytes, Ordering::Relaxed);
        let durable = durable.unwrap_or_default();
        c.wal_bytes.store(durable.wal_bytes, Ordering::Relaxed);
        c.fsyncs.store(durable.fsyncs, Ordering::Relaxed);
        c.snapshots.store(durable.snapshots, Ordering::Relaxed);
        c.last_snapshot_bsn
            .store(durable.last_snapshot_bsn, Ordering::Relaxed);
    }

    /// Admits one request into the queue (or rejects it), waking the
    /// coalescer on success.
    fn enqueue(&self, request: Request) -> Result<(), ServeError> {
        let cost = request.cost();
        // A submission larger than the whole admission limit could never
        // be admitted — reject it as non-retryable instead of reporting
        // the Overloaded (retry-later) livelock.
        if cost > self.config.max_queue_depth {
            return Err(ServeError::TooLarge {
                ops: cost,
                max_queue_depth: self.config.max_queue_depth,
            });
        }
        {
            let mut q = self.queue.lock().expect("service queue poisoned");
            if q.shutdown {
                return Err(ServeError::ShuttingDown);
            }
            if q.queued_cost + cost > self.config.max_queue_depth {
                self.counters
                    .rejected_batches
                    .fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Overloaded {
                    queued_ops: q.queued_cost,
                    max_queue_depth: self.config.max_queue_depth,
                });
            }
            q.queued_cost += cost;
            self.counters
                .peak_queued_ops
                .fetch_max(q.queued_cost as u64, Ordering::Relaxed);
            q.requests.push_back(request);
        }
        self.work.notify_one();
        Ok(())
    }
}

/// Retry behaviour against [`ServeError::Overloaded`] backpressure:
/// exponential backoff with a hard delay ceiling and optional
/// deterministic jitter.
///
/// The delay after the `n`-th rejected attempt is
/// `initial_backoff * 2^(n-1)`, clamped to
/// [`max_backoff`](RetryPolicy::max_backoff) — an uncapped doubling
/// schedule reaches minutes after ~20 rejections, which turns transient
/// overload into client-visible hangs. With a
/// [`jitter_seed`](RetryPolicy::jitter_seed), each delay is scaled by a
/// deterministic per-attempt factor in `[0.5, 1.0)` so co-rejected
/// clients with different seeds spread out instead of retrying in
/// lockstep; determinism keeps test runs and simulations reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total submission attempts (at least 1); the last failure returns.
    pub max_attempts: usize,
    /// Delay slept after the first rejected attempt.
    pub initial_backoff: Duration,
    /// Ceiling the doubling schedule clamps to.
    pub max_backoff: Duration,
    /// Seed of the deterministic jitter; `None` sleeps the full delay.
    pub jitter_seed: Option<u64>,
}

impl RetryPolicy {
    /// A policy with the given attempt budget and initial delay, a
    /// ceiling of 1024x the initial delay, and no jitter.
    pub fn new(max_attempts: usize, initial_backoff: Duration) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            initial_backoff,
            max_backoff: initial_backoff.saturating_mul(1024),
            jitter_seed: None,
        }
    }

    /// Sets the delay ceiling.
    pub fn with_max_backoff(mut self, max_backoff: Duration) -> Self {
        self.max_backoff = max_backoff;
        self
    }

    /// Enables deterministic jitter under `seed` (e.g. a client ID).
    pub fn with_jitter(mut self, seed: u64) -> Self {
        self.jitter_seed = Some(seed);
        self
    }

    /// The delay slept after the `attempt`-th rejected submission
    /// (1-based): doubled, clamped, jittered.
    pub fn delay(&self, attempt: usize) -> Duration {
        let mut delay = self.initial_backoff;
        for _ in 1..attempt {
            if delay >= self.max_backoff {
                break;
            }
            delay = delay.saturating_mul(2);
        }
        delay = delay.min(self.max_backoff);
        match self.jitter_seed {
            None => delay,
            Some(seed) => {
                // splitmix64 over (seed, attempt) → a factor in [0.5, 1.0).
                let mut z = seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(attempt as u64);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                let factor = 0.5 + (z >> 11) as f64 / (1u64 << 53) as f64 * 0.5;
                delay.mul_f64(factor)
            }
        }
    }
}

/// An admitted read submission whose result has not been claimed yet.
///
/// Dropping it abandons the result (the service still executes and then
/// discards it).
#[derive(Debug)]
pub struct PendingQuery {
    reply: mpsc::Receiver<Result<SharedOutcome, IndexError>>,
}

impl PendingQuery {
    /// Blocks until the coalescer has answered this submission, returning
    /// an owned copy of this client's results. The copy happens here, on
    /// the client's thread — the coalescer hands over a zero-copy view
    /// ([`wait_shared`](PendingQuery::wait_shared) exposes it directly).
    pub fn wait(self) -> Result<BatchOutcome, ServeError> {
        self.wait_shared().map(|view| view.materialize())
    }

    /// Blocks until the coalescer has answered, returning the zero-copy
    /// [`SharedOutcome`] view of the fused execution — no result copy at
    /// all, for clients that only read their slice.
    pub fn wait_shared(self) -> Result<SharedOutcome, ServeError> {
        match self.reply.recv() {
            Ok(result) => result.map_err(ServeError::Index),
            // The coalescer drains the queue before exiting, so a closed
            // channel means the service stopped abnormally.
            Err(mpsc::RecvError) => Err(ServeError::ShuttingDown),
        }
    }
}

/// A clonable client of a [`QueryService`]: submits read batches (blocking
/// or ticketed) and batched writes.
#[derive(Clone)]
pub struct ClientHandle {
    shared: Arc<Shared>,
}

impl ClientHandle {
    /// Rejects traffic the backend can never serve — at submission, so a
    /// fused execution stays infallible and one client's mistake cannot
    /// fail its co-fused neighbours.
    fn precheck(&self, batch: &QueryBatch) -> Result<(), ServeError> {
        if batch.fetches_values() && !self.shared.has_value_column {
            return Err(ServeError::Index(IndexError::NoValueColumn {
                backend: Arc::clone(&self.shared.backend_name),
            }));
        }
        if batch.range_count() > 0 && !self.shared.capabilities.range_lookups {
            return Err(ServeError::Index(IndexError::UnsupportedOperation {
                backend: Arc::clone(&self.shared.backend_name),
                operation: "range lookups",
            }));
        }
        Ok(())
    }

    /// Submits a read batch and returns a ticket to claim the result with.
    pub fn submit(&self, batch: QueryBatch) -> Result<PendingQuery, ServeError> {
        self.submit_shared(Arc::new(batch))
    }

    /// [`submit`](ClientHandle::submit) for a batch already behind an
    /// `Arc` — enqueues a pointer clone, so resubmitting the same batch
    /// (retry loops) never copies its operations.
    pub fn submit_shared(&self, batch: Arc<QueryBatch>) -> Result<PendingQuery, ServeError> {
        self.precheck(&batch)?;
        let ops = batch.len() as u64;
        let (tx, rx) = mpsc::channel();
        self.shared.enqueue(Request::Read { batch, reply: tx })?;
        self.shared
            .counters
            .submitted_batches
            .fetch_add(1, Ordering::Relaxed);
        self.shared
            .counters
            .submitted_ops
            .fetch_add(ops, Ordering::Relaxed);
        Ok(PendingQuery { reply: rx })
    }

    /// Submits a read batch and blocks until its result arrives.
    pub fn query(&self, batch: QueryBatch) -> Result<BatchOutcome, ServeError> {
        self.submit(batch)?.wait()
    }

    /// [`query`](ClientHandle::query) with bounded retries against
    /// admission-control backpressure: an [`ServeError::Overloaded`]
    /// rejection sleeps `backoff` (doubling per attempt, capped at
    /// [`RetryPolicy::new`]'s default ceiling) and resubmits, up to
    /// `max_attempts` submissions in total. Every other outcome — success
    /// or any other error — returns immediately; only the retry-later
    /// rejection is retried. Use
    /// [`query_with_policy`](ClientHandle::query_with_policy) for a
    /// custom delay ceiling or deterministic jitter.
    pub fn query_with_retry(
        &self,
        batch: &QueryBatch,
        max_attempts: usize,
        backoff: Duration,
    ) -> Result<BatchOutcome, ServeError> {
        self.query_with_policy(batch, &RetryPolicy::new(max_attempts, backoff))
    }

    /// [`query`](ClientHandle::query) retried under `policy` (see
    /// [`RetryPolicy`] for the backoff schedule). Only
    /// [`ServeError::Overloaded`] is retried.
    pub fn query_with_policy(
        &self,
        batch: &QueryBatch,
        policy: &RetryPolicy,
    ) -> Result<BatchOutcome, ServeError> {
        // One copy up front into an Arc; every (re)submission after a
        // backpressure rejection clones the pointer, not the operations.
        let batch = Arc::new(batch.clone());
        let mut attempt = 1;
        loop {
            let outcome = self
                .submit_shared(Arc::clone(&batch))
                .and_then(|pending| pending.wait());
            match outcome {
                Err(ServeError::Overloaded { .. }) if attempt < policy.max_attempts => {
                    std::thread::sleep(policy.delay(attempt));
                    attempt += 1;
                }
                outcome => return outcome,
            }
        }
    }

    fn write(&self, op: WriteOp) -> Result<WriteOutcome, ServeError> {
        if !self.shared.updatable {
            return Err(ServeError::ReadOnlyBackend {
                backend: Arc::clone(&self.shared.backend_name),
            });
        }
        let (tx, rx) = mpsc::channel();
        self.shared.enqueue(Request::Write { op, reply: tx })?;
        match rx.recv() {
            Ok(result) => result.map_err(ServeError::Index),
            Err(mpsc::RecvError) => Err(ServeError::ShuttingDown),
        }
    }

    fn data_write(&self, op: WriteOp) -> Result<UpdateReport, ServeError> {
        match self.write(op)? {
            WriteOutcome::Report(report) => Ok(report),
            WriteOutcome::Checkpoint(_) => unreachable!("data writes reply with a report"),
        }
    }

    /// Inserts a batch of `(key, value)` rows. Blocks until the write is
    /// applied; it is fenced against every read queued before it and
    /// visible to every read queued after it.
    pub fn insert(&self, keys: &[u64], values: &[u64]) -> Result<UpdateReport, ServeError> {
        self.data_write(WriteOp::Insert {
            keys: keys.to_vec(),
            values: values.to_vec(),
        })
    }

    /// Deletes every live row holding one of `keys` (fenced like
    /// [`insert`](ClientHandle::insert)).
    pub fn delete(&self, keys: &[u64]) -> Result<UpdateReport, ServeError> {
        self.data_write(WriteOp::Delete {
            keys: keys.to_vec(),
        })
    }

    /// Upserts a batch of `(key, value)` pairs (fenced like
    /// [`insert`](ClientHandle::insert)).
    pub fn upsert(&self, keys: &[u64], values: &[u64]) -> Result<UpdateReport, ServeError> {
        self.data_write(WriteOp::Upsert {
            keys: keys.to_vec(),
            values: values.to_vec(),
        })
    }

    /// Asks a durable backend to snapshot and truncate its WAL, returning
    /// the number of snapshots written. The request rides the write fence:
    /// every read and write queued before it drains first, so the snapshot
    /// captures exactly the acknowledged prefix of this service's stream.
    /// A memory-only backend returns `Ok(0)`.
    pub fn checkpoint(&self) -> Result<u64, ServeError> {
        match self.write(WriteOp::Checkpoint)? {
            WriteOutcome::Checkpoint(snapshots) => Ok(snapshots),
            WriteOutcome::Report(_) => unreachable!("checkpoints reply with a snapshot count"),
        }
    }

    /// Name of the backend the service wraps.
    pub fn backend_name(&self) -> &str {
        &self.shared.backend_name
    }

    /// Capabilities of the wrapped backend.
    pub fn capabilities(&self) -> Capabilities {
        self.shared.capabilities
    }

    /// Whether the service accepts writes.
    pub fn is_updatable(&self) -> bool {
        self.shared.updatable
    }

    /// A snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        self.shared.stats()
    }

    /// Current queue occupancy in admission-cost units (read ops / write
    /// rows). A load probe: compare against
    /// [`ServiceConfig::max_queue_depth`] to shed load before submissions
    /// start failing.
    pub fn queued_ops(&self) -> usize {
        self.shared
            .queue
            .lock()
            .expect("service queue poisoned")
            .queued_cost
    }
}

/// The concurrent query service. See the [module docs](self) for the
/// execution model; see [`ServiceConfig`] for the tuning knobs.
///
/// Dropping the service signals shutdown, drains every queued request and
/// joins the coalescer thread — already-admitted submissions are still
/// answered, new ones are rejected with [`ServeError::ShuttingDown`].
pub struct QueryService {
    shared: Arc<Shared>,
    worker: Option<JoinHandle<()>>,
}

impl QueryService {
    /// Starts a service over a read-only backend.
    pub fn start(backend: Box<dyn SecondaryIndex>, config: ServiceConfig) -> Self {
        QueryService::spawn(ServiceBackend::ReadOnly(backend), config, false)
    }

    /// Starts a service over an updatable backend: client writes are
    /// serialized and fenced against reads in queue order.
    pub fn start_updatable(backend: Box<dyn UpdatableIndex>, config: ServiceConfig) -> Self {
        QueryService::spawn(ServiceBackend::Updatable(backend), config, true)
    }

    fn spawn(backend: ServiceBackend, config: ServiceConfig, updatable: bool) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                requests: VecDeque::new(),
                queued_cost: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            config,
            backend_name: backend.name().into(),
            capabilities: backend.capabilities(),
            has_value_column: backend.has_value_column(),
            updatable,
            counters: Counters::default(),
        });
        // Seed the gauges so read-only services report their footprint too.
        shared.refresh_gauges(&backend);
        let worker = std::thread::Builder::new()
            .name("rtx-serve-coalescer".to_string())
            .spawn({
                let shared = Arc::clone(&shared);
                move || run_coalescer(&shared, backend)
            })
            .expect("spawn coalescer thread");
        QueryService {
            shared,
            worker: Some(worker),
        }
    }

    /// A new client handle (clonable, sendable across threads).
    pub fn handle(&self) -> ClientHandle {
        ClientHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Name of the backend the service wraps.
    pub fn backend_name(&self) -> &str {
        &self.shared.backend_name
    }

    /// A snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        self.shared.stats()
    }

    /// Shuts the service down (draining the queue) and returns the final
    /// counters.
    pub fn shutdown(mut self) -> ServiceStats {
        self.stop();
        self.shared.stats()
    }

    fn stop(&mut self) {
        {
            let mut q = self.shared.queue.lock().expect("service queue poisoned");
            q.shutdown = true;
        }
        self.shared.work.notify_all();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for QueryService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryService")
            .field("backend", &self.shared.backend_name)
            .field("updatable", &self.shared.updatable)
            .field("config", &self.shared.config)
            .finish()
    }
}

/// One drained unit of work: a fused run of reads (left in the caller's
/// fusion/reply buffers), or one write.
enum Drained {
    Reads,
    Write {
        op: WriteOp,
        reply: mpsc::Sender<Result<WriteOutcome, IndexError>>,
    },
    Shutdown,
}

/// The adaptive-linger state owned by the coalescer thread: the pure
/// policy plus the real clock and op-counter cursor that feed it.
struct AdaptiveState {
    policy: LingerPolicy,
    started: Instant,
    seen_ops: u64,
}

/// The coalescer loop: drain → fuse → execute → scatter, strictly in queue
/// order, until shutdown *and* an empty queue.
fn run_coalescer(shared: &Shared, mut backend: ServiceBackend) {
    // The coalescer's working set lives for the whole service: the fusion,
    // the reply buffer and the execution arena are cleared between cycles
    // but never reallocated — steady-state coalescing is allocation-free
    // apart from the result buffer handed to the clients.
    let mut fusion = FusedBatch::new();
    fusion.set_chunk_size(shared.config.chunk_size);
    let mut replies: Vec<ReadReply> = Vec::new();
    let mut arena = ExecArena::new();
    let mut adaptive = shared.config.adaptive_linger.map(|config| AdaptiveState {
        policy: LingerPolicy::new(config),
        started: Instant::now(),
        seen_ops: 0,
    });
    loop {
        match drain(shared, &mut fusion, &mut replies, &mut adaptive) {
            Drained::Shutdown => return,
            Drained::Write { op, reply } => {
                // The apply is the queue-order fence: everything queued
                // behind this write waits exactly this long. Surface it.
                let is_checkpoint = matches!(op, WriteOp::Checkpoint);
                let start = Instant::now();
                let result = backend.apply(op);
                let stall_ns = start.elapsed().as_nanos() as u64;
                let c = &shared.counters;
                if is_checkpoint {
                    c.checkpoints.fetch_add(1, Ordering::Relaxed);
                } else {
                    c.write_batches.fetch_add(1, Ordering::Relaxed);
                }
                c.write_stall_ns_total
                    .fetch_add(stall_ns, Ordering::Relaxed);
                c.write_stall_ns_max.fetch_max(stall_ns, Ordering::Relaxed);
                if let Ok(WriteOutcome::Report(report)) = &result {
                    c.write_reorganisations
                        .fetch_add(report.reorganisations, Ordering::Relaxed);
                }
                shared.refresh_gauges(&backend);
                // A client that dropped its ticket abandoned the result.
                let _ = reply.send(result);
                maybe_rebalance(shared, &mut backend);
            }
            Drained::Reads => {
                // The fused operations are already in executor-ready SoA
                // form; execution reuses the coalescer's arena and the
                // scatter hands each client an Arc'd view of the one fused
                // outcome — no per-client result copy on this thread.
                let outcome = backend.execute_ops_in(fusion.ops(), &mut arena);
                let c = &shared.counters;
                c.fused_submissions.fetch_add(1, Ordering::Relaxed);
                c.coalesced_batches
                    .fetch_add(replies.len() as u64, Ordering::Relaxed);
                c.executed_ops
                    .fetch_add(fusion.op_count() as u64, Ordering::Relaxed);
                match outcome {
                    Ok(out) => {
                        for (view, reply) in fusion.split_shared(out).into_iter().zip(&replies) {
                            let _ = reply.send(Ok(view));
                        }
                    }
                    // A backend failure on the fused batch is every fused
                    // client's failure.
                    Err(err) => {
                        for reply in &replies {
                            let _ = reply.send(Err(err.clone()));
                        }
                    }
                }
                maybe_rebalance(shared, &mut backend);
            }
        }
    }
}

/// Between drained units the coalescer owns the backend exclusively — the
/// natural write fence — so this is where a sharded backend's hot shards
/// are checked and, past the configured thresholds, rebalanced. The load
/// gauge refreshes on every check; the migration itself only fires once
/// enough traffic accumulated *and* the imbalance crossed the trigger
/// (the pass resets the shard counters, which spaces the passes out).
fn maybe_rebalance(shared: &Shared, backend: &mut ServiceBackend) {
    let Some(config) = shared.config.rebalance else {
        return;
    };
    let Some(load) = backend.shard_load() else {
        return;
    };
    let permille = (load.imbalance_ratio() * 1000.0) as u64;
    let c = &shared.counters;
    c.shard_imbalance_permille
        .store(permille, Ordering::Relaxed);
    if load.total_ops() < config.min_ops || permille < config.max_imbalance_permille {
        return;
    }
    if let Some(report) = backend.rebalance_shards() {
        c.rebalances.fetch_add(1, Ordering::Relaxed);
        c.rebalanced_rows
            .fetch_add(report.moved_rows, Ordering::Relaxed);
        shared.refresh_gauges(backend);
    }
}

/// Blocks until work is available, then drains the next unit: reads fuse up
/// to the coalesce cap (lingering for late arrivals), the first write cuts
/// the fusion short (the fence), a leading write is taken alone. Fused
/// reads accumulate into the caller's persistent `fusion` / `replies`
/// buffers (cleared here first), so steady-state draining allocates
/// nothing.
fn drain(
    shared: &Shared,
    fusion: &mut FusedBatch,
    replies: &mut Vec<ReadReply>,
    adaptive: &mut Option<AdaptiveState>,
) -> Drained {
    fusion.clear();
    replies.clear();
    let mut q = shared.queue.lock().expect("service queue poisoned");
    loop {
        if !q.requests.is_empty() {
            break;
        }
        if q.shutdown {
            return Drained::Shutdown;
        }
        q = shared.work.wait(q).expect("service queue poisoned");
    }

    // The linger budget for this drain: the fixed configured window, or —
    // adaptively — what the policy derives from the arrivals observed
    // since the last drain and the current queue depth.
    let linger = match adaptive {
        None => shared.config.linger,
        Some(state) => {
            let now_ns = state.started.elapsed().as_nanos() as u64;
            let total = shared.counters.submitted_ops.load(Ordering::Relaxed);
            let arrived = total.saturating_sub(state.seen_ops);
            state.seen_ops = total;
            state.policy.observe(now_ns, arrived);
            state.policy.linger(q.queued_cost)
        }
    };
    shared
        .counters
        .linger_ns_total
        .fetch_add(linger.as_nanos() as u64, Ordering::Relaxed);
    shared
        .counters
        .linger_decisions
        .fetch_add(1, Ordering::Relaxed);
    let deadline = Instant::now() + linger;
    loop {
        // Pop as many consecutive reads as fit under the coalesce cap.
        let mut full = false;
        let mut fenced = false;
        while let Some(front) = q.requests.front() {
            match front {
                Request::Read { batch, .. } => {
                    if !fusion.is_empty()
                        && fusion.op_count() + batch.len() > shared.config.max_coalesce_ops
                    {
                        full = true;
                        break;
                    }
                }
                Request::Write { .. } => {
                    if fusion.is_empty() {
                        match q.requests.pop_front() {
                            Some(Request::Write { op, reply }) => {
                                q.queued_cost -= op.cost();
                                return Drained::Write { op, reply };
                            }
                            _ => unreachable!("front was a write"),
                        }
                    }
                    // Reads are already fused: execute them first, take the
                    // write on the next drain (the fence).
                    fenced = true;
                    break;
                }
            }
            match q.requests.pop_front() {
                Some(Request::Read { batch, reply }) => {
                    q.queued_cost -= batch.len().max(1);
                    fusion.push(&batch);
                    replies.push(reply);
                    if fusion.op_count() >= shared.config.max_coalesce_ops {
                        full = true;
                        break;
                    }
                }
                _ => unreachable!("front was a read"),
            }
        }

        debug_assert!(!fusion.is_empty(), "drain found work but fused nothing");
        if full || fenced || q.shutdown {
            break;
        }
        // The queue is empty and the fusion has room: linger for more
        // arrivals so concurrent small submitters actually fuse.
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        let (guard, timeout) = shared
            .work
            .wait_timeout(q, deadline - now)
            .expect("service queue poisoned");
        q = guard;
        if q.requests.is_empty() && (timeout.timed_out() || q.shutdown) {
            break;
        }
    }
    Drained::Reads
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_query::{IndexBuildMetrics, LookupResult};
    use std::time::Duration;

    /// Test gate: lets a test hold the backend inside an execution so the
    /// queue fills deterministically, and observe when executions start.
    #[derive(Default)]
    struct Gate {
        state: Mutex<GateState>,
        cv: Condvar,
    }

    #[derive(Default)]
    struct GateState {
        entered: usize,
        hold: bool,
    }

    impl Gate {
        fn hold(&self) {
            self.state.lock().unwrap().hold = true;
        }

        fn release(&self) {
            self.state.lock().unwrap().hold = false;
            self.cv.notify_all();
        }

        /// Called by the backend at the start of every chunk execution.
        fn enter(&self) {
            let mut s = self.state.lock().unwrap();
            s.entered += 1;
            self.cv.notify_all();
            while s.hold {
                s = self.cv.wait(s).unwrap();
            }
        }

        /// Blocks the test until `n` chunk executions have started.
        fn await_entered(&self, n: usize) {
            let mut s = self.state.lock().unwrap();
            while s.entered < n {
                s = self.cv.wait(s).unwrap();
            }
        }
    }

    /// In-memory updatable backend with a gate and an execution log.
    struct StubIndex {
        rows: Mutex<Vec<(u64, u64)>>,
        has_values: bool,
        ranges: bool,
        gate: Arc<Gate>,
        log: Arc<Mutex<Vec<String>>>,
    }

    impl StubIndex {
        fn new(keys: &[u64]) -> Self {
            StubIndex {
                rows: Mutex::new(keys.iter().map(|&k| (k, k * 10)).collect()),
                has_values: true,
                ranges: true,
                gate: Arc::new(Gate::default()),
                log: Arc::new(Mutex::new(Vec::new())),
            }
        }

        fn chunk<F: Fn(u64) -> bool>(&self, preds: Vec<F>, fetch: bool) -> BatchOutcome {
            let rows = self.rows.lock().unwrap();
            let results = preds
                .iter()
                .map(|pred| {
                    let mut r = LookupResult::miss();
                    for (row, &(k, v)) in rows.iter().enumerate() {
                        if pred(k) {
                            r.first_row = r.first_row.min(row as u32);
                            r.hit_count += 1;
                            if fetch {
                                r.value_sum = r.value_sum.wrapping_add(v);
                            }
                        }
                    }
                    r
                })
                .collect();
            BatchOutcome {
                results,
                ..Default::default()
            }
        }
    }

    impl SecondaryIndex for StubIndex {
        fn name(&self) -> &str {
            "STUB"
        }
        fn key_count(&self) -> usize {
            self.rows.lock().unwrap().len()
        }
        fn memory_bytes(&self) -> u64 {
            16
        }
        fn build_metrics(&self) -> IndexBuildMetrics {
            IndexBuildMetrics::default()
        }
        fn capabilities(&self) -> Capabilities {
            Capabilities {
                range_lookups: self.ranges,
                duplicate_keys: true,
                full_64bit_keys: true,
                updates: true,
            }
        }
        fn has_value_column(&self) -> bool {
            self.has_values
        }
        fn point_chunk(&self, queries: &[u64], fetch: bool) -> Result<BatchOutcome, IndexError> {
            self.gate.enter();
            self.log
                .lock()
                .unwrap()
                .push(format!("points:{}", queries.len()));
            Ok(self.chunk(queries.iter().map(|&q| move |k| k == q).collect(), fetch))
        }
        fn range_chunk(
            &self,
            ranges: &[(u64, u64)],
            fetch: bool,
        ) -> Result<BatchOutcome, IndexError> {
            self.gate.enter();
            self.log
                .lock()
                .unwrap()
                .push(format!("ranges:{}", ranges.len()));
            Ok(self.chunk(
                ranges
                    .iter()
                    .map(|&(l, u)| move |k| k >= l && k <= u)
                    .collect(),
                fetch,
            ))
        }
    }

    impl UpdatableIndex for StubIndex {
        fn insert(&mut self, keys: &[u64], values: &[u64]) -> Result<UpdateReport, IndexError> {
            self.log
                .lock()
                .unwrap()
                .push(format!("insert:{}", keys.len()));
            let mut rows = self.rows.lock().unwrap();
            rows.extend(keys.iter().zip(values).map(|(&k, &v)| (k, v)));
            Ok(UpdateReport {
                inserted_rows: keys.len(),
                ..Default::default()
            })
        }
        fn delete(&mut self, keys: &[u64]) -> Result<UpdateReport, IndexError> {
            self.log
                .lock()
                .unwrap()
                .push(format!("delete:{}", keys.len()));
            let mut rows = self.rows.lock().unwrap();
            let before = rows.len();
            rows.retain(|(k, _)| !keys.contains(k));
            Ok(UpdateReport {
                deleted_rows: before - rows.len(),
                ..Default::default()
            })
        }
        fn upsert(&mut self, keys: &[u64], values: &[u64]) -> Result<UpdateReport, IndexError> {
            let deleted = self.delete(keys)?.deleted_rows;
            let inserted = self.insert(keys, values)?.inserted_rows;
            Ok(UpdateReport {
                inserted_rows: inserted,
                deleted_rows: deleted,
                ..Default::default()
            })
        }
    }

    fn stub_service(
        keys: &[u64],
        config: ServiceConfig,
    ) -> (QueryService, Arc<Gate>, Arc<Mutex<Vec<String>>>) {
        let stub = StubIndex::new(keys);
        let (gate, log) = (Arc::clone(&stub.gate), Arc::clone(&stub.log));
        (
            QueryService::start_updatable(Box::new(stub), config),
            gate,
            log,
        )
    }

    #[test]
    fn queued_batches_coalesce_into_one_submission() {
        let config = ServiceConfig::new().with_linger(Duration::ZERO);
        let (service, gate, log) = stub_service(&[1, 2, 3, 4], config);
        let h = service.handle();

        // First submission occupies the coalescer inside the backend...
        gate.hold();
        let t1 = h.submit(QueryBatch::of_points(&[1])).unwrap();
        gate.await_entered(1);
        // ...while three more clients queue up behind it.
        let t2 = h.submit(QueryBatch::of_points(&[2, 9])).unwrap();
        let t3 = h.submit(QueryBatch::of_points(&[3, 4])).unwrap();
        let t4 = h.submit(QueryBatch::new().point(1).range(2, 3)).unwrap();
        gate.release();

        assert_eq!(t1.wait().unwrap().hit_count(), 1);
        let o2 = t2.wait().unwrap();
        assert_eq!(o2.results.len(), 2);
        assert!(o2.results[0].is_hit() && !o2.results[1].is_hit());
        assert_eq!(t3.wait().unwrap().hit_count(), 2);
        let o4 = t4.wait().unwrap();
        assert_eq!(o4.results[1].hit_count, 2);

        let stats = service.shutdown();
        assert_eq!(stats.submitted_batches, 4);
        assert_eq!(stats.submitted_ops, 7);
        assert_eq!(stats.fused_submissions, 2, "t2..t4 fused into one");
        assert_eq!(stats.coalesced_batches, 4);
        assert_eq!(stats.executed_ops, 7);
        assert!((stats.mean_coalesced_batches() - 2.0).abs() < 1e-12);
        assert!((stats.mean_fused_ops() - 3.5).abs() < 1e-12);
        // The fused submission regrouped 5 points + 1 range into two
        // homogeneous launches.
        assert_eq!(
            *log.lock().unwrap(),
            vec!["points:1", "points:5", "ranges:1"]
        );
    }

    #[test]
    fn admission_control_rejects_submissions_beyond_queue_depth() {
        let config = ServiceConfig::new()
            .with_linger(Duration::ZERO)
            .with_max_queue_depth(4);
        let (service, gate, _log) = stub_service(&[1, 2, 3], config);
        let h = service.handle();

        gate.hold();
        let t1 = h.submit(QueryBatch::of_points(&[1])).unwrap();
        gate.await_entered(1);
        assert_eq!(h.queued_ops(), 0, "t1 was dequeued before executing");
        let t2 = h.submit(QueryBatch::of_points(&[1, 2, 3])).unwrap();
        assert_eq!(h.queued_ops(), 3);
        let err = h.submit(QueryBatch::of_points(&[1, 2])).unwrap_err();
        assert_eq!(
            err,
            ServeError::Overloaded {
                queued_ops: 3,
                max_queue_depth: 4
            }
        );
        assert!(err.to_string().contains("retry"));
        // A submission larger than the whole limit is non-retryable, even
        // though the queue has room for smaller ones.
        let err = h
            .submit(QueryBatch::of_points(&[1, 2, 3, 4, 5]))
            .unwrap_err();
        assert_eq!(
            err,
            ServeError::TooLarge {
                ops: 5,
                max_queue_depth: 4
            }
        );
        let err = h.insert(&[1, 2, 3, 4, 5], &[0; 5]).unwrap_err();
        assert!(matches!(err, ServeError::TooLarge { ops: 5, .. }));
        // A batch that still fits is admitted.
        let t3 = h.submit(QueryBatch::of_points(&[2])).unwrap();
        gate.release();

        assert!(t1.wait().is_ok() && t2.wait().is_ok() && t3.wait().is_ok());
        let stats = service.shutdown();
        assert_eq!(stats.rejected_batches, 1);
        assert_eq!(stats.peak_queued_ops, 4);
    }

    #[test]
    fn writes_are_fenced_between_read_fusions() {
        // A long linger that would fuse everything — the write fence must
        // cut the fusion short instead.
        let config = ServiceConfig::new().with_linger(Duration::from_millis(200));
        let (service, gate, log) = stub_service(&[1], config);
        let h = service.handle();

        gate.hold();
        let t1 = h.submit(QueryBatch::of_points(&[1])).unwrap();
        gate.await_entered(1);
        // Queue while the coalescer is busy: R2, then a write, then R3.
        let t2 = h.submit(QueryBatch::of_points(&[77])).unwrap();
        let writer = {
            let h = h.clone();
            std::thread::spawn(move || h.insert(&[77, 78], &[770, 780]).unwrap())
        };
        while h.queued_ops() < 3 {
            std::thread::yield_now();
        }
        let t3 = h.submit(QueryBatch::of_points(&[77])).unwrap();
        gate.release();

        assert_eq!(t1.wait().unwrap().hit_count(), 1);
        assert!(
            !t2.wait().unwrap().results[0].is_hit(),
            "read before the write"
        );
        assert_eq!(writer.join().unwrap().inserted_rows, 2);
        let r3 = t3.wait().unwrap().results[0];
        assert!(r3.is_hit(), "read after the write sees it");
        assert_eq!(r3.value_sum, 0, "no fetch requested");
        assert_eq!(
            *log.lock().unwrap(),
            vec!["points:1", "points:1", "insert:2", "points:1"],
            "R1, then R2 cut short by the fence, then the write, then R3"
        );
        let stats = service.stats();
        assert_eq!(stats.write_batches, 1);
        assert!(stats.write_stall_ns_total > 0, "the fence wait is surfaced");
        assert!(stats.write_stall_ns_max <= stats.write_stall_ns_total);
        assert!(stats.mean_write_stall_s() > 0.0);
        assert!(stats.max_write_stall_s() > 0.0);
        assert_eq!(stats.write_reorganisations, 0, "the stub never compacts");
    }

    #[test]
    fn unsupported_traffic_is_rejected_at_submission() {
        let stub = StubIndex {
            has_values: false,
            ranges: false,
            ..StubIndex::new(&[1])
        };
        let service = QueryService::start(Box::new(stub), ServiceConfig::default());
        let h = service.handle();
        assert!(!h.is_updatable());
        assert_eq!(h.backend_name(), "STUB");
        assert!(!h.capabilities().range_lookups);

        let err = h
            .query(QueryBatch::of_points(&[1]).fetch_values(true))
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::Index(IndexError::NoValueColumn { .. })
        ));
        let err = h.query(QueryBatch::new().range(0, 9)).unwrap_err();
        assert!(matches!(
            err,
            ServeError::Index(IndexError::UnsupportedOperation { .. })
        ));
        let err = h.insert(&[5], &[50]).unwrap_err();
        assert_eq!(
            err,
            ServeError::ReadOnlyBackend {
                backend: "STUB".into()
            }
        );

        // Well-formed traffic still flows, including empty batches.
        assert_eq!(h.query(QueryBatch::of_points(&[1])).unwrap().hit_count(), 1);
        assert!(h.query(QueryBatch::new()).unwrap().results.is_empty());
        assert_eq!(
            service.stats().rejected_batches,
            0,
            "prechecks are not admission rejections"
        );
    }

    #[test]
    fn shutdown_drains_admitted_requests_then_rejects_new_ones() {
        let config = ServiceConfig::new().with_linger(Duration::ZERO);
        let (service, gate, _log) = stub_service(&[1, 2], config);
        let h = service.handle();

        gate.hold();
        let t1 = h.submit(QueryBatch::of_points(&[1])).unwrap();
        gate.await_entered(1);
        let t2 = h.submit(QueryBatch::of_points(&[2])).unwrap();
        let t3 = h.submit(QueryBatch::of_points(&[9])).unwrap();
        gate.release();
        let stats = service.shutdown();

        // Everything admitted before shutdown was answered.
        assert!(t1.wait().is_ok());
        assert_eq!(t2.wait().unwrap().hit_count(), 1);
        assert_eq!(t3.wait().unwrap().hit_count(), 0);
        assert_eq!(stats.coalesced_batches, 3);

        // The surviving handle is now refused.
        assert_eq!(
            h.submit(QueryBatch::of_points(&[1])).unwrap_err(),
            ServeError::ShuttingDown
        );
        assert_eq!(h.insert(&[1], &[1]).unwrap_err(), ServeError::ShuttingDown);
    }

    #[test]
    fn retry_with_backoff_rides_out_overload_but_not_other_errors() {
        let config = ServiceConfig::new()
            .with_linger(Duration::ZERO)
            .with_max_queue_depth(2);
        let (service, gate, _log) = stub_service(&[1], config);
        let h = service.handle();

        gate.hold();
        let t1 = h.submit(QueryBatch::of_points(&[1])).unwrap();
        gate.await_entered(1);
        let t2 = h.submit(QueryBatch::of_points(&[1, 9])).unwrap();

        // The queue is full: a single-attempt retry surfaces the overload.
        let batch = QueryBatch::of_points(&[1]);
        let err = h
            .query_with_retry(&batch, 1, Duration::from_micros(50))
            .unwrap_err();
        assert!(matches!(err, ServeError::Overloaded { .. }));
        // Non-retryable errors return immediately regardless of attempts.
        let err = h
            .query_with_retry(
                &QueryBatch::of_points(&[1, 2, 3]),
                100,
                Duration::from_micros(50),
            )
            .unwrap_err();
        assert!(matches!(err, ServeError::TooLarge { .. }));

        // With attempts to spare, the retry rides the overload out.
        let retrier = {
            let (h, batch) = (h.clone(), batch.clone());
            std::thread::spawn(move || h.query_with_retry(&batch, 1000, Duration::from_micros(50)))
        };
        gate.release();
        assert_eq!(retrier.join().unwrap().unwrap().hit_count(), 1);
        assert!(t1.wait().is_ok() && t2.wait().is_ok());
        let stats = service.shutdown();
        assert!(stats.rejected_batches >= 1, "the overload was observed");
    }

    #[test]
    fn retry_delays_double_up_to_the_ceiling_with_deterministic_jitter() {
        let policy = RetryPolicy::new(10, Duration::from_millis(10))
            .with_max_backoff(Duration::from_millis(100));
        assert_eq!(policy.delay(1), Duration::from_millis(10));
        assert_eq!(policy.delay(2), Duration::from_millis(20));
        assert_eq!(policy.delay(4), Duration::from_millis(80));
        // The doubling clamps at the ceiling and stays there.
        assert_eq!(policy.delay(5), Duration::from_millis(100));
        assert_eq!(policy.delay(6), Duration::from_millis(100));
        assert_eq!(policy.delay(1000), Duration::from_millis(100));
        // The default ceiling bounds an uncapped schedule too.
        let default = RetryPolicy::new(0, Duration::from_micros(50));
        assert_eq!(default.max_attempts, 1, "attempt budget clamps to 1");
        assert_eq!(default.delay(64), Duration::from_micros(50) * 1024);

        // Jitter: deterministic per (seed, attempt), inside [0.5, 1.0)
        // of the unjittered delay, and different across seeds.
        let a = policy.with_jitter(7);
        let b = policy.with_jitter(8);
        for attempt in 1..=12 {
            let full = policy.delay(attempt);
            let jittered = a.delay(attempt);
            assert_eq!(jittered, a.delay(attempt), "deterministic");
            assert!(jittered >= full / 2 && jittered < full, "{jittered:?}");
        }
        assert_ne!(
            (1..=12).map(|n| a.delay(n)).collect::<Vec<_>>(),
            (1..=12).map(|n| b.delay(n)).collect::<Vec<_>>(),
            "different seeds spread out"
        );
    }

    #[test]
    fn checkpoints_ride_the_fence_and_gauges_mirror_the_backend() {
        let config = ServiceConfig::new().with_linger(Duration::ZERO);
        let (service, _gate, log) = stub_service(&[1, 2], config);
        let h = service.handle();

        // The stub is memory-only: checkpoint is a fenced no-op (Ok(0)),
        // not an error — callers need not know whether the backend under
        // the service happens to be durable.
        assert_eq!(h.checkpoint().unwrap(), 0);
        h.insert(&[5], &[50]).unwrap();
        assert_eq!(h.checkpoint().unwrap(), 0);
        assert!(
            !log.lock().unwrap().iter().any(|e| e.starts_with("points")),
            "no reads involved"
        );

        let stats = service.shutdown();
        assert_eq!(stats.checkpoints, 2);
        assert_eq!(stats.write_batches, 1, "checkpoints are not data writes");
        assert_eq!(stats.wal_bytes, 0, "memory-only backend has no WAL");
        assert_eq!(stats.snapshots, 0);
        assert_eq!(stats.memory.base_bytes, 16, "stub footprint mirrored");
        assert_eq!(stats.memory.total(), 16);
    }

    #[test]
    fn coalesce_cap_bounds_fused_submissions() {
        let config = ServiceConfig::new()
            .with_linger(Duration::ZERO)
            .with_max_coalesce_ops(4);
        let (service, gate, log) = stub_service(&[1], config);
        let h = service.handle();

        gate.hold();
        let t0 = h.submit(QueryBatch::of_points(&[1])).unwrap();
        gate.await_entered(1);
        // 3 + 3 ops queued: the cap of 4 forbids fusing both (3 + 3 > 4).
        let t1 = h.submit(QueryBatch::of_points(&[1, 1, 1])).unwrap();
        let t2 = h.submit(QueryBatch::of_points(&[1, 1, 1])).unwrap();
        gate.release();
        for t in [t0, t1, t2] {
            assert!(t.wait().is_ok());
        }
        let stats = service.shutdown();
        assert_eq!(
            stats.fused_submissions, 3,
            "cap kept the two 3-op batches apart"
        );
        assert_eq!(
            *log.lock().unwrap(),
            vec!["points:1", "points:3", "points:3"]
        );
    }

    #[test]
    fn empty_stats_helpers_return_zero_not_nan() {
        // A fresh service (or default snapshot) has every denominator at
        // 0 — the helpers must answer 0, never NaN.
        let stats = ServiceStats::default();
        assert_eq!(stats.mean_coalesced_batches(), 0.0);
        assert_eq!(stats.mean_fused_ops(), 0.0);
        assert_eq!(stats.mean_write_stall_s(), 0.0);
        assert_eq!(stats.max_write_stall_s(), 0.0);
        assert_eq!(stats.mean_linger_s(), 0.0);
        assert_eq!(stats.shard_imbalance_ratio(), 0.0);

        let (service, _gate, _log) =
            stub_service(&[1], ServiceConfig::new().with_linger(Duration::ZERO));
        let live = service.stats();
        assert!(!live.mean_write_stall_s().is_nan());
        assert_eq!(live.mean_write_stall_s(), 0.0);
        assert_eq!(live.mean_linger_s(), 0.0);
    }

    #[test]
    fn adaptive_linger_service_answers_exactly_and_tracks_decisions() {
        let config = ServiceConfig::new().with_adaptive_linger(
            crate::AdaptiveLingerConfig::new()
                .with_floor(Duration::ZERO)
                .with_ceiling(Duration::from_micros(100))
                .with_target_ops(64),
        );
        let (service, gate, _log) = stub_service(&[1, 2, 3, 4], config);
        let h = service.handle();

        gate.hold();
        let t1 = h.submit(QueryBatch::of_points(&[1])).unwrap();
        gate.await_entered(1);
        let t2 = h.submit(QueryBatch::of_points(&[2, 9])).unwrap();
        let t3 = h.submit(QueryBatch::new().range(1, 3)).unwrap();
        gate.release();

        assert_eq!(t1.wait().unwrap().hit_count(), 1);
        let o2 = t2.wait().unwrap();
        assert!(o2.results[0].is_hit() && !o2.results[1].is_hit());
        assert_eq!(t3.wait().unwrap().results[0].hit_count, 3);

        let stats = service.shutdown();
        assert!(stats.linger_decisions >= 2, "one budget per drain");
        // The policy's ceiling bounds every chosen budget.
        assert!(
            stats.linger_ns_total <= stats.linger_decisions * 100_000,
            "budgets stay under the ceiling: {stats:?}"
        );
        assert!(!stats.mean_linger_s().is_nan());
    }

    #[test]
    fn service_rebalances_a_hot_sharded_backend_behind_the_fence() {
        use gpu_device::Device;
        use rtx_query::{IndexSpec, Registry};

        let mut registry = Registry::new();
        rtx_delta::register_dynamic(&mut registry, rtx_delta::DynamicRtConfig::default());
        rtx_shard::install_sharding(&mut registry);
        let device = Device::default_eval();
        let keys: Vec<u64> = (0..2000).collect();
        let values: Vec<u64> = keys.iter().map(|k| k * 3).collect();
        let backend = registry
            .build_updatable("RXD@4", &IndexSpec::with_values(&device, &keys, &values))
            .unwrap();

        let config = ServiceConfig::new()
            .with_linger(Duration::ZERO)
            .with_rebalance(
                crate::RebalanceConfig::new()
                    .with_min_ops(256)
                    .with_max_imbalance_permille(1200),
            );
        let service = QueryService::start_updatable(backend, config);
        let h = service.handle();

        // Hammer one key: its shard accumulates nearly all routed ops.
        let hot = QueryBatch::of_points(&[42; 64]);
        for _ in 0..8 {
            assert_eq!(h.query(hot.clone()).unwrap().hit_count(), 64);
        }
        // Answers stay exact across the (fenced) migration, reads and
        // writes alike.
        let out = h
            .query(
                QueryBatch::new()
                    .points([0, 42, 1999, 77_777])
                    .range(100, 199)
                    .fetch_values(true),
            )
            .unwrap();
        assert_eq!(out.hit_count(), 3 + 1);
        assert_eq!(out.results[1].first_row, 42);
        assert_eq!(out.results[4].hit_count, 100);
        h.insert(&[5000], &[15000]).unwrap();
        assert!(h.query(QueryBatch::of_points(&[5000])).unwrap().results[0].is_hit());

        let stats = service.shutdown();
        assert!(
            stats.rebalances >= 1,
            "sustained imbalance must trigger a pass: {stats:?}"
        );
        assert!(stats.rebalanced_rows > 0, "{stats:?}");
        assert!(stats.shard_imbalance_permille > 0, "gauge populated");
    }
}
