//! The table service: a [`Table`] behind the same queue discipline as
//! [`QueryService`](crate::QueryService).
//!
//! One worker thread owns the table and drains a bounded submission queue
//! strictly in order, which is exactly the write fence the table's
//! transactional ingest needs: an [`IngestBatch`] never overtakes queries
//! queued before it and is fully visible (or fully rolled back) for every
//! query queued after it. Queries run the table's cost-based planner, and
//! the service mirrors the planner's routing decisions into its
//! [`ServiceStats`] — planned predicates, index routes, scan fallbacks —
//! next to the ingest counters.
//!
//! Admission control reuses the [`ServiceConfig`] knobs: a query costs its
//! predicate count, an ingest batch its operation count (each at least 1),
//! and submissions beyond [`ServiceConfig::max_queue_depth`] fail with
//! [`ServeError::Overloaded`] backpressure.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use rtx_query::{IndexError, IngestBatch, TableQuery};
use rtx_table::{IngestReport, Table, TableOutcome};

use crate::config::ServiceConfig;
use crate::error::ServeError;
use crate::service::{Counters, ServiceStats};

/// One queued table request.
enum TableRequest {
    Query {
        query: TableQuery,
        /// `Some(index)` forces every predicate through that index (the
        /// forced arm of planner experiments).
        forced: Option<String>,
        reply: mpsc::Sender<Result<TableOutcome, IndexError>>,
    },
    Ingest {
        batch: IngestBatch,
        reply: mpsc::Sender<Result<IngestReport, IndexError>>,
    },
}

impl TableRequest {
    /// Queue-admission cost (predicates / CDC operations, at least 1).
    fn cost(&self) -> usize {
        match self {
            TableRequest::Query { query, .. } => query.len().max(1),
            TableRequest::Ingest { batch, .. } => batch.len().max(1),
        }
    }
}

struct TableQueue {
    requests: VecDeque<TableRequest>,
    queued_cost: usize,
    shutdown: bool,
}

struct TableShared {
    queue: Mutex<TableQueue>,
    work: Condvar,
    config: ServiceConfig,
    counters: Counters,
}

impl TableShared {
    /// Admits one request into the queue (or rejects it), waking the
    /// worker on success — the same admission policy as the query
    /// service's.
    fn enqueue(&self, request: TableRequest) -> Result<(), ServeError> {
        let cost = request.cost();
        if cost > self.config.max_queue_depth {
            return Err(ServeError::TooLarge {
                ops: cost,
                max_queue_depth: self.config.max_queue_depth,
            });
        }
        {
            let mut q = self.queue.lock().expect("table service queue poisoned");
            if q.shutdown {
                return Err(ServeError::ShuttingDown);
            }
            if q.queued_cost + cost > self.config.max_queue_depth {
                self.counters
                    .rejected_batches
                    .fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Overloaded {
                    queued_ops: q.queued_cost,
                    max_queue_depth: self.config.max_queue_depth,
                });
            }
            q.queued_cost += cost;
            self.counters
                .peak_queued_ops
                .fetch_max(q.queued_cost as u64, Ordering::Relaxed);
            q.requests.push_back(request);
        }
        self.work.notify_one();
        Ok(())
    }
}

/// An admitted table query whose result has not been claimed yet.
#[derive(Debug)]
pub struct PendingTableQuery {
    reply: mpsc::Receiver<Result<TableOutcome, IndexError>>,
}

impl PendingTableQuery {
    /// Blocks until the worker has answered this submission.
    pub fn wait(self) -> Result<TableOutcome, ServeError> {
        match self.reply.recv() {
            Ok(result) => result.map_err(ServeError::Index),
            Err(mpsc::RecvError) => Err(ServeError::ShuttingDown),
        }
    }
}

/// A clonable client of a [`TableService`]: submits multi-predicate
/// queries and transactional CDC ingest batches.
#[derive(Clone)]
pub struct TableClient {
    shared: Arc<TableShared>,
}

impl TableClient {
    /// Submits a query and returns a ticket to claim the result with.
    pub fn submit(&self, query: TableQuery) -> Result<PendingTableQuery, ServeError> {
        self.submit_inner(query, None)
    }

    fn submit_inner(
        &self,
        query: TableQuery,
        forced: Option<String>,
    ) -> Result<PendingTableQuery, ServeError> {
        let ops = query.len() as u64;
        let (tx, rx) = mpsc::channel();
        self.shared.enqueue(TableRequest::Query {
            query,
            forced,
            reply: tx,
        })?;
        self.shared
            .counters
            .submitted_batches
            .fetch_add(1, Ordering::Relaxed);
        self.shared
            .counters
            .submitted_ops
            .fetch_add(ops, Ordering::Relaxed);
        Ok(PendingTableQuery { reply: rx })
    }

    /// Submits a query and blocks until its result arrives. Every
    /// predicate routes through the table's planner.
    pub fn query(&self, query: TableQuery) -> Result<TableOutcome, ServeError> {
        self.submit(query)?.wait()
    }

    /// [`query`](TableClient::query) with every predicate forced through
    /// the named index; errors when the index cannot serve a predicate.
    pub fn query_forced(&self, query: TableQuery, index: &str) -> Result<TableOutcome, ServeError> {
        self.submit_inner(query, Some(index.to_string()))?.wait()
    }

    /// Applies a CDC batch atomically through the write fence: the batch
    /// never overtakes queries queued before it, and queries queued after
    /// it see it fully applied or (on rejection) fully rolled back.
    /// Blocks until the batch is applied.
    pub fn ingest(&self, batch: IngestBatch) -> Result<IngestReport, ServeError> {
        let (tx, rx) = mpsc::channel();
        self.shared
            .enqueue(TableRequest::Ingest { batch, reply: tx })?;
        match rx.recv() {
            Ok(result) => result.map_err(ServeError::Index),
            Err(mpsc::RecvError) => Err(ServeError::ShuttingDown),
        }
    }

    /// A snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        self.shared.counters.snapshot()
    }

    /// Current queue occupancy in admission-cost units.
    pub fn queued_ops(&self) -> usize {
        self.shared
            .queue
            .lock()
            .expect("table service queue poisoned")
            .queued_cost
    }
}

/// A [`Table`] served to any number of concurrent clients by one worker
/// thread. See the [module docs](self) for the execution model.
///
/// Dropping the service signals shutdown, drains every queued request and
/// joins the worker — already-admitted submissions are still answered,
/// new ones are rejected with [`ServeError::ShuttingDown`].
pub struct TableService {
    shared: Arc<TableShared>,
    worker: Option<JoinHandle<()>>,
}

impl TableService {
    /// Starts a service owning `table`.
    pub fn start(table: Table, config: ServiceConfig) -> Self {
        let shared = Arc::new(TableShared {
            queue: Mutex::new(TableQueue {
                requests: VecDeque::new(),
                queued_cost: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            config,
            counters: Counters::default(),
        });
        shared
            .counters
            .mem_base_bytes
            .store(table.memory_bytes(), Ordering::Relaxed);
        let worker = std::thread::Builder::new()
            .name("rtx-serve-table".to_string())
            .spawn({
                let shared = Arc::clone(&shared);
                move || run_worker(&shared, table)
            })
            .expect("spawn table service worker");
        TableService {
            shared,
            worker: Some(worker),
        }
    }

    /// A new client handle (clonable, sendable across threads).
    pub fn handle(&self) -> TableClient {
        TableClient {
            shared: Arc::clone(&self.shared),
        }
    }

    /// A snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        self.shared.counters.snapshot()
    }

    /// Shuts the service down (draining the queue) and returns the final
    /// counters.
    pub fn shutdown(mut self) -> ServiceStats {
        self.stop();
        self.shared.counters.snapshot()
    }

    fn stop(&mut self) {
        {
            let mut q = self
                .shared
                .queue
                .lock()
                .expect("table service queue poisoned");
            q.shutdown = true;
        }
        self.shared.work.notify_all();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl Drop for TableService {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for TableService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TableService")
            .field("config", &self.shared.config)
            .finish()
    }
}

/// The worker loop: drain one request at a time, strictly in queue order
/// (the order itself is the fence), until shutdown *and* an empty queue.
fn run_worker(shared: &TableShared, mut table: Table) {
    loop {
        let request = {
            let mut q = shared.queue.lock().expect("table service queue poisoned");
            loop {
                if let Some(request) = q.requests.pop_front() {
                    q.queued_cost -= request.cost();
                    break request;
                }
                if q.shutdown {
                    return;
                }
                q = shared.work.wait(q).expect("table service queue poisoned");
            }
        };
        let c = &shared.counters;
        match request {
            TableRequest::Query {
                query,
                forced,
                reply,
            } => {
                let result = match forced {
                    Some(index) => table.query_forced(&query, &index),
                    None => table.query(&query),
                };
                if let Ok(outcome) = &result {
                    let planned = outcome.plan.choices.len() as u64;
                    let scans = outcome.plan.scan_fallbacks() as u64;
                    c.planned_predicates.fetch_add(planned, Ordering::Relaxed);
                    c.routed_predicates
                        .fetch_add(planned - scans, Ordering::Relaxed);
                    c.scan_fallbacks.fetch_add(scans, Ordering::Relaxed);
                    c.executed_ops.fetch_add(planned, Ordering::Relaxed);
                }
                let _ = reply.send(result);
            }
            TableRequest::Ingest { batch, reply } => {
                // The apply is the fence: everything queued behind this
                // batch waits exactly this long. Surface it like a write.
                let start = Instant::now();
                let result = table.ingest(&batch);
                let stall_ns = start.elapsed().as_nanos() as u64;
                c.ingest_batches.fetch_add(1, Ordering::Relaxed);
                c.write_batches.fetch_add(1, Ordering::Relaxed);
                c.write_stall_ns_total
                    .fetch_add(stall_ns, Ordering::Relaxed);
                c.write_stall_ns_max.fetch_max(stall_ns, Ordering::Relaxed);
                if result.is_err() {
                    c.ingest_rollbacks.fetch_add(1, Ordering::Relaxed);
                }
                c.mem_base_bytes
                    .store(table.memory_bytes(), Ordering::Relaxed);
                let _ = reply.send(result);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_device::Device;
    use rtindex_core::RtIndexConfig;
    use rtx_delta::DynamicRtConfig;
    use rtx_query::{Record, Registry, TableSchema};

    fn registry() -> Arc<Registry> {
        let mut registry = Registry::new();
        gpu_baselines::register_baselines(&mut registry);
        rtindex_core::register_rx(&mut registry, RtIndexConfig::default());
        rtx_delta::register_dynamic(
            &mut registry,
            DynamicRtConfig::default().with_rx(RtIndexConfig::default()),
        );
        Arc::new(registry)
    }

    fn table(records: &[Record]) -> Table {
        let schema = TableSchema::new(["id", "ts", "amount"])
            .with_value_column("amount")
            .with_index("id_ht", "id", "HT")
            .with_index("ts_rx", "ts", "RX")
            .with_index("id_rxd", "id", "RXD");
        Table::load(schema, &Device::default_eval(), registry(), records).unwrap()
    }

    fn seed_records(n: u64) -> Vec<Record> {
        (0..n).map(|k| vec![k, k * 3 % 257, k * 7]).collect()
    }

    #[test]
    fn queries_route_through_the_planner_and_counters_mirror_the_plan() {
        let service = TableService::start(table(&seed_records(128)), ServiceConfig::new());
        let h = service.handle();

        let out = h
            .query(
                TableQuery::new()
                    .point("id", 7)
                    .range("ts", 0, 50)
                    .range("amount", 0, 100) // unindexed → scan
                    .fetch_values(true),
            )
            .unwrap();
        assert_eq!(out.plan.routed_index(0), Some("id_ht"));
        assert_eq!(out.plan.routed_index(1), Some("ts_rx"));
        assert_eq!(out.plan.scan_fallbacks(), 1);
        assert_eq!(out.results[0].hit_count, 1);

        let forced = h
            .query_forced(TableQuery::new().point("id", 7), "id_rxd")
            .unwrap();
        assert_eq!(forced.plan.routed_index(0), Some("id_rxd"));
        assert_eq!(forced.results[0].first_row, out.results[0].first_row);

        let stats = service.shutdown();
        assert_eq!(stats.submitted_batches, 2);
        assert_eq!(stats.submitted_ops, 4);
        assert_eq!(stats.planned_predicates, 4);
        assert_eq!(stats.routed_predicates, 3);
        assert_eq!(stats.scan_fallbacks, 1);
        assert_eq!(stats.executed_ops, 4);
        assert_eq!(stats.ingest_batches, 0);
        assert!(stats.memory.base_bytes > 0, "table footprint mirrored");
    }

    #[test]
    fn ingest_is_fenced_and_rollbacks_are_counted() {
        let service = TableService::start(table(&seed_records(64)), ServiceConfig::new());
        let h = service.handle();

        // Concurrent clients: readers poll a key while a writer upserts
        // it; the fence guarantees every reader sees a consistent row.
        let report = h
            .ingest(IngestBatch::new().insert(vec![500, 1, 10]).delete(3))
            .unwrap();
        assert_eq!(report.inserted_rows, 1);
        assert_eq!(report.deleted_rows, 1);
        let out = h
            .query(TableQuery::new().point("id", 500).point("id", 3))
            .unwrap();
        assert_eq!(out.results[0].hit_count, 1, "the insert is visible");
        assert_eq!(out.results[1].hit_count, 0, "the delete is visible");

        // A query larger than the queue is rejected as non-retryable.
        let config = h.shared.config;
        let mut big = TableQuery::new();
        for _ in 0..=config.max_queue_depth {
            big = big.point("id", 1);
        }
        assert!(matches!(h.query(big), Err(ServeError::TooLarge { .. })));

        let threads: Vec<_> = (0..4)
            .map(|c| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..8u64 {
                        let key = 1000 + c;
                        h.ingest(IngestBatch::new().upsert(vec![key, i, i * 10]))
                            .unwrap();
                        let out = h.query(TableQuery::new().point("id", key)).unwrap();
                        assert_eq!(out.results[0].hit_count, 1, "fenced upsert");
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }

        let stats = service.shutdown();
        assert_eq!(stats.ingest_batches, 33);
        assert_eq!(stats.write_batches, 33);
        assert_eq!(stats.ingest_rollbacks, 0);
        assert!(stats.write_stall_ns_total > 0);

        // The surviving handle is refused after shutdown.
        assert_eq!(
            h.query(TableQuery::new().point("id", 1)).unwrap_err(),
            ServeError::ShuttingDown
        );
        assert_eq!(
            h.ingest(IngestBatch::new().delete(1)).unwrap_err(),
            ServeError::ShuttingDown
        );
    }

    #[test]
    fn rejected_batches_roll_back_behind_the_fence() {
        // A B+-tree index makes duplicate primary keys a rejection.
        let schema = TableSchema::new(["id", "ts"])
            .with_index("id_bt", "id", "B+")
            .with_index("id_rxd", "id", "RXD");
        let records: Vec<Record> = (0..32u64).map(|k| vec![k, k * 2]).collect();
        let table = Table::load(schema, &Device::default_eval(), registry(), &records).unwrap();
        let service = TableService::start(table, ServiceConfig::new());
        let h = service.handle();

        let err = h
            .ingest(IngestBatch::new().insert(vec![99, 0]).insert(vec![5, 0]))
            .unwrap_err();
        assert!(matches!(err, ServeError::Index(_)), "{err}");
        // Atomic: the first insert rolled back with the second.
        let out = h.query(TableQuery::new().point("id", 99)).unwrap();
        assert_eq!(out.results[0].hit_count, 0);
        let stats = service.shutdown();
        assert_eq!(stats.ingest_batches, 1);
        assert_eq!(stats.ingest_rollbacks, 1);
    }

    #[test]
    fn composite_predicates_are_served_and_fenced() {
        let schema = TableSchema::new(["id", "region", "ts", "amount"])
            .with_value_column("amount")
            .with_index("id_rxd", "id", "RXD")
            .with_composite_index("region_ts", ["region", "ts"], "SA{u32,u32}");
        let records: Vec<Record> = (0..96u64).map(|k| vec![k, k % 4, k * 5 % 128, k]).collect();
        let table = Table::load(schema, &Device::default_eval(), registry(), &records).unwrap();
        let service = TableService::start(table, ServiceConfig::new());
        let h = service.handle();

        // A composite prefix range routes to the composite index, never a
        // scan, and sums the fetched values of exactly the matching rows.
        let query = TableQuery::new()
            .prefix_range(["region", "ts"], vec![1], 0, 60)
            .prefix_tuple(["region", "ts"], vec![2, 10])
            .fetch_values(true);
        let out = h.query(query.clone()).unwrap();
        assert_eq!(out.plan.routed_index(0), Some("region_ts"));
        assert_eq!(out.plan.routed_index(1), Some("region_ts"));
        assert_eq!(out.plan.scan_fallbacks(), 0);
        let expected: (u32, u64) = records
            .iter()
            .enumerate()
            .filter(|(_, r)| r[1] == 1 && r[2] <= 60)
            .fold((0, 0), |(n, sum), (_, r)| (n + 1, sum + r[3]));
        assert_eq!(
            (out.results[0].hit_count, out.results[0].value_sum),
            expected
        );
        // (region, ts) = (2, 10) pins exactly row 2 in this data set.
        assert_eq!((out.results[1].first_row, out.results[1].hit_count), (2, 1));

        // Ingest behind the fence: the composite index rebuilds and the
        // fresh row is immediately visible to a prefix query.
        h.ingest(IngestBatch::new().insert(vec![500, 9, 9, 1]))
            .unwrap();
        let out = h
            .query(TableQuery::new().prefix_tuple(["region"], vec![9]))
            .unwrap();
        assert_eq!(out.results[0].hit_count, 1);
        service.shutdown();
    }
}
