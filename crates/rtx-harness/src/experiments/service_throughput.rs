//! Beyond-paper experiment: cross-client batch coalescing throughput.
//!
//! The paper submits one huge batch at a time; a service receives many
//! *small* batches from concurrent clients. This experiment measures what
//! the `rtx-serve` coalescing layer recovers of the paper's batch-size
//! advantage, sweeping client count × per-client batch size over the same
//! total operation volume:
//!
//! * **serial** — the no-service baseline: every client batch is executed
//!   directly on the backend, one at a time, in arrival (round-robin)
//!   order. Each small batch pays the full fixed per-submission cost
//!   (scatter/gather planning, per-shard kernel launches).
//! * **coalesced** — all clients submit concurrently to one
//!   [`QueryService`]; the coalescer fuses whatever is queued into one
//!   large submission and scatters the results back.
//!
//! The win comes from amortising fixed per-launch work over fused
//! submissions, so it grows with the client count (more concurrent
//! arrivals to fuse) and shrinks with the per-client batch size (large
//! client batches already amortise well on their own). Under load the
//! fusion is adaptive: while one fused batch executes, every newly
//! arriving client batch queues up and fuses into the next submission.
//!
//! The backend is sharded ([`SERVICE_BACKEND`]) so coalescing and sharded
//! execution compose — fused batches scatter across shards on the worker
//! pool.

use std::time::Instant;

use rtx_query::{IndexSpec, QueryBatch};
use rtx_serve::{QueryService, ServiceConfig};
use rtx_workloads as wl;

use crate::indexes::registry;
use crate::report::{fmt_ms, fmt_throughput, Table};
use crate::scale::ExperimentScale;

/// Client counts swept.
pub const CLIENT_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Per-client batch sizes (operations per submission) swept.
pub const BATCH_OPS: [usize; 2] = [32, 256];

/// The backend every cell runs against: RX sharded over 4 shards, so the
/// experiment exercises the fusion → scatter → gather composition.
pub const SERVICE_BACKEND: &str = "RX@4";

/// One measured (client count, batch size) cell.
#[derive(Debug, Clone)]
pub struct ServiceRun {
    /// Concurrent clients submitting.
    pub clients: usize,
    /// Operations per client batch.
    pub batch_ops: usize,
    /// Batches each client submits.
    pub batches_per_client: usize,
    /// Total operations over all clients (identical in both paths).
    pub total_ops: usize,
    /// Host milliseconds of the serial no-service baseline.
    pub serial_ms: f64,
    /// Host milliseconds of the coalesced service path (wall clock over
    /// all concurrent clients).
    pub service_ms: f64,
    /// Fused backend submissions the service needed.
    pub fused_submissions: u64,
    /// Mean operations per fused submission (the achieved batch size).
    pub mean_fused_ops: f64,
    /// Lookups that hit — identical in both paths by construction.
    pub hits: usize,
}

impl ServiceRun {
    /// Serial-baseline throughput in operations per second.
    pub fn serial_throughput(&self) -> f64 {
        throughput(self.total_ops, self.serial_ms)
    }

    /// Coalesced-service throughput in operations per second.
    pub fn service_throughput(&self) -> f64 {
        throughput(self.total_ops, self.service_ms)
    }

    /// Coalesced over serial throughput (> 1 means coalescing wins).
    pub fn speedup(&self) -> f64 {
        if self.service_ms <= 0.0 {
            return 0.0;
        }
        self.serial_ms / self.service_ms
    }
}

fn throughput(ops: usize, ms: f64) -> f64 {
    if ms <= 0.0 {
        return 0.0;
    }
    ops as f64 / (ms / 1e3)
}

/// The per-client submission schedule of one cell: `clients` lists of
/// `batches_per_client` point-lookup batches with a value fetch. Public so
/// `bench_service` drives the same workload shape the gated experiment
/// measures.
pub fn client_batches(
    keys: &[u64],
    clients: usize,
    batch_ops: usize,
    batches_per_client: usize,
    seed: u64,
) -> Vec<Vec<QueryBatch>> {
    (0..clients)
        .map(|c| {
            let queries = wl::point_lookups_with_hit_rate(
                keys,
                batch_ops * batches_per_client,
                0.8,
                seed + c as u64,
            );
            queries
                .chunks(batch_ops)
                .map(|chunk| QueryBatch::of_points(chunk).fetch_values(true))
                .collect()
        })
        .collect()
}

/// Runs one (client count, batch size) cell against a freshly built
/// backend pair (one for each path, so neither measurement sees a warmed
/// competitor).
fn run_cell(
    spec: &IndexSpec<'_>,
    keys: &[u64],
    clients: usize,
    batch_ops: usize,
    total_ops_target: usize,
    seed: u64,
) -> ServiceRun {
    let registry = registry();
    let batches_per_client = (total_ops_target / (clients * batch_ops)).max(1);
    let schedule = client_batches(keys, clients, batch_ops, batches_per_client, seed);
    let total_ops = clients * batches_per_client * batch_ops;

    // Serial baseline: submission order is round-robin over the clients —
    // the arrival order a fair scheduler would produce — with every batch
    // executed individually.
    let backend = registry.build(SERVICE_BACKEND, spec).expect("backend");
    let mut serial_hits = 0usize;
    let started = Instant::now();
    for round in 0..batches_per_client {
        for client in schedule.iter() {
            serial_hits += backend
                .execute(&client[round])
                .expect("serial batch")
                .hit_count();
        }
    }
    let serial_ms = started.elapsed().as_secs_f64() * 1e3;
    drop(backend);

    // Coalesced path: concurrent clients against one service. Zero linger:
    // under sustained load the queue itself provides the batching (arrivals
    // during one fused execution fuse into the next).
    let backend = registry.build(SERVICE_BACKEND, spec).expect("backend");
    let service = QueryService::start(
        backend,
        ServiceConfig::new().with_linger(std::time::Duration::ZERO),
    );
    let started = Instant::now();
    let service_hits: usize = std::thread::scope(|scope| {
        let workers: Vec<_> = schedule
            .iter()
            .map(|client| {
                let handle = service.handle();
                scope.spawn(move || {
                    let mut hits = 0usize;
                    for batch in client {
                        hits += handle
                            .query(batch.clone())
                            .expect("service batch")
                            .hit_count();
                    }
                    hits
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().expect("client")).sum()
    });
    let service_ms = started.elapsed().as_secs_f64() * 1e3;
    let stats = service.shutdown();

    assert_eq!(
        serial_hits, service_hits,
        "both paths must answer identically"
    );
    ServiceRun {
        clients,
        batch_ops,
        batches_per_client,
        total_ops,
        serial_ms,
        service_ms,
        fused_submissions: stats.fused_submissions,
        mean_fused_ops: stats.mean_fused_ops(),
        hits: serial_hits,
    }
}

/// Runs one cell of the sweep standalone. The CI perf gate
/// (`rtx_harness::perf::quick_suite`) measures only the
/// (max clients, smallest batch) cell and must not pay for the full sweep.
pub fn run_one(scale: &ExperimentScale, clients: usize, batch_ops: usize) -> ServiceRun {
    let device = crate::scaled_device(scale);
    let n = scale.default_keys();
    let keys = wl::dense_shuffled(n, scale.seed);
    let values = wl::value_column(n, scale.seed + 1);
    let spec = IndexSpec::with_values(&device, &keys, &values);
    run_cell(
        &spec,
        &keys,
        clients,
        batch_ops,
        scale.default_lookups(),
        scale.seed + 7,
    )
}

/// Runs the full client-count × batch-size sweep.
pub fn run_sweep(scale: &ExperimentScale) -> Vec<ServiceRun> {
    let device = crate::scaled_device(scale);
    let n = scale.default_keys();
    let keys = wl::dense_shuffled(n, scale.seed);
    let values = wl::value_column(n, scale.seed + 1);
    let spec = IndexSpec::with_values(&device, &keys, &values);
    let total_ops_target = scale.default_lookups();

    let mut runs = Vec::new();
    for &batch_ops in &BATCH_OPS {
        for &clients in &CLIENT_COUNTS {
            runs.push(run_cell(
                &spec,
                &keys,
                clients,
                batch_ops,
                total_ops_target,
                scale.seed + 7,
            ));
        }
    }
    runs
}

/// The `service_throughput` experiment: coalesced service vs per-client
/// serial submission over the sweep.
pub fn run(scale: &ExperimentScale) -> Vec<Table> {
    let runs = run_sweep(scale);
    let mut table = Table::new(
        format!(
            "Service throughput, coalesced vs serial, backend {SERVICE_BACKEND}, 2^{} keys, {} workers",
            scale.keys_exp,
            gpu_device::worker_count()
        ),
        &[
            "clients",
            "batch ops",
            "total ops",
            "serial [ms]",
            "serial ops/s",
            "coalesced [ms]",
            "coalesced ops/s",
            "speedup",
            "fused subs",
            "mean fused ops",
            "hits",
        ],
    );
    for run in &runs {
        table.push_row(vec![
            run.clients.to_string(),
            run.batch_ops.to_string(),
            run.total_ops.to_string(),
            fmt_ms(run.serial_ms),
            fmt_throughput(run.serial_throughput()),
            fmt_ms(run.service_ms),
            fmt_throughput(run.service_throughput()),
            format!("{:.2}x", run.speedup()),
            run.fused_submissions.to_string(),
            format!("{:.1}", run.mean_fused_ops),
            run.hits.to_string(),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_paths_answer_identically_across_the_sweep() {
        let scale = ExperimentScale::tiny();
        let runs = run_sweep(&scale);
        assert_eq!(runs.len(), CLIENT_COUNTS.len() * BATCH_OPS.len());
        for run in &runs {
            // run_cell asserts serial hits == service hits internally; here
            // the sweep-level invariants.
            assert!(run.hits > 0, "hit-rate workload must hit");
            assert_eq!(
                run.total_ops,
                run.clients * run.batches_per_client * run.batch_ops
            );
            assert!(run.fused_submissions > 0);
            assert!(run.mean_fused_ops >= run.batch_ops as f64 - 1e-9);
            assert!(run.serial_ms > 0.0 && run.service_ms > 0.0);
        }
        // The same total volume is swept at every client count.
        let tables = run(&scale);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows.len(), runs.len());
    }
}
