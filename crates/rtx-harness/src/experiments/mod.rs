//! One module per reproduced table/figure of the paper's evaluation.
//!
//! Every module exposes at least one `run(scale) -> Vec<Table>` function that
//! regenerates the corresponding result at the requested
//! [`ExperimentScale`](crate::scale::ExperimentScale), plus a smoke test at
//! tiny scale that checks the qualitative property the paper reports.

pub mod build_pipeline;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig3;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod planner_selection;
pub mod recovery_throughput;
pub mod service_latency;
pub mod service_throughput;
pub mod shard_scaling;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod update_throughput;
