//! # rtx-table
//!
//! The multi-index table layer of the RTIndeX reproduction: a "database,
//! not an index" surface over the per-index stack.
//!
//! A [`Table`] owns one SoA row store (named `u64` columns, dense table
//! rowIDs compatible with the global-rowID scheme) plus any number of
//! named secondary indexes, each built from a per-column
//! [`IndexDef::spec`](rtx_query::IndexDef) in the full registry name
//! grammar — one table can mix `"HT"`, `"RX:sah@4:hash"` and
//! `"RXD+wal:<path>"` across its columns.
//!
//! * **Ingest** is CDC-style and transactional: an
//!   [`IngestBatch`](rtx_query::IngestBatch) of insert / delete / upsert
//!   records applies to the row store and fans out to every index with
//!   all-or-nothing semantics — a rejected sub-batch rolls the
//!   already-applied index deltas back before the error surfaces (see
//!   [`table`] for the protocol). `rtx-serve`'s table service runs each
//!   batch behind its write fence.
//! * **Queries** are multi-predicate
//!   [`TableQuery`](rtx_query::TableQuery)s; the [`Planner`] scores every
//!   predicate against each index's capability flags, live memory usage
//!   and calibrated probe costs, routes it to the cheapest eligible index
//!   (points naturally land on hash backends, ranges on RX or SA), falls
//!   back to a row-store scan when no index qualifies, and records every
//!   decision in an [`ExplainPlan`](rtx_query::ExplainPlan).
//!
//! ```no_run
//! use std::sync::Arc;
//! use gpu_device::Device;
//! use rtx_query::{Registry, TableQuery, TableSchema};
//! use rtx_table::Table;
//!
//! # fn registry() -> Registry { Registry::new() }
//! let device = Device::default_eval();
//! let schema = TableSchema::new(["id", "ts", "amount"])
//!     .with_value_column("amount")
//!     .with_index("id_ht", "id", "HT")
//!     .with_index("ts_rx", "ts", "RX");
//! let table = Table::load(schema, &device, Arc::new(registry()), &[]).unwrap();
//! let out = table
//!     .query(&TableQuery::new().point("id", 42).range("ts", 100, 200))
//!     .unwrap();
//! println!("{}", out.plan);
//! ```

pub mod planner;
pub mod store;
pub mod table;

pub use planner::{Planner, ProbeCost};
pub use store::RowStore;
pub use table::{IngestReport, Table, TableOutcome, TableStats};
