//! # rtx-bench
//!
//! Criterion benchmarks regenerating the hot paths behind every figure and
//! table of the RTIndeX evaluation. The library part of the crate only holds
//! shared fixtures; the benchmarks themselves live under `benches/`:
//!
//! | bench target | paper result |
//! |---|---|
//! | `bench_build` | Figure 7b, Figure 10c, Table 4 (build/update cost) |
//! | `bench_point_lookup` | Figures 10a/10b, 12, 13, 14, 16, Table 5 |
//! | `bench_range_lookup` | Table 3, Figures 9, 17 |
//! | `bench_key_modes` | Figure 3a/3b, Figure 8 |
//! | `bench_primitives` | Figure 7a |
//! | `bench_baselines` | HT / B+ / SA sides of Figures 10–16 |
//! | `bench_figures` | end-to-end experiment harness runs (Fig. 11, 15, 18, Table 6) |
//!
//! Criterion measures the *host* execution time of the simulation. The
//! simulated device times that correspond to the paper's milliseconds are
//! produced by `rtx-harness`; the benches exist to track the performance of
//! this codebase itself and to stress the hot paths deterministically.

use gpu_device::Device;
use rtindex_core::{RtIndex, RtIndexConfig};
use rtx_workloads as wl;

/// A pre-built benchmark fixture: device, keys, values, lookups and the
/// default RX index.
pub struct BenchFixture {
    /// Simulated device.
    pub device: Device,
    /// Indexed key column.
    pub keys: Vec<u64>,
    /// Projected value column.
    pub values: Vec<u64>,
    /// Point-lookup batch.
    pub point_queries: Vec<u64>,
    /// Range-lookup batch.
    pub range_queries: Vec<(u64, u64)>,
    /// RX built with the paper's default configuration.
    pub rx: RtIndex,
}

impl BenchFixture {
    /// Builds a fixture with `2^keys_exp` dense shuffled keys and
    /// `2^lookups_exp` lookups.
    pub fn new(keys_exp: u32, lookups_exp: u32) -> Self {
        let device = Device::default_eval();
        let keys = wl::dense_shuffled(1 << keys_exp, 42);
        let values = wl::value_column(keys.len(), 43);
        let point_queries = wl::point_lookups(&keys, 1 << lookups_exp, 44);
        let range_queries = wl::range_lookups(keys.len() as u64, 1 << (lookups_exp - 3), 16, 45);
        let rx = RtIndex::build(&device, &keys, RtIndexConfig::default()).expect("RX build");
        BenchFixture {
            device,
            keys,
            values,
            point_queries,
            range_queries,
            rx,
        }
    }

    /// The default benchmark size (2^16 keys, 2^16 lookups): large enough to
    /// exercise the parallel pipeline, small enough for Criterion's
    /// repetitions.
    pub fn default_size() -> Self {
        Self::new(16, 16)
    }

    /// A small fixture for quick smoke benches.
    pub fn small() -> Self {
        Self::new(12, 12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_is_consistent() {
        let f = BenchFixture::small();
        assert_eq!(f.keys.len(), 1 << 12);
        assert_eq!(f.values.len(), f.keys.len());
        assert_eq!(f.point_queries.len(), 1 << 12);
        assert!(!f.range_queries.is_empty());
        let out =
            f.rx.point_lookup_batch(&f.point_queries, Some(&f.values))
                .unwrap();
        assert_eq!(out.hit_count(), f.point_queries.len());
    }
}
