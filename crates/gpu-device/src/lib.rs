//! # gpu-device
//!
//! A software model of an NVIDIA RTX GPU, used by the RTIndeX reproduction in
//! place of real hardware.
//!
//! The paper evaluates RTIndeX on four RTX GPUs (4090, A6000, 3090, 2080 Ti)
//! and explains every observed effect through hardware counters collected
//! with Nsight Systems / Nsight Compute: DRAM traffic, L1/L2 hit rates,
//! executed instructions, active warps per SM, and the throughput of the
//! dedicated raytracing cores. This crate models exactly those quantities:
//!
//! * [`DeviceSpec`] — the static description of a GPU (SMs, RT cores and
//!   their generation, memory bandwidth, L2 size, …) with presets for the
//!   four GPUs of Table 8;
//! * [`MemoryTracker`] / [`DeviceBuffer`] — device-memory accounting that
//!   reproduces the footprint numbers of Table 6 (current vs. peak usage);
//! * [`KernelStats`] / [`Profiler`] — the per-kernel counters that both the
//!   raytracing pipeline and the baseline indexes report;
//! * [`occupancy`] — the active-warps-per-SM and bandwidth-utilisation model
//!   behind Table 5;
//! * [`CostModel`] — converts counters into a *simulated* execution time for
//!   a given [`DeviceSpec`], which is what the experiment harness reports
//!   alongside host wall-clock time;
//! * [`executor`] — a parallel work launcher that mimics a CUDA kernel
//!   launch: a grid of logical threads is executed by a pool of host worker
//!   threads, and each logical thread's counters are merged into the kernel's
//!   [`KernelStats`].
//!
//! Nothing in this crate knows about raytracing or indexing; it is the shared
//! substrate below `optix-sim`, `rtindex-core` and `gpu-baselines`.

pub mod access;
pub mod build;
pub mod cost;
pub mod executor;
pub mod memory;
pub mod occupancy;
pub mod profiler;
pub mod spec;

pub use access::AccessClassifier;
pub use build::{staged_build_cost, BuildStage, BuildWork, StagedBuildCost, BUILD_STAGE_COUNT};
pub use cost::{CostModel, SimulatedTime};
pub use executor::{launch_kernel, parallel_map, parallel_tasks, worker_count, ThreadCtx};
pub use memory::{DeviceBuffer, MemoryTracker};
pub use occupancy::OccupancyModel;
pub use profiler::{KernelStats, Profiler};
pub use spec::{DeviceSpec, RtCoreGeneration};

/// Convenience bundle representing one simulated GPU: its spec, its memory
/// tracker and its profiler.
///
/// Every index structure in the reproduction is built against a [`Device`] so
/// that footprint and counter reporting is uniform across RX and the
/// baselines.
#[derive(Debug, Clone)]
pub struct Device {
    spec: DeviceSpec,
    memory: MemoryTracker,
    profiler: Profiler,
}

impl Device {
    /// Creates a device with the given spec and fresh counters.
    pub fn new(spec: DeviceSpec) -> Self {
        Device {
            spec,
            memory: MemoryTracker::new(),
            profiler: Profiler::new(),
        }
    }

    /// Creates the default evaluation device (RTX 4090, the paper's system S1).
    pub fn default_eval() -> Self {
        Device::new(DeviceSpec::rtx_4090())
    }

    /// The static GPU description.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// The device-memory tracker.
    pub fn memory(&self) -> &MemoryTracker {
        &self.memory
    }

    /// The profiler collecting kernel statistics.
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Allocates a device buffer of `len` default-initialised elements,
    /// accounted against this device's memory tracker.
    pub fn alloc<T: Clone + Default>(&self, len: usize) -> DeviceBuffer<T> {
        DeviceBuffer::zeroed(len, self.memory.clone())
    }

    /// Allocates a device buffer holding a copy of `data`.
    pub fn upload<T: Clone>(&self, data: &[T]) -> DeviceBuffer<T> {
        DeviceBuffer::from_slice(data, self.memory.clone())
    }

    /// The cost model for this device.
    pub fn cost_model(&self) -> CostModel {
        CostModel::new(self.spec.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_tracks_allocations() {
        let dev = Device::default_eval();
        assert_eq!(dev.memory().current_bytes(), 0);
        let buf = dev.alloc::<u64>(1024);
        assert_eq!(dev.memory().current_bytes(), 1024 * 8);
        drop(buf);
        assert_eq!(dev.memory().current_bytes(), 0);
        assert_eq!(dev.memory().peak_bytes(), 1024 * 8);
    }

    #[test]
    fn upload_copies_data() {
        let dev = Device::default_eval();
        let buf = dev.upload(&[1u32, 2, 3]);
        assert_eq!(buf.as_slice(), &[1, 2, 3]);
    }

    #[test]
    fn default_eval_is_ada_lovelace() {
        let dev = Device::default_eval();
        assert_eq!(dev.spec().rt_core_generation, RtCoreGeneration::Gen3);
    }
}
