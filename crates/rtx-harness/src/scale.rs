//! Experiment scaling.
//!
//! The paper indexes 2^26 keys and fires 2^27 lookups per experiment. The
//! software simulation cannot process that volume in reasonable CI time, so
//! every experiment is parameterised by an [`ExperimentScale`] that shifts
//! all sizes down by a constant factor while preserving the relationships
//! the experiments study (lookup count > key count, sweep ranges relative to
//! the base sizes, and so on).

/// Scaling parameters shared by all experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentScale {
    /// log2 of the default number of indexed keys (the paper: 26).
    pub keys_exp: u32,
    /// log2 of the default number of lookups per batch (the paper: 27).
    pub lookups_exp: u32,
    /// Seed for all workload generation.
    pub seed: u64,
}

impl ExperimentScale {
    /// The paper's original sizes (2^26 keys, 2^27 lookups). Only sensible on
    /// a large machine with a lot of patience.
    pub fn paper() -> Self {
        ExperimentScale {
            keys_exp: 26,
            lookups_exp: 27,
            seed: 0x5EED,
        }
    }

    /// Default simulation scale: 2^18 keys, 2^19 lookups. Runs every
    /// experiment in seconds while leaving the scaling trends intact.
    pub fn small() -> Self {
        ExperimentScale {
            keys_exp: 18,
            lookups_exp: 19,
            seed: 0x5EED,
        }
    }

    /// Medium scale for the benchmark harness: 2^20 keys, 2^21 lookups.
    pub fn medium() -> Self {
        ExperimentScale {
            keys_exp: 20,
            lookups_exp: 21,
            seed: 0x5EED,
        }
    }

    /// Tiny scale used by unit tests: 2^12 keys, 2^13 lookups.
    pub fn tiny() -> Self {
        ExperimentScale {
            keys_exp: 12,
            lookups_exp: 13,
            seed: 0x5EED,
        }
    }

    /// Parses a scale name (`paper`, `small`, `medium`, `tiny`).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "paper" => Some(Self::paper()),
            "small" => Some(Self::small()),
            "medium" => Some(Self::medium()),
            "tiny" => Some(Self::tiny()),
            _ => None,
        }
    }

    /// Default number of indexed keys.
    pub fn default_keys(&self) -> usize {
        1usize << self.keys_exp
    }

    /// Default number of lookups per batch.
    pub fn default_lookups(&self) -> usize {
        1usize << self.lookups_exp
    }

    /// A sweep of key-count exponents ending at the default key count,
    /// containing `points` values (used by build-size sweeps). The lowest
    /// exponent never drops below 8.
    pub fn key_exponent_sweep(&self, points: u32) -> Vec<u32> {
        let lo = self.keys_exp.saturating_sub(points - 1).max(8);
        (lo..=self.keys_exp).collect()
    }

    /// A sweep of lookup-count exponents ending at the default lookup count.
    pub fn lookup_exponent_sweep(&self, points: u32) -> Vec<u32> {
        let lo = self.lookups_exp.saturating_sub(points - 1).max(6);
        (lo..=self.lookups_exp).collect()
    }
}

impl Default for ExperimentScale {
    fn default() -> Self {
        Self::small()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_scales() {
        assert_eq!(ExperimentScale::from_name("paper").unwrap().keys_exp, 26);
        assert_eq!(
            ExperimentScale::from_name("small").unwrap(),
            ExperimentScale::small()
        );
        assert_eq!(
            ExperimentScale::from_name("tiny").unwrap().default_keys(),
            4096
        );
        assert!(ExperimentScale::from_name("huge").is_none());
        assert_eq!(ExperimentScale::default(), ExperimentScale::small());
    }

    #[test]
    fn sizes_follow_exponents() {
        let s = ExperimentScale::small();
        assert_eq!(s.default_keys(), 1 << 18);
        assert_eq!(s.default_lookups(), 1 << 19);
    }

    #[test]
    fn sweeps_end_at_defaults_and_respect_floors() {
        let s = ExperimentScale::tiny();
        let sweep = s.key_exponent_sweep(6);
        assert_eq!(*sweep.last().unwrap(), s.keys_exp);
        assert!(sweep.len() <= 6);
        assert!(*sweep.first().unwrap() >= 8);
        let lsweep = s.lookup_exponent_sweep(4);
        assert_eq!(*lsweep.last().unwrap(), s.lookups_exp);
    }
}
