//! Trait-conformance suite: one parameterized oracle check run against all
//! five backends — and sharded variants of them — through the registry.
//!
//! Every backend that accepts a key set must answer the *same* submissions
//! with the *same* results: homogeneous point batches, homogeneous range
//! batches, a single mixed batch (points + ranges + value fetch), chunked
//! execution, duplicate keys, misses and inverted ranges (uniformly empty).
//! Backends that reject a key set must do so via
//! `IndexError::UnsupportedKeySet` (B+ on duplicates and 64-bit keys, plain
//! or sharded), and backends without range support must fail range
//! submissions uniformly (HT, plain or sharded).

use proptest::prelude::*;
use rtindex::{
    registry, Device, ExecArena, IndexError, IndexSpec, QueryBatch, QueryOps, SecondaryIndex,
};
use rtx_workloads as wl;
use rtx_workloads::GroundTruth;

/// Sharded variants checked alongside the five plain backends: both
/// partitioners, shard counts above and below the worker count, every
/// backend family (the RXD variant goes through the updatable build path
/// elsewhere; here it serves reads).
const SHARDED_BACKENDS: [&str; 5] = ["RX@3", "HT@2", "B+@2", "SA@4:range", "RXD@2:range"];

/// Key-set shapes the paper evaluates, as (name, keys) pairs.
fn key_sets() -> Vec<(&'static str, Vec<u64>)> {
    vec![
        ("dense shuffled", wl::dense_shuffled(2000, 1)),
        (
            "sparse 32-bit",
            wl::sparse_uniform(1500, u32::MAX as u64, 2),
        ),
        ("sparse 64-bit", wl::sparse_uniform(1200, u64::MAX / 2, 3)),
        ("duplicates x8", wl::with_multiplicity(256, 8, 4)),
        ("empty", Vec::new()),
    ]
}

/// `count` point queries mixing hits and misses; pure misses on an empty
/// key set (where the workload generator rightfully refuses to sample).
fn sample_points(keys: &[u64], count: usize, hit_rate: f64, seed: u64) -> Vec<u64> {
    if keys.is_empty() {
        (0..count as u64).map(|i| i * 31 + 5).collect()
    } else {
        wl::point_lookups_with_hit_rate(keys, count, hit_rate, seed)
    }
}

/// A mixed batch over the key domain: hits, misses, narrow and wide ranges,
/// plus an inverted range (uniform empty-result semantics).
fn mixed_batch(keys: &[u64], seed: u64, fetch: bool) -> QueryBatch {
    let domain = keys.iter().copied().max().unwrap_or(0);
    let points = sample_points(keys, 200, 0.7, seed);
    let ranges: Vec<(u64, u64)> = (0..50u64)
        .map(|i| {
            let lower = (i * 37) % (domain + 10);
            (lower, lower + (i % 3) * 16)
        })
        .collect();
    QueryBatch::new()
        .points(points)
        .ranges(ranges)
        .point(domain.wrapping_add(12345)) // guaranteed miss
        .range(domain / 2 + 9, domain / 2) // inverted: empty everywhere
        .fetch_values(fetch)
}

fn conformance_check(set_name: &str, keys: &[u64], ix: &dyn SecondaryIndex, truth: &GroundTruth) {
    let name = ix.name();
    let label = format!("{name} on {set_name}");
    assert_eq!(ix.key_count(), keys.len(), "{label}: key count");

    // Homogeneous point batch with value fetch.
    let queries = sample_points(keys, 300, 0.6, 7);
    let points = QueryBatch::of_points(&queries).fetch_values(true);
    let out = ix.execute(&points).expect("point batch");
    assert_eq!(
        out.results,
        truth.expected_batch(&points),
        "{label}: points"
    );

    // Without a fetch the sums are zero everywhere.
    let unfetched = ix.execute(&QueryBatch::of_points(&queries)).unwrap();
    assert_eq!(unfetched.total_value_sum(), 0, "{label}: no-fetch sums");

    // The mixed submission: identical answers in submission order, the
    // inverted range empty, and chunked execution must change nothing but
    // the launch count.
    let mixed = mixed_batch(keys, 8, true);
    if ix.capabilities().range_lookups {
        let out = ix.execute(&mixed).expect("mixed batch");
        assert_eq!(out.results, truth.expected_batch(&mixed), "{label}: mixed");
        let inverted = out.results.last().expect("non-empty batch");
        assert!(!inverted.is_hit(), "{label}: inverted range must be empty");

        let chunked = ix.execute(&mixed.clone().with_chunk_size(17)).unwrap();
        assert_eq!(chunked.results, out.results, "{label}: chunked == whole");
        assert!(
            chunked.metrics.kernel.kernel_launches >= out.metrics.kernel.kernel_launches,
            "{label}: chunking cannot reduce launches"
        );
    } else {
        let err = ix.execute(&mixed).map(|_| ()).unwrap_err();
        assert!(
            matches!(err, IndexError::UnsupportedOperation { operation, .. }
                if operation == "range lookups"),
            "{label}: range rejection must be uniform"
        );
    }
}

#[test]
fn all_backends_agree_with_the_oracle_on_every_key_set() {
    let device = Device::default_eval();
    let registry = registry();
    assert_eq!(registry.backends(), vec!["B+", "HT", "RX", "RXD", "SA"]);
    assert!(registry.supports_sharding());

    for (set_name, keys) in key_sets() {
        let values = wl::value_column(keys.len(), 42);
        let truth = GroundTruth::new(&keys, Some(&values));
        let spec = IndexSpec::with_values(&device, &keys, &values);

        let has_duplicates = {
            let mut sorted = keys.clone();
            sorted.sort_unstable();
            sorted.windows(2).any(|w| w[0] == w[1])
        };
        let has_64bit = keys.iter().any(|&k| k > u32::MAX as u64);

        let mut served = 0;
        let all_names = registry
            .backends()
            .into_iter()
            .map(str::to_string)
            .chain(SHARDED_BACKENDS.iter().map(|s| s.to_string()));
        let mut attempted = 0;
        for name in all_names {
            attempted += 1;
            match registry.build(&name, &spec) {
                Ok(ix) => {
                    served += 1;
                    conformance_check(set_name, &keys, ix.as_ref(), &truth);
                }
                Err(err) => {
                    assert!(
                        err.is_unsupported_key_set(),
                        "{name} on {set_name}: build may only fail as unsupported, got {err}"
                    );
                    assert!(
                        name.starts_with("B+"),
                        "{set_name}: only B+ (plain or sharded) restricts key sets"
                    );
                    assert!(
                        has_duplicates || has_64bit,
                        "{set_name}: B+ rejection needs a reason"
                    );
                }
            }
        }
        assert_eq!(attempted, 10, "{set_name}: five plain + five sharded");
        let expected = if has_duplicates || has_64bit { 8 } else { 10 };
        assert_eq!(served, expected, "{set_name}: backend coverage");
    }
}

// The three execution entry points are one semantics: `execute`,
// `execute_in` with a dirty reused arena, and `execute_ops_in` over the
// pre-fused SoA form must return identical results and identical
// deterministic metrics (or the identical error) on every backend, plain
// and sharded. The arena is shared across every backend and every case so
// state leakage between submissions would be caught immediately.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn prop_arena_and_soa_paths_match_fresh_execute(
        keys in prop::collection::vec(0u64..800, 1..120),
        points in prop::collection::vec(0u64..1000, 0..40),
        ranges in prop::collection::vec((0u64..1000, 0u64..64), 0..12),
        invert in prop::collection::vec(any::<bool>(), 0..12),
        fetch in any::<bool>(),
        chunk in 0usize..40,
    ) {
        let device = Device::default_eval();
        let registry = registry();
        let values = wl::value_column(keys.len(), 42);
        let spec = IndexSpec::with_values(&device, &keys, &values);

        // Interleave points and ranges so the SoA order-tag bitmap is
        // genuinely exercised; flip some ranges to inverted (empty).
        let ranges: Vec<(u64, u64)> = ranges
            .iter()
            .enumerate()
            .map(|(i, &(l, w))| {
                if invert.get(i) == Some(&true) {
                    (l + w + 1, l) // lower > upper: uniformly empty
                } else {
                    (l, l + w)
                }
            })
            .collect();
        let mut batch = QueryBatch::new().fetch_values(fetch);
        for i in 0..points.len().max(ranges.len()) {
            if i < points.len() {
                batch = batch.point(points[i]);
            }
            if let Some(&(lower, upper)) = ranges.get(i) {
                batch = batch.range(lower, upper);
            }
        }
        if chunk > 0 {
            batch = batch.with_chunk_size(chunk);
        }
        let ops = QueryOps::from_batch(&batch);
        prop_assert_eq!(ops.len(), batch.len());

        let mut arena = ExecArena::new();
        let all_names = registry
            .backends()
            .into_iter()
            .map(str::to_string)
            .chain(SHARDED_BACKENDS.iter().map(|s| s.to_string()));
        for name in all_names {
            let Ok(ix) = registry.build(&name, &spec) else {
                continue; // B+ rejecting duplicate keys, checked elsewhere
            };
            let base = ix.execute(&batch);
            let with_arena = ix.execute_in(&batch, &mut arena);
            let from_ops = ix.execute_ops_in(&ops, &mut arena);
            match base {
                Ok(want) => {
                    let got = with_arena.expect("execute_in must succeed when execute does");
                    prop_assert_eq!(&got.results, &want.results, "{}: execute_in results", &name);
                    prop_assert_eq!(
                        got.metrics.kernel.kernel_launches,
                        want.metrics.kernel.kernel_launches,
                        "{}: execute_in launches", &name
                    );
                    prop_assert_eq!(
                        got.metrics.simulated_time_s,
                        want.metrics.simulated_time_s,
                        "{}: execute_in simulated time", &name
                    );
                    let got = from_ops.expect("execute_ops_in must succeed when execute does");
                    prop_assert_eq!(&got.results, &want.results, "{}: execute_ops_in results", &name);
                    prop_assert_eq!(
                        got.metrics.kernel.kernel_launches,
                        want.metrics.kernel.kernel_launches,
                        "{}: execute_ops_in launches", &name
                    );
                    prop_assert_eq!(
                        got.metrics.simulated_time_s,
                        want.metrics.simulated_time_s,
                        "{}: execute_ops_in simulated time", &name
                    );
                }
                Err(want) => {
                    prop_assert_eq!(with_arena.unwrap_err(), want.clone(), "{}: execute_in error", &name);
                    prop_assert_eq!(from_ops.unwrap_err(), want, "{}: execute_ops_in error", &name);
                }
            }
        }
    }
}

#[test]
fn updatable_backend_is_also_reachable_through_the_registry() {
    let device = Device::default_eval();
    let registry = registry();
    assert_eq!(registry.updatable_backends(), vec!["RXD"]);

    let keys = wl::dense_shuffled(512, 9);
    let values = wl::value_column(512, 10);
    // The plain updatable backend and its sharded variants behave alike.
    for name in ["RXD", "RXD@3", "RXD@2:range"] {
        let mut ix = registry
            .build_updatable(name, &IndexSpec::with_values(&device, &keys, &values))
            .unwrap();
        assert!(ix.capabilities().updates, "{name}");

        // A write followed by a mixed read, all through trait objects.
        ix.upsert(&[7, 8], &[700, 800]).unwrap();
        let out = ix
            .execute(&QueryBatch::new().point(7).range(7, 8).fetch_values(true))
            .unwrap();
        assert_eq!(out.results[0].value_sum, 700, "{name}");
        assert_eq!(out.results[1].value_sum, 1500, "{name}");
    }

    // The read-only path hands out the same backend.
    let ro = registry
        .build("RXD", &IndexSpec::with_values(&device, &keys, &values))
        .unwrap();
    assert_eq!(ro.name(), "RXD");
    assert_eq!(ro.key_count(), 512);
}
