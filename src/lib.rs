//! # rtindex
//!
//! A Rust reproduction of *"RTIndeX: Exploiting Hardware-Accelerated GPU
//! Raytracing for Database Indexing"* (PVLDB 16, 2023).
//!
//! RTIndeX (RX) answers point and range lookups on a GPU-resident column by
//! turning every key into a 3-D scene primitive and every lookup into a ray:
//! the bounding volume hierarchy the raytracing driver builds over the scene
//! *is* the index, and intersection tests — executed by dedicated raytracing
//! cores on real hardware — are the lookups.
//!
//! No RTX GPU is required (or used) here: the raytracing pipeline, the BVH
//! and the GPU itself are simulated in software by the crates this facade
//! re-exports. See `DESIGN.md` for the substitution argument and
//! `EXPERIMENTS.md` for how the paper's evaluation is reproduced.
//!
//! ## Quick start
//!
//! ```
//! use rtindex::{Device, RtIndex, RtIndexConfig};
//!
//! // The simulated GPU (an RTX 4090 by default).
//! let device = Device::default_eval();
//!
//! // A secondary index over a key column; the position of a key is its rowID.
//! let category = vec![26u64, 25, 29, 23, 29, 27];
//! let index = RtIndex::build(&device, &category, RtIndexConfig::default()).unwrap();
//!
//! // Range lookup [23, 25] -> rowIDs 3 and 1 (as in Figure 1 of the paper).
//! let out = index.range_lookup_batch(&[(23, 25)], None).unwrap();
//! assert_eq!(out.results[0].hit_count, 2);
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`rtx_math`] | float32 geometry, intersection tests, order-preserving key encodings |
//! | [`gpu_device`] | the simulated GPU: specs, memory accounting, counters, cost model |
//! | [`rtx_bvh`] | BVH builders, compaction, refitting, traversal |
//! | [`optix_sim`] | the OptiX-shaped pipeline API (accel build, ray-gen / any-hit programs) |
//! | [`rtindex_core`] | the RX index itself (key modes, primitives, ray strategies, lookups, updates) |
//! | [`rtx_delta`] | dynamic updates: delta buffer, tombstones, auto-compaction |
//! | [`gpu_baselines`] | the HT / B+ / SA baselines and the radix sort |
//! | [`rtx_workloads`] | workload generators and ground-truth oracles |
//! | [`rtx_harness`] | the experiment harness reproducing every table and figure |
//!
//! ## Dynamic updates
//!
//! The static [`RtIndex`] only refits or rebuilds. [`DynamicRtIndex`] layers
//! a mutable delta (GPU hash buffer + tombstones) over the immutable BVH and
//! compacts automatically:
//!
//! ```
//! use rtindex::{Device, DynamicRtConfig, DynamicRtIndex};
//!
//! let device = Device::default_eval();
//! let mut index =
//!     DynamicRtIndex::build(&device, &[26, 25, 29], &[0, 1, 2], DynamicRtConfig::default())
//!         .unwrap();
//! index.insert_batch(&[23], &[3]).unwrap();
//! index.delete_batch(&[29]).unwrap();
//! let out = index.point_lookup_batch(&[23, 29]).unwrap();
//! assert!(out.results[0].is_hit() && !out.results[1].is_hit());
//! ```

pub use gpu_baselines;
pub use gpu_device;
pub use optix_sim;
pub use rtindex_core;
pub use rtx_bvh;
pub use rtx_delta;
pub use rtx_harness;
pub use rtx_math;
pub use rtx_workloads;

// The most commonly used items, flattened for convenience.
pub use gpu_baselines::{BPlusTree, GpuIndex, SortedArray, WarpHashTable};
pub use gpu_device::{Device, DeviceSpec};
pub use rtindex_core::{
    BatchOutcome, Decomposition, KeyMode, LookupResult, PointRayStrategy, PrimitiveKind,
    RangeRayStrategy, RtIndex, RtIndexConfig, RtIndexError, TypedRtIndex, MISS,
};
pub use rtx_delta::{
    CompactionEvent, CompactionPolicy, CompactionTrigger, DynamicRtConfig, DynamicRtIndex,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_reexports_are_usable() {
        let device = Device::default_eval();
        let index = RtIndex::build(&device, &[5, 1, 9], RtIndexConfig::default()).unwrap();
        let out = index.point_lookup_batch(&[1, 2], None).unwrap();
        assert_eq!(out.results[0].first_row, 1);
        assert_eq!(out.results[1].first_row, MISS);
    }
}
