//! Figure 17 and the Section 4.9 cost decomposition: range lookups while
//! varying the number of qualifying entries.
//!
//! B+ wins range lookups (sideways leaf scans plus warp-level aggregation);
//! RX beats SA for small ranges but loses its advantage as ranges widen,
//! because it must intersect every qualifying triangle individually. Fitting
//! `LookupTime(s) = TraversalTime + s * IntersectTime` with non-negative
//! least squares decomposes RX's cost into the two phases, with traversal
//! dominating.

use rtindex_core::RtIndexConfig;
use rtx_workloads as wl;

use crate::indexes::{build_all_indexes, measure_ranges};
use crate::nnls::nnls_two_term;
use crate::report::{fmt_ms, Table};
use crate::scale::ExperimentScale;

/// Qualifying-entry exponents evaluated (the paper sweeps 2^0 .. 2^10).
pub fn qualifying_exponents(scale: &ExperimentScale) -> Vec<u32> {
    let max = scale.keys_exp.saturating_sub(4).min(10);
    (0..=max).step_by(2).collect()
}

/// Runs the range-lookup scaling experiment and the NNLS cost decomposition.
pub fn run(scale: &ExperimentScale) -> Vec<Table> {
    let device = crate::scaled_device(scale);
    let n = scale.default_keys();
    let keys = wl::dense_shuffled(n, scale.seed);
    let values = wl::value_column(n, scale.seed + 7);
    let lookup_count = (scale.default_lookups() / 16).max(16);
    let indexes = build_all_indexes(&device, &keys, Some(&values), RtIndexConfig::default());

    let mut table = Table::new(
        "Figure 17: range lookups, normalised cumulative lookup time [ms] per qualifying entry",
        &["qualifying entries [2^n]", "B+", "SA", "RX", "RX raw [ms]"],
    );
    let mut spans = Vec::new();
    let mut rx_raw_times = Vec::new();
    for exp in qualifying_exponents(scale) {
        let qualifying = 1u64 << exp;
        let ranges = wl::range_lookups(n as u64, lookup_count, qualifying, scale.seed + exp as u64);
        let mut row = vec![exp.to_string()];
        for name in ["B+", "SA", "RX"] {
            let cell = indexes
                .iter()
                .find(|ix| ix.name() == name)
                .and_then(|ix| measure_ranges(ix.as_ref(), &ranges, true))
                .map(|m| {
                    if name == "RX" {
                        spans.push(qualifying as f64);
                        rx_raw_times.push(m.sim_ms);
                    }
                    fmt_ms(m.sim_ms / qualifying as f64)
                })
                .unwrap_or_else(|| "N/A".to_string());
            row.push(cell);
        }
        row.push(fmt_ms(*rx_raw_times.last().unwrap_or(&0.0)));
        table.push_row(row);
    }

    let mut fit_table = Table::new(
        "Section 4.9: non-negative least-squares decomposition of the RX range-lookup cost",
        &[
            "TraversalTime [ms]",
            "IntersectTime [ms per entry]",
            "residual",
        ],
    );
    if spans.len() >= 2 {
        let fit = nnls_two_term(&spans, &rx_raw_times);
        fit_table.push_row(vec![
            format!("{:.3}", fit.constant),
            format!("{:.5}", fit.per_unit),
            format!("{:.3e}", fit.residual),
        ]);
    }
    vec![table, fit_table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bplus_wins_ranges_and_rx_normalised_time_decreases() {
        let device = crate::default_device();
        let n = 1usize << 13;
        let keys = wl::dense_shuffled(n, 1);
        let values = wl::value_column(n, 2);
        let indexes = build_all_indexes(&device, &keys, Some(&values), RtIndexConfig::default());
        let ranges_wide = wl::range_lookups(n as u64, 128, 256, 3);
        let get = |name: &str| crate::indexes::find_index(&indexes, name).unwrap();
        let bp = measure_ranges(get("B+"), &ranges_wide, true).unwrap();
        let rx = measure_ranges(get("RX"), &ranges_wide, true).unwrap();
        assert_eq!(bp.value_sum, rx.value_sum, "answers must agree");
        assert!(
            bp.sim_ms <= rx.sim_ms,
            "B+ must win wide range lookups (B+ {} vs RX {})",
            bp.sim_ms,
            rx.sim_ms
        );

        // RX's normalised (per-entry) time must drop as ranges widen:
        // the traversal cost amortises over more qualifying entries.
        let narrow = wl::range_lookups(n as u64, 128, 4, 4);
        let rx_narrow = measure_ranges(get("RX"), &narrow, true).unwrap();
        let per_entry_narrow = rx_narrow.sim_ms / 4.0;
        let per_entry_wide = rx.sim_ms / 256.0;
        assert!(per_entry_wide < per_entry_narrow);
    }

    #[test]
    fn nnls_decomposition_has_positive_traversal_share() {
        let tables = run(&ExperimentScale::tiny());
        assert_eq!(tables.len(), 2);
        let fit_row = &tables[1].rows[0];
        let traversal: f64 = fit_row[0].parse().unwrap();
        let intersect: f64 = fit_row[1].parse().unwrap();
        assert!(traversal >= 0.0 && intersect >= 0.0);
        assert!(
            traversal > 0.0,
            "the constant traversal term must be non-trivial"
        );
    }
}
