//! End-to-end experiment benchmarks: each target runs one full harness
//! experiment at tiny scale, so regressions anywhere in the reproduction
//! pipeline (workload generation, index builds, lookups, reporting) are
//! caught by `cargo bench`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtx_harness::{run_experiment, ExperimentScale};

fn bench_experiments(c: &mut Criterion) {
    let scale = ExperimentScale::tiny();
    let mut group = c.benchmark_group("harness_experiments");
    group.sample_size(10);
    for name in ["fig6", "table3", "fig11", "fig14", "fig15", "table6"] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, name| {
            b.iter(|| run_experiment(name, &scale).expect("known experiment"))
        });
    }
    group.finish();
}

/// Shared Criterion configuration: small sample counts and short measurement
/// windows keep `cargo bench --workspace` runnable in CI while still
/// producing stable medians for the simulated workloads.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_experiments
}
criterion_main!(benches);
