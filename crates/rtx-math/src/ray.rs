//! Rays with `tmin`/`tmax` clipping, mirroring the parameters accepted by
//! `optixTrace()`.

use crate::vec3::Vec3f;

/// A ray `p(t) = origin + t * direction`, restricted to the open interval
/// `tmin < t < tmax`.
///
/// The open interval matches OptiX behaviour: intersections exactly at the
/// interval end points are *not* reported, which is why RTIndeX always leaves
/// a gap between ray end points and the primitives they should (or should
/// not) hit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ray {
    /// Ray origin.
    pub origin: Vec3f,
    /// Ray direction. Does not need to be normalised; `t` is expressed in
    /// units of the direction's length, exactly as in OptiX.
    pub direction: Vec3f,
    /// Lower bound of the valid `t` interval (exclusive).
    pub tmin: f32,
    /// Upper bound of the valid `t` interval (exclusive).
    pub tmax: f32,
}

impl Ray {
    /// Creates a ray over the interval `(tmin, tmax)`.
    #[inline]
    pub fn new(origin: Vec3f, direction: Vec3f, tmin: f32, tmax: f32) -> Self {
        Ray {
            origin,
            direction,
            tmin,
            tmax,
        }
    }

    /// Creates a ray with the default interval `(0, +inf)`.
    #[inline]
    pub fn unbounded(origin: Vec3f, direction: Vec3f) -> Self {
        Ray::new(origin, direction, 0.0, f32::INFINITY)
    }

    /// Point at parameter `t`.
    #[inline]
    pub fn at(&self, t: f32) -> Vec3f {
        self.origin + self.direction * t
    }

    /// Returns whether `t` falls inside the ray's open interval.
    #[inline]
    pub fn contains(&self, t: f32) -> bool {
        t > self.tmin && t < self.tmax
    }

    /// Reciprocal direction, used by the slab test. Components whose
    /// direction is zero map to `±inf`, which the slab test handles
    /// correctly thanks to IEEE-754 semantics.
    #[inline]
    pub fn inv_direction(&self) -> Vec3f {
        Vec3f::new(
            1.0 / self.direction.x,
            1.0 / self.direction.y,
            1.0 / self.direction.z,
        )
    }

    /// Returns a copy of the ray with a narrowed `tmax`. Used by closest-hit
    /// traversal to shrink the search interval after each accepted hit.
    #[inline]
    pub fn with_tmax(&self, tmax: f32) -> Ray {
        Ray { tmax, ..*self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_evaluation() {
        let r = Ray::unbounded(Vec3f::new(1.0, 0.0, 0.0), Vec3f::new(0.0, 2.0, 0.0));
        assert_eq!(r.at(0.0), Vec3f::new(1.0, 0.0, 0.0));
        assert_eq!(r.at(1.5), Vec3f::new(1.0, 3.0, 0.0));
    }

    #[test]
    fn interval_is_open() {
        let r = Ray::new(Vec3f::ZERO, Vec3f::new(1.0, 0.0, 0.0), 1.0, 2.0);
        assert!(!r.contains(1.0));
        assert!(!r.contains(2.0));
        assert!(r.contains(1.5));
        assert!(!r.contains(0.5));
        assert!(!r.contains(2.5));
    }

    #[test]
    fn unbounded_covers_positive_axis() {
        let r = Ray::unbounded(Vec3f::ZERO, Vec3f::new(1.0, 0.0, 0.0));
        assert!(r.contains(1e-30));
        assert!(r.contains(1e30));
        assert!(!r.contains(0.0));
        assert!(!r.contains(-1.0));
    }

    #[test]
    fn inv_direction_handles_zero_components() {
        let r = Ray::unbounded(Vec3f::ZERO, Vec3f::new(1.0, 0.0, 0.0));
        let inv = r.inv_direction();
        assert_eq!(inv.x, 1.0);
        assert!(inv.y.is_infinite());
        assert!(inv.z.is_infinite());
    }

    #[test]
    fn with_tmax_narrows_interval() {
        let r = Ray::unbounded(Vec3f::ZERO, Vec3f::new(1.0, 0.0, 0.0));
        let narrowed = r.with_tmax(5.0);
        assert_eq!(narrowed.tmax, 5.0);
        assert_eq!(narrowed.origin, r.origin);
        assert_eq!(narrowed.tmin, r.tmin);
    }
}
