//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s panic-free locking
//! API: `lock()` returns the guard directly (a poisoned lock — a panic while
//! holding it — simply hands the data back, matching `parking_lot`'s
//! semantics of not poisoning at all).

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A reader–writer lock whose acquisitions never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn mutex_is_shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
    }
}
