//! LSD radix sort of key/rowID pairs.
//!
//! Stands in for CUB's `DeviceRadixSort`, which the paper uses to build the
//! SA and B+ baselines and to sort lookup batches. Two properties matter for
//! the experiments and are reproduced faithfully:
//!
//! * it sorts **out of place**, temporarily doubling the memory footprint
//!   (the SA build overhead of Table 6),
//! * its cost is linear in the input size and low compared to the lookup
//!   phase ("GPU-resident sorting is surprisingly cheap").

use gpu_device::{Device, KernelStats};

/// Metrics of one sort invocation.
#[derive(Debug, Clone, Copy, Default)]
pub struct RadixSortMetrics {
    /// Host wall-clock time of the sort.
    pub host_time: std::time::Duration,
    /// Simulated device time of the sort.
    pub simulated_time_s: f64,
    /// Temporary device memory allocated by the out-of-place passes.
    pub scratch_bytes: u64,
}

/// Sorts `keys` ascending, carrying `rowids` along, and returns the sorted
/// pairs plus the sort metrics. The inputs are left untouched.
pub fn radix_sort_pairs(
    device: &Device,
    keys: &[u64],
    rowids: &[u32],
) -> (Vec<u64>, Vec<u32>, RadixSortMetrics) {
    assert_eq!(
        keys.len(),
        rowids.len(),
        "keys and rowIDs must have equal length"
    );
    let start = std::time::Instant::now();
    let n = keys.len();

    // Out-of-place double buffers, accounted as device scratch.
    let scratch_bytes = (n * (8 + 4)) as u64;
    let scratch = device.alloc::<u8>(scratch_bytes as usize);

    let mut src: Vec<(u64, u32)> = keys.iter().copied().zip(rowids.iter().copied()).collect();
    let mut dst: Vec<(u64, u32)> = vec![(0, 0); n];

    // 8 passes over 8-bit digits.
    for pass in 0..8 {
        let shift = pass * 8;
        let mut histogram = [0usize; 256];
        for &(k, _) in &src {
            histogram[((k >> shift) & 0xFF) as usize] += 1;
        }
        let mut offsets = [0usize; 256];
        let mut running = 0usize;
        for (digit, &count) in histogram.iter().enumerate() {
            offsets[digit] = running;
            running += count;
        }
        for &(k, r) in &src {
            let digit = ((k >> shift) & 0xFF) as usize;
            dst[offsets[digit]] = (k, r);
            offsets[digit] += 1;
        }
        std::mem::swap(&mut src, &mut dst);
    }
    drop(scratch);

    // Charge the sort to the device: 8 passes read + write every pair.
    let pair_bytes = (n * 12) as u64;
    let stats = KernelStats {
        threads_launched: n as u64,
        kernel_launches: 8,
        instructions: n as u64 * 8 * 4,
        dram_bytes_read: pair_bytes * 8,
        dram_bytes_written: pair_bytes * 8,
        ..KernelStats::new()
    };
    let simulated = device.cost_model().simulated_time(&stats);
    device.profiler().record_kernel(stats);

    let (sorted_keys, sorted_rows): (Vec<u64>, Vec<u32>) = src.into_iter().unzip();
    (
        sorted_keys,
        sorted_rows,
        RadixSortMetrics {
            host_time: start.elapsed(),
            simulated_time_s: simulated.as_seconds(),
            scratch_bytes,
        },
    )
}

/// Sorts a plain lookup batch (keys only), returning the sorted copy and the
/// sort metrics. Used by experiments that evaluate sorted lookups.
pub fn radix_sort_keys(device: &Device, keys: &[u64]) -> (Vec<u64>, RadixSortMetrics) {
    let rowids: Vec<u32> = (0..keys.len() as u32).collect();
    let (sorted, _, metrics) = radix_sort_pairs(device, keys, &rowids);
    (sorted, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_random_pairs_correctly() {
        let device = Device::default_eval();
        let keys: Vec<u64> = (0..1000u64).map(|i| (i * 2654435761) % 4096).collect();
        let rowids: Vec<u32> = (0..1000).collect();
        let (sorted, rows, metrics) = radix_sort_pairs(&device, &keys, &rowids);
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
        // Every (key, row) pair must still correspond to the original data.
        for (k, r) in sorted.iter().zip(rows.iter()) {
            assert_eq!(keys[*r as usize], *k);
        }
        assert!(metrics.scratch_bytes > 0);
        assert!(metrics.simulated_time_s > 0.0);
    }

    #[test]
    fn sort_is_stable_for_equal_keys() {
        let device = Device::default_eval();
        let keys = vec![7u64, 7, 7, 3, 3, 9];
        let rowids: Vec<u32> = (0..6).collect();
        let (sorted, rows, _) = radix_sort_pairs(&device, &keys, &rowids);
        assert_eq!(sorted, vec![3, 3, 7, 7, 7, 9]);
        // Stability: equal keys keep their original relative order.
        assert_eq!(rows, vec![3, 4, 0, 1, 2, 5]);
    }

    #[test]
    fn sorts_full_64bit_range() {
        let device = Device::default_eval();
        let keys = vec![u64::MAX, 0, 1 << 63, 42, u64::MAX - 1];
        let rowids: Vec<u32> = (0..5).collect();
        let (sorted, _, _) = radix_sort_pairs(&device, &keys, &rowids);
        assert_eq!(sorted, vec![0, 42, 1 << 63, u64::MAX - 1, u64::MAX]);
    }

    #[test]
    fn empty_input_is_fine() {
        let device = Device::default_eval();
        let (sorted, rows, _) = radix_sort_pairs(&device, &[], &[]);
        assert!(sorted.is_empty());
        assert!(rows.is_empty());
    }

    #[test]
    fn keys_only_helper_matches_pairs() {
        let device = Device::default_eval();
        let keys = vec![5u64, 1, 9, 1];
        let (sorted, _) = radix_sort_keys(&device, &keys);
        assert_eq!(sorted, vec![1, 1, 5, 9]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        let device = Device::default_eval();
        let _ = radix_sort_pairs(&device, &[1, 2], &[0]);
    }
}
