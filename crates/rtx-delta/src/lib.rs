//! # rtx-delta
//!
//! Dynamic updates for the RT index: a delta buffer, tombstones and
//! automatic compaction layered over the static [`RtIndex`].
//!
//! The RTIndeX paper's headline limitation is that the BVH *is* the index:
//! OptiX only supports in-place refits (same key count) or full rebuilds, so
//! the static index cannot insert or delete. Production index engines solve
//! the same problem with an LSM-style split — a small mutable layer over a
//! large immutable base — and this crate brings that pattern to the RT
//! index:
//!
//! * **base** — an immutable [`RtIndex`] (BVH over the scene), queried
//!   through the masked-lookup reconciliation hooks of `rtindex-core`;
//! * **delta** — a [`DeltaBuffer`]: a WarpCore-style GPU hash table
//!   (sharing `gpu_baselines`' slot hash and probing-group width) holding
//!   freshly inserted `(key, rowID, value)` entries;
//! * **tombstones** — deletes clear a validity bit per base row (the
//!   any-hit program discards dead rows) and tombstone delta slots;
//! * **compaction** — once the [`CompactionPolicy`] trips (delta too large
//!   or too many tombstones), the live key set is merged and the base is
//!   rebuilt through the ordinary `optixAccelBuild` path, charged by the
//!   same cost model as every other build in the reproduction.
//!
//! Lookups launch against both sides and reconcile per query: hit counts
//! and value sums add, tombstones mask base hits, and `first_row` stays the
//! minimum qualifying rowID — the same semantics as the static index.
//!
//! ```
//! use gpu_device::Device;
//! use rtx_delta::{DynamicRtConfig, DynamicRtIndex};
//!
//! let device = Device::default_eval();
//! let mut index = DynamicRtIndex::build(
//!     &device,
//!     &[10, 20, 30],
//!     &[1, 2, 3],
//!     DynamicRtConfig::default(),
//! )
//! .unwrap();
//!
//! index.insert_batch(&[40], &[4]).unwrap();
//! index.delete_batch(&[20]).unwrap();
//!
//! let out = index.point_lookup_batch(&[10, 20, 40]).unwrap();
//! assert!(out.results[0].is_hit());
//! assert!(!out.results[1].is_hit(), "deleted key misses");
//! assert_eq!(out.results[2].value_sum, 4, "inserted key found in the delta");
//! ```
//!
//! [`RtIndex`]: rtindex_core::RtIndex

pub mod adapter;
pub mod config;
pub mod delta_buffer;
pub mod dynamic;

pub use adapter::{register_dynamic, DynamicAdapter};
pub use config::{CompactionPolicy, CompactionTrigger, DynamicRtConfig};
pub use delta_buffer::{DeltaBuffer, DeltaEntry};
pub use dynamic::{CompactionEvent, DynamicRtIndex, UpdateOutcome, UpdateStats};

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_device::Device;
    use rtindex_core::{RtIndex, RtIndexError};
    use rtx_query::MISS;

    fn device() -> Device {
        Device::default_eval()
    }

    fn no_auto_compaction() -> DynamicRtConfig {
        DynamicRtConfig::default().with_policy(CompactionPolicy::never())
    }

    #[test]
    fn build_insert_lookup_round_trip() {
        let dev = device();
        let keys: Vec<u64> = (0..100).collect();
        let values: Vec<u64> = (0..100).map(|i| i * 10).collect();
        let mut index = DynamicRtIndex::build(&dev, &keys, &values, no_auto_compaction()).unwrap();
        assert_eq!(index.len(), 100);

        index.insert_batch(&[200, 201], &[7, 8]).unwrap();
        assert_eq!(index.len(), 102);
        assert_eq!(index.delta_len(), 2);

        let out = index.point_lookup_batch(&[0, 50, 200, 201, 999]).unwrap();
        assert_eq!(
            out.results[0],
            rtx_query::LookupResult {
                first_row: 0,
                hit_count: 1,
                value_sum: 0
            }
        );
        assert_eq!(out.results[1].value_sum, 500);
        assert_eq!(
            out.results[2].first_row, 100,
            "delta rows continue after the base"
        );
        assert_eq!(out.results[2].value_sum, 7);
        assert_eq!(out.results[3].value_sum, 8);
        assert!(!out.results[4].is_hit());
        assert!(out.metrics.simulated_time_s > 0.0);
        assert!(
            out.metrics.kernel.kernel_launches >= 2,
            "base launch + delta probe kernel"
        );
    }

    #[test]
    fn deletes_tombstone_base_and_delta() {
        let dev = device();
        let keys: Vec<u64> = (0..64).collect();
        let values = vec![1u64; 64];
        let mut index = DynamicRtIndex::build(&dev, &keys, &values, no_auto_compaction()).unwrap();
        index.insert_batch(&[100, 101], &[5, 6]).unwrap();

        let outcome = index.delete_batch(&[10, 100, 777]).unwrap();
        assert_eq!(outcome.deleted_rows, 2);
        assert_eq!(index.dead_base_rows(), 1);
        assert_eq!(index.delta_len(), 1);
        assert_eq!(index.len(), 64);

        let out = index.point_lookup_batch(&[10, 100, 101, 11]).unwrap();
        assert!(!out.results[0].is_hit());
        assert!(!out.results[1].is_hit());
        assert!(out.results[2].is_hit());
        assert!(out.results[3].is_hit());

        // Deleting again is a no-op (idempotent).
        let outcome = index.delete_batch(&[10, 100]).unwrap();
        assert_eq!(outcome.deleted_rows, 0);
    }

    #[test]
    fn duplicate_keys_split_across_base_and_delta_are_aggregated() {
        let dev = device();
        // Key 7 appears twice in the base.
        let keys = vec![7u64, 1, 7, 2];
        let values = vec![10u64, 0, 20, 0];
        let mut index = DynamicRtIndex::build(&dev, &keys, &values, no_auto_compaction()).unwrap();
        // ... and twice more in the delta.
        index.insert_batch(&[7, 7], &[30, 40]).unwrap();

        let out = index.point_lookup_batch(&[7]).unwrap();
        assert_eq!(out.results[0].hit_count, 4);
        assert_eq!(out.results[0].value_sum, 100);
        assert_eq!(out.results[0].first_row, 0);

        // Deleting the key removes all four copies.
        let outcome = index.delete_batch(&[7]).unwrap();
        assert_eq!(outcome.deleted_rows, 4);
        assert!(!index.point_lookup_batch(&[7]).unwrap().results[0].is_hit());
    }

    #[test]
    fn delete_then_reinsert_resurrects_only_the_new_row() {
        let dev = device();
        let mut index =
            DynamicRtIndex::build(&dev, &[5, 6], &[50, 60], no_auto_compaction()).unwrap();
        index.delete_batch(&[5]).unwrap();
        index.insert_batch(&[5], &[555]).unwrap();

        let out = index.point_lookup_batch(&[5]).unwrap();
        assert_eq!(
            out.results[0].hit_count, 1,
            "only the reinserted row is live"
        );
        assert_eq!(out.results[0].value_sum, 555);
        assert_eq!(
            out.results[0].first_row, 2,
            "fresh row, not the tombstoned base row"
        );
    }

    #[test]
    fn range_lookups_span_base_and_delta_and_respect_tombstones() {
        let dev = device();
        let keys: Vec<u64> = (0..50).map(|i| i * 2).collect(); // evens 0..98
        let values = vec![1u64; 50];
        let mut index = DynamicRtIndex::build(&dev, &keys, &values, no_auto_compaction()).unwrap();
        index.insert_batch(&[1, 3, 5], &[1, 1, 1]).unwrap(); // odds in the delta
        index.delete_batch(&[2, 4]).unwrap(); // tombstone two evens

        let out = index.range_lookup_batch(&[(0, 6), (90, 200)]).unwrap();
        // [0,6]: evens 0,6 live (2,4 dead) + odds 1,3,5 -> 5 hits.
        assert_eq!(out.results[0].hit_count, 5);
        assert_eq!(out.results[0].first_row, 0);
        // [90,200]: evens 90..98 -> 5 hits.
        assert_eq!(out.results[1].hit_count, 5);
        // Inverted ranges answer empty on every backend, base and delta
        // alike (the uniform semantics of the query layer).
        let out = index.range_lookup_batch(&[(60, 10)]).unwrap();
        assert_eq!(out.results[0].hit_count, 0);
        assert!(!out.results[0].is_hit());
    }

    #[test]
    fn upsert_replaces_existing_entries() {
        let dev = device();
        let mut index =
            DynamicRtIndex::build(&dev, &[1, 1, 2], &[10, 11, 20], no_auto_compaction()).unwrap();
        let outcome = index.upsert_batch(&[1, 3], &[100, 300]).unwrap();
        assert_eq!(outcome.deleted_rows, 2, "both copies of key 1");
        assert_eq!(outcome.inserted_rows, 2);

        let out = index.point_lookup_batch(&[1, 2, 3]).unwrap();
        assert_eq!(out.results[0].hit_count, 1);
        assert_eq!(out.results[0].value_sum, 100);
        assert_eq!(out.results[1].value_sum, 20);
        assert_eq!(out.results[2].value_sum, 300);
    }

    #[test]
    fn delta_overflow_triggers_automatic_compaction() {
        let dev = device();
        let policy = CompactionPolicy {
            max_delta_entries: 8,
            max_delta_fraction: f64::INFINITY,
            max_delete_ratio: f64::INFINITY,
        };
        let keys: Vec<u64> = (0..32).collect();
        let values = vec![0u64; 32];
        let mut index = DynamicRtIndex::build(
            &dev,
            &keys,
            &values,
            DynamicRtConfig::default().with_policy(policy),
        )
        .unwrap();

        let first = index
            .insert_batch(&(100..107).collect::<Vec<u64>>(), &[1; 7])
            .unwrap();
        assert!(first.compaction.is_none());
        let second = index.insert_batch(&[107], &[1]).unwrap();
        let event = second.compaction.expect("8 delta entries must trigger");
        assert_eq!(event.trigger, CompactionTrigger::DeltaOverflow);
        assert_eq!(event.merged_delta_entries, 8);
        assert_eq!(event.live_rows, 40);
        assert!(event.simulated_build_s > 0.0);
        assert_eq!(index.delta_len(), 0);
        assert_eq!(index.base_rows(), 40);
        assert_eq!(index.compaction_count(), 1);

        // Everything is still findable, now in the base.
        let out = index
            .point_lookup_batch(&(100..108).collect::<Vec<u64>>())
            .unwrap();
        assert_eq!(out.hit_count(), 8);
    }

    #[test]
    fn delete_ratio_triggers_automatic_compaction() {
        let dev = device();
        let policy = CompactionPolicy {
            max_delta_entries: usize::MAX,
            max_delta_fraction: f64::INFINITY,
            max_delete_ratio: 0.5,
        };
        let keys: Vec<u64> = (0..16).collect();
        let values = vec![0u64; 16];
        let mut index = DynamicRtIndex::build(
            &dev,
            &keys,
            &values,
            DynamicRtConfig::default().with_policy(policy),
        )
        .unwrap();

        let outcome = index.delete_batch(&(0..8).collect::<Vec<u64>>()).unwrap();
        let event = outcome.compaction.expect("half the base deleted");
        assert_eq!(event.trigger, CompactionTrigger::DeleteRatio);
        assert_eq!(event.dropped_base_tombstones, 8);
        assert_eq!(index.base_rows(), 8);
        assert_eq!(index.dead_base_rows(), 0);
        assert_eq!(index.len(), 8);
    }

    #[test]
    fn compaction_is_equivalent_to_a_fresh_build() {
        let dev = device();
        let keys: Vec<u64> = (0..64).collect();
        let values: Vec<u64> = (0..64).collect();
        let mut index = DynamicRtIndex::build(&dev, &keys, &values, no_auto_compaction()).unwrap();
        index.insert_batch(&[200, 100, 300], &[2, 1, 3]).unwrap();
        index.delete_batch(&[10, 20, 200]).unwrap();

        let live = index.live_entries();
        index.compact_now();
        assert_eq!(index.compaction_count(), 1);

        // The compacted column equals the pre-compaction live sequence,
        // renumbered densely in preserved order.
        let expected_keys: Vec<u64> = live.iter().map(|&(_, k, _)| k).collect();
        let expected_values: Vec<u64> = live.iter().map(|&(_, _, v)| v).collect();
        let after: Vec<(u32, u64, u64)> = index.live_entries();
        assert_eq!(after.len(), expected_keys.len());
        for (i, &(row, k, v)) in after.iter().enumerate() {
            assert_eq!(row as usize, i, "rows renumber densely");
            assert_eq!(k, expected_keys[i]);
            assert_eq!(v, expected_values[i]);
        }

        // ... and the rebuilt index answers exactly like a from-scratch
        // static build over the live columns.
        let fresh = RtIndex::build(&dev, &expected_keys, index.config().rx).unwrap();
        let queries: Vec<u64> = (0..320).collect();
        let dynamic_out = index.point_lookup_batch(&queries).unwrap();
        let fresh_out = fresh
            .point_lookup_batch(&queries, Some(&values_of(&after)))
            .unwrap();
        assert_eq!(dynamic_out.results, fresh_out.results);
    }

    fn values_of(entries: &[(u32, u64, u64)]) -> Vec<u64> {
        entries.iter().map(|&(_, _, v)| v).collect()
    }

    #[test]
    fn memory_accounting_balances_after_compaction() {
        let dev = device();
        let keys: Vec<u64> = (0..256).collect();
        let values = vec![1u64; 256];
        let mut index = DynamicRtIndex::build(&dev, &keys, &values, no_auto_compaction()).unwrap();
        assert_eq!(dev.memory().current_bytes(), index.memory_bytes());

        index
            .insert_batch(&(1000..1100).collect::<Vec<u64>>(), &[1; 100])
            .unwrap();
        index.delete_batch(&(0..50).collect::<Vec<u64>>()).unwrap();
        assert_eq!(dev.memory().current_bytes(), index.memory_bytes());

        index.compact_now();
        assert_eq!(
            dev.memory().current_bytes(),
            index.memory_bytes(),
            "no delta/tombstone allocation may leak past a compaction"
        );
        assert_eq!(index.len(), 306);
    }

    #[test]
    fn empty_initial_index_grows_from_nothing() {
        let dev = device();
        let mut index = DynamicRtIndex::build(&dev, &[], &[], no_auto_compaction()).unwrap();
        assert!(index.is_empty());
        assert!(!index.point_lookup_batch(&[1]).unwrap().results[0].is_hit());

        index.insert_batch(&[1, 2, 3], &[10, 20, 30]).unwrap();
        assert_eq!(index.len(), 3);
        let out = index.point_lookup_batch(&[1, 2, 3]).unwrap();
        assert_eq!(out.hit_count(), 3);

        index.compact_now();
        assert_eq!(index.base_rows(), 3);
        let out = index.range_lookup_batch(&[(0, 10)]).unwrap();
        assert_eq!(out.results[0].hit_count, 3);
        assert_eq!(out.results[0].value_sum, 60);
    }

    #[test]
    fn validation_errors_surface() {
        let dev = device();
        assert!(matches!(
            DynamicRtIndex::build(&dev, &[1, 2], &[1], no_auto_compaction()),
            Err(RtIndexError::ValueColumnLengthMismatch {
                expected: 2,
                actual: 1
            })
        ));
        let mut index = DynamicRtIndex::build(&dev, &[1], &[1], no_auto_compaction()).unwrap();
        assert!(matches!(
            index.insert_batch(&[1, 2], &[1]),
            Err(RtIndexError::ValueColumnLengthMismatch { .. })
        ));
        assert!(matches!(
            index.upsert_batch(&[1], &[]),
            Err(RtIndexError::ValueColumnLengthMismatch { .. })
        ));
        // Keys outside the configured key mode are rejected up front so a
        // compaction rebuild can never fail.
        let naive = DynamicRtConfig::default()
            .with_rx(
                rtindex_core::RtIndexConfig::default().with_key_mode(rtindex_core::KeyMode::Naive),
            )
            .with_policy(CompactionPolicy::never());
        let mut index = DynamicRtIndex::build(&dev, &[1], &[1], naive).unwrap();
        assert!(matches!(
            index.insert_batch(&[1 << 24], &[0]),
            Err(RtIndexError::KeyOutOfRange { .. })
        ));
        // Deleting an unrepresentable key is a harmless miss, not an error.
        assert_eq!(index.delete_batch(&[1 << 24]).unwrap().deleted_rows, 0);
    }

    #[test]
    fn lookup_results_report_miss_constant() {
        let dev = device();
        let index = DynamicRtIndex::build(&dev, &[1], &[1], no_auto_compaction()).unwrap();
        let out = index.point_lookup_batch(&[9]).unwrap();
        assert_eq!(out.results[0].first_row, MISS);
    }
}
