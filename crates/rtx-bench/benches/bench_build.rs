//! Build-phase benchmarks: RX BVH construction vs. the baseline builds, plus
//! refitting updates vs. rebuilds (Figure 7b, Figure 10c, Table 4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_baselines::{BPlusTree, SortedArray, WarpHashTable};
use gpu_device::Device;
use rtindex_core::{RtIndex, RtIndexConfig};
use rtx_workloads as wl;

fn bench_index_builds(c: &mut Criterion) {
    let device = Device::default_eval();
    let mut group = c.benchmark_group("build");
    for exp in [12u32, 14, 16] {
        let keys = wl::dense_shuffled(1 << exp, 42);
        group.bench_with_input(BenchmarkId::new("RX", exp), &keys, |b, keys| {
            b.iter(|| RtIndex::build(&device, keys, RtIndexConfig::default()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("HT", exp), &keys, |b, keys| {
            b.iter(|| WarpHashTable::build(&device, keys).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("B+", exp), &keys, |b, keys| {
            b.iter(|| BPlusTree::build(&device, keys).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("SA", exp), &keys, |b, keys| {
            b.iter(|| SortedArray::build(&device, keys).unwrap())
        });
    }
    group.finish();
}

fn bench_update_vs_rebuild(c: &mut Criterion) {
    let device = Device::default_eval();
    let keys = wl::dense_shuffled(1 << 14, 42);
    let mut swapped = keys.clone();
    for pair in 0..swapped.len() / 2 {
        swapped.swap(2 * pair, 2 * pair + 1);
    }

    let mut group = c.benchmark_group("update");
    group.bench_function("refit_update", |b| {
        b.iter_batched(
            || RtIndex::build(&device, &keys, RtIndexConfig::default().updatable()).unwrap(),
            |mut index| index.update_keys(&swapped).unwrap(),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("full_rebuild", |b| {
        b.iter(|| RtIndex::build(&device, &swapped, RtIndexConfig::default()).unwrap())
    });
    group.finish();
}

/// Shared Criterion configuration: small sample counts and short measurement
/// windows keep `cargo bench --workspace` runnable in CI while still
/// producing stable medians for the simulated workloads.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_index_builds, bench_update_vs_rebuild
}
criterion_main!(benches);
