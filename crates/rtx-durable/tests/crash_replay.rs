//! Crash-replay equivalence: a durable index killed at *any* WAL offset —
//! record boundaries, torn mid-record tails, even single-byte prefixes —
//! must reopen to a state that is QueryBatch-exact (rowIDs included)
//! against an independent logical oracle.
//!
//! The crash simulator is byte-level: [`log_bytes`] flattens the live WAL,
//! the state directory is cloned, and [`write_log_bytes`] replaces the
//! clone's log with an arbitrary prefix. Reopening the clone exercises the
//! full recovery path (snapshot load, tail truncation, replay, annotation
//! healing). The oracle is an independent [`DynamicOracle`] built from the
//! *surviving* snapshot + log — read back **after** the reopen, because
//! recovery heals torn-off annotations by re-appending them.
//!
//! Covered here:
//! - every record boundary and representative torn offsets of a 1k-op
//!   mixed workload, without and with a mid-stream checkpoint;
//! - literally every byte offset of a smaller workload;
//! - a proptest sampling arbitrary offsets against both prepared states;
//! - background compaction (`Freeze`/`Swap` records and their healing);
//! - a sharded index crashed at root-journal offsets, compared against a
//!   never-crashed duplicate driven with the committed prefix.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use gpu_device::Device;
use proptest::prelude::*;
use rtx_delta::{register_dynamic, DynamicRtConfig};
use rtx_durable::{
    install_durability_with, log_bytes, read_latest_snapshot, read_log, write_log_bytes,
    DurableConfig, WalPayload, WalRecord,
};
use rtx_query::{IndexSpec, QueryBatch, Registry};
use rtx_workloads::{
    apply_mixed_op, dense_shuffled, mixed_ops, value_column, DynamicOracle, MixedOp,
    MixedWorkloadConfig,
};

/// A registry with the dynamic backend, sharding and durability installed.
/// Automatic checkpoints are off so the tests control snapshot placement.
fn registry(background: bool) -> Registry {
    let mut r = Registry::new();
    register_dynamic(
        &mut r,
        DynamicRtConfig::default().with_background_compaction(background),
    );
    rtx_shard::install_sharding(&mut r);
    install_durability_with(
        &mut r,
        DurableConfig::default().with_snapshot_wal_bytes(u64::MAX),
    );
    r
}

static SCRATCH: AtomicUsize = AtomicUsize::new(0);

/// A fresh scratch directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    let n = SCRATCH.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("rtx-crash-replay-{tag}-{}-{n}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Recursively copies a durable state directory (META, WAL segments,
/// snapshots, per-shard subtrees).
fn clone_dir(src: &Path, dst: &Path) {
    fs::create_dir_all(dst).expect("create clone dir");
    for entry in fs::read_dir(src).expect("read state dir") {
        let entry = entry.expect("dir entry");
        let to = dst.join(entry.file_name());
        if entry.file_type().expect("file type").is_dir() {
            clone_dir(&entry.path(), &to);
        } else {
            fs::copy(entry.path(), &to).expect("copy state file");
        }
    }
}

/// A live durable state captured just before the simulated crash: the
/// directory, the flattened WAL bytes and the workload's key domain.
struct LiveState {
    dir: PathBuf,
    bytes: Vec<u8>,
    domain: u64,
}

/// Builds a durable `RXD+wal:` index, drives `total_ops` mixed operations
/// through it (optionally checkpointing halfway) and captures the WAL.
fn build_live_state(
    total_ops: usize,
    domain: u64,
    seed: u64,
    background: bool,
    checkpoint_mid: bool,
) -> LiveState {
    let device = Device::default_eval();
    let registry = registry(background);
    let dir = scratch("live");
    let name = format!("RXD+wal:{}", dir.display());

    let n = (domain / 2) as usize;
    let keys = dense_shuffled(n, seed);
    let values = value_column(n, seed + 1);
    let mut index = registry
        .build_updatable(&name, &IndexSpec::with_values(&device, &keys, &values))
        .expect("durable create");

    let ops = mixed_ops(&MixedWorkloadConfig::uniform(total_ops, domain, seed));
    let mid = ops.len() / 2;
    for (i, op) in ops.iter().enumerate() {
        apply_mixed_op(index.as_mut(), op).expect("apply mixed op");
        if checkpoint_mid && i == mid {
            index.checkpoint().expect("mid-stream checkpoint");
        }
    }
    // Land any in-flight background rebuild so the log also ends with an
    // explicit `Swap` the crash sweep can cut through.
    index.await_reorganisation().expect("await rebuild");
    drop(index); // only the directory survives from here on

    let bytes = log_bytes(&dir.join("wal")).expect("flatten WAL");
    LiveState { dir, bytes, domain }
}

/// Rebuilds the logical truth from what actually survives on disk: the
/// latest intact snapshot plus every intact log record past its BSN.
///
/// Must be called **after** the reopen under test: recovery re-appends
/// annotations (`SyncCompact`/`Freeze`) that the crash tore off, and the
/// healed log is the state the reopened index actually embodies.
fn oracle_from_disk(dir: &Path) -> DynamicOracle {
    let (snap_bsn, keys, values) = match read_latest_snapshot(dir).expect("snapshot scan") {
        Some((snap, _bytes)) => {
            let (keys, values) = snap.columns();
            let values = values.unwrap_or_else(|| vec![0; keys.len()]);
            (snap.bsn, keys, values)
        }
        None => (0, Vec::new(), Vec::new()),
    };
    let mut oracle = DynamicOracle::new(&keys, &values);
    for record in read_log(&dir.join("wal")).expect("read surviving log") {
        if record.bsn <= snap_bsn {
            continue; // already inside the snapshot
        }
        match &record.payload {
            WalPayload::Insert { keys, values, .. } => oracle.insert_batch(keys, values),
            WalPayload::Delete { keys } => {
                oracle.delete_batch(keys);
            }
            WalPayload::Upsert { keys, values, .. } => {
                oracle.upsert_batch(keys, values);
            }
            WalPayload::Compact | WalPayload::SyncCompact => oracle.compact(),
            WalPayload::Freeze => oracle.begin_compaction(),
            WalPayload::Swap => oracle.finish_compaction(),
            WalPayload::Commit { .. } => {}
        }
    }
    oracle
}

/// The probe batch: every domain key plus guaranteed misses as points, and
/// stepped ranges, with values fetched — so `first_row`, `hit_count` and
/// `value_sum` are all compared for every lookup.
fn probe(domain: u64) -> QueryBatch {
    QueryBatch::new()
        .points(0..domain + 8)
        .ranges((0..domain).step_by(7).map(|lo| (lo, lo + 9)))
        .fetch_values(true)
}

/// Clones `state`, truncates the clone's WAL to `cut` bytes, reopens it and
/// checks QueryBatch-exactness against the disk oracle. With `resume`, also
/// writes through the reopened index and re-checks — recovery must leave an
/// append-clean log behind, not just a readable one.
fn check_crash(registry: &Registry, state: &LiveState, cut: usize, resume: bool) {
    let device = Device::default_eval();
    let crash = scratch("cut");
    clone_dir(&state.dir, &crash);
    write_log_bytes(&crash.join("wal"), &state.bytes[..cut]).expect("truncate clone WAL");

    let name = format!("RXD+wal:{}", crash.display());
    let mut reopened = registry
        .build_updatable(&name, &IndexSpec::keys_only(&device, &[]))
        .unwrap_or_else(|e| panic!("recovery at WAL offset {cut}: {e}"));
    let oracle = oracle_from_disk(&crash);
    let batch = probe(state.domain);
    assert_eq!(
        reopened.execute(&batch).expect("probe reopened").results,
        oracle.expected_batch(&batch),
        "crash at WAL offset {cut} of {}",
        state.bytes.len()
    );

    if resume {
        let fresh = [state.domain + 3, state.domain + 5];
        reopened
            .insert(&fresh, &[7, 11])
            .expect("post-recovery insert");
        reopened.delete(&fresh[..1]).expect("post-recovery delete");
        let oracle = oracle_from_disk(&crash);
        assert_eq!(
            reopened.execute(&batch).expect("probe resumed").results,
            oracle.expected_batch(&batch),
            "resumed traffic after crash at offset {cut}"
        );
    }
    drop(reopened);
    let _ = fs::remove_dir_all(&crash);
}

/// Every interesting crash offset of a WAL byte stream: each record
/// boundary plus, per record, a cut after one byte of the frame, a cut in
/// the middle, and a cut one byte short of complete.
fn crash_offsets(bytes: &[u8]) -> Vec<usize> {
    let mut offsets = vec![0];
    let mut off = 0;
    while let Some((_, next)) = WalRecord::decode(bytes, off) {
        offsets.push(off + 1);
        offsets.push(off + (next - off) / 2);
        offsets.push(next - 1);
        offsets.push(next);
        off = next;
    }
    assert_eq!(off, bytes.len(), "live WAL must decode end to end");
    offsets.sort_unstable();
    offsets.dedup();
    offsets
}

/// Decodes the record kinds present in a live WAL capture.
fn payload_kinds(bytes: &[u8]) -> Vec<&'static str> {
    let (records, _) = rtx_durable::decode_stream(bytes);
    records.iter().map(|r| r.payload.kind()).collect()
}

/// The two shared 1k-op prepared states (plain and mid-stream
/// checkpointed), built once and reused across the deterministic sweeps
/// and the proptest.
fn prepared_state(checkpointed: bool) -> &'static LiveState {
    static PLAIN: OnceLock<LiveState> = OnceLock::new();
    static CHECKPOINTED: OnceLock<LiveState> = OnceLock::new();
    let cell = if checkpointed { &CHECKPOINTED } else { &PLAIN };
    cell.get_or_init(|| {
        build_live_state(
            1000,
            192,
            0xC0FFEE + checkpointed as u64,
            false,
            checkpointed,
        )
    })
}

#[test]
fn recovery_is_exact_at_every_record_boundary_and_torn_offset() {
    let state = prepared_state(false);
    // The 1k-op stream must have tripped at least one policy compaction,
    // so the sweep cuts through annotation records too.
    assert!(
        payload_kinds(&state.bytes).contains(&"sync-compact"),
        "workload too small to trigger a policy compaction: {:?}",
        payload_kinds(&state.bytes)
    );
    let registry = registry(false);
    for cut in crash_offsets(&state.bytes) {
        check_crash(&registry, state, cut, true);
    }
}

#[test]
fn recovery_with_a_mid_stream_checkpoint_is_exact_on_both_sides() {
    let state = prepared_state(true);
    let (snap, _) = read_latest_snapshot(&state.dir)
        .expect("snapshot scan")
        .expect("mid-stream checkpoint wrote a snapshot");
    assert!(snap.bsn > 0, "snapshot must cover a log prefix");
    let registry = registry(false);
    // Crashes both before and after the checkpoint's position in the log:
    // early cuts recover purely from the snapshot (their records are all
    // covered), late cuts replay on top of it.
    for cut in crash_offsets(&state.bytes) {
        check_crash(&registry, state, cut, true);
    }
}

#[test]
fn recovery_is_exact_at_every_single_byte_offset() {
    let state = build_live_state(120, 48, 0xBEEF, false, false);
    let registry = registry(false);
    for cut in 0..=state.bytes.len() {
        check_crash(&registry, &state, cut, false);
    }
    let _ = fs::remove_dir_all(&state.dir);
}

#[test]
fn background_compaction_freeze_and_swap_records_replay_exactly() {
    let state = build_live_state(800, 128, 0xF00D, true, false);
    let kinds = payload_kinds(&state.bytes);
    assert!(
        kinds.contains(&"freeze") && kinds.contains(&"swap"),
        "background run must log freeze + swap records: {kinds:?}"
    );
    let registry = registry(true);
    for cut in crash_offsets(&state.bytes) {
        check_crash(&registry, &state, cut, true);
    }
    let _ = fs::remove_dir_all(&state.dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Random crash offsets — any byte position, against both prepared 1k-op
    /// states — recover to the exact oracle state and accept new traffic.
    #[test]
    fn recovery_is_exact_at_any_sampled_offset(frac in 0.0f64..1.0, checkpointed in 0u32..2) {
        let state = prepared_state(checkpointed == 1);
        let cut = ((state.bytes.len() + 1) as f64 * frac) as usize % (state.bytes.len() + 1);
        check_crash(&registry(false), state, cut, true);
    }
}

// --- sharded crash/recovery -------------------------------------------------

/// A sharded live state: the directory, the write-only op stream, the
/// initial columns, and how many leading ops the shard snapshots cover.
struct ShardedState {
    dir: PathBuf,
    ops: Vec<MixedOp>,
    keys: Vec<u64>,
    values: Vec<u64>,
    covered: usize,
}

/// Builds a durable `RXD@2+wal:` index and drives a write-only stream so op
/// `i` is exactly cross-shard update batch `i`. `checkpoint_at = Some(k)`
/// checkpoints after op `k`, so the snapshots cover ops `0..=k`.
fn build_sharded_state(checkpoint_at: Option<usize>) -> ShardedState {
    let device = Device::default_eval();
    let registry = registry(false);
    let dir = scratch("sharded");
    let name = format!("RXD@2+wal:{}", dir.display());

    let keys = dense_shuffled(64, 0xA11CE);
    let values = value_column(64, 0xB0B);
    let mut index = registry
        .build_updatable(&name, &IndexSpec::with_values(&device, &keys, &values))
        .expect("sharded durable create");

    let ops: Vec<MixedOp> = mixed_ops(&MixedWorkloadConfig::uniform(600, 128, 0xA11CE))
        .into_iter()
        .filter(MixedOp::is_write)
        .collect();
    for (i, op) in ops.iter().enumerate() {
        apply_mixed_op(index.as_mut(), op).expect("apply sharded op");
        if checkpoint_at == Some(i) {
            index.checkpoint().expect("sharded checkpoint");
        }
    }
    drop(index);

    ShardedState {
        dir,
        ops,
        keys,
        values,
        covered: checkpoint_at.map_or(0, |k| k + 1),
    }
}

/// Counts the distinct committed update batches surviving in the shard
/// WALs beyond their snapshots. Call **after** the reopen: recovery
/// truncates each shard WAL to the committed frontier, so what remains is
/// exactly what the recovered index replayed.
fn committed_updates(dir: &Path) -> usize {
    let mut bsns = std::collections::BTreeSet::new();
    for s in 0.. {
        let shard_dir = dir.join(format!("shard-{s:03}"));
        if !shard_dir.exists() {
            break;
        }
        let snap_bsn = read_latest_snapshot(&shard_dir)
            .expect("shard snapshot scan")
            .map_or(0, |(snap, _)| snap.bsn);
        for record in read_log(&shard_dir.join("wal")).expect("shard log") {
            if record.bsn > snap_bsn && record.payload.is_update() {
                bsns.insert(record.bsn);
            }
        }
    }
    bsns.len()
}

/// Crashes a sharded state at `cut` bytes into the root journal, reopens
/// it, and checks it answers exactly like a never-crashed, non-durable
/// `RXD@2` duplicate driven with the committed op prefix.
///
/// The comparison is rowID-exact because sharded compaction never renumbers
/// global rowIDs — structural divergence (the durable side may compact at
/// different points during replay) cannot show up in results.
fn check_sharded_crash(state: &ShardedState, journal: &[u8], cut: usize) {
    let device = Device::default_eval();
    let registry = registry(false);
    let crash = scratch("shard-cut");
    clone_dir(&state.dir, &crash);
    write_log_bytes(&crash.join("journal"), &journal[..cut]).expect("truncate journal");

    let name = format!("RXD@2+wal:{}", crash.display());
    let reopened = registry
        .build_updatable(&name, &IndexSpec::keys_only(&device, &[]))
        .unwrap_or_else(|e| panic!("sharded recovery at journal offset {cut}: {e}"));
    let applied = state.covered + committed_updates(&crash);
    assert!(applied <= state.ops.len(), "cannot commit unseen batches");

    let mut duplicate = registry
        .build_updatable(
            "RXD@2",
            &IndexSpec::with_values(&device, &state.keys, &state.values),
        )
        .expect("duplicate build");
    for op in &state.ops[..applied] {
        apply_mixed_op(duplicate.as_mut(), op).expect("duplicate op");
    }

    let batch = probe(128);
    assert_eq!(
        reopened.execute(&batch).expect("probe recovered").results,
        duplicate.execute(&batch).expect("probe duplicate").results,
        "journal cut at {cut} of {} must recover a committed prefix \
         ({applied} of {} batches)",
        journal.len(),
        state.ops.len()
    );
    drop(reopened);
    let _ = fs::remove_dir_all(&crash);
}

#[test]
fn sharded_crash_recovers_exactly_a_committed_prefix() {
    let state = build_sharded_state(None);
    let journal = log_bytes(&state.dir.join("journal")).expect("journal bytes");
    for cut in crash_offsets(&journal) {
        check_sharded_crash(&state, &journal, cut);
    }
    let _ = fs::remove_dir_all(&state.dir);
}

#[test]
fn sharded_crash_after_a_checkpoint_recovers_snapshot_plus_tail() {
    let state = build_sharded_state(Some(6));
    let journal = log_bytes(&state.dir.join("journal")).expect("journal bytes");
    // The journal was truncated through the checkpoint, so every surviving
    // record is post-snapshot; cutting it anywhere still recovers.
    for cut in crash_offsets(&journal) {
        check_sharded_crash(&state, &journal, cut);
    }
    let _ = fs::remove_dir_all(&state.dir);
}
