//! Beyond-paper experiment: crash-recovery throughput of durable indexes.
//!
//! The `rtx-durable` layer makes the dynamic index persistent: every update
//! batch is written to a WAL before it applies, and checkpoints serialize
//! the compacted base into a snapshot so the log can be truncated. The two
//! costs that matter operationally are how fast a crashed index comes back
//! (replay ops/s over the surviving log) and how a checkpoint changes that
//! picture (recovery time collapses to snapshot-load time, paid for in
//! snapshot bytes on disk).
//!
//! This experiment drives a write-only mixed stream (inserts, deletes,
//! upserts) into a durable RXD index with automatic checkpoints disabled,
//! "crashes" it (drops the handle) at increasing WAL lengths, and times the
//! reopen. A final run checkpoints before the crash, so the last row shows
//! the snapshot shortcut against the longest log.
//!
//! Qualitative expectation: recovery time grows with the WAL length at a
//! roughly constant replay ops/s, and the checkpointed run recovers fastest
//! with near-zero replay despite having seen the most writes.

use std::path::PathBuf;
use std::time::Instant;

use rtx_query::IndexSpec;
use rtx_workloads::{self as wl, MixedOp};

use crate::indexes::DYNAMIC_BACKEND;
use crate::report::{fmt_ms, fmt_throughput, Table};
use crate::scale::ExperimentScale;

/// WAL-length sweep: fractions of the write stream applied before the
/// simulated crash. The final fraction runs twice, without and with a
/// pre-crash checkpoint.
const WAL_FRACTIONS: [f64; 3] = [0.25, 0.5, 1.0];

/// One crash/recovery measurement.
#[derive(Debug, Clone)]
pub struct RecoveryRun {
    /// Write batches applied before the crash.
    pub write_batches: usize,
    /// Primitive write operations those batches carried.
    pub write_ops: usize,
    /// Whether a checkpoint ran between the last write and the crash.
    pub checkpointed: bool,
    /// Live WAL bytes at crash time.
    pub wal_bytes: u64,
    /// Bytes of the latest snapshot at crash time.
    pub snapshot_bytes: u64,
    /// Update batches the reopen replayed from the WAL.
    pub replayed_batches: u64,
    /// Host wall-clock seconds of the reopen (snapshot load + replay).
    pub recovery_s: f64,
}

impl RecoveryRun {
    /// Replayed primitive operations per host second during recovery.
    pub fn replay_ops_per_s(&self, replayed_ops: usize) -> f64 {
        if self.recovery_s <= 0.0 {
            return 0.0;
        }
        replayed_ops as f64 / self.recovery_s
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "rtx-recovery-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ))
}

/// The write-only operation stream: a mixed stream with its lookup batches
/// filtered out, so every batch becomes exactly one WAL record.
fn write_stream(scale: &ExperimentScale) -> Vec<MixedOp> {
    let total_ops = (scale.default_keys() / 4).max(256);
    let key_domain = (scale.default_keys() / 2).max(64) as u64;
    let config = wl::MixedWorkloadConfig::uniform(total_ops, key_domain, scale.seed + 41);
    wl::mixed_ops(&config)
        .into_iter()
        .filter(MixedOp::is_write)
        .collect()
}

/// Creates a durable index in `dir`, applies the first `batches` writes of
/// `ops`, optionally checkpoints, drops it and times the reopen.
fn crash_and_recover(
    scale: &ExperimentScale,
    ops: &[MixedOp],
    batches: usize,
    checkpoint: bool,
) -> RecoveryRun {
    let device = crate::scaled_device(scale);
    let dir = scratch_dir(&format!("{batches}-{checkpoint}"));
    let _ = std::fs::remove_dir_all(&dir);
    let name = format!("{DYNAMIC_BACKEND}+wal:{}", dir.display());

    // Automatic checkpoints off: the experiment controls the WAL length.
    let mut registry = crate::indexes::registry();
    rtx_durable::install_durability_with(
        &mut registry,
        rtx_durable::DurableConfig::default().with_snapshot_wal_bytes(u64::MAX),
    );

    let n = scale.default_keys() / 4;
    let keys = wl::dense_shuffled(n, scale.seed);
    let values = wl::value_column(n, scale.seed + 7);
    let mut index = registry
        .build_updatable(&name, &IndexSpec::with_values(&device, &keys, &values))
        .expect("durable build");

    let mut write_ops = 0;
    for op in &ops[..batches] {
        let (keys, values) = op.columns();
        match op {
            MixedOp::Insert(_) => index.insert(&keys, &values).expect("insert"),
            MixedOp::Delete(_) => index.delete(&keys).expect("delete"),
            MixedOp::Upsert(_) => index.upsert(&keys, &values).expect("upsert"),
            _ => unreachable!("write-only stream"),
        };
        write_ops += op.len();
    }
    if checkpoint {
        index.checkpoint().expect("checkpoint");
    }
    let at_crash = index.durability_stats().expect("durable index has stats");
    drop(index); // the simulated crash: only the directory survives

    let start = Instant::now();
    let reopened = registry
        .build_updatable(&name, &IndexSpec::keys_only(&device, &[]))
        .expect("recovery");
    let recovery_s = start.elapsed().as_secs_f64();
    let after = reopened.durability_stats().expect("stats after recovery");
    drop(reopened);
    let _ = std::fs::remove_dir_all(&dir);

    RecoveryRun {
        write_batches: batches,
        write_ops,
        checkpointed: checkpoint,
        wal_bytes: at_crash.wal_bytes,
        snapshot_bytes: at_crash.last_snapshot_bytes,
        replayed_batches: after.replayed_batches,
        recovery_s,
    }
}

/// Runs the WAL-length sweep plus the checkpointed variant of the longest
/// log.
pub fn run_sweep(scale: &ExperimentScale) -> Vec<(RecoveryRun, usize)> {
    let ops = write_stream(scale);
    let mut runs = Vec::new();
    for fraction in WAL_FRACTIONS {
        let batches = ((ops.len() as f64 * fraction) as usize).clamp(1, ops.len());
        let run = crash_and_recover(scale, &ops, batches, false);
        let replayed = run.write_ops;
        runs.push((run, replayed));
    }
    // Checkpoint before the crash: recovery skips the whole log.
    let run = crash_and_recover(scale, &ops, ops.len(), true);
    runs.push((run, 0));
    runs
}

/// The `recovery_throughput` experiment: recovery time and replay rate
/// against WAL length, with and without a pre-crash checkpoint.
pub fn run(scale: &ExperimentScale) -> Vec<Table> {
    let runs = run_sweep(scale);
    let mut table = Table::new(
        format!(
            "Recovery throughput: durable {} over 2^{} initial keys",
            DYNAMIC_BACKEND,
            scale.keys_exp.saturating_sub(2)
        ),
        &[
            "crash point",
            "write ops",
            "WAL [KiB]",
            "snapshot [KiB]",
            "replayed batches",
            "recovery [ms]",
            "replay [ops/s]",
        ],
    );
    for (run, replayed_ops) in &runs {
        table.push_row(vec![
            if run.checkpointed {
                format!("{} batches + checkpoint", run.write_batches)
            } else {
                format!("{} batches", run.write_batches)
            },
            run.write_ops.to_string(),
            format!("{:.1}", run.wal_bytes as f64 / 1024.0),
            format!("{:.1}", run.snapshot_bytes as f64 / 1024.0),
            run.replayed_batches.to_string(),
            fmt_ms(run.recovery_s * 1e3),
            fmt_throughput(run.replay_ops_per_s(*replayed_ops)),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longer_wals_replay_more_and_checkpoints_short_circuit_recovery() {
        let scale = ExperimentScale::tiny();
        let runs = run_sweep(&scale);
        assert_eq!(runs.len(), WAL_FRACTIONS.len() + 1);

        // WAL bytes and replayed batches grow with the crash point.
        let plain: Vec<&RecoveryRun> = runs
            .iter()
            .map(|(r, _)| r)
            .filter(|r| !r.checkpointed)
            .collect();
        for pair in plain.windows(2) {
            assert!(pair[0].wal_bytes < pair[1].wal_bytes);
            assert!(pair[0].replayed_batches < pair[1].replayed_batches);
        }
        for r in &plain {
            assert_eq!(
                r.replayed_batches, r.write_batches as u64,
                "every write batch must replay"
            );
            assert!(r.recovery_s > 0.0);
        }

        // The checkpointed run saw the most writes yet replays nothing:
        // the snapshot covers the whole log.
        let (snap, _) = runs.last().unwrap();
        assert!(snap.checkpointed);
        assert_eq!(snap.replayed_batches, 0);
        assert!(snap.snapshot_bytes > 0);
        assert!(
            snap.wal_bytes < plain[0].wal_bytes,
            "the checkpoint truncated the log"
        );

        let tables = run(&scale);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows.len(), runs.len());
    }
}
