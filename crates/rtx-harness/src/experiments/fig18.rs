//! Figure 18 / Table 8: hardware architectures (Turing, Ampere, Ada
//! Lovelace).
//!
//! Running the same workload against the four device presets shows the
//! generational improvement; RX improves faster than the baselines because
//! RT-core throughput doubled with every generation while general memory
//! bandwidth grew more slowly.

use gpu_device::{Device, DeviceSpec};
use rtindex_core::RtIndexConfig;
use rtx_workloads as wl;

use crate::indexes::{build_all_indexes, measure_points};
use crate::report::{fmt_ms, Table};
use crate::scale::ExperimentScale;

/// Runs the architecture comparison for unsorted and sorted lookups.
pub fn run(scale: &ExperimentScale) -> Vec<Table> {
    let keys = wl::dense_shuffled(scale.default_keys(), scale.seed);
    let values = wl::value_column(keys.len(), scale.seed + 7);
    let unsorted = wl::point_lookups(&keys, scale.default_lookups(), scale.seed + 1);
    let sorted = wl::lookups::sorted_lookups(&unsorted);

    let mut spec_table = Table::new(
        "Table 8: evaluated GPUs and architectures",
        &["system", "GPU", "architecture", "VRAM [GiB]", "RT cores"],
    );
    for (sys, spec) in ["S3", "S2b", "S2a", "S1"]
        .iter()
        .zip(DeviceSpec::table8_presets())
    {
        spec_table.push_row(vec![
            sys.to_string(),
            spec.name.clone(),
            spec.rt_core_generation.architecture_name().to_string(),
            format!("{}", spec.vram_bytes / (1 << 30)),
            spec.rt_cores.to_string(),
        ]);
    }

    let mut timing = Table::new(
        "Figure 18: cumulative lookup time [ms] per GPU (unsorted / sorted lookups)",
        &["GPU", "HT", "B+", "SA", "RX"],
    );
    for spec in DeviceSpec::table8_presets() {
        let device = Device::new(spec.clone());
        let indexes = build_all_indexes(&device, &keys, Some(&values), RtIndexConfig::default());
        let mut row = vec![spec.name.clone()];
        for name in ["HT", "B+", "SA", "RX"] {
            let cell = indexes
                .iter()
                .find(|ix| ix.name() == name)
                .map(|ix| {
                    let u = measure_points(ix.as_ref(), &unsorted, true).sim_ms;
                    let s = measure_points(ix.as_ref(), &sorted, true).sim_ms;
                    format!("{} / {}", fmt_ms(u), fmt_ms(s))
                })
                .unwrap_or_else(|| "N/A".to_string());
            row.push(cell);
        }
        timing.push_row(row);
    }
    vec![spec_table, timing]
}

/// Measures one index's sorted-lookup time on the oldest and newest GPU and
/// returns the improvement factor (old / new). Used by tests and benches.
pub fn generational_improvement(index_name: &str, keys_exp: u32, lookups: usize, seed: u64) -> f64 {
    let keys = wl::dense_shuffled(1 << keys_exp, seed);
    let queries = wl::lookups::sorted_lookups(&wl::point_lookups(&keys, lookups, seed + 1));
    let mut times = Vec::new();
    for spec in [DeviceSpec::rtx_2080ti(), DeviceSpec::rtx_4090()] {
        let device = Device::new(spec);
        let indexes = build_all_indexes(&device, &keys, None, RtIndexConfig::default());
        let ix = indexes
            .iter()
            .find(|i| i.name() == index_name)
            .expect("index present");
        times.push(measure_points(ix.as_ref(), &queries, false).sim_ms);
    }
    times[0] / times[1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn newer_architectures_are_faster_for_every_index() {
        let tables = run(&ExperimentScale::tiny());
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].rows.len(), 4);
        assert_eq!(tables[1].rows.len(), 4);
    }

    #[test]
    fn rx_improves_across_generations_at_least_as_much_as_the_baselines() {
        let rx = generational_improvement("RX", 13, 1 << 13, 1);
        let sa = generational_improvement("SA", 13, 1 << 13, 1);
        let ht = generational_improvement("HT", 13, 1 << 13, 1);
        assert!(
            rx > 1.0,
            "RX must be faster on the 4090 than on the 2080 Ti, factor {rx}"
        );
        assert!(ht > 1.0 && sa > 1.0);
        // The paper: RX shows the largest improvement for sorted lookups
        // (3.23x vs at most 2.41x). Require RX to at least match the others.
        assert!(
            rx >= ht * 0.95 && rx >= sa * 0.95,
            "RX must improve at least as fast as baselines (RX {rx:.2}, HT {ht:.2}, SA {sa:.2})"
        );
    }
}
