//! Typed composite keys: [`KeySchema`], order-preserving byte encoding and
//! the typed query forms that compile down to the 1-D `u64` key space every
//! backend already serves.
//!
//! # Encoding rules
//!
//! A schema is an ordered list of columns drawn from
//! `u8 / u16 / u32 / u64 / i64 / str<N>`. A tuple encodes column by column
//! into a fixed-width byte string:
//!
//! * unsigned integers — big-endian bytes at the column's natural width;
//! * `i64` — big-endian bytes of `(v as u64) ^ (1 << 63)` (sign-flip), so
//!   negative values sort below positive ones byte-wise;
//! * `str<N>` — the UTF-8 bytes, zero-padded to exactly `N`. NUL bytes are
//!   rejected (a string containing `\0` would collide with its own
//!   padding), as are strings longer than `N` — the encoding stays
//!   injective.
//!
//! The concatenation is then zero-padded up to the schema's *width bucket*
//! — the smallest of 8, 16 or 32 bytes that fits the raw width — and read
//! back as big-endian `u64` limbs. The padding sits at the *high* bytes:
//! every tuple of one schema has the same raw width, so the pad is a
//! shared constant prefix that never affects relative order, and the
//! encoded image spans only the raw content range. (A low-byte pad would
//! preserve order just as well, but would shift content into the high
//! bytes — inflating every prefix range by the padded tail and pushing
//! even narrow schemas past backends with 32-bit key domains or
//! row-decomposed range budgets.)
//!
//! **Ordering proof sketch.** For two tuples `a < b` (lexicographic over
//! typed column values), let `i` be the first differing column. All columns
//! before `i` encode identically (fixed width ⇒ same bytes at same
//! offsets). At column `i` the encodings differ, and each per-column
//! encoding is order-preserving on its own domain (big-endian magnitude
//! order for unsigned; sign-flip maps `i64` order onto unsigned order;
//! zero-padded bytes preserve string order because `\0` is excluded and
//! sorts below every permitted byte). So the byte strings compare exactly
//! like the tuples, and big-endian limbs compare exactly like the byte
//! strings: **byte order = limb order = logical order**.
//!
//! # Width buckets
//!
//! Raw widths are padded to 8, 16 or 32 bytes (1, 2 or 4 `u64` limbs) so a
//! backend sees one of three fixed key widths instead of arbitrary ones —
//! the same trade SpacetimeDB's `BytesKey<N>` makes. A schema whose raw
//! width fits 8 bytes encodes to a *single* `u64` and runs on every
//! backend's existing key path unchanged (the **direct codec**); the
//! degenerate `{u64}` schema encodes a key to itself, which is what keeps
//! the raw-`u64` path zero-overhead. Wider schemas (2 or 4 limbs) are
//! order-preservingly dictionary-mapped into the `u64` space by the
//! composite wrapper (see [`crate::composite`]).

use std::fmt;

use crate::batch::{QueryBatch, QueryOps};
use crate::error::IndexError;

/// Maximum raw width (bytes) of a schema: four `u64` limbs.
pub const MAX_RAW_WIDTH: usize = 32;

/// One column of a [`KeySchema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// Unsigned 8-bit integer (1 byte).
    U8,
    /// Unsigned 16-bit integer (2 bytes).
    U16,
    /// Unsigned 32-bit integer (4 bytes).
    U32,
    /// Unsigned 64-bit integer (8 bytes).
    U64,
    /// Signed 64-bit integer (8 bytes, sign-flip encoded).
    I64,
    /// Fixed-capacity UTF-8 string, zero-padded to `N` bytes.
    Str(usize),
}

impl ColumnType {
    /// Encoded width of this column in bytes.
    pub fn width(&self) -> usize {
        match self {
            ColumnType::U8 => 1,
            ColumnType::U16 => 2,
            ColumnType::U32 => 4,
            ColumnType::U64 | ColumnType::I64 => 8,
            ColumnType::Str(n) => *n,
        }
    }

    /// Parses one column of the schema grammar: `u8`, `u16`, `u32`, `u64`,
    /// `i64` or `str<N>` (e.g. `str16`).
    pub fn parse(text: &str) -> Result<Self, IndexError> {
        match text {
            "u8" => Ok(ColumnType::U8),
            "u16" => Ok(ColumnType::U16),
            "u32" => Ok(ColumnType::U32),
            "u64" => Ok(ColumnType::U64),
            "i64" => Ok(ColumnType::I64),
            _ => {
                if let Some(len) = text.strip_prefix("str") {
                    let n: usize = len
                        .parse()
                        .map_err(|_| schema_error(text, "bad str width"))?;
                    if n == 0 || n > MAX_RAW_WIDTH {
                        return Err(schema_error(
                            text,
                            "str width must be between 1 and 32 bytes",
                        ));
                    }
                    return Ok(ColumnType::Str(n));
                }
                Err(schema_error(
                    text,
                    "expected u8, u16, u32, u64, i64 or str<N>",
                ))
            }
        }
    }
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnType::U8 => write!(f, "u8"),
            ColumnType::U16 => write!(f, "u16"),
            ColumnType::U32 => write!(f, "u32"),
            ColumnType::U64 => write!(f, "u64"),
            ColumnType::I64 => write!(f, "i64"),
            ColumnType::Str(n) => write!(f, "str{n}"),
        }
    }
}

fn schema_error(fragment: &str, message: &str) -> IndexError {
    IndexError::Backend {
        backend: "key-schema".into(),
        message: format!("invalid schema column {fragment:?}: {message}"),
    }
}

fn encode_error(message: String) -> IndexError {
    IndexError::Backend {
        backend: "key-schema".into(),
        message,
    }
}

/// One typed key component; a key tuple is a `Vec<KeyValue>` matching the
/// schema column for column.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum KeyValue {
    /// Value for any unsigned column (`u8`/`u16`/`u32`/`u64`); must fit the
    /// column width.
    U64(u64),
    /// Value for an `i64` column.
    I64(i64),
    /// Value for a `str<N>` column; at most `N` bytes, no NULs.
    Str(String),
}

impl From<u64> for KeyValue {
    fn from(v: u64) -> Self {
        KeyValue::U64(v)
    }
}

impl From<u32> for KeyValue {
    fn from(v: u32) -> Self {
        KeyValue::U64(v as u64)
    }
}

impl From<i64> for KeyValue {
    fn from(v: i64) -> Self {
        KeyValue::I64(v)
    }
}

impl From<&str> for KeyValue {
    fn from(v: &str) -> Self {
        KeyValue::Str(v.to_string())
    }
}

impl From<String> for KeyValue {
    fn from(v: String) -> Self {
        KeyValue::Str(v)
    }
}

impl fmt::Display for KeyValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeyValue::U64(v) => write!(f, "{v}"),
            KeyValue::I64(v) => write!(f, "{v}"),
            KeyValue::Str(v) => write!(f, "{v:?}"),
        }
    }
}

/// A typed key tuple: one [`KeyValue`] per schema column.
pub type KeyTuple = Vec<KeyValue>;

/// An ordered multi-column key schema: the typed description of what one
/// backend key encodes. Parsed from the registry grammar's brace production
/// (`"{u32,u32,str16}"`) or built programmatically.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct KeySchema {
    columns: Vec<ColumnType>,
}

impl KeySchema {
    /// A schema over the given columns. Fails on an empty column list or a
    /// raw width beyond [`MAX_RAW_WIDTH`].
    pub fn new(columns: Vec<ColumnType>) -> Result<Self, IndexError> {
        if columns.is_empty() {
            return Err(encode_error(
                "a key schema needs at least one column".into(),
            ));
        }
        let raw: usize = columns.iter().map(ColumnType::width).sum();
        if raw > MAX_RAW_WIDTH {
            return Err(encode_error(format!(
                "schema raw width {raw} exceeds the {MAX_RAW_WIDTH}-byte limit"
            )));
        }
        Ok(KeySchema { columns })
    }

    /// The implicit schema of every legacy raw-`u64` index.
    pub fn raw_u64() -> Self {
        KeySchema {
            columns: vec![ColumnType::U64],
        }
    }

    /// Parses the brace production of the registry grammar:
    /// `"{u32,u32,str16}"`.
    pub fn parse(text: &str) -> Result<Self, IndexError> {
        let inner = text
            .strip_prefix('{')
            .and_then(|t| t.strip_suffix('}'))
            .ok_or_else(|| encode_error(format!("key schema {text:?} must be brace-enclosed")))?;
        let columns = inner
            .split(',')
            .map(|c| ColumnType::parse(c.trim()))
            .collect::<Result<Vec<_>, _>>()?;
        KeySchema::new(columns)
    }

    /// The schema's columns, in key order.
    pub fn columns(&self) -> &[ColumnType] {
        &self.columns
    }

    /// Sum of the column widths, before bucket padding.
    pub fn raw_width(&self) -> usize {
        self.columns.iter().map(ColumnType::width).sum()
    }

    /// The padded width bucket: 8, 16 or 32 bytes.
    pub fn encoded_width(&self) -> usize {
        let raw = self.raw_width();
        if raw <= 8 {
            8
        } else if raw <= 16 {
            16
        } else {
            32
        }
    }

    /// Number of `u64` limbs in the encoded key (1, 2 or 4).
    pub fn limbs(&self) -> usize {
        self.encoded_width() / 8
    }

    /// True when the schema is the single raw `u64` column — the legacy
    /// key space, where encoding is the identity.
    pub fn is_unit_u64(&self) -> bool {
        self.columns == [ColumnType::U64]
    }

    /// Encodes one full tuple into its order-preserving key.
    pub fn encode(&self, tuple: &[KeyValue]) -> Result<EncodedKey, IndexError> {
        if tuple.len() != self.columns.len() {
            return Err(encode_error(format!(
                "tuple has {} values but schema {self} has {} columns",
                tuple.len(),
                self.columns.len()
            )));
        }
        let mut bytes = [0u8; MAX_RAW_WIDTH];
        // Bucket padding is a shared high-byte prefix (see module docs).
        let mut at = self.encoded_width() - self.raw_width();
        for (column, value) in self.columns.iter().zip(tuple) {
            at += encode_column(*column, value, &mut bytes[at..])?;
        }
        debug_assert_eq!(at, self.encoded_width());
        Ok(EncodedKey::from_bytes(&bytes, self.limbs()))
    }

    /// Encodes a batch of tuples into single-`u64` keys. Only valid for
    /// single-limb (direct-codec) schemas; the backend key *is* the encoded
    /// key, so `{u64}` is the identity map.
    pub fn encode_rows(&self, rows: &[KeyTuple]) -> Result<Vec<u64>, IndexError> {
        self.require_direct("encode typed rows to raw u64 keys")?;
        rows.iter()
            .map(|row| self.encode(row).map(|e| e.limb(0)))
            .collect()
    }

    /// Compiles a typed batch into the raw [`QueryBatch`] a backend
    /// executes. Only valid for single-limb (direct-codec) schemas — wider
    /// schemas need the dictionary held by the composite wrapper, so build
    /// them through the registry with a `{...}` name.
    pub fn compile(&self, batch: &TypedBatch) -> Result<QueryBatch, IndexError> {
        self.require_direct("compile typed queries statelessly")?;
        let mut out = QueryBatch::new().fetch_values(batch.fetches_values());
        if let Some(chunk) = batch.chunk_size() {
            out = out.with_chunk_size(chunk);
        }
        for op in batch.ops() {
            out = match self.compile_op(op)? {
                EncodedRange::Point(k) => out.point(k.limb(0)),
                EncodedRange::Range(lo, hi) => out.range(lo.limb(0), hi.limb(0)),
                // Canonical inverted range: uniformly empty on every backend.
                EncodedRange::Empty => out.range(1, 0),
            };
        }
        Ok(out)
    }

    /// Compiles one typed operation into its encoded point or inclusive
    /// range over the byte-ordered key domain. Works at any limb width —
    /// this is the schema-level half the composite wrapper and the test
    /// oracles share.
    pub fn compile_op(&self, op: &TypedOp) -> Result<EncodedRange, IndexError> {
        match op {
            TypedOp::Point(tuple) => Ok(EncodedRange::Point(self.encode(tuple)?)),
            TypedOp::Range(lower, upper) => {
                let lo = self.encode(lower)?;
                let hi = self.encode(upper)?;
                if lo > hi {
                    Ok(EncodedRange::Empty)
                } else {
                    Ok(EncodedRange::Range(lo, hi))
                }
            }
            TypedOp::Prefix {
                prefix,
                lower,
                upper,
            } => self.compile_prefix(prefix, lower, upper),
        }
    }

    /// Prefix-range compilation: equality on the leading `prefix.len()`
    /// columns, bounds on the next column, everything after unconstrained.
    fn compile_prefix(
        &self,
        prefix: &[KeyValue],
        lower: &KeyBound,
        upper: &KeyBound,
    ) -> Result<EncodedRange, IndexError> {
        if prefix.len() > self.columns.len() {
            return Err(encode_error(format!(
                "prefix has {} values but schema {self} has {} columns",
                prefix.len(),
                self.columns.len()
            )));
        }
        if prefix.len() == self.columns.len() {
            if !matches!((lower, upper), (KeyBound::Unbounded, KeyBound::Unbounded)) {
                return Err(encode_error(
                    "a full-arity prefix leaves no column for range bounds".into(),
                ));
            }
            return Ok(EncodedRange::Point(self.encode(prefix)?));
        }
        let bound_column = self.columns[prefix.len()];
        if matches!(bound_column, ColumnType::Str(_))
            && !matches!((lower, upper), (KeyBound::Unbounded, KeyBound::Unbounded))
        {
            // Exclusive string bounds would need byte-level succ/pred over
            // variable content; equality prefixes cover the string use case.
            return Err(encode_error(
                "range bounds on str columns are not supported; bound an integer column".into(),
            ));
        }

        // Shared prefix bytes, behind the constant high-byte bucket pad.
        let mut head = [0u8; MAX_RAW_WIDTH];
        let mut at = self.encoded_width() - self.raw_width();
        for (column, value) in self.columns.iter().zip(prefix) {
            at += encode_column(*column, value, &mut head[at..])?;
        }
        let width = bound_column.width();

        // Lower limit: prefix + bound column (or 0x00s) + 0x00 tail.
        let mut lo = head;
        match lower {
            KeyBound::Unbounded => {} // already zero
            KeyBound::Included(v) => {
                encode_column(bound_column, v, &mut lo[at..])?;
            }
            KeyBound::Excluded(v) => {
                encode_column(bound_column, v, &mut lo[at..])?;
                if !increment(&mut lo[at..at + width]) {
                    return Ok(EncodedRange::Empty); // succ(MAX) — nothing above
                }
            }
        }

        // Upper limit: prefix + bound column (or 0xFFs) + 0xFF tail.
        // Everything after the prefix is real column content (the bucket
        // pads at the high bytes, before the first column), so a 0xFF tail
        // bounds every tuple sharing the prefix from above.
        let mut hi = head;
        for byte in hi[at..].iter_mut() {
            *byte = 0xFF;
        }
        match upper {
            KeyBound::Unbounded => {}
            KeyBound::Included(v) => {
                encode_column(bound_column, v, &mut hi[at..])?;
            }
            KeyBound::Excluded(v) => {
                encode_column(bound_column, v, &mut hi[at..])?;
                if !decrement(&mut hi[at..at + width]) {
                    return Ok(EncodedRange::Empty); // pred(MIN) — nothing below
                }
            }
        }

        let lo = EncodedKey::from_bytes(&lo, self.limbs());
        let hi = EncodedKey::from_bytes(&hi, self.limbs());
        if lo > hi {
            Ok(EncodedRange::Empty)
        } else {
            Ok(EncodedRange::Range(lo, hi))
        }
    }

    fn require_direct(&self, what: &str) -> Result<(), IndexError> {
        if self.limbs() != 1 {
            return Err(encode_error(format!(
                "schema {self} encodes to {} limbs; only single-limb schemas can {what} — \
                 build wide schemas through the registry with a {{...}} name",
                self.limbs()
            )));
        }
        Ok(())
    }
}

impl fmt::Display for KeySchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, column) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{column}")?;
        }
        write!(f, "}}")
    }
}

/// Encodes `value` into `out[..column.width()]`, big-endian; returns the
/// width written.
fn encode_column(
    column: ColumnType,
    value: &KeyValue,
    out: &mut [u8],
) -> Result<usize, IndexError> {
    let width = column.width();
    match (column, value) {
        (
            ColumnType::U8 | ColumnType::U16 | ColumnType::U32 | ColumnType::U64,
            KeyValue::U64(v),
        ) => {
            let max = if width == 8 {
                u64::MAX
            } else {
                (1u64 << (8 * width)) - 1
            };
            if *v > max {
                return Err(encode_error(format!(
                    "value {v} does not fit a {column} column (max {max})"
                )));
            }
            out[..width].copy_from_slice(&v.to_be_bytes()[8 - width..]);
        }
        (ColumnType::I64, KeyValue::I64(v)) => {
            // Sign-flip: maps i64 order onto unsigned byte order.
            out[..8].copy_from_slice(&((*v as u64) ^ (1 << 63)).to_be_bytes());
        }
        (ColumnType::Str(n), KeyValue::Str(s)) => {
            let bytes = s.as_bytes();
            if bytes.len() > n {
                return Err(encode_error(format!(
                    "string {s:?} is {} bytes, over the str{n} column width",
                    bytes.len()
                )));
            }
            if bytes.contains(&0) {
                return Err(encode_error(format!(
                    "string {s:?} contains a NUL byte, which collides with padding"
                )));
            }
            out[..bytes.len()].copy_from_slice(bytes);
            for byte in out[bytes.len()..n].iter_mut() {
                *byte = 0;
            }
        }
        (column, value) => {
            return Err(encode_error(format!(
                "value {value} does not match a {column} column"
            )));
        }
    }
    Ok(width)
}

/// Byte-string increment with carry, in place. Returns `false` on overflow
/// (all bytes were `0xFF`).
fn increment(bytes: &mut [u8]) -> bool {
    for byte in bytes.iter_mut().rev() {
        let (v, overflow) = byte.overflowing_add(1);
        *byte = v;
        if !overflow {
            return true;
        }
    }
    false
}

/// Byte-string decrement with borrow, in place. Returns `false` on
/// underflow (all bytes were `0x00`).
fn decrement(bytes: &mut [u8]) -> bool {
    for byte in bytes.iter_mut().rev() {
        let (v, underflow) = byte.overflowing_sub(1);
        *byte = v;
        if !underflow {
            return true;
        }
    }
    false
}

/// An encoded key: up to four big-endian `u64` limbs comparing
/// lexicographically, i.e. exactly like the underlying byte string and
/// therefore exactly like the typed tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EncodedKey {
    limbs: [u64; 4],
    limb_count: u8,
}

impl EncodedKey {
    /// Reads `limb_count` big-endian limbs from the byte buffer.
    fn from_bytes(bytes: &[u8; MAX_RAW_WIDTH], limb_count: usize) -> Self {
        let mut limbs = [0u64; 4];
        for (i, limb) in limbs.iter_mut().enumerate().take(limb_count) {
            *limb = u64::from_be_bytes(bytes[i * 8..(i + 1) * 8].try_into().unwrap());
        }
        EncodedKey {
            limbs,
            limb_count: limb_count as u8,
        }
    }

    /// Rebuilds a key from its limbs (the sidecar-load path).
    pub fn from_limbs(limbs: &[u64]) -> Self {
        let mut all = [0u64; 4];
        all[..limbs.len()].copy_from_slice(limbs);
        EncodedKey {
            limbs: all,
            limb_count: limbs.len() as u8,
        }
    }

    /// Number of `u64` limbs.
    pub fn limb_count(&self) -> usize {
        self.limb_count as usize
    }

    /// The `i`-th limb (most-significant first).
    pub fn limb(&self, i: usize) -> u64 {
        self.limbs[i]
    }

    /// The populated limbs, most-significant first.
    pub fn limbs(&self) -> &[u64] {
        &self.limbs[..self.limb_count as usize]
    }
}

impl Ord for EncodedKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        debug_assert_eq!(self.limb_count, other.limb_count);
        self.limbs().cmp(other.limbs())
    }
}

impl PartialOrd for EncodedKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// One compiled typed operation: a point or an inclusive range over the
/// encoded key domain, or statically empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodedRange {
    /// Exact-key probe.
    Point(EncodedKey),
    /// Inclusive encoded range, `lower <= upper`.
    Range(EncodedKey, EncodedKey),
    /// Compiled away: matches nothing (inverted range, bound overflow).
    Empty,
}

/// One side of a prefix-range bound on the column after the equality
/// prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyBound {
    /// Bound includes the value.
    Included(KeyValue),
    /// Bound excludes the value (compiled to ±1 on the column's bytes).
    Excluded(KeyValue),
    /// No bound on this side.
    Unbounded,
}

/// One typed query operation against a composite-keyed index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypedOp {
    /// Exact tuple lookup (full arity).
    Point(KeyTuple),
    /// Inclusive tuple range (both ends full arity).
    Range(KeyTuple, KeyTuple),
    /// Prefix range: equality on the leading columns, optional bounds on
    /// the next one — "all rows where a=5, b ∈ [10, 20)".
    Prefix {
        /// Equality values for the leading columns (may be empty).
        prefix: KeyTuple,
        /// Lower bound on the column after the prefix.
        lower: KeyBound,
        /// Upper bound on the column after the prefix.
        upper: KeyBound,
    },
}

/// The typed counterpart of [`QueryBatch`]: a mixed submission of typed
/// point, range and prefix-range operations, compiled against an index's
/// [`KeySchema`] before any backend sees it.
///
/// ```
/// use rtx_query::keys::TypedBatch;
///
/// let batch = TypedBatch::new()
///     .point([5u64.into(), 10u64.into()])
///     .prefix([5u64.into()])
///     .prefix_range([5u64.into()], 10u64.into()..20u64.into())
///     .fetch_values(true);
/// assert_eq!(batch.len(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TypedBatch {
    ops: Vec<TypedOp>,
    fetch_values: bool,
    chunk_size: Option<usize>,
}

impl TypedBatch {
    /// An empty typed batch.
    pub fn new() -> Self {
        TypedBatch::default()
    }

    /// Appends an exact tuple lookup.
    pub fn point(mut self, tuple: impl IntoIterator<Item = KeyValue>) -> Self {
        self.ops.push(TypedOp::Point(tuple.into_iter().collect()));
        self
    }

    /// Appends an inclusive tuple range.
    pub fn range(
        mut self,
        lower: impl IntoIterator<Item = KeyValue>,
        upper: impl IntoIterator<Item = KeyValue>,
    ) -> Self {
        self.ops.push(TypedOp::Range(
            lower.into_iter().collect(),
            upper.into_iter().collect(),
        ));
        self
    }

    /// Appends a pure prefix scan: every row whose leading columns equal
    /// `prefix`.
    pub fn prefix(mut self, prefix: impl IntoIterator<Item = KeyValue>) -> Self {
        self.ops.push(TypedOp::Prefix {
            prefix: prefix.into_iter().collect(),
            lower: KeyBound::Unbounded,
            upper: KeyBound::Unbounded,
        });
        self
    }

    /// Appends a prefix range — equality on `prefix`, the next column
    /// within `bounds` (`lo..hi` excludes `hi`; `lo..=hi` includes it).
    pub fn prefix_range(
        mut self,
        prefix: impl IntoIterator<Item = KeyValue>,
        bounds: impl Into<PrefixBounds>,
    ) -> Self {
        let bounds = bounds.into();
        self.ops.push(TypedOp::Prefix {
            prefix: prefix.into_iter().collect(),
            lower: bounds.lower,
            upper: bounds.upper,
        });
        self
    }

    /// Appends an already-constructed typed operation.
    pub fn op(mut self, op: TypedOp) -> Self {
        self.ops.push(op);
        self
    }

    /// Enables or disables the value-column fetch.
    pub fn fetch_values(mut self, fetch: bool) -> Self {
        self.fetch_values = fetch;
        self
    }

    /// Sets the chunk size of the compiled batch (0 clears it).
    pub fn with_chunk_size(mut self, chunk: usize) -> Self {
        self.chunk_size = if chunk == 0 { None } else { Some(chunk) };
        self
    }

    /// The typed operations, in submission order.
    pub fn ops(&self) -> &[TypedOp] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the batch holds no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Whether the compiled batch fetches values.
    pub fn fetches_values(&self) -> bool {
        self.fetch_values
    }

    /// The chunk-size override, if any.
    pub fn chunk_size(&self) -> Option<usize> {
        self.chunk_size
    }
}

/// Bounds for [`TypedBatch::prefix_range`], convertible from the std range
/// types over [`KeyValue`].
#[derive(Debug, Clone)]
pub struct PrefixBounds {
    /// Lower side.
    pub lower: KeyBound,
    /// Upper side.
    pub upper: KeyBound,
}

impl From<std::ops::Range<KeyValue>> for PrefixBounds {
    fn from(r: std::ops::Range<KeyValue>) -> Self {
        PrefixBounds {
            lower: KeyBound::Included(r.start),
            upper: KeyBound::Excluded(r.end),
        }
    }
}

impl From<std::ops::RangeInclusive<KeyValue>> for PrefixBounds {
    fn from(r: std::ops::RangeInclusive<KeyValue>) -> Self {
        let (start, end) = r.into_inner();
        PrefixBounds {
            lower: KeyBound::Included(start),
            upper: KeyBound::Included(end),
        }
    }
}

impl From<(KeyBound, KeyBound)> for PrefixBounds {
    fn from((lower, upper): (KeyBound, KeyBound)) -> Self {
        PrefixBounds { lower, upper }
    }
}

impl QueryOps {
    /// Compiles a typed batch against a single-limb schema straight into
    /// the pre-fused SoA form (see [`KeySchema::compile`]).
    pub fn from_typed(schema: &KeySchema, batch: &TypedBatch) -> Result<QueryOps, IndexError> {
        Ok(QueryOps::from_batch(&schema.compile(batch)?))
    }
}

impl QueryBatch {
    /// Compiles a typed batch against a single-limb schema (the builder
    /// counterpart of [`KeySchema::compile`]).
    pub fn from_typed(schema: &KeySchema, batch: &TypedBatch) -> Result<QueryBatch, IndexError> {
        schema.compile(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::QueryOp;

    fn schema(text: &str) -> KeySchema {
        KeySchema::parse(text).unwrap()
    }

    #[test]
    fn parse_and_display_round_trip() {
        for text in [
            "{u64}",
            "{u8}",
            "{u32,u32}",
            "{u32,u32,str16}",
            "{i64,u16}",
            "{str8,u8,i64}",
        ] {
            let s = schema(text);
            assert_eq!(s.to_string(), text);
            assert_eq!(KeySchema::parse(&s.to_string()).unwrap(), s);
        }
        assert!(KeySchema::parse("{}").is_err());
        assert!(KeySchema::parse("{u128}").is_err());
        assert!(KeySchema::parse("{str0}").is_err());
        assert!(KeySchema::parse("{str33}").is_err());
        assert!(KeySchema::parse("u64").is_err());
        // Over the 32-byte raw-width cap.
        assert!(KeySchema::parse("{str32,u8}").is_err());
    }

    #[test]
    fn width_buckets() {
        assert_eq!(schema("{u64}").encoded_width(), 8);
        assert_eq!(schema("{u32,u32}").encoded_width(), 8);
        assert_eq!(schema("{u32,u32,u8}").encoded_width(), 16);
        assert_eq!(schema("{u32,u32,str16}").encoded_width(), 32);
        assert_eq!(schema("{str16}").encoded_width(), 16);
        assert!(schema("{u64}").is_unit_u64());
        assert!(!schema("{i64}").is_unit_u64());
    }

    #[test]
    fn unit_u64_encoding_is_the_identity() {
        let s = KeySchema::raw_u64();
        for v in [0, 1, 42, u32::MAX as u64, u64::MAX] {
            assert_eq!(s.encode(&[KeyValue::U64(v)]).unwrap().limb(0), v);
        }
        assert_eq!(
            s.encode_rows(&[vec![KeyValue::U64(7)], vec![KeyValue::U64(9)]])
                .unwrap(),
            vec![7, 9]
        );
    }

    #[test]
    fn encoding_preserves_tuple_order() {
        let s = schema("{u32,i64,str8}");
        let tuples: Vec<KeyTuple> = vec![
            vec![0u64.into(), (-5i64).into(), "zz".into()],
            vec![1u64.into(), i64::MIN.into(), "".into()],
            vec![1u64.into(), (-1i64).into(), "abc".into()],
            vec![1u64.into(), 0i64.into(), "".into()],
            vec![1u64.into(), 0i64.into(), "a".into()],
            vec![1u64.into(), 0i64.into(), "ab".into()],
            vec![1u64.into(), i64::MAX.into(), "x".into()],
            vec![2u64.into(), (-9i64).into(), "".into()],
        ];
        let encoded: Vec<EncodedKey> = tuples.iter().map(|t| s.encode(t).unwrap()).collect();
        for w in encoded.windows(2) {
            assert!(w[0] < w[1], "{:?} !< {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn encoding_rejects_mismatches() {
        let s = schema("{u8,str4}");
        // Arity.
        assert!(s.encode(&[1u64.into()]).is_err());
        // Width overflow.
        assert!(s.encode(&[256u64.into(), "ab".into()]).is_err());
        // Type mismatch.
        assert!(s.encode(&[(-1i64).into(), "ab".into()]).is_err());
        // String too long.
        assert!(s.encode(&[1u64.into(), "abcde".into()]).is_err());
        // NUL collides with padding.
        assert!(s.encode(&[1u64.into(), "a\0".into()]).is_err());
    }

    #[test]
    fn direct_compile_points_and_ranges() {
        let s = schema("{u32,u32}");
        let enc = |a: u64, b: u64| s.encode(&[a.into(), b.into()]).unwrap().limb(0);
        let batch = TypedBatch::new()
            .point([5u64.into(), 10u64.into()])
            .range([5u64.into(), 10u64.into()], [5u64.into(), 20u64.into()])
            .fetch_values(true);
        let compiled = s.compile(&batch).unwrap();
        assert_eq!(compiled.ops()[0], QueryOp::Point(enc(5, 10)));
        assert_eq!(compiled.ops()[1], QueryOp::Range(enc(5, 10), enc(5, 20)));
        assert!(compiled.fetches_values());

        // Inverted typed range compiles to the canonical empty range.
        let inverted =
            TypedBatch::new().range([6u64.into(), 0u64.into()], [5u64.into(), 0u64.into()]);
        assert_eq!(s.compile(&inverted).unwrap().ops()[0], QueryOp::Range(1, 0));
    }

    #[test]
    fn prefix_compilation_covers_exactly_the_prefix() {
        let s = schema("{u32,u32}");
        let enc = |a: u64, b: u64| s.encode(&[a.into(), b.into()]).unwrap().limb(0);

        // Pure prefix: all rows with a=5.
        let op = TypedOp::Prefix {
            prefix: vec![5u64.into()],
            lower: KeyBound::Unbounded,
            upper: KeyBound::Unbounded,
        };
        match s.compile_op(&op).unwrap() {
            EncodedRange::Range(lo, hi) => {
                assert_eq!(lo.limb(0), enc(5, 0));
                assert_eq!(hi.limb(0), enc(5, u32::MAX as u64));
            }
            other => panic!("{other:?}"),
        }

        // Half-open bound: a=5, b in [10, 20).
        let op = TypedOp::Prefix {
            prefix: vec![5u64.into()],
            lower: KeyBound::Included(10u64.into()),
            upper: KeyBound::Excluded(20u64.into()),
        };
        match s.compile_op(&op).unwrap() {
            EncodedRange::Range(lo, hi) => {
                assert_eq!(lo.limb(0), enc(5, 10));
                assert_eq!(hi.limb(0), enc(5, 19));
            }
            other => panic!("{other:?}"),
        }

        // Exclusive lower.
        let op = TypedOp::Prefix {
            prefix: vec![5u64.into()],
            lower: KeyBound::Excluded(10u64.into()),
            upper: KeyBound::Unbounded,
        };
        match s.compile_op(&op).unwrap() {
            EncodedRange::Range(lo, _) => assert_eq!(lo.limb(0), enc(5, 11)),
            other => panic!("{other:?}"),
        }

        // Excluding the column maximum from below leaves nothing.
        let op = TypedOp::Prefix {
            prefix: vec![5u64.into()],
            lower: KeyBound::Excluded((u32::MAX as u64).into()),
            upper: KeyBound::Unbounded,
        };
        assert_eq!(s.compile_op(&op).unwrap(), EncodedRange::Empty);

        // Excluding zero from above leaves nothing.
        let op = TypedOp::Prefix {
            prefix: vec![5u64.into()],
            lower: KeyBound::Unbounded,
            upper: KeyBound::Excluded(0u64.into()),
        };
        assert_eq!(s.compile_op(&op).unwrap(), EncodedRange::Empty);

        // Full-arity prefix is a point.
        let op = TypedOp::Prefix {
            prefix: vec![5u64.into(), 7u64.into()],
            lower: KeyBound::Unbounded,
            upper: KeyBound::Unbounded,
        };
        assert_eq!(
            s.compile_op(&op).unwrap(),
            EncodedRange::Point(s.encode(&[5u64.into(), 7u64.into()]).unwrap())
        );

        // Empty prefix with bounds on the first column.
        let op = TypedOp::Prefix {
            prefix: vec![],
            lower: KeyBound::Included(3u64.into()),
            upper: KeyBound::Excluded(4u64.into()),
        };
        match s.compile_op(&op).unwrap() {
            EncodedRange::Range(lo, hi) => {
                assert_eq!(lo.limb(0), enc(3, 0));
                assert_eq!(hi.limb(0), enc(3, u32::MAX as u64));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn prefix_ranges_order_correctly_on_wide_schemas() {
        let s = schema("{u32,str16,u32}");
        assert_eq!(s.limbs(), 4);
        let t = |a: u64, b: &str, c: u64| s.encode(&[a.into(), b.into(), c.into()]).unwrap();
        let op = TypedOp::Prefix {
            prefix: vec![7u64.into(), "de".into()],
            lower: KeyBound::Included(10u64.into()),
            upper: KeyBound::Excluded(20u64.into()),
        };
        let EncodedRange::Range(lo, hi) = s.compile_op(&op).unwrap() else {
            panic!("expected a range");
        };
        assert!(lo <= t(7, "de", 10) && t(7, "de", 10) <= hi);
        assert!(lo <= t(7, "de", 19) && t(7, "de", 19) <= hi);
        assert!(t(7, "de", 20) > hi);
        assert!(t(7, "de", 9) < lo);
        assert!(t(7, "dd", 15) < lo);
        assert!(t(7, "df", 15) > hi);
        assert!(t(6, "de", 15) < lo);
        assert!(t(8, "de", 15) > hi);
    }

    #[test]
    fn wide_schemas_refuse_stateless_compile() {
        let s = schema("{u64,u64}");
        let err = s
            .compile(&TypedBatch::new().point([1u64.into(), 2u64.into()]))
            .unwrap_err();
        assert!(err.to_string().contains("registry"), "{err}");
        assert!(s.encode_rows(&[vec![1u64.into(), 2u64.into()]]).is_err());
    }

    #[test]
    fn typed_batch_builder_and_bounds() {
        let b = TypedBatch::new()
            .point([1u64.into()])
            .prefix([2u64.into()])
            .prefix_range([3u64.into()], 4u64.into()..10u64.into())
            .prefix_range([5u64.into()], 6u64.into()..=9u64.into())
            .fetch_values(true)
            .with_chunk_size(32);
        assert_eq!(b.len(), 4);
        assert!(b.fetches_values());
        assert_eq!(b.chunk_size(), Some(32));
        assert!(matches!(
            &b.ops()[2],
            TypedOp::Prefix {
                upper: KeyBound::Excluded(KeyValue::U64(10)),
                ..
            }
        ));
        assert!(matches!(
            &b.ops()[3],
            TypedOp::Prefix {
                upper: KeyBound::Included(KeyValue::U64(9)),
                ..
            }
        ));
    }

    #[test]
    fn encoded_key_round_trips_through_limbs() {
        let s = schema("{u32,str16,u32}");
        let k = s
            .encode(&[7u64.into(), "hello".into(), 9u64.into()])
            .unwrap();
        assert_eq!(EncodedKey::from_limbs(k.limbs()), k);
    }
}
