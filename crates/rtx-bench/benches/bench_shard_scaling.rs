//! Shard-scaling benchmarks: wall-clock lookup throughput of every backend
//! behind the sharded execution layer, swept over shard counts.
//!
//! This is the acceptance benchmark of the sharding layer: on a multi-core
//! host, 8-shard point lookups should beat the 1-shard configuration by
//! well over 1.5× for at least RX and HT — per-shard sub-batches run
//! concurrently on the worker pool and each shard's structure is smaller
//! (shallower BVH, better cache behaviour). On a single hardware thread the
//! shard sweep degenerates to serial execution and mostly shows the
//! scatter/gather overhead; set `RTX_WORKERS` to pin the pool width for
//! reproducible comparisons across hosts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpu_device::Device;
use rtx_harness::registry;
use rtx_query::{IndexSpec, QueryBatch, SecondaryIndex};
use rtx_workloads as wl;

const KEYS: usize = 1 << 16;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn column(seed: u64) -> (Vec<u64>, Vec<u64>) {
    (
        wl::dense_shuffled(KEYS, seed),
        wl::value_column(KEYS, seed + 1),
    )
}

/// Builds `backend@shards` (hash-partitioned) from the default registry.
fn build_sharded(name: &str, spec: &IndexSpec<'_>) -> Box<dyn SecondaryIndex> {
    registry().build(name, spec).expect("sharded build")
}

fn bench_point_lookup_scaling(c: &mut Criterion) {
    let device = Device::default_eval();
    let (keys, values) = column(42);
    let queries = wl::point_lookups(&keys, KEYS / 2, 44);
    let batch = QueryBatch::of_points(&queries).fetch_values(true);
    let spec = IndexSpec::with_values(&device, &keys, &values);

    for backend in ["RX", "HT", "B+", "SA", "RXD"] {
        let mut group = c.benchmark_group(format!("shard_scaling_points/{backend}"));
        group.throughput(Throughput::Elements(batch.len() as u64));
        for shards in SHARD_COUNTS {
            let index = build_sharded(&format!("{backend}@{shards}"), &spec);
            group.bench_with_input(BenchmarkId::from_parameter(shards), &batch, |b, batch| {
                b.iter(|| index.execute(batch).unwrap())
            });
        }
        group.finish();
    }
}

fn bench_range_lookup_scaling(c: &mut Criterion) {
    let device = Device::default_eval();
    let (keys, values) = column(42);
    let ranges = wl::range_lookups(KEYS as u64, KEYS / 16, 32, 45);
    let batch = QueryBatch::of_ranges(&ranges).fetch_values(true);
    let spec = IndexSpec::with_values(&device, &keys, &values);

    // Range partitioning, so ranges split at shard boundaries instead of
    // broadcasting.
    for backend in ["RX", "SA"] {
        let mut group = c.benchmark_group(format!("shard_scaling_ranges/{backend}"));
        group.throughput(Throughput::Elements(batch.len() as u64));
        for shards in SHARD_COUNTS {
            let index = build_sharded(&format!("{backend}@{shards}:range"), &spec);
            group.bench_with_input(BenchmarkId::from_parameter(shards), &batch, |b, batch| {
                b.iter(|| index.execute(batch).unwrap())
            });
        }
        group.finish();
    }
}

fn bench_sharded_build(c: &mut Criterion) {
    let device = Device::default_eval();
    let (keys, values) = column(42);
    let spec = IndexSpec::with_values(&device, &keys, &values);
    let registry = registry();

    let mut group = c.benchmark_group("shard_scaling_build/RX");
    group.throughput(Throughput::Elements(KEYS as u64));
    for shards in SHARD_COUNTS {
        let name = format!("RX@{shards}");
        group.bench_with_input(BenchmarkId::from_parameter(shards), &name, |b, name| {
            b.iter(|| registry.build(name, &spec).unwrap())
        });
    }
    group.finish();
}

/// Shared Criterion configuration: small sample counts and short measurement
/// windows keep `cargo bench --workspace` runnable in CI while still
/// producing stable medians for the simulated workloads.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500))
}

criterion_group! {
    name = benches;
    config = quick();
    targets =
    bench_point_lookup_scaling,
    bench_range_lookup_scaling,
    bench_sharded_build
}
criterion_main!(benches);
