//! Lookup-batch generators.
//!
//! The paper's default lookup workload draws query keys uniformly at random
//! from the build set ("all hits"), fires them in one large batch, and
//! varies along several dimensions: the hit rate (Figure 14), the skew
//! (Figure 16), the sortedness of the batch (Figure 12), the batch size
//! (Figure 13) and the selectivity of range lookups (Figures 9, 17).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::zipf::ZipfSampler;

/// Draws `count` point lookups uniformly at random from `keys` (hit rate 1.0).
pub fn point_lookups(keys: &[u64], count: usize, seed: u64) -> Vec<u64> {
    assert!(
        !keys.is_empty(),
        "cannot generate lookups over an empty key set"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| keys[rng.gen_range(0..keys.len())])
        .collect()
}

/// Draws `count` point lookups with the given hit rate `h`: a fraction `h`
/// of the queries are existing keys, the rest are keys guaranteed to be
/// absent (drawn from outside the maximum key of the set, mirroring the
/// paper's miss generation on dense key sets).
pub fn point_lookups_with_hit_rate(
    keys: &[u64],
    count: usize,
    hit_rate: f64,
    seed: u64,
) -> Vec<u64> {
    assert!(
        (0.0..=1.0).contains(&hit_rate),
        "hit rate must be within [0, 1]"
    );
    assert!(
        !keys.is_empty(),
        "cannot generate lookups over an empty key set"
    );
    let max_key = keys.iter().copied().max().expect("non-empty");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            if rng.gen_bool(hit_rate) {
                keys[rng.gen_range(0..keys.len())]
            } else {
                // Misses lie beyond the largest key; on dense key sets this
                // is exactly how the paper produces guaranteed misses.
                max_key + 1 + rng.gen_range(0..keys.len() as u64 + 1)
            }
        })
        .collect()
}

/// Draws `count` point lookups whose target keys follow a Zipf distribution
/// over the build set (rank 0 = keys\[0\]), used by the skew experiment.
pub fn point_lookups_zipf(keys: &[u64], count: usize, theta: f64, seed: u64) -> Vec<u64> {
    assert!(
        !keys.is_empty(),
        "cannot generate lookups over an empty key set"
    );
    let mut sampler = ZipfSampler::new(keys.len(), theta, seed);
    (0..count).map(|_| keys[sampler.sample()]).collect()
}

/// Generates `count` range lookups over a dense key set of size
/// `dense_domain`, each spanning exactly `qualifying` consecutive keys (the
/// Figure 17 construction: on a dense key set a span of `s` returns exactly
/// `s` entries).
pub fn range_lookups(
    dense_domain: u64,
    count: usize,
    qualifying: u64,
    seed: u64,
) -> Vec<(u64, u64)> {
    assert!(
        qualifying >= 1,
        "a range lookup must cover at least one key"
    );
    assert!(
        dense_domain >= qualifying,
        "domain must be at least as large as the range span"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let lower = rng.gen_range(0..=(dense_domain - qualifying));
            (lower, lower + qualifying - 1)
        })
        .collect()
}

/// Sorts a lookup batch ascending (the "sorted lookups" variant of
/// Figure 12). Returns a new vector; the input order is preserved.
pub fn sorted_lookups(lookups: &[u64]) -> Vec<u64> {
    let mut sorted = lookups.to_vec();
    sorted.sort_unstable();
    sorted
}

/// Splits a lookup batch into `batch_count` consecutive batches of (nearly)
/// equal size, as in the batch-size experiment (Figure 13).
pub fn split_batches<T: Clone>(lookups: &[T], batch_count: usize) -> Vec<Vec<T>> {
    assert!(batch_count > 0, "at least one batch required");
    let per_batch = lookups.len().div_ceil(batch_count);
    lookups
        .chunks(per_batch.max(1))
        .map(|c| c.to_vec())
        .collect()
}

/// Shuffles a lookup batch (used to undo accidental ordering).
pub fn shuffled_lookups(lookups: &[u64], seed: u64) -> Vec<u64> {
    let mut shuffled = lookups.to_vec();
    shuffled.shuffle(&mut StdRng::seed_from_u64(seed));
    shuffled
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keyset::dense_shuffled;
    use std::collections::HashSet;

    #[test]
    fn point_lookups_only_return_existing_keys() {
        let keys = dense_shuffled(1000, 1);
        let lookups = point_lookups(&keys, 5000, 2);
        assert_eq!(lookups.len(), 5000);
        let key_set: HashSet<u64> = keys.iter().copied().collect();
        assert!(lookups.iter().all(|q| key_set.contains(q)));
        assert_eq!(lookups, point_lookups(&keys, 5000, 2), "deterministic");
    }

    #[test]
    fn hit_rate_is_respected_approximately() {
        let keys = dense_shuffled(1000, 1);
        let key_set: HashSet<u64> = keys.iter().copied().collect();
        for &h in &[0.0, 0.3, 0.7, 1.0] {
            let lookups = point_lookups_with_hit_rate(&keys, 20_000, h, 3);
            let hits = lookups.iter().filter(|q| key_set.contains(q)).count() as f64 / 20_000.0;
            assert!((hits - h).abs() < 0.02, "target {h}, measured {hits}");
        }
    }

    #[test]
    fn zipf_lookups_concentrate_under_skew() {
        let keys = dense_shuffled(10_000, 1);
        let uniform = point_lookups_zipf(&keys, 20_000, 0.0, 4);
        let skewed = point_lookups_zipf(&keys, 20_000, 1.5, 4);
        let distinct_uniform: HashSet<u64> = uniform.iter().copied().collect();
        let distinct_skewed: HashSet<u64> = skewed.iter().copied().collect();
        assert!(
            distinct_skewed.len() < distinct_uniform.len() / 2,
            "skewed lookups must touch far fewer distinct keys ({} vs {})",
            distinct_skewed.len(),
            distinct_uniform.len()
        );
    }

    #[test]
    fn range_lookups_have_exact_span() {
        let ranges = range_lookups(1 << 20, 1000, 16, 5);
        assert_eq!(ranges.len(), 1000);
        for (l, u) in ranges {
            assert_eq!(u - l + 1, 16);
            assert!(u < 1 << 20);
        }
        let point_like = range_lookups(100, 10, 1, 5);
        assert!(point_like.iter().all(|(l, u)| l == u));
    }

    #[test]
    fn sorted_and_shuffled_lookups() {
        let keys = dense_shuffled(100, 1);
        let lookups = point_lookups(&keys, 1000, 2);
        let sorted = sorted_lookups(&lookups);
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
        let reshuffled = shuffled_lookups(&sorted, 3);
        assert_eq!(sorted_lookups(&reshuffled), sorted);
    }

    #[test]
    fn batch_splitting_preserves_all_lookups() {
        let lookups: Vec<u64> = (0..1000).collect();
        let batches = split_batches(&lookups, 7);
        assert!(batches.len() <= 7);
        let total: usize = batches.iter().map(|b| b.len()).sum();
        assert_eq!(total, 1000);
        let rejoined: Vec<u64> = batches.into_iter().flatten().collect();
        assert_eq!(rejoined, lookups);
        // One batch = the original.
        assert_eq!(split_batches(&lookups, 1).len(), 1);
    }

    #[test]
    #[should_panic(expected = "empty key set")]
    fn lookups_over_empty_keys_panic() {
        let _ = point_lookups(&[], 10, 1);
    }

    #[test]
    #[should_panic(expected = "hit rate")]
    fn invalid_hit_rate_panics() {
        let _ = point_lookups_with_hit_rate(&[1], 10, 1.5, 1);
    }
}
