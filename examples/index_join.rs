//! Index-based join: the batch-lookup workload the paper motivates ("batch
//! processing workloads, which, for instance, arise naturally in index-based
//! joins, are able to fully saturate the GPU").
//!
//! An orders table is joined with a customers table through an RTIndeX on
//! the customers' key column: every order row produces one point lookup, and
//! the join aggregates a value from the matching customer row.
//!
//! Run with: `cargo run --release --example index_join`

use rtindex::{Device, GpuIndex, RtIndex, RtIndexConfig, WarpHashTable};
use rtx_workloads as wl;

fn main() {
    let device = Device::default_eval();
    let seed = 11;

    // Build side: customers(customer_key, credit_limit). 2^15 customers.
    let customers = 1usize << 15;
    let customer_keys = wl::dense_shuffled(customers, seed);
    let credit_limits = wl::value_column(customers, seed + 1);

    // Probe side: orders(customer_fk), 2^17 rows, Zipf-skewed foreign keys —
    // a few big customers place most orders.
    let orders = 1usize << 17;
    let order_fks = wl::point_lookups_zipf(&customer_keys, orders, 1.0, seed + 2);

    println!("joining {orders} orders against {customers} customers (Zipf 1.0 foreign keys)");

    // Index the build side once, probe it with the whole orders batch.
    let index = RtIndex::build(&device, &customer_keys, RtIndexConfig::default()).expect("build");
    let probe = index
        .point_lookup_batch(&order_fks, Some(&credit_limits))
        .expect("probe");
    println!(
        "RX probe: {} matches, aggregated credit limit {}, simulated {:.3} ms",
        probe.hit_count(),
        probe.total_value_sum(),
        probe.metrics.simulated_time_s * 1e3
    );

    // Verify the join result against the oracle.
    let truth = wl::GroundTruth::new(&customer_keys, Some(&credit_limits));
    assert_eq!(probe.total_value_sum(), truth.batch_point_sum(&order_fks));
    assert_eq!(
        probe.hit_count(),
        orders,
        "every order has a matching customer"
    );
    println!("join result verified: OK");

    // The hash-table baseline answers the same probe; on uniform keys it
    // wins, under heavy skew RX narrows the gap (Figure 16).
    let ht = WarpHashTable::build(&device, &customer_keys);
    let ht_probe = ht.point_lookup_batch(&device, &order_fks, Some(&credit_limits));
    assert_eq!(ht_probe.total_value_sum(), probe.total_value_sum());
    println!(
        "HT probe: simulated {:.3} ms (RX: {:.3} ms)",
        ht_probe.simulated_time_s * 1e3,
        probe.metrics.simulated_time_s * 1e3
    );

    // Splitting the probe side into small batches wastes GPU resources
    // (Figure 13): compare one big batch against 64 small ones.
    let mut split_ms = 0.0;
    for batch in wl::split_batches(&order_fks, 64) {
        split_ms += index
            .point_lookup_batch(&batch, Some(&credit_limits))
            .expect("probe batch")
            .metrics
            .simulated_time_s;
    }
    println!(
        "probing in 64 batches: {:.3} ms vs. {:.3} ms in one batch",
        split_ms * 1e3,
        probe.metrics.simulated_time_s * 1e3
    );
}
