//! Key decomposition for 3D Mode (Section 3.4 of the paper).
//!
//! A 64-bit key is split into three smaller unsigned integers that become the
//! x, y and z coordinate of the key's primitive. The paper's default is
//! `x = k[22:0]`, `y = k[45:23]`, `z = k[63:46]` (written 23+23+18); Figures 8
//! and 9 sweep alternative splits, which is why the decomposition is a
//! first-class configurable value here.

/// A decomposition of key bits onto the three coordinate axes.
///
/// `x_bits` holds the least significant bits, `y_bits` the next group and
/// `z_bits` the most significant group. Each axis is limited to 23 bits so
/// that the resulting integer coordinate (and the ±0.5 gap next to it) is
/// exactly representable as a float32.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Decomposition {
    /// Bits assigned to the x axis (least significant).
    pub x_bits: u32,
    /// Bits assigned to the y axis.
    pub y_bits: u32,
    /// Bits assigned to the z axis (most significant).
    pub z_bits: u32,
}

/// Maximum bits a single float32 axis can hold without losing the ±0.5 gap.
pub const MAX_AXIS_BITS: u32 = 23;

impl Decomposition {
    /// The paper's default decomposition: x = k\[22:0\], y = k\[45:23\],
    /// z = k\[63:46\].
    pub const DEFAULT: Decomposition = Decomposition {
        x_bits: 23,
        y_bits: 23,
        z_bits: 18,
    };

    /// Creates a decomposition after validating the axis limits.
    ///
    /// # Panics
    /// Panics when an axis exceeds 23 bits (22 bits + gap for z would still
    /// be fine, but the paper never exceeds 23 either) or when the total
    /// exceeds 64 bits.
    pub fn new(x_bits: u32, y_bits: u32, z_bits: u32) -> Self {
        assert!(
            x_bits <= MAX_AXIS_BITS && y_bits <= MAX_AXIS_BITS && z_bits <= MAX_AXIS_BITS,
            "every axis is limited to {MAX_AXIS_BITS} bits to stay exactly representable in float32"
        );
        assert!(
            x_bits + y_bits + z_bits <= 64,
            "decomposition cannot cover more than 64 bits"
        );
        assert!(x_bits > 0, "the x axis must receive at least one bit");
        Decomposition {
            x_bits,
            y_bits,
            z_bits,
        }
    }

    /// Total number of key bits covered by the decomposition.
    pub fn total_bits(&self) -> u32 {
        self.x_bits + self.y_bits + self.z_bits
    }

    /// Largest key this decomposition can represent.
    pub fn max_key(&self) -> u64 {
        if self.total_bits() >= 64 {
            u64::MAX
        } else {
            (1u64 << self.total_bits()) - 1
        }
    }

    /// Splits a key into its (x, y, z) integer components.
    pub fn split(&self, key: u64) -> (u64, u64, u64) {
        let x = key & mask(self.x_bits);
        let y = (key >> self.x_bits) & mask(self.y_bits);
        let z = (key >> (self.x_bits + self.y_bits)) & mask(self.z_bits);
        (x, y, z)
    }

    /// Recombines (x, y, z) components into the original key.
    pub fn join(&self, x: u64, y: u64, z: u64) -> u64 {
        x | (y << self.x_bits) | (z << (self.x_bits + self.y_bits))
    }

    /// The combined y/z part of the key (the "row" a key lives in). Range
    /// lookups must fire one ray per row between `row(l)` and `row(u)`.
    pub fn row(&self, key: u64) -> u64 {
        key >> self.x_bits
    }

    /// Splits a row id back into its (y, z) components.
    pub fn row_to_yz(&self, row: u64) -> (u64, u64) {
        (
            row & mask(self.y_bits),
            (row >> self.y_bits) & mask(self.z_bits),
        )
    }

    /// Largest x component value.
    pub fn max_x(&self) -> u64 {
        mask(self.x_bits)
    }

    /// Number of rays a range lookup `[l, u]` needs: one per row touched.
    pub fn rays_for_range(&self, lower: u64, upper: u64) -> u64 {
        self.row(upper) - self.row(lower) + 1
    }

    /// Short label used by experiment output, e.g. `"23+23+18"`.
    pub fn label(&self) -> String {
        format!("{}+{}+{}", self.x_bits, self.y_bits, self.z_bits)
    }

    /// The decompositions swept by Figure 8 (point lookups): x+y+z with the
    /// listed bit counts.
    pub fn figure8_sweep() -> Vec<Decomposition> {
        vec![
            Decomposition::new(23, 3, 0),
            Decomposition::new(22, 4, 0),
            Decomposition::new(21, 5, 0),
            Decomposition::new(20, 6, 0),
            Decomposition::new(19, 7, 0),
            Decomposition::new(18, 8, 0),
            Decomposition::new(17, 9, 0),
            Decomposition::new(16, 10, 0),
            Decomposition::new(23, 0, 3),
            Decomposition::new(22, 0, 4),
            Decomposition::new(21, 0, 5),
            Decomposition::new(20, 0, 6),
            Decomposition::new(19, 0, 7),
            Decomposition::new(18, 0, 8),
            Decomposition::new(17, 0, 9),
            Decomposition::new(16, 0, 10),
        ]
    }

    /// The decompositions swept by Figure 9 (range lookups).
    pub fn figure9_sweep() -> Vec<Decomposition> {
        vec![
            Decomposition::new(16, 10, 0),
            Decomposition::new(17, 9, 0),
            Decomposition::new(18, 8, 0),
            Decomposition::new(19, 7, 0),
            Decomposition::new(20, 6, 0),
            Decomposition::new(21, 5, 0),
            Decomposition::new(22, 4, 0),
            Decomposition::new(23, 3, 0),
        ]
    }
}

impl Default for Decomposition {
    fn default() -> Self {
        Decomposition::DEFAULT
    }
}

#[inline]
fn mask(bits: u32) -> u64 {
    if bits == 0 {
        0
    } else if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn default_matches_paper() {
        let d = Decomposition::default();
        assert_eq!((d.x_bits, d.y_bits, d.z_bits), (23, 23, 18));
        assert_eq!(d.total_bits(), 64);
        assert_eq!(d.max_key(), u64::MAX);
        assert_eq!(d.label(), "23+23+18");
    }

    #[test]
    fn split_and_join_default() {
        let d = Decomposition::DEFAULT;
        let key = 0xDEAD_BEEF_CAFE_BABEu64;
        let (x, y, z) = d.split(key);
        assert!(x < (1 << 23));
        assert!(y < (1 << 23));
        assert!(z < (1 << 18));
        assert_eq!(d.join(x, y, z), key);
    }

    #[test]
    fn split_matches_bit_ranges() {
        let d = Decomposition::new(2, 2, 2);
        // key = 0b10_01_11 -> x = 0b11, y = 0b01, z = 0b10
        let key = 0b10_01_11u64;
        assert_eq!(d.split(key), (0b11, 0b01, 0b10));
        assert_eq!(d.max_key(), 63);
        assert_eq!(d.max_x(), 3);
    }

    #[test]
    fn rows_and_ranges() {
        let d = Decomposition::new(2, 4, 0);
        // Keys 0..=3 share row 0, 4..=7 row 1, …
        assert_eq!(d.row(0), 0);
        assert_eq!(d.row(3), 0);
        assert_eq!(d.row(4), 1);
        assert_eq!(d.rays_for_range(0, 3), 1);
        assert_eq!(d.rays_for_range(2, 5), 2);
        assert_eq!(d.rays_for_range(0, 15), 4);
        assert_eq!(d.row_to_yz(5), (5, 0));
    }

    #[test]
    fn row_to_yz_splits_both_axes() {
        let d = Decomposition::new(8, 4, 4);
        let key = d.join(0x12, 0xA, 0x5);
        let row = d.row(key);
        assert_eq!(d.row_to_yz(row), (0xA, 0x5));
    }

    #[test]
    fn figure_sweeps_have_expected_sizes() {
        assert_eq!(Decomposition::figure8_sweep().len(), 16);
        assert_eq!(Decomposition::figure9_sweep().len(), 8);
        for d in Decomposition::figure8_sweep() {
            assert_eq!(d.total_bits(), 26, "figure 8 uses 2^26 dense keys");
        }
    }

    #[test]
    #[should_panic(expected = "limited to 23 bits")]
    fn axis_limit_enforced() {
        let _ = Decomposition::new(24, 0, 0);
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn x_axis_needs_bits() {
        let _ = Decomposition::new(0, 10, 10);
    }

    proptest! {
        #[test]
        fn prop_split_join_roundtrip(key in any::<u64>()) {
            let d = Decomposition::DEFAULT;
            let (x, y, z) = d.split(key);
            prop_assert_eq!(d.join(x, y, z), key);
        }

        #[test]
        fn prop_split_respects_axis_widths(key in any::<u64>(), x_bits in 1u32..=23, y_bits in 0u32..=23, z_bits in 0u32..=18) {
            let d = Decomposition::new(x_bits, y_bits, z_bits);
            let key = key & d.max_key();
            let (x, y, z) = d.split(key);
            prop_assert!(x <= d.max_x());
            prop_assert!(y < (1u64 << y_bits.max(1)) || y_bits == 0 && y == 0);
            prop_assert!(z < (1u64 << z_bits.max(1)) || z_bits == 0 && z == 0);
            prop_assert_eq!(d.join(x, y, z), key);
        }

        #[test]
        fn prop_row_ordering_is_monotone(a in any::<u64>(), b in any::<u64>()) {
            let d = Decomposition::DEFAULT;
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(d.row(lo) <= d.row(hi));
        }
    }
}
