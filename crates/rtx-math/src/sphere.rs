//! Sphere primitives and ray/sphere intersection.
//!
//! Spheres are the second primitive type the paper evaluates in Section 3.5.
//! A sphere only stores its centre (the radius is shared across the whole
//! build, as OptiX allows), making it the most space-efficient representation
//! of a key — but intersection runs in a software intersection program rather
//! than in the RT cores.

use crate::aabb::Aabb;
use crate::ray::Ray;
use crate::vec3::Vec3f;
use crate::Hit;

/// A sphere described by its centre and radius.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sphere {
    /// Sphere centre.
    pub center: Vec3f,
    /// Sphere radius.
    pub radius: f32,
}

impl Sphere {
    /// The radius the paper selects for key spheres: small enough that rays
    /// can always start/end in the gap between two adjacent keys.
    pub const KEY_RADIUS: f32 = 0.25;

    /// Creates a sphere.
    #[inline]
    pub const fn new(center: Vec3f, radius: f32) -> Self {
        Sphere { center, radius }
    }

    /// Creates the key sphere for a key located at `center`.
    #[inline]
    pub fn key_sphere(center: Vec3f) -> Self {
        Sphere::new(center, Self::KEY_RADIUS)
    }

    /// Tight bounding box of the sphere.
    #[inline]
    pub fn bounds(&self) -> Aabb {
        Aabb::new(
            self.center - Vec3f::splat(self.radius),
            self.center + Vec3f::splat(self.radius),
        )
    }

    /// Ray/sphere intersection.
    ///
    /// Reports the closest crossing of the sphere *surface* inside the open
    /// ray interval. A ray that starts inside the sphere reports the exit
    /// point, matching the OptiX built-in sphere primitive behaviour the
    /// paper relies on ("a ray-sphere intersection can only occur when the
    /// ray enters or exits the volume").
    #[inline]
    pub fn intersect(&self, ray: &Ray) -> Option<Hit> {
        let oc = ray.origin - self.center;
        let a = ray.direction.dot(ray.direction);
        if a == 0.0 {
            return None;
        }
        let half_b = oc.dot(ray.direction);
        let c = oc.dot(oc) - self.radius * self.radius;
        let disc = half_b * half_b - a * c;
        if disc < 0.0 {
            return None;
        }
        let sqrt_disc = disc.sqrt();
        let t_near = (-half_b - sqrt_disc) / a;
        if ray.contains(t_near) {
            return Some(Hit::new(t_near));
        }
        let t_far = (-half_b + sqrt_disc) / a;
        if ray.contains(t_far) {
            return Some(Hit::new(t_far));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_enclose_sphere() {
        let s = Sphere::new(Vec3f::new(1.0, 2.0, 3.0), 0.5);
        let b = s.bounds();
        assert_eq!(b.min, Vec3f::new(0.5, 1.5, 2.5));
        assert_eq!(b.max, Vec3f::new(1.5, 2.5, 3.5));
    }

    #[test]
    fn straight_ray_hits_near_surface() {
        let s = Sphere::new(Vec3f::new(5.0, 0.0, 0.0), 1.0);
        let r = Ray::unbounded(Vec3f::ZERO, Vec3f::new(1.0, 0.0, 0.0));
        let hit = s.intersect(&r).expect("hit");
        assert!((hit.t - 4.0).abs() < 1e-5);
    }

    #[test]
    fn ray_starting_inside_reports_exit() {
        let s = Sphere::new(Vec3f::ZERO, 1.0);
        let r = Ray::unbounded(Vec3f::ZERO, Vec3f::new(1.0, 0.0, 0.0));
        let hit = s.intersect(&r).expect("hit");
        assert!((hit.t - 1.0).abs() < 1e-5);
    }

    #[test]
    fn ray_misses_off_axis() {
        let s = Sphere::new(Vec3f::new(5.0, 3.0, 0.0), 1.0);
        let r = Ray::unbounded(Vec3f::ZERO, Vec3f::new(1.0, 0.0, 0.0));
        assert!(s.intersect(&r).is_none());
    }

    #[test]
    fn interval_clipping() {
        let s = Sphere::new(Vec3f::new(5.0, 0.0, 0.0), 1.0);
        let r = Ray::new(Vec3f::ZERO, Vec3f::new(1.0, 0.0, 0.0), 0.0, 3.0);
        assert!(s.intersect(&r).is_none());
        let r2 = Ray::new(Vec3f::ZERO, Vec3f::new(1.0, 0.0, 0.0), 4.5, 10.0);
        // Near surface (t = 4) is before tmin; the far surface (t = 6) counts.
        let hit = s.intersect(&r2).expect("hit far surface");
        assert!((hit.t - 6.0).abs() < 1e-5);
    }

    #[test]
    fn key_sphere_gap_large_enough_for_adjacent_keys() {
        // Two adjacent integer keys leave a gap of 2 * (0.5 - 0.25) = 0.5
        // between their spheres: a ray can start between them without being
        // inside either sphere.
        let a = Sphere::key_sphere(Vec3f::new(10.0, 0.0, 0.0));
        let b = Sphere::key_sphere(Vec3f::new(11.0, 0.0, 0.0));
        let start = Vec3f::new(10.5, 0.0, 0.0);
        assert!((start - a.center).length() > a.radius);
        assert!((start - b.center).length() > b.radius);
        // A ray starting in the gap and travelling +x hits only b.
        let r = Ray::new(start, Vec3f::new(1.0, 0.0, 0.0), 0.0, 1.0);
        assert!(a.intersect(&r).is_none());
        assert!(b.intersect(&r).is_some());
    }

    #[test]
    fn degenerate_direction_returns_none() {
        let s = Sphere::new(Vec3f::ZERO, 1.0);
        let r = Ray::unbounded(Vec3f::new(5.0, 0.0, 0.0), Vec3f::ZERO);
        assert!(s.intersect(&r).is_none());
    }
}
