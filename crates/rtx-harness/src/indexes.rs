//! Uniform driver over RX and the three baseline indexes.
//!
//! Experiments compare the four index structures on identical workloads.
//! [`AnyIndex`] wraps them behind one interface and converts their lookup
//! outcomes into a common [`Measurement`] record carrying the simulated
//! device time and the hardware counters the paper's analysis uses.

use gpu_baselines::{BPlusTree, GpuIndex, SortedArray, WarpHashTable};
use gpu_device::{Device, KernelStats};
use rtindex_core::{RtIndex, RtIndexConfig};

/// One measured lookup batch (or build phase) of one index.
#[derive(Debug, Clone, Default)]
pub struct Measurement {
    /// Index name ("RX", "HT", "B+", "SA").
    pub index: String,
    /// Simulated device time in milliseconds.
    pub sim_ms: f64,
    /// Host wall-clock milliseconds of the software execution (not
    /// comparable to the paper; reported for transparency).
    pub host_ms: f64,
    /// Number of lookups that found at least one qualifying row.
    pub hits: usize,
    /// Total value sum over the batch (checksum against the ground truth).
    pub value_sum: u64,
    /// Merged kernel counters.
    pub kernel: KernelStats,
}

impl Measurement {
    /// Lookup throughput in operations per second for a batch of `lookups`.
    pub fn throughput(&self, lookups: usize) -> f64 {
        if self.sim_ms <= 0.0 {
            return 0.0;
        }
        lookups as f64 / (self.sim_ms / 1e3)
    }
}

/// Any of the four evaluated index structures.
#[allow(clippy::large_enum_variant)]
pub enum AnyIndex {
    /// RTIndeX.
    Rx(RtIndex),
    /// WarpCore-style hash table.
    Ht(WarpHashTable),
    /// GPU B+-tree.
    Bp(BPlusTree),
    /// Sorted array.
    Sa(SortedArray),
}

impl AnyIndex {
    /// Display name used in report tables.
    pub fn name(&self) -> &'static str {
        match self {
            AnyIndex::Rx(_) => "RX",
            AnyIndex::Ht(_) => "HT",
            AnyIndex::Bp(_) => "B+",
            AnyIndex::Sa(_) => "SA",
        }
    }

    /// Device memory the index occupies after construction.
    pub fn memory_bytes(&self) -> u64 {
        match self {
            AnyIndex::Rx(ix) => ix.index_memory_bytes(),
            AnyIndex::Ht(ix) => ix.memory_bytes(),
            AnyIndex::Bp(ix) => ix.memory_bytes(),
            AnyIndex::Sa(ix) => ix.memory_bytes(),
        }
    }

    /// Simulated build time in milliseconds.
    pub fn build_sim_ms(&self) -> f64 {
        match self {
            AnyIndex::Rx(ix) => ix.build_metrics().simulated_time_s * 1e3,
            AnyIndex::Ht(ix) => ix.build_metrics().simulated_time_s * 1e3,
            AnyIndex::Bp(ix) => ix.build_metrics().simulated_time_s * 1e3,
            AnyIndex::Sa(ix) => ix.build_metrics().simulated_time_s * 1e3,
        }
    }

    /// Temporary device memory the build needed beyond the final footprint.
    pub fn build_scratch_bytes(&self) -> u64 {
        match self {
            AnyIndex::Rx(ix) => ix.build_metrics().scratch_bytes,
            AnyIndex::Ht(ix) => ix.build_metrics().scratch_bytes,
            AnyIndex::Bp(ix) => ix.build_metrics().scratch_bytes,
            AnyIndex::Sa(ix) => ix.build_metrics().scratch_bytes,
        }
    }

    /// Whether the index answers range lookups.
    pub fn supports_range(&self) -> bool {
        match self {
            AnyIndex::Rx(_) => true,
            AnyIndex::Ht(ix) => ix.supports_range(),
            AnyIndex::Bp(ix) => ix.supports_range(),
            AnyIndex::Sa(ix) => ix.supports_range(),
        }
    }

    /// Answers a batch of point lookups and converts the outcome into a
    /// [`Measurement`].
    pub fn point_lookups(
        &self,
        device: &Device,
        queries: &[u64],
        values: Option<&[u64]>,
    ) -> Measurement {
        match self {
            AnyIndex::Rx(ix) => {
                let out = ix
                    .point_lookup_batch(queries, values)
                    .expect("validated workload");
                Measurement {
                    index: self.name().to_string(),
                    sim_ms: out.metrics.simulated_time_s * 1e3,
                    host_ms: out.metrics.host_time.as_secs_f64() * 1e3,
                    hits: out.hit_count(),
                    value_sum: out.total_value_sum(),
                    kernel: out.metrics.kernel,
                }
            }
            AnyIndex::Ht(ix) => {
                baseline_measurement(self.name(), ix.point_lookup_batch(device, queries, values))
            }
            AnyIndex::Bp(ix) => {
                baseline_measurement(self.name(), ix.point_lookup_batch(device, queries, values))
            }
            AnyIndex::Sa(ix) => {
                baseline_measurement(self.name(), ix.point_lookup_batch(device, queries, values))
            }
        }
    }

    /// Answers a batch of range lookups, or `None` when unsupported (HT).
    pub fn range_lookups(
        &self,
        device: &Device,
        ranges: &[(u64, u64)],
        values: Option<&[u64]>,
    ) -> Option<Measurement> {
        match self {
            AnyIndex::Rx(ix) => {
                let out = ix
                    .range_lookup_batch(ranges, values)
                    .expect("validated workload");
                Some(Measurement {
                    index: self.name().to_string(),
                    sim_ms: out.metrics.simulated_time_s * 1e3,
                    host_ms: out.metrics.host_time.as_secs_f64() * 1e3,
                    hits: out.hit_count(),
                    value_sum: out.total_value_sum(),
                    kernel: out.metrics.kernel,
                })
            }
            AnyIndex::Ht(ix) => ix
                .range_lookup_batch(device, ranges, values)
                .map(|b| baseline_measurement(self.name(), b)),
            AnyIndex::Bp(ix) => ix
                .range_lookup_batch(device, ranges, values)
                .map(|b| baseline_measurement(self.name(), b)),
            AnyIndex::Sa(ix) => ix
                .range_lookup_batch(device, ranges, values)
                .map(|b| baseline_measurement(self.name(), b)),
        }
    }
}

fn baseline_measurement(name: &str, batch: gpu_baselines::BaselineBatch) -> Measurement {
    Measurement {
        index: name.to_string(),
        sim_ms: batch.simulated_time_s * 1e3,
        host_ms: batch.host_time.as_secs_f64() * 1e3,
        hits: batch.hit_count(),
        value_sum: batch.total_value_sum(),
        kernel: batch.kernel,
    }
}

/// Builds all four indexes over the same key column. The B+-tree is skipped
/// (with a log line in the returned vector being absent) when the key set
/// violates its restrictions (duplicates or 64-bit keys), exactly as the
/// paper omits B+ from those experiments.
pub fn build_all_indexes(device: &Device, keys: &[u64], rx_config: RtIndexConfig) -> Vec<AnyIndex> {
    let mut indexes = Vec::with_capacity(4);
    indexes.push(AnyIndex::Ht(WarpHashTable::build(device, keys)));
    if let Ok(tree) = BPlusTree::build(device, keys) {
        indexes.push(AnyIndex::Bp(tree));
    }
    indexes.push(AnyIndex::Sa(SortedArray::build(device, keys)));
    indexes.push(AnyIndex::Rx(
        RtIndex::build(device, keys, rx_config).expect("RX build"),
    ));
    indexes
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_workloads::{dense_shuffled, point_lookups, range_lookups, value_column, GroundTruth};

    #[test]
    fn all_indexes_agree_with_ground_truth_on_points() {
        let device = crate::default_device();
        let keys = dense_shuffled(2048, 1);
        let values = value_column(2048, 2);
        let queries = point_lookups(&keys, 4096, 3);
        let truth = GroundTruth::new(&keys, Some(&values));
        let expected_sum = truth.batch_point_sum(&queries);
        let expected_hits = truth.batch_point_hits(&queries);

        let indexes = build_all_indexes(&device, &keys, RtIndexConfig::default());
        assert_eq!(
            indexes.len(),
            4,
            "unique 32-bit keys allow all four indexes"
        );
        for ix in &indexes {
            let m = ix.point_lookups(&device, &queries, Some(&values));
            assert_eq!(m.hits, expected_hits, "{} hit count", ix.name());
            assert_eq!(m.value_sum, expected_sum, "{} value sum", ix.name());
            assert!(m.sim_ms > 0.0, "{} must report simulated time", ix.name());
            assert!(m.kernel.threads_launched >= 4096);
        }
    }

    #[test]
    fn all_order_based_indexes_agree_on_ranges() {
        let device = crate::default_device();
        let keys = dense_shuffled(2048, 1);
        let values = value_column(2048, 2);
        let ranges = range_lookups(2048, 512, 16, 4);
        let truth = GroundTruth::new(&keys, Some(&values));
        let expected_sum = truth.batch_range_sum(&ranges);

        let indexes = build_all_indexes(&device, &keys, RtIndexConfig::default());
        let mut range_capable = 0;
        for ix in &indexes {
            match ix.range_lookups(&device, &ranges, Some(&values)) {
                Some(m) => {
                    range_capable += 1;
                    assert_eq!(m.value_sum, expected_sum, "{} range sum", ix.name());
                }
                None => assert_eq!(ix.name(), "HT", "only HT lacks range support"),
            }
        }
        assert_eq!(range_capable, 3);
    }

    #[test]
    fn bplus_is_skipped_for_unsupported_key_sets() {
        let device = crate::default_device();
        let keys_with_dup = vec![1u64, 2, 2, 3];
        let indexes = build_all_indexes(&device, &keys_with_dup, RtIndexConfig::default());
        assert_eq!(indexes.len(), 3);
        assert!(indexes.iter().all(|ix| ix.name() != "B+"));

        let keys_64bit = vec![1u64, 1 << 40];
        let indexes = build_all_indexes(&device, &keys_64bit, RtIndexConfig::default());
        assert!(indexes.iter().all(|ix| ix.name() != "B+"));
    }

    #[test]
    fn metadata_accessors() {
        let device = crate::default_device();
        let keys = dense_shuffled(1024, 1);
        let indexes = build_all_indexes(&device, &keys, RtIndexConfig::default());
        for ix in &indexes {
            assert!(ix.memory_bytes() > 0, "{}", ix.name());
            assert!(ix.build_sim_ms() > 0.0, "{}", ix.name());
            assert_eq!(ix.supports_range(), ix.name() != "HT");
        }
        let m = indexes[0].point_lookups(&device, &[keys[0]], None);
        assert!(m.throughput(1) > 0.0);
    }
}
