//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's `benches/` targets use —
//! benchmark groups, `bench_function` / `bench_with_input`, `iter` /
//! `iter_batched`, throughput annotations and the `criterion_group!` /
//! `criterion_main!` macros — backed by a deliberately simple wall-clock
//! timer: every benchmark runs `sample_size` samples and reports the median
//! per-iteration time. No statistics, plots or baselines; `cargo bench`
//! output is a plain table. The point is that bench targets compile and run
//! without crates.io access, while remaining useful as a coarse regression
//! signal.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Returns the argument unchanged while preventing the optimiser from
/// proving anything about it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortises its setup allocations. The shim runs one
/// routine invocation per setup regardless; the variants exist for API
/// compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Work-per-iteration annotation used to derive throughput rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a [`BenchmarkId`] (accepts plain strings too).
pub trait IntoBenchmarkId {
    /// Performs the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the most recent `iter*` call.
    last_median: Option<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            last_median: None,
        }
    }

    fn record(&mut self, mut times: Vec<Duration>) {
        times.sort_unstable();
        self.last_median = times.get(times.len() / 2).copied();
    }

    /// Benchmarks `routine` by timing `samples` invocations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let mut times = Vec::with_capacity(self.samples);
        // One untimed warm-up invocation.
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            times.push(start.elapsed());
        }
        self.record(times);
    }

    /// Benchmarks `routine` on fresh inputs produced by `setup`; only the
    /// routine is timed.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            times.push(start.elapsed());
        }
        self.record(times);
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares how much work one iteration performs.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        self.report(&id, bencher.last_median);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        self.report(&id, bencher.last_median);
        self
    }

    fn report(&self, id: &BenchmarkId, median: Option<Duration>) {
        let full = format!("{}/{}", self.name, id.id);
        match median {
            Some(t) => {
                let rate = self.throughput.map(|tp| match tp {
                    Throughput::Elements(n) => {
                        format!("  {:>12.3e} elem/s", n as f64 / t.as_secs_f64().max(1e-12))
                    }
                    Throughput::Bytes(n) => {
                        format!("  {:>12.3e} B/s", n as f64 / t.as_secs_f64().max(1e-12))
                    }
                });
                println!("{full:<56} {:>12.3?}{}", t, rate.unwrap_or_default());
            }
            None => println!("{full:<56} (no measurement)"),
        }
        let _ = &self.criterion;
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the shim has no warm-up phase beyond
    /// one untimed invocation.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for API compatibility; the shim times a fixed number of
    /// samples instead of a duration budget.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== bench group: {name} ==");
        let sample_size = self.sample_size;
        BenchmarkGroup {
            name,
            criterion: self,
            throughput: None,
            sample_size,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        let median = bencher.last_median;
        match median {
            Some(t) => println!("{:<56} {:>12.3?}", id.id, t),
            None => println!("{:<56} (no measurement)", id.id),
        }
        self
    }
}

/// Declares a benchmark group: either `criterion_group!(name, target, ...)`
/// or the long form with an explicit `config = ...` expression.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(c: &mut Criterion) {
        let mut group = c.benchmark_group("spin");
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 50), &50u64, |b, &n| {
            b.iter_batched(|| n, |n| (0..n).sum::<u64>(), BatchSize::SmallInput)
        });
        group.finish();
    }

    criterion_group!(benches, spin);

    #[test]
    fn group_macro_produces_runnable_harness() {
        benches();
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("zipf1").id, "zipf1");
    }
}
