//! Integration tests for the staged parallel build pipeline and the
//! two-generation background compaction: determinism across worker widths,
//! oracle equivalence while reads race an in-flight rebuild, the
//! builder-selection name grammar, and the service-level stall surfacing.

use proptest::prelude::*;
use rtindex::rtx_bvh::{builder, BuildConfig, BuildPipeline, BuilderKind, TriangleSet};
use rtindex::rtx_delta::{CompactionPolicy, DynamicAdapter, DynamicRtIndex};
use rtindex::rtx_math::Triangle;
use rtindex::{
    registry, Device, DynamicRtConfig, IndexSpec, KeyMode, QueryBatch, QueryService, ServiceConfig,
    UpdatableIndex,
};
use rtx_workloads::truth::DynamicOracle;

fn triangles_for_keys(keys: &[u64]) -> TriangleSet {
    let centers = KeyMode::three_d_default().centers(keys);
    TriangleSet::new(
        centers
            .into_iter()
            .map(|c| Triangle::key_triangle(c, 0.4))
            .collect(),
    )
}

fn background_config(max_delta_entries: usize) -> DynamicRtConfig {
    DynamicRtConfig::default()
        .with_policy(CompactionPolicy {
            max_delta_entries,
            max_delta_fraction: f64::INFINITY,
            max_delete_ratio: f64::INFINITY,
        })
        .with_background_compaction(true)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The staged pipeline emits a bit-identical hierarchy at every worker
    /// width, and that hierarchy is exactly the one-shot builder's.
    #[test]
    fn prop_staged_parallel_build_is_deterministic(
        keys in prop::collection::vec(0u64..100_000, 1..500),
        leaf in 1usize..6,
    ) {
        let prims = triangles_for_keys(&keys);
        for kind in [BuilderKind::Lbvh, BuilderKind::Sah] {
            let config = BuildConfig {
                builder: kind,
                max_leaf_size: leaf,
                ..BuildConfig::default()
            };
            let reference = builder::build(&prims, &config);
            for workers in [1usize, 5, 8] {
                let staged = BuildPipeline::new(config).with_workers(workers).run(&prims);
                prop_assert_eq!(
                    &staged.bvh.nodes, &reference.nodes,
                    "{:?} nodes differ at {} workers", kind, workers
                );
                prop_assert_eq!(
                    &staged.bvh.prim_indices, &reference.prim_indices,
                    "{:?} order differs at {} workers", kind, workers
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Background compaction is equivalent to the `DynamicOracle` under
    /// random mixed batches, with point and range reads issued *while* the
    /// rebuild is in flight (the three-generation view) and after the swap.
    #[test]
    fn prop_background_compaction_matches_oracle_while_reads_race(
        initial in prop::collection::vec(0u64..500, 4..80),
        ops in prop::collection::vec((0u8..3, 0u64..600, 1u64..32), 6..18),
    ) {
        let device = Device::default_eval();
        let values: Vec<u64> = initial.iter().map(|&k| k * 3 + 1).collect();
        let mut index =
            DynamicRtIndex::build(&device, &initial, &values, background_config(8)).unwrap();
        let mut oracle = DynamicOracle::new(&initial, &values);
        let queries: Vec<u64> = (0..650).step_by(13).collect();
        let mut raced_inflight = false;

        let mut next_value = 10_000u64;
        for (kind, base, span) in ops {
            let batch: Vec<u64> = (base..base + span).collect();
            let vals: Vec<u64> = batch
                .iter()
                .map(|_| {
                    next_value += 1;
                    next_value
                })
                .collect();
            let outcome = match kind {
                0 => index.insert_batch(&batch, &vals).unwrap(),
                1 => index.delete_batch(&batch).unwrap(),
                _ => index.upsert_batch(&batch, &vals).unwrap(),
            };
            // Mirror in the index's own order: the swap lands *before* the
            // batch's operations apply (it may reset the row allocator, so
            // the order matters), the freeze *after* them.
            if let Some(event) = outcome.compaction {
                prop_assert!(event.background);
                prop_assert!(event.quality.sah_cost >= 0.0);
                oracle.finish_compaction();
            }
            match kind {
                0 => oracle.insert_batch(&batch, &vals),
                1 => {
                    oracle.delete_batch(&batch);
                }
                _ => {
                    oracle.upsert_batch(&batch, &vals);
                }
            }
            if outcome.compaction_began {
                oracle.begin_compaction();
            }
            raced_inflight |= index.compaction_in_flight();

            // Reads race the rebuild: exact equivalence, rowIDs included.
            let out = index.point_lookup_batch(&queries).unwrap();
            for (&q, r) in queries.iter().zip(&out.results) {
                prop_assert_eq!(*r, oracle.point(q), "key {} (inflight: {})",
                    q, index.compaction_in_flight());
            }
            let ranges = [(0u64, 650u64), (base, base + span)];
            let out = index.range_lookup_batch(&ranges).unwrap();
            for (&(lo, hi), r) in ranges.iter().zip(&out.results) {
                prop_assert_eq!(*r, oracle.range(lo, hi), "range [{}, {}]", lo, hi);
            }
        }

        // Drain the last rebuild and verify the settled state.
        if index.wait_for_compaction().is_some() {
            oracle.finish_compaction();
        }
        let out = index.point_lookup_batch(&queries).unwrap();
        for (&q, r) in queries.iter().zip(&out.results) {
            prop_assert_eq!(*r, oracle.point(q), "key {} after drain", q);
        }
        prop_assert_eq!(index.len(), oracle.len());
        // The policy is aggressive enough that at least one run raced.
        let _ = raced_inflight;
    }
}

/// The builder-selection grammar end to end: every spelling builds through
/// the default registry and answers exactly like the plain backend.
#[test]
fn builder_suffix_grammar_builds_equivalent_backends() {
    let device = Device::default_eval();
    let keys: Vec<u64> = (0..2048).map(|i| (i * 2654435761) % 4096).collect();
    let values: Vec<u64> = (0..2048).collect();
    let spec = IndexSpec::with_values(&device, &keys, &values);
    let registry = registry();

    let batch = QueryBatch::new()
        .points(keys.iter().copied().step_by(17))
        .range(100, 300)
        .fetch_values(true);
    let reference = registry
        .build("RX", &spec)
        .unwrap()
        .execute(&batch)
        .unwrap();

    for name in [
        "RX:sah",
        "RX:lbvh",
        "RX:sah@2",
        "RX@2:range:sah",
        "RXD:lbvh",
    ] {
        let ix = registry
            .build(name, &spec)
            .unwrap_or_else(|e| panic!("{name} must build: {e}"));
        let out = ix.execute(&batch).unwrap();
        assert_eq!(out.results, reference.results, "{name} answers differ");
    }

    // Updatable resolution honours the suffix too.
    let mut rxd = registry.build_updatable("RXD:sah", &spec).unwrap();
    rxd.insert(&[9000], &[1]).unwrap();
    let out = rxd.execute(&QueryBatch::new().point(9000)).unwrap();
    assert!(out.results[0].is_hit());

    // Unknown suffixes stay unknown backends.
    assert!(registry.build("RX:fast", &spec).is_err());
}

/// Service-level: reader threads race background compactions while a
/// writer churns the index; every read stays consistent and the service
/// surfaces the (small) write stalls and the completed reorganisations.
#[test]
fn service_reads_race_background_compaction() {
    let device = Device::default_eval();
    let n = 2048usize;
    let keys: Vec<u64> = (0..n as u64).collect();
    let values: Vec<u64> = keys.iter().map(|&k| k + 7).collect();
    let spec = IndexSpec::with_values(&device, &keys, &values);
    let backend = Box::new(DynamicAdapter::build(&spec, background_config(64)).expect("build"))
        as Box<dyn UpdatableIndex>;
    let service = QueryService::start_updatable(backend, ServiceConfig::default());

    // Stable keys are never deleted: every racing read must see exactly
    // one row with the right value, whichever generation serves it.
    std::thread::scope(|scope| {
        for reader in 0..4u64 {
            let handle = service.handle();
            scope.spawn(move || {
                for i in 0..40u64 {
                    let probe: Vec<u64> = (0..16)
                        .map(|j| (reader * 331 + i * 53 + j * 17) % 1024)
                        .collect();
                    let out = handle
                        .query(QueryBatch::of_points(&probe).fetch_values(true))
                        .expect("racing read");
                    for (&k, r) in probe.iter().zip(&out.results) {
                        assert_eq!(r.hit_count, 1, "stable key {k}");
                        assert_eq!(r.value_sum, k + 7, "stable key {k}");
                    }
                }
            });
        }

        let handle = service.handle();
        scope.spawn(move || {
            for w in 0..12u64 {
                let fresh: Vec<u64> = (0..64).map(|i| 10_000 + w * 64 + i).collect();
                let fresh_values: Vec<u64> = fresh.iter().map(|&k| k * 2).collect();
                handle.insert(&fresh, &fresh_values).expect("insert");
                if w % 3 == 2 {
                    let stale: Vec<u64> = (0..64).map(|i| 10_000 + (w - 1) * 64 + i).collect();
                    handle.delete(&stale).expect("delete");
                }
            }
        });
    });

    let stats = service.shutdown();
    assert!(
        stats.write_reorganisations > 0,
        "the aggressive policy must have compacted during the race"
    );
    assert!(stats.write_stall_ns_max > 0);
    assert!(stats.mean_write_stall_s() > 0.0);
    assert_eq!(stats.write_batches, 12 + 4, "12 inserts + 4 deletes");
}
