//! Ray construction for point and range lookups (Section 3.3 of the paper).
//!
//! A point lookup for key `k`, or a range lookup `[l, u]`, must be expressed
//! as one or more rays whose intersections are exactly the primitives of the
//! qualifying keys. The paper evaluates three ways of doing this (Table 2):
//!
//! | strategy             | origin            | direction | tmin      | tmax      |
//! |-----------------------|-------------------|-----------|-----------|-----------|
//! | parallel from offset  | (l − 0.5, y, z)   | (1, 0, 0) | 0         | u − l + 1 |
//! | parallel from zero    | (0, y, z)         | (1, 0, 0) | l − 0.5   | u + 0.5   |
//! | perpendicular (points)| (k, y, z − 0.5)   | (0, 0, 1) | 0         | 1         |
//!
//! In 3D Mode a range lookup may span several "rows" (distinct y/z parts), in
//! which case one ray is fired per row: the first row starts at `l`'s x
//! part, the last ends at `u`'s x part, and intermediate rows are covered by
//! unbounded rays (Figure 4 of the paper).

use rtx_math::{Ray, Vec3f};

use crate::error::RtIndexError;
use crate::key_mode::KeyMode;

/// Ray strategies for point lookups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PointRayStrategy {
    /// Fire a short ray perpendicular to the key line (the paper's selected
    /// configuration: misses most bounding boxes outright).
    #[default]
    Perpendicular,
    /// Treat the point lookup as the range `[k, k]` with an offset origin.
    ParallelFromOffset,
    /// Treat the point lookup as the range `[k, k]` with the origin at zero
    /// and `tmin` doing the clipping.
    ParallelFromZero,
}

impl PointRayStrategy {
    /// Short name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            PointRayStrategy::Perpendicular => "perpendicular",
            PointRayStrategy::ParallelFromOffset => "parallel-offset",
            PointRayStrategy::ParallelFromZero => "parallel-zero",
        }
    }
}

/// Ray strategies for range lookups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RangeRayStrategy {
    /// Ray originates just before the lower bound (the paper's selected
    /// configuration).
    #[default]
    ParallelFromOffset,
    /// Ray originates at x = 0 and relies on `tmin` to skip keys below the
    /// lower bound.
    ParallelFromZero,
}

impl RangeRayStrategy {
    /// Short name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            RangeRayStrategy::ParallelFromOffset => "parallel-offset",
            RangeRayStrategy::ParallelFromZero => "parallel-zero",
        }
    }
}

/// Upper bound on the number of rays one range lookup may expand to. Ranges
/// wider than `limit × 2^x_bits` keys are rejected rather than silently
/// launching an unbounded amount of work.
pub const MAX_RAYS_PER_RANGE: u64 = 4096;

/// Builds the single ray implementing a point lookup for `key`.
pub fn point_lookup_ray(mode: &KeyMode, strategy: PointRayStrategy, key: u64) -> Ray {
    let center = mode.center(key);
    match strategy {
        PointRayStrategy::Perpendicular => Ray::new(
            Vec3f::new(center.x, center.y, center.z - 0.5),
            Vec3f::new(0.0, 0.0, 1.0),
            0.0,
            1.0,
        ),
        PointRayStrategy::ParallelFromOffset => {
            let below = mode.x_gap_below(key);
            let above = mode.x_gap_above(key);
            Ray::new(
                Vec3f::new(below, center.y, center.z),
                Vec3f::new(1.0, 0.0, 0.0),
                0.0,
                above - below,
            )
        }
        PointRayStrategy::ParallelFromZero => Ray::new(
            Vec3f::new(0.0, center.y, center.z),
            Vec3f::new(1.0, 0.0, 0.0),
            mode.x_gap_below(key),
            mode.x_gap_above(key),
        ),
    }
}

/// Builds the rays implementing the range lookup `[lower, upper]` (bounds
/// inclusive).
pub fn range_lookup_rays(
    mode: &KeyMode,
    strategy: RangeRayStrategy,
    lower: u64,
    upper: u64,
) -> Result<Vec<Ray>, RtIndexError> {
    // An inverted range is empty by definition (the uniform semantics of
    // every backend): no rays, so the lookup misses.
    if lower > upper {
        return Ok(Vec::new());
    }

    let first_row = mode.row(lower);
    let last_row = mode.row(upper);
    let rays_required = last_row - first_row + 1;
    if rays_required > MAX_RAYS_PER_RANGE {
        return Err(RtIndexError::RangeTooWide {
            lower,
            upper,
            rays_required,
            limit: MAX_RAYS_PER_RANGE,
        });
    }

    let max_x = mode.max_x_component();
    let mut rays = Vec::with_capacity(rays_required as usize);
    for row in first_row..=last_row {
        let (y, z) = mode.row_coords(row);
        // x span of this row: clip to the lookup bounds on the first and
        // last row, cover the whole axis on intermediate rows.
        let (x_start, x_end) = match (row == first_row, row == last_row) {
            (true, true) => (mode.x_gap_below(lower), mode.x_gap_above(upper)),
            (true, false) => (mode.x_gap_below(lower), max_x as f32 + 0.5),
            (false, true) => (-0.5, mode.x_gap_above(upper)),
            (false, false) => (-0.5, max_x as f32 + 0.5),
        };
        let ray = match strategy {
            RangeRayStrategy::ParallelFromOffset => Ray::new(
                Vec3f::new(x_start, y, z),
                Vec3f::new(1.0, 0.0, 0.0),
                0.0,
                x_end - x_start,
            ),
            RangeRayStrategy::ParallelFromZero => Ray::new(
                Vec3f::new(0.0, y, z),
                Vec3f::new(1.0, 0.0, 0.0),
                x_start,
                x_end,
            ),
        };
        rays.push(ray);
    }
    Ok(rays)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomposition::Decomposition;

    #[test]
    fn strategy_names() {
        assert_eq!(PointRayStrategy::Perpendicular.name(), "perpendicular");
        assert_eq!(
            PointRayStrategy::ParallelFromOffset.name(),
            "parallel-offset"
        );
        assert_eq!(PointRayStrategy::ParallelFromZero.name(), "parallel-zero");
        assert_eq!(
            RangeRayStrategy::ParallelFromOffset.name(),
            "parallel-offset"
        );
        assert_eq!(RangeRayStrategy::ParallelFromZero.name(), "parallel-zero");
        assert_eq!(PointRayStrategy::default(), PointRayStrategy::Perpendicular);
        assert_eq!(
            RangeRayStrategy::default(),
            RangeRayStrategy::ParallelFromOffset
        );
    }

    #[test]
    fn perpendicular_ray_matches_table2() {
        let ray = point_lookup_ray(&KeyMode::Naive, PointRayStrategy::Perpendicular, 7);
        assert_eq!(ray.origin, Vec3f::new(7.0, 0.0, -0.5));
        assert_eq!(ray.direction, Vec3f::new(0.0, 0.0, 1.0));
        assert_eq!(ray.tmin, 0.0);
        assert_eq!(ray.tmax, 1.0);
    }

    #[test]
    fn parallel_point_rays_match_table2() {
        let offset = point_lookup_ray(&KeyMode::Naive, PointRayStrategy::ParallelFromOffset, 7);
        assert_eq!(offset.origin, Vec3f::new(6.5, 0.0, 0.0));
        assert_eq!(offset.tmax, 1.0);

        let zero = point_lookup_ray(&KeyMode::Naive, PointRayStrategy::ParallelFromZero, 7);
        assert_eq!(zero.origin, Vec3f::new(0.0, 0.0, 0.0));
        assert_eq!(zero.tmin, 6.5);
        assert_eq!(zero.tmax, 7.5);
    }

    #[test]
    fn single_row_range_matches_table2() {
        let rays = range_lookup_rays(&KeyMode::Naive, RangeRayStrategy::ParallelFromOffset, 2, 3)
            .expect("rays");
        assert_eq!(rays.len(), 1);
        assert_eq!(rays[0].origin, Vec3f::new(1.5, 0.0, 0.0));
        assert_eq!(rays[0].tmax, 2.0, "u - l + 1 = 2");

        let rays = range_lookup_rays(&KeyMode::Naive, RangeRayStrategy::ParallelFromZero, 2, 3)
            .expect("rays");
        assert_eq!(rays[0].origin.x, 0.0);
        assert_eq!(rays[0].tmin, 1.5);
        assert_eq!(rays[0].tmax, 3.5);
    }

    #[test]
    fn inverted_range_builds_no_rays() {
        let rays = range_lookup_rays(&KeyMode::Naive, RangeRayStrategy::ParallelFromOffset, 5, 3)
            .expect("inverted ranges are empty, not an error");
        assert!(rays.is_empty());
    }

    #[test]
    fn multi_row_range_fires_one_ray_per_row() {
        // Figure 4's example: 2 bits of x, range [15, 21] spans rows 3..=5.
        let d = Decomposition::new(2, 21, 0);
        let mode = KeyMode::ThreeD(d);
        let rays =
            range_lookup_rays(&mode, RangeRayStrategy::ParallelFromOffset, 15, 21).expect("rays");
        assert_eq!(rays.len(), 3);
        // First ray starts at x_l - 0.5 = 2.5 in row y = 3.
        assert_eq!(rays[0].origin, Vec3f::new(2.5, 3.0, 0.0));
        // Middle ray covers the whole row y = 4 (from -0.5 to max_x + 0.5).
        assert_eq!(rays[1].origin, Vec3f::new(-0.5, 4.0, 0.0));
        assert_eq!(rays[1].tmax, 4.0, "covers x in (-0.5, 3.5)");
        // Last ray ends at x_u + 0.5 = 1.5 in row y = 5.
        assert_eq!(rays[2].origin, Vec3f::new(-0.5, 5.0, 0.0));
        assert_eq!(rays[2].tmax, 2.0);
    }

    #[test]
    fn range_spanning_at_most_2x23_keys_needs_at_most_two_rays() {
        // "If a range lookup spans at most 2^23 integers, it can be answered
        // by casting only one or two rays."
        let mode = KeyMode::three_d_default();
        let l = 12_345_678_901_234u64;
        let u = l + (1 << 23) - 1;
        let rays =
            range_lookup_rays(&mode, RangeRayStrategy::ParallelFromOffset, l, u).expect("rays");
        assert!(rays.len() <= 2, "got {} rays", rays.len());
    }

    #[test]
    fn too_wide_range_is_rejected() {
        let mode = KeyMode::three_d_default();
        let err = range_lookup_rays(&mode, RangeRayStrategy::ParallelFromOffset, 0, u64::MAX)
            .unwrap_err();
        assert!(matches!(err, RtIndexError::RangeTooWide { .. }));
    }

    #[test]
    fn extended_mode_range_uses_gap_values() {
        let rays = range_lookup_rays(
            &KeyMode::Extended,
            RangeRayStrategy::ParallelFromOffset,
            10,
            20,
        )
        .expect("rays");
        assert_eq!(rays.len(), 1);
        let ray = &rays[0];
        assert_eq!(ray.origin.x, KeyMode::Extended.x_gap_below(10));
        let end = ray.origin.x + ray.tmax;
        assert!((end - KeyMode::Extended.x_gap_above(20)).abs() <= f32::EPSILON * end.abs());
    }

    #[test]
    fn point_rays_in_3d_mode_use_row_coordinates() {
        let d = Decomposition::new(4, 4, 4);
        let mode = KeyMode::ThreeD(d);
        let key = d.join(3, 5, 7);
        let perp = point_lookup_ray(&mode, PointRayStrategy::Perpendicular, key);
        assert_eq!(perp.origin, Vec3f::new(3.0, 5.0, 7.0 - 0.5));
        let zero = point_lookup_ray(&mode, PointRayStrategy::ParallelFromZero, key);
        assert_eq!(zero.origin, Vec3f::new(0.0, 5.0, 7.0));
        assert_eq!(zero.tmin, 2.5);
    }
}
