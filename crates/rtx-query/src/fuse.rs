//! Cross-client batch fusion: many small [`QueryBatch`]es in, one large
//! submission out, and the split that scatters the fused outcome back.
//!
//! The paper's index wins by amortising fixed per-launch costs over large
//! batches, but service traffic arrives as many *small* per-client
//! submissions. [`FusedBatch`] is the pure bookkeeping for coalescing them:
//! it concatenates client batches — directly into the SoA [`QueryOps`]
//! layout the executor consumes, so the enum stream is regrouped exactly
//! once, at fuse time — while remembering each client's slice (offset,
//! length, whether that client asked for a value fetch), and scatters the
//! fused [`QueryOutcome`] back per client.
//!
//! Two scatter flavours exist:
//!
//! * [`split`](FusedBatch::split) — one owned [`BatchOutcome`] per client
//!   (copies every client's result slice; the original coalescer path);
//! * [`split_shared`](FusedBatch::split_shared) — one [`SharedOutcome`] per
//!   client: an `Arc` of the *whole* fused outcome plus that client's
//!   [`FusedSlice`] view. Nothing is copied on the coalescer thread; each
//!   client materializes (or just reads) its own slice on its own thread.
//!
//! A service holds one `FusedBatch` for its whole lifetime and
//! [`clear`](FusedBatch::clear)s it between cycles — steady-state fusion
//! allocates nothing.
//!
//! Fusion and splitting are deliberately free of threads and channels — the
//! concurrent service in `rtx-serve` layers those on top — so the
//! round-trip invariant (`split(execute(fused)) == each client executed
//! alone`) is testable in isolation and holds on every backend.
//!
//! Value-fetch semantics: the fused batch requests a value fetch when *any*
//! fused client did, and the scatter zeroes `value_sum` for the slices that
//! did not ask — exactly what those clients would have received submitting
//! alone. A caller fusing value-fetching batches must therefore ensure the
//! backend has a value column (the service checks this at admission).

use std::sync::Arc;

use crate::batch::{QueryBatch, QueryOps};
use crate::types::{BatchOutcome, LookupResult, QueryOutcome};

/// One client's slice of a [`FusedBatch`]: where its operations landed in
/// the fused submission and what it asked for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusedSlice {
    /// Offset of the client's first operation in the fused batch.
    pub offset: usize,
    /// Number of operations the client submitted (may be 0).
    pub len: usize,
    /// Whether this client requested a value fetch.
    pub fetch_values: bool,
}

/// Accumulates client [`QueryBatch`]es into one fused SoA submission and
/// splits the fused outcome back per client.
///
/// ```
/// use rtx_query::{FusedBatch, QueryBatch};
///
/// let mut fusion = FusedBatch::new();
/// let a = fusion.push(&QueryBatch::new().point(7).range(0, 9));
/// let b = fusion.push(&QueryBatch::of_points(&[1, 2, 3]).fetch_values(true));
/// assert_eq!((a, b), (0, 1));
/// assert_eq!(fusion.op_count(), 5);
/// assert!(fusion.ops().fetches_values(), "any client fetching => fused fetch");
/// ```
#[derive(Debug, Clone, Default)]
pub struct FusedBatch {
    ops: QueryOps,
    slices: Vec<FusedSlice>,
}

impl FusedBatch {
    /// An empty fusion.
    pub fn new() -> Self {
        FusedBatch::default()
    }

    /// Appends one client batch and returns its slice index (the position
    /// its outcome will occupy in [`split`](FusedBatch::split) /
    /// [`split_shared`](FusedBatch::split_shared) results).
    pub fn push(&mut self, client: &QueryBatch) -> usize {
        let offset = self.ops.len();
        self.ops.append_batch(client);
        if client.fetches_values() {
            self.ops.set_fetch_values(true);
        }
        self.slices.push(FusedSlice {
            offset,
            len: client.len(),
            fetch_values: client.fetches_values(),
        });
        self.slices.len() - 1
    }

    /// Empties the fusion for the next coalescing cycle, keeping every
    /// buffer's capacity (and resetting the fused value-fetch flag).
    pub fn clear(&mut self) {
        self.ops.clear();
        self.ops.set_fetch_values(false);
        self.slices.clear();
    }

    /// Number of fused client batches.
    pub fn client_count(&self) -> usize {
        self.slices.len()
    }

    /// Total operations across all fused clients.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// True when no client batch has been fused yet (an all-empty fusion of
    /// zero-operation batches still counts as pushed clients).
    pub fn is_empty(&self) -> bool {
        self.slices.is_empty()
    }

    /// The per-client slices, in push order.
    pub fn slices(&self) -> &[FusedSlice] {
        &self.slices
    }

    /// The fused submission in executor-ready SoA form: every client's
    /// operations concatenated in push order, fetching values when any
    /// client asked. Execute it via
    /// [`SecondaryIndex::execute_ops_in`](crate::SecondaryIndex::execute_ops_in).
    pub fn ops(&self) -> &QueryOps {
        &self.ops
    }

    /// Sets the per-launch chunk bound on the fused submission — chunking
    /// is the executor's policy, not the clients' (0 = unbounded).
    pub fn set_chunk_size(&mut self, chunk_size: usize) {
        self.ops.set_chunk_size(chunk_size);
    }

    /// Splits the outcome of executing the fused batch back into one owned
    /// [`BatchOutcome`] per client, in push order. Slices that did not
    /// request a value fetch get their `value_sum`s zeroed (what they would
    /// have seen submitting alone). Every per-client outcome carries the
    /// launch metrics of the *whole* fused execution — the work was shared,
    /// so clients observe the launches that answered them.
    ///
    /// # Panics
    ///
    /// Panics when `outcome` does not hold one result per fused operation
    /// (an executor bug, not a caller mistake).
    pub fn split(&self, outcome: &QueryOutcome) -> Vec<BatchOutcome> {
        self.check_len(outcome);
        self.slices
            .iter()
            .map(|slice| materialize_slice(outcome, *slice))
            .collect()
    }

    /// Splits the fused outcome into zero-copy [`SharedOutcome`] views, one
    /// per client in push order. The outcome is moved behind a single `Arc`;
    /// each view pairs it with that client's [`FusedSlice`]. Nothing is
    /// cloned here — result copies (if a client wants an owned
    /// [`BatchOutcome`]) happen in [`SharedOutcome::materialize`], on the
    /// client's own thread.
    ///
    /// # Panics
    ///
    /// Panics when `outcome` does not hold one result per fused operation.
    pub fn split_shared(&self, outcome: QueryOutcome) -> Vec<SharedOutcome> {
        self.check_len(&outcome);
        let outcome = Arc::new(outcome);
        self.slices
            .iter()
            .map(|slice| SharedOutcome {
                outcome: Arc::clone(&outcome),
                slice: *slice,
            })
            .collect()
    }

    fn check_len(&self, outcome: &QueryOutcome) {
        assert_eq!(
            outcome.results.len(),
            self.ops.len(),
            "fused outcome holds {} results for {} fused operations",
            outcome.results.len(),
            self.ops.len()
        );
    }
}

/// One client's zero-copy view of a fused execution: the whole fused
/// [`QueryOutcome`] behind a shared `Arc` plus the client's [`FusedSlice`].
///
/// The coalescer hands one of these per client over the reply channel —
/// cloning an `Arc` and a 3-word slice descriptor instead of the client's
/// result `Vec`. Clients read through [`results`](SharedOutcome::results)
/// (zero-copy; `value_sum`s are only meaningful when the client fetched) or
/// convert to an owned [`BatchOutcome`] with
/// [`materialize`](SharedOutcome::materialize).
#[derive(Debug, Clone)]
pub struct SharedOutcome {
    outcome: Arc<QueryOutcome>,
    slice: FusedSlice,
}

impl SharedOutcome {
    /// Wraps a whole (unfused) outcome as one client's view — the
    /// uncoalesced fast path where a single client owns the execution.
    pub fn whole(outcome: QueryOutcome, fetch_values: bool) -> Self {
        let slice = FusedSlice {
            offset: 0,
            len: outcome.results.len(),
            fetch_values,
        };
        SharedOutcome {
            outcome: Arc::new(outcome),
            slice,
        }
    }

    /// The client's slice descriptor within the fused submission.
    pub fn slice(&self) -> FusedSlice {
        self.slice
    }

    /// The client's results, zero-copy. When the client did not request a
    /// value fetch the `value_sum` fields may carry sums computed for *other*
    /// fused clients — [`materialize`](SharedOutcome::materialize) strips
    /// them; callers reading this view directly should ignore `value_sum`
    /// unless [`slice().fetch_values`](SharedOutcome::slice) is set.
    pub fn results(&self) -> &[LookupResult] {
        &self.outcome.results[self.slice.offset..self.slice.offset + self.slice.len]
    }

    /// Launch metrics of the whole fused execution that answered this
    /// client.
    pub fn metrics(&self) -> &optix_sim::LaunchMetrics {
        &self.outcome.metrics
    }

    /// Copies this client's slice into an owned [`BatchOutcome`], zeroing
    /// `value_sum` when the client did not request a value fetch — identical
    /// to what [`FusedBatch::split`] would have produced for this slice.
    pub fn materialize(&self) -> BatchOutcome {
        materialize_slice(&self.outcome, self.slice)
    }
}

fn materialize_slice(outcome: &QueryOutcome, slice: FusedSlice) -> BatchOutcome {
    let mut results = outcome.results[slice.offset..slice.offset + slice.len].to_vec();
    if !slice.fetch_values {
        for r in &mut results {
            r.value_sum = 0;
        }
    }
    BatchOutcome {
        results,
        metrics: outcome.metrics.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::QueryOp;
    use crate::types::{LookupResult, MISS};

    fn result(first_row: u32, hit_count: u32, value_sum: u64) -> LookupResult {
        LookupResult {
            first_row,
            hit_count,
            value_sum,
        }
    }

    #[test]
    fn fusion_concatenates_in_push_order() {
        let mut fusion = FusedBatch::new();
        assert!(fusion.is_empty());
        let a = fusion.push(&QueryBatch::new().point(1).range(5, 9));
        let b = fusion.push(&QueryBatch::new());
        let c = fusion.push(&QueryBatch::of_points(&[7]));
        assert_eq!((a, b, c), (0, 1, 2));
        assert_eq!(fusion.client_count(), 3);
        assert_eq!(fusion.op_count(), 3);
        assert!(!fusion.is_empty());
        assert_eq!(
            fusion.ops().iter().collect::<Vec<_>>(),
            &[QueryOp::Point(1), QueryOp::Range(5, 9), QueryOp::Point(7)]
        );
        assert_eq!(
            fusion.slices(),
            &[
                FusedSlice {
                    offset: 0,
                    len: 2,
                    fetch_values: false
                },
                FusedSlice {
                    offset: 2,
                    len: 0,
                    fetch_values: false
                },
                FusedSlice {
                    offset: 2,
                    len: 1,
                    fetch_values: false
                },
            ]
        );
        assert!(!fusion.ops().fetches_values());
    }

    #[test]
    fn any_fetching_client_makes_the_fusion_fetch() {
        let mut fusion = FusedBatch::new();
        fusion.push(&QueryBatch::new().point(1));
        assert!(!fusion.ops().fetches_values());
        fusion.push(&QueryBatch::new().point(2).fetch_values(true));
        fusion.push(&QueryBatch::new().point(3));
        assert!(fusion.ops().fetches_values());
        // The operations survived the flag change.
        assert_eq!(fusion.op_count(), 3);
    }

    #[test]
    fn split_scatters_results_and_strips_unrequested_value_sums() {
        let mut fusion = FusedBatch::new();
        fusion.push(&QueryBatch::new().point(1).point(2)); // no fetch
        fusion.push(&QueryBatch::new()); // empty client
        fusion.push(&QueryBatch::new().range(0, 9).fetch_values(true));
        let outcome = QueryOutcome {
            results: vec![result(0, 1, 10), result(MISS, 0, 0), result(2, 4, 99)],
            metrics: optix_sim::LaunchMetrics {
                simulated_time_s: 2.0,
                ..Default::default()
            },
        };
        let per_client = fusion.split(&outcome);
        assert_eq!(per_client.len(), 3);
        // Client 0 did not fetch: sums stripped, rows/counts intact.
        assert_eq!(per_client[0].results[0], result(0, 1, 0));
        assert_eq!(per_client[0].results[1], result(MISS, 0, 0));
        // Client 1 submitted nothing and gets nothing.
        assert!(per_client[1].results.is_empty());
        // Client 2 fetched: its sum survives.
        assert_eq!(per_client[2].results[0], result(2, 4, 99));
        // Every client sees the shared fused launch metrics.
        for out in &per_client {
            assert_eq!(out.metrics.simulated_time_s, 2.0);
        }
    }

    #[test]
    fn split_shared_views_agree_with_owned_split() {
        let mut fusion = FusedBatch::new();
        fusion.push(&QueryBatch::new().point(1).point(2)); // no fetch
        fusion.push(&QueryBatch::new()); // empty client
        fusion.push(&QueryBatch::new().range(0, 9).fetch_values(true));
        let outcome = QueryOutcome {
            results: vec![result(0, 1, 10), result(MISS, 0, 0), result(2, 4, 99)],
            metrics: optix_sim::LaunchMetrics {
                simulated_time_s: 2.0,
                ..Default::default()
            },
        };
        let owned = fusion.split(&outcome);
        let shared = fusion.split_shared(outcome);
        assert_eq!(shared.len(), 3);
        for (view, want) in shared.iter().zip(&owned) {
            let got = view.materialize();
            assert_eq!(got.results, want.results);
            assert_eq!(view.results().len(), want.results.len());
            assert_eq!(view.metrics().simulated_time_s, 2.0);
        }
        // The zero-copy view of the non-fetching client still exposes the
        // raw fused sum; only materialize strips it.
        assert_eq!(shared[0].results()[0].value_sum, 10);
        assert_eq!(shared[0].materialize().results[0].value_sum, 0);
        // One Arc shared across all three views.
        assert_eq!(Arc::strong_count(&shared[0].outcome), 3);
    }

    #[test]
    fn whole_outcome_wraps_without_fusion() {
        let outcome = QueryOutcome {
            results: vec![result(3, 1, 7)],
            ..Default::default()
        };
        let view = SharedOutcome::whole(outcome, false);
        assert_eq!(view.slice().len, 1);
        assert_eq!(view.results()[0].first_row, 3);
        assert_eq!(view.materialize().results[0].value_sum, 0, "no fetch");
    }

    #[test]
    fn clear_resets_for_the_next_cycle_keeping_capacity() {
        let mut fusion = FusedBatch::new();
        fusion.push(&QueryBatch::of_points(&[1, 2, 3]).fetch_values(true));
        fusion.set_chunk_size(2);
        assert!(fusion.ops().fetches_values());
        fusion.clear();
        assert!(fusion.is_empty());
        assert_eq!(fusion.op_count(), 0);
        assert!(!fusion.ops().fetches_values(), "fetch flag resets");
        assert_eq!(fusion.ops().chunk_size(), Some(2), "chunk policy persists");
        // Refuse works after clear.
        fusion.push(&QueryBatch::new().range(4, 5));
        assert_eq!(fusion.op_count(), 1);
        assert_eq!(fusion.slices()[0].offset, 0);
    }

    #[test]
    #[should_panic(expected = "fused outcome holds")]
    fn split_rejects_miscounted_outcomes() {
        let mut fusion = FusedBatch::new();
        fusion.push(&QueryBatch::new().point(1));
        let _ = fusion.split(&QueryOutcome::default());
    }
}
