//! End-to-end correctness: RX and every baseline must agree with a
//! scan-based oracle on randomly generated workloads spanning all key-set
//! shapes the paper evaluates.

use rtindex::{Device, GpuIndex, KeyMode, PrimitiveKind, RtIndex, RtIndexConfig};
use rtx_harness::{build_all_indexes, measure_points};
use rtx_workloads as wl;

fn check_point_agreement(keys: &[u64], queries: &[u64], config: RtIndexConfig) {
    let device = Device::default_eval();
    let values = wl::value_column(keys.len(), 99);
    let truth = wl::GroundTruth::new(keys, Some(&values));
    let indexes = build_all_indexes(&device, keys, Some(&values), config);
    for ix in &indexes {
        let m = measure_points(ix.as_ref(), queries, true);
        assert_eq!(
            m.hits,
            truth.batch_point_hits(queries),
            "{} hits",
            ix.name()
        );
        assert_eq!(
            m.value_sum,
            truth.batch_point_sum(queries),
            "{} sum",
            ix.name()
        );
    }
}

#[test]
fn dense_shuffled_keys_all_indexes_agree() {
    let keys = wl::dense_shuffled(5000, 1);
    let queries = wl::point_lookups_with_hit_rate(&keys, 8000, 0.7, 2);
    check_point_agreement(&keys, &queries, RtIndexConfig::default());
}

#[test]
fn sparse_32bit_keys_all_indexes_agree() {
    let keys = wl::sparse_uniform(4000, u32::MAX as u64, 3);
    let queries = wl::point_lookups_with_hit_rate(&keys, 6000, 0.5, 4);
    check_point_agreement(&keys, &queries, RtIndexConfig::default());
}

#[test]
fn sparse_64bit_keys_rx_ht_sa_agree() {
    // B+ is skipped automatically (64-bit keys unsupported).
    let keys = wl::sparse_uniform(3000, u64::MAX / 2, 5);
    let queries = wl::point_lookups_with_hit_rate(&keys, 5000, 0.6, 6);
    check_point_agreement(&keys, &queries, RtIndexConfig::default());
}

#[test]
fn duplicate_keys_rx_ht_sa_agree() {
    let keys = wl::with_multiplicity(512, 8, 7);
    let queries = wl::point_lookups_with_hit_rate(&(0..512u64).collect::<Vec<_>>(), 4000, 0.8, 8);
    check_point_agreement(&keys, &queries, RtIndexConfig::default());
}

#[test]
fn range_lookups_agree_across_order_based_indexes() {
    let device = Device::default_eval();
    let keys = wl::dense_shuffled(4096, 9);
    let values = wl::value_column(keys.len(), 10);
    let truth = wl::GroundTruth::new(&keys, Some(&values));
    let ranges = wl::range_lookups(4096, 1000, 32, 11);
    let expected: Vec<u32> = ranges
        .iter()
        .map(|&(l, u)| truth.range_hit_count(l, u))
        .collect();

    let rx = RtIndex::build(&device, &keys, RtIndexConfig::default()).unwrap();
    let rx_out = rx.range_lookup_batch(&ranges, Some(&values)).unwrap();
    let rx_counts: Vec<u32> = rx_out.results.iter().map(|r| r.hit_count).collect();
    assert_eq!(rx_counts, expected, "RX range counts");
    assert_eq!(rx_out.total_value_sum(), truth.batch_range_sum(&ranges));

    let sa = rtindex::SortedArray::build(&device, &keys).unwrap();
    let sa_out = sa
        .range_lookup_batch(&device, &ranges, Some(&values))
        .unwrap();
    assert_eq!(sa_out.total_value_sum(), truth.batch_range_sum(&ranges));

    let bp = rtindex::BPlusTree::build(&device, &keys).unwrap();
    let bp_out = bp
        .range_lookup_batch(&device, &ranges, Some(&values))
        .unwrap();
    assert_eq!(bp_out.total_value_sum(), truth.batch_range_sum(&ranges));
}

#[test]
fn every_rx_configuration_answers_the_same_workload() {
    // Cross product of key modes and primitives (minus the unsupported
    // Extended+Sphere combination) must return identical answers.
    let device = Device::default_eval();
    let keys = wl::dense_shuffled(2000, 12);
    let queries = wl::point_lookups_with_hit_rate(&keys, 3000, 0.5, 13);
    let truth = wl::GroundTruth::new(&keys, None);
    let expected = truth.batch_point_hits(&queries);

    for mode in KeyMode::all() {
        for primitive in PrimitiveKind::all() {
            if !mode.supports_primitive(primitive) {
                continue;
            }
            let config = RtIndexConfig::default()
                .with_key_mode(mode)
                .with_primitive(primitive);
            let index = RtIndex::build(&device, &keys, config).unwrap();
            let out = index.point_lookup_batch(&queries, None).unwrap();
            assert_eq!(
                out.hit_count(),
                expected,
                "mode {} primitive {}",
                mode.name(),
                primitive.name()
            );
        }
    }
}
