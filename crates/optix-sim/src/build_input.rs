//! Acceleration-structure build inputs.
//!
//! OptiX accepts triangle arrays, sphere arrays and custom-primitive (AABB)
//! arrays as build inputs. RTIndeX generates one primitive per key, centred
//! at the key's scene coordinate; helpers for that construction live here so
//! that the index crate and the tests share one implementation.

use rtx_bvh::{AabbSet, PrimitiveSet, SphereSet, TriangleSet};
use rtx_math::{Aabb, Sphere, Triangle, Vec3f};

/// Which primitive type a build input (and the index built on it) uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PrimitiveKind {
    /// Triangles — intersection tests run on the RT cores.
    #[default]
    Triangle,
    /// Spheres with a shared radius — software intersection program.
    Sphere,
    /// Axis-aligned boxes — software intersection program.
    Aabb,
}

impl PrimitiveKind {
    /// All three primitive kinds, in the order used by Figure 7.
    pub fn all() -> [PrimitiveKind; 3] {
        [
            PrimitiveKind::Triangle,
            PrimitiveKind::Sphere,
            PrimitiveKind::Aabb,
        ]
    }

    /// Short lowercase name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            PrimitiveKind::Triangle => "triangle",
            PrimitiveKind::Sphere => "sphere",
            PrimitiveKind::Aabb => "aabb",
        }
    }
}

/// A geometry build input (`OptixBuildInput`).
#[derive(Debug, Clone)]
pub enum BuildInput {
    /// Triangle array; nine float32 per primitive.
    Triangles(TriangleSet),
    /// Sphere array with shared radius; three float32 per primitive.
    Spheres(SphereSet),
    /// Custom primitives described by their AABBs; six float32 per primitive.
    Aabbs(AabbSet),
}

/// Half-extent used for key triangles and key boxes (see
/// [`Triangle::key_triangle`] for why it is slightly below 0.5).
pub const KEY_HALF_EXTENT: f32 = 0.4;

impl BuildInput {
    /// Number of primitives in the input.
    pub fn len(&self) -> usize {
        match self {
            BuildInput::Triangles(t) => t.len(),
            BuildInput::Spheres(s) => s.len(),
            BuildInput::Aabbs(a) => a.len(),
        }
    }

    /// True when the input holds no primitives.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The primitive kind of this input.
    pub fn kind(&self) -> PrimitiveKind {
        match self {
            BuildInput::Triangles(_) => PrimitiveKind::Triangle,
            BuildInput::Spheres(_) => PrimitiveKind::Sphere,
            BuildInput::Aabbs(_) => PrimitiveKind::Aabb,
        }
    }

    /// Bytes of device memory the raw primitive buffer occupies (the "vertex
    /// buffer" of the paper).
    pub fn primitive_buffer_bytes(&self) -> u64 {
        let per = match self {
            BuildInput::Triangles(t) => t.bytes_per_primitive(),
            BuildInput::Spheres(s) => s.bytes_per_primitive(),
            BuildInput::Aabbs(a) => a.bytes_per_primitive(),
        };
        per * self.len() as u64
    }

    /// View of the input as an abstract primitive set.
    pub fn as_primitive_set(&self) -> &dyn PrimitiveSet {
        match self {
            BuildInput::Triangles(t) => t,
            BuildInput::Spheres(s) => s,
            BuildInput::Aabbs(a) => a,
        }
    }

    /// Builds a triangle input with one key triangle per centre, stored in
    /// the given order (the buffer position is the rowID).
    pub fn triangles_from_centers(centers: &[Vec3f], half: f32) -> BuildInput {
        BuildInput::Triangles(TriangleSet::new(
            centers
                .iter()
                .map(|c| Triangle::key_triangle(*c, half))
                .collect(),
        ))
    }

    /// Builds a triangle input with per-axis half extents (needed by the
    /// Extended key mode, whose x gaps are ULP-sized).
    pub fn triangles_from_centers_anisotropic(centers: &[Vec3f], half: &[Vec3f]) -> BuildInput {
        assert_eq!(
            centers.len(),
            half.len(),
            "one half-extent per centre required"
        );
        BuildInput::Triangles(TriangleSet::new(
            centers
                .iter()
                .zip(half.iter())
                .map(|(c, h)| Triangle::key_triangle_anisotropic(*c, *h))
                .collect(),
        ))
    }

    /// Builds a sphere input with one key sphere per centre.
    pub fn spheres_from_centers(centers: &[Vec3f]) -> BuildInput {
        BuildInput::Spheres(SphereSet::new(centers.to_vec(), Sphere::KEY_RADIUS))
    }

    /// Builds an AABB input with one key box per centre.
    pub fn aabbs_from_centers(centers: &[Vec3f], half: f32) -> BuildInput {
        BuildInput::Aabbs(AabbSet::new(
            centers
                .iter()
                .map(|c| Aabb::new(*c - Vec3f::splat(half), *c + Vec3f::splat(half)))
                .collect(),
        ))
    }

    /// Builds the input of the requested kind from key centres using the
    /// default extents (the construction the paper's experiments use).
    pub fn from_centers(kind: PrimitiveKind, centers: &[Vec3f]) -> BuildInput {
        match kind {
            PrimitiveKind::Triangle => Self::triangles_from_centers(centers, KEY_HALF_EXTENT),
            PrimitiveKind::Sphere => Self::spheres_from_centers(centers),
            PrimitiveKind::Aabb => Self::aabbs_from_centers(centers, KEY_HALF_EXTENT),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn centers(n: usize) -> Vec<Vec3f> {
        (0..n).map(|i| Vec3f::new(i as f32, 0.0, 0.0)).collect()
    }

    #[test]
    fn primitive_kind_metadata() {
        assert_eq!(PrimitiveKind::all().len(), 3);
        assert_eq!(PrimitiveKind::Triangle.name(), "triangle");
        assert_eq!(PrimitiveKind::Sphere.name(), "sphere");
        assert_eq!(PrimitiveKind::Aabb.name(), "aabb");
        assert_eq!(PrimitiveKind::default(), PrimitiveKind::Triangle);
    }

    #[test]
    fn build_input_sizes_match_paper_layout() {
        let c = centers(100);
        let tri = BuildInput::from_centers(PrimitiveKind::Triangle, &c);
        let sph = BuildInput::from_centers(PrimitiveKind::Sphere, &c);
        let bx = BuildInput::from_centers(PrimitiveKind::Aabb, &c);
        assert_eq!(tri.len(), 100);
        assert!(!tri.is_empty());
        // 9 float32 vs 3 float32 vs 6 float32 per key.
        assert_eq!(tri.primitive_buffer_bytes(), 100 * 36);
        assert_eq!(sph.primitive_buffer_bytes(), 100 * 12);
        assert_eq!(bx.primitive_buffer_bytes(), 100 * 24);
        assert_eq!(tri.kind(), PrimitiveKind::Triangle);
        assert_eq!(sph.kind(), PrimitiveKind::Sphere);
        assert_eq!(bx.kind(), PrimitiveKind::Aabb);
    }

    #[test]
    fn primitive_set_view_matches_len() {
        let c = centers(7);
        for kind in PrimitiveKind::all() {
            let input = BuildInput::from_centers(kind, &c);
            assert_eq!(input.as_primitive_set().len(), 7);
        }
    }

    #[test]
    fn anisotropic_triangles_respect_extents() {
        let c = centers(3);
        let halves = vec![Vec3f::new(0.1, 0.4, 0.4); 3];
        let input = BuildInput::triangles_from_centers_anisotropic(&c, &halves);
        let set = input.as_primitive_set();
        for i in 0..3 {
            let b = set.bounds(i);
            assert!(b.extent().x <= 0.2 + 1e-6);
            assert!(b.extent().y <= 0.8 + 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "one half-extent per centre")]
    fn anisotropic_triangles_require_matching_lengths() {
        let _ = BuildInput::triangles_from_centers_anisotropic(&centers(3), &[Vec3f::splat(0.1)]);
    }

    #[test]
    fn empty_input() {
        let input = BuildInput::from_centers(PrimitiveKind::Triangle, &[]);
        assert!(input.is_empty());
        assert_eq!(input.primitive_buffer_bytes(), 0);
    }
}
