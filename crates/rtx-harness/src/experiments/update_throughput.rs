//! Beyond-paper experiment: dynamic-update strategies compared.
//!
//! The paper only evaluates two update paths for the static index —
//! refitting (`update_keys`) and full rebuilds — and recommends rebuilds.
//! The `rtx-delta` layer adds a third: buffer updates in a mutable delta
//! (hash inserts + tombstones) and amortise the rebuild through automatic
//! compaction.
//!
//! This experiment applies the *same* logical key churn through all three
//! strategies — per batch, a fixed set of rows moves to fresh keys — and
//! reports the simulated update cost, the post-churn lookup cost (the delta
//! layer answers from two structures, so its reads are slightly more
//! expensive until compaction catches up) and the number of automatic
//! compactions.
//!
//! Qualitative expectation: per batch, the delta buffer is far cheaper than
//! a rebuild (its cost scales with the batch, not the key count) while
//! refitting sits in between (one full-buffer pass per batch); rebuilds only
//! win once a batch replaces a large fraction of the index.

use rtindex_core::RtIndexConfig;
use rtx_query::{IndexSpec, QueryBatch};
use rtx_workloads as wl;

use crate::indexes::{registry, DYNAMIC_BACKEND};
use crate::report::{fmt_ms, Table};
use crate::scale::ExperimentScale;

/// Number of update batches applied per strategy.
const BATCHES: usize = 8;

/// Cap on the post-churn lookup measurement batch. Refitting with far-moved
/// keys degrades the BVH so badly (the Table 4 effect) that a full-size
/// lookup batch against the refit index dominates the experiment's host
/// runtime at larger scales; a bounded batch shows the same degradation.
const MAX_LOOKUPS: usize = 1 << 14;

/// Outcome of driving one strategy through the churn schedule.
#[derive(Debug, Clone)]
pub struct StrategyRun {
    /// Display name ("delta", "refit", "rebuild").
    pub strategy: &'static str,
    /// Total simulated seconds spent applying all update batches.
    pub update_sim_s: f64,
    /// Simulated seconds of the post-churn point-lookup batch.
    pub lookup_sim_s: f64,
    /// Lookups that found their key (sanity: identical across strategies).
    pub lookup_hits: usize,
    /// Automatic compactions (delta strategy only).
    pub compactions: u64,
}

/// The churn schedule: per batch, which rows move and the fresh keys they
/// move to (drawn from a domain disjoint from every previous key).
struct ChurnPlan {
    initial_keys: Vec<u64>,
    values: Vec<u64>,
    /// Per batch: (rows to move, their new keys).
    batches: Vec<(Vec<usize>, Vec<u64>)>,
}

fn churn_plan(scale: &ExperimentScale) -> ChurnPlan {
    let n = scale.default_keys();
    let batch_size = (n / 64).max(1);
    let initial_keys = wl::dense_shuffled(n, scale.seed);
    let values = wl::value_column(n, scale.seed + 7);
    let mut batches = Vec::with_capacity(BATCHES);
    for b in 0..BATCHES {
        // Deterministic, disjoint row picks; fresh keys beyond the dense
        // domain so they collide with nothing that ever existed.
        let rows: Vec<usize> = (0..batch_size).map(|i| (i * BATCHES + b) % n).collect();
        let new_keys: Vec<u64> = (0..batch_size)
            .map(|i| (n + b * batch_size + i) as u64)
            .collect();
        batches.push((rows, new_keys));
    }
    ChurnPlan {
        initial_keys,
        values,
        batches,
    }
}

/// Applies the churn through the delta-buffer strategy, driven through the
/// registry's updatable backend like every other experiment drives reads.
fn run_delta(device: &gpu_device::Device, plan: &ChurnPlan) -> StrategyRun {
    let mut index = registry()
        .build_updatable(
            DYNAMIC_BACKEND,
            &IndexSpec::with_values(device, &plan.initial_keys, &plan.values),
        )
        .expect("delta build");
    let mut keys = plan.initial_keys.clone();
    let mut update_sim_s = 0.0;
    let mut compactions = 0u64;
    for (rows, new_keys) in &plan.batches {
        let old_keys: Vec<u64> = rows.iter().map(|&r| keys[r]).collect();
        let moved_values: Vec<u64> = rows.iter().map(|&r| plan.values[r]).collect();
        let deleted = index.delete(&old_keys).expect("delete");
        let inserted = index.insert(new_keys, &moved_values).expect("insert");
        update_sim_s += deleted.simulated_time_s + inserted.simulated_time_s;
        compactions += deleted.reorganisations + inserted.reorganisations;
        for (&row, &nk) in rows.iter().zip(new_keys) {
            keys[row] = nk;
        }
    }
    let queries = wl::point_lookups(&keys, keys.len().min(MAX_LOOKUPS), 99);
    let out = index
        .execute(&QueryBatch::of_points(&queries))
        .expect("lookup");
    StrategyRun {
        strategy: "delta",
        update_sim_s,
        lookup_sim_s: out.metrics.simulated_time_s,
        lookup_hits: out.hit_count(),
        compactions,
    }
}

/// Applies the churn through per-batch refitting updates.
fn run_refit(device: &gpu_device::Device, plan: &ChurnPlan) -> StrategyRun {
    let mut keys = plan.initial_keys.clone();
    let mut index =
        rtindex_core::RtIndex::build(device, &keys, RtIndexConfig::default().updatable())
            .expect("refit build");
    let mut update_sim_s = 0.0;
    for (rows, new_keys) in &plan.batches {
        for (&row, &nk) in rows.iter().zip(new_keys) {
            keys[row] = nk;
        }
        index.update_keys(&keys).expect("refit");
        update_sim_s += index.build_metrics().simulated_time_s;
    }
    let queries = wl::point_lookups(&keys, keys.len().min(MAX_LOOKUPS), 99);
    let out = index.point_lookup_batch(&queries, None).expect("lookup");
    StrategyRun {
        strategy: "refit",
        update_sim_s,
        lookup_sim_s: out.metrics.simulated_time_s,
        lookup_hits: out.hit_count(),
        compactions: 0,
    }
}

/// Applies the churn through per-batch full rebuilds.
fn run_rebuild(device: &gpu_device::Device, plan: &ChurnPlan) -> StrategyRun {
    let mut keys = plan.initial_keys.clone();
    let mut index = rtindex_core::RtIndex::build(device, &keys, RtIndexConfig::default())
        .expect("rebuild build");
    let mut update_sim_s = 0.0;
    for (rows, new_keys) in &plan.batches {
        for (&row, &nk) in rows.iter().zip(new_keys) {
            keys[row] = nk;
        }
        index.rebuild(&keys).expect("rebuild");
        update_sim_s += index.build_metrics().simulated_time_s;
    }
    let queries = wl::point_lookups(&keys, keys.len().min(MAX_LOOKUPS), 99);
    let out = index.point_lookup_batch(&queries, None).expect("lookup");
    StrategyRun {
        strategy: "rebuild",
        update_sim_s,
        lookup_sim_s: out.metrics.simulated_time_s,
        lookup_hits: out.hit_count(),
        compactions: 0,
    }
}

/// Drives all three strategies through the same churn schedule.
pub fn run_strategies(scale: &ExperimentScale) -> Vec<StrategyRun> {
    let device = crate::scaled_device(scale);
    let plan = churn_plan(scale);
    vec![
        run_delta(&device, &plan),
        run_refit(&device, &plan),
        run_rebuild(&device, &plan),
    ]
}

/// The `update_throughput` experiment: one table comparing the strategies.
pub fn run(scale: &ExperimentScale) -> Vec<Table> {
    let runs = run_strategies(scale);
    let mut table = Table::new(
        format!(
            "Update throughput: {} batches of key churn, 2^{} keys",
            BATCHES, scale.keys_exp
        ),
        &[
            "strategy",
            "update [ms]",
            "ms/batch",
            "lookup [ms]",
            "compactions",
        ],
    );
    for r in &runs {
        table.push_row(vec![
            r.strategy.to_string(),
            fmt_ms(r.update_sim_s * 1e3),
            fmt_ms(r.update_sim_s * 1e3 / BATCHES as f64),
            fmt_ms(r.lookup_sim_s * 1e3),
            r.compactions.to_string(),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_updates_beat_rebuild_per_batch_and_agree_on_lookups() {
        let scale = ExperimentScale::tiny();
        let runs = run_strategies(&scale);
        assert_eq!(runs.len(), 3);
        let by_name = |name: &str| runs.iter().find(|r| r.strategy == name).unwrap();
        let delta = by_name("delta");
        let refit = by_name("refit");
        let rebuild = by_name("rebuild");

        // All strategies applied the same logical churn: every lookup hits.
        assert_eq!(delta.lookup_hits, refit.lookup_hits);
        assert_eq!(delta.lookup_hits, rebuild.lookup_hits);
        assert_eq!(delta.lookup_hits, scale.default_keys().min(MAX_LOOKUPS));

        // The point of the delta layer: updates cost less than rebuilding
        // the BVH every batch.
        assert!(
            delta.update_sim_s < rebuild.update_sim_s,
            "delta {} s must beat rebuild {} s",
            delta.update_sim_s,
            rebuild.update_sim_s
        );
        assert!(delta.update_sim_s > 0.0 && refit.update_sim_s > 0.0);

        let tables = run(&scale);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows.len(), 3);
    }
}
