//! Refitting updates (`optixAccelBuild` with `OPTIX_BUILD_OPERATION_UPDATE`).
//!
//! OptiX updates keep the tree topology fixed and merely recompute the
//! bounding volumes bottom-up from the (possibly moved) primitives. This is
//! much cheaper than a rebuild but degrades traversal performance when
//! primitives move far from their original neighbourhood, because sibling
//! volumes start to overlap — precisely the effect Table 4 of the paper
//! demonstrates by swapping adjacent *buffer positions* (keys move far) vs.
//! adjacent *keys* (keys barely move).

use rtx_math::Aabb;

use crate::node::Bvh;
use crate::primitives::PrimitiveSet;

/// Errors reported by [`refit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefitError {
    /// The BVH was built without `allow_update`.
    UpdatesNotAllowed,
    /// The primitive count changed; OptiX updates cannot add or remove
    /// primitives.
    PrimitiveCountChanged {
        /// Primitives referenced by the hierarchy.
        expected: usize,
        /// Primitives in the supplied build input.
        actual: usize,
    },
}

impl std::fmt::Display for RefitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RefitError::UpdatesNotAllowed => {
                write!(f, "BVH was built without the allow-update flag")
            }
            RefitError::PrimitiveCountChanged { expected, actual } => write!(
                f,
                "updates cannot add or remove primitives (expected {expected}, got {actual})"
            ),
        }
    }
}

impl std::error::Error for RefitError {}

/// Refits `bvh` to the current state of `prims`.
///
/// The node array is processed in reverse order; because nodes are stored in
/// depth-first pre-order, every child has a larger index than its parent, so
/// a single reverse sweep recomputes all bounds bottom-up. The whole
/// primitive buffer is read regardless of how many primitives actually moved
/// — matching the paper's observation that update time is independent of the
/// number of applied updates.
///
/// Returns the number of nodes whose bounds changed.
pub fn refit(bvh: &mut Bvh, prims: &dyn PrimitiveSet) -> Result<u64, RefitError> {
    if !bvh.allows_update() {
        return Err(RefitError::UpdatesNotAllowed);
    }
    if prims.len() != bvh.primitive_count() {
        return Err(RefitError::PrimitiveCountChanged {
            expected: bvh.primitive_count(),
            actual: prims.len(),
        });
    }

    let mut changed = 0u64;
    for idx in (0..bvh.nodes.len()).rev() {
        let new_bounds = if bvh.nodes[idx].is_leaf() {
            let node = &bvh.nodes[idx];
            let start = node.first_prim as usize;
            let end = start + node.prim_count as usize;
            bvh.prim_indices[start..end]
                .iter()
                .fold(Aabb::EMPTY, |acc, &p| acc.union(&prims.bounds(p as usize)))
        } else {
            let left = bvh.nodes[idx + 1].bounds;
            let right = bvh.nodes[bvh.nodes[idx].right_child as usize].bounds;
            left.union(&right)
        };
        if new_bounds != bvh.nodes[idx].bounds {
            bvh.nodes[idx].bounds = new_bounds;
            changed += 1;
        }
    }
    Ok(changed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build, BuildConfig};
    use crate::primitives::TriangleSet;
    use crate::quality::BvhQuality;
    use crate::traverse::collect_hits;
    use rtx_math::{Ray, Triangle, Vec3f};

    fn line_of_triangles(n: usize) -> TriangleSet {
        TriangleSet::new(
            (0..n)
                .map(|i| Triangle::key_triangle(Vec3f::new(i as f32, 0.0, 0.0), 0.4))
                .collect(),
        )
    }

    fn point_ray(key: f32) -> Ray {
        Ray::new(
            Vec3f::new(key, 0.0, -0.5),
            Vec3f::new(0.0, 0.0, 1.0),
            0.0,
            1.0,
        )
    }

    #[test]
    fn refit_requires_update_flag() {
        let prims = line_of_triangles(32);
        let mut bvh = build(&prims, &BuildConfig::default());
        assert_eq!(refit(&mut bvh, &prims), Err(RefitError::UpdatesNotAllowed));
    }

    #[test]
    fn refit_rejects_changed_primitive_count() {
        let prims = line_of_triangles(32);
        let mut bvh = build(&prims, &BuildConfig::default().updatable());
        let smaller = line_of_triangles(31);
        assert!(matches!(
            refit(&mut bvh, &smaller),
            Err(RefitError::PrimitiveCountChanged {
                expected: 32,
                actual: 31
            })
        ));
    }

    #[test]
    fn refit_with_unchanged_prims_changes_nothing() {
        let prims = line_of_triangles(64);
        let mut bvh = build(&prims, &BuildConfig::default().updatable());
        let changed = refit(&mut bvh, &prims).expect("refit");
        assert_eq!(changed, 0);
        bvh.validate().expect("still valid");
    }

    #[test]
    fn refit_after_small_moves_keeps_lookups_correct() {
        // Swap the *keys* of rank-adjacent primitives: positions in the
        // buffer keep (almost) the same coordinates, quality stays good.
        let mut prims = line_of_triangles(64);
        let mut bvh = build(&prims, &BuildConfig::default().updatable());
        for pair in 0..32 {
            let a = 2 * pair;
            let b = a + 1;
            let ta = Triangle::key_triangle(Vec3f::new(b as f32, 0.0, 0.0), 0.4);
            let tb = Triangle::key_triangle(Vec3f::new(a as f32, 0.0, 0.0), 0.4);
            prims.triangles_mut()[a] = ta;
            prims.triangles_mut()[b] = tb;
        }
        // Rank-adjacent swaps barely move the primitives, so few (often zero)
        // node bounds change — exactly why the paper finds this update
        // pattern harmless.
        let _changed = refit(&mut bvh, &prims).expect("refit");
        bvh.validate().expect("valid after refit");
        // Looking up key 10 must now return rowID 11 (the swap partner).
        let (hits, _) = collect_hits(&bvh, &prims, &point_ray(10.0));
        assert_eq!(hits, vec![11]);
    }

    #[test]
    fn refit_after_far_moves_degrades_quality() {
        // Swap adjacent *buffer positions* of a shuffled key set: the
        // primitives' coordinates change drastically, volumes inflate.
        let n = 256usize;
        // Build over a shuffled arrangement: primitive i represents key
        // (i * 97) % n, so buffer neighbours are far apart in space.
        let keys: Vec<usize> = (0..n).map(|i| (i * 97) % n).collect();
        let mut prims = TriangleSet::new(
            keys.iter()
                .map(|&k| Triangle::key_triangle(Vec3f::new(k as f32, 0.0, 0.0), 0.4))
                .collect(),
        );
        let mut bvh = build(&prims, &BuildConfig::default().updatable());
        let before = BvhQuality::measure(&bvh);
        let (_, stats_before) = collect_hits(&bvh, &prims, &point_ray(100.0));

        // Swap every pair of adjacent buffer positions.
        for pair in 0..(n / 2) {
            prims.triangles_mut().swap(2 * pair, 2 * pair + 1);
        }
        refit(&mut bvh, &prims).expect("refit");
        bvh.validate().expect("valid after refit");
        let after = BvhQuality::measure(&bvh);
        let (hits, stats_after) = collect_hits(&bvh, &prims, &point_ray(100.0));

        // Correctness is preserved…
        assert_eq!(hits.len(), 1);
        // …but the structure got worse: larger total volume area and more
        // work per lookup.
        assert!(
            after.sah_cost > before.sah_cost,
            "SAH cost should degrade: {} -> {}",
            before.sah_cost,
            after.sah_cost
        );
        assert!(
            stats_after.nodes_visited >= stats_before.nodes_visited,
            "lookup work should not shrink after destructive updates"
        );
    }

    #[test]
    fn rebuild_restores_quality_after_destructive_updates() {
        let n = 256usize;
        let keys: Vec<usize> = (0..n).map(|i| (i * 97) % n).collect();
        let mut prims = TriangleSet::new(
            keys.iter()
                .map(|&k| Triangle::key_triangle(Vec3f::new(k as f32, 0.0, 0.0), 0.4))
                .collect(),
        );
        let mut bvh = build(&prims, &BuildConfig::default().updatable());
        for pair in 0..(n / 2) {
            prims.triangles_mut().swap(2 * pair, 2 * pair + 1);
        }
        refit(&mut bvh, &prims).expect("refit");
        let refitted = BvhQuality::measure(&bvh);

        let rebuilt = build(&prims, &BuildConfig::default().updatable());
        let rebuilt_q = BvhQuality::measure(&rebuilt);
        assert!(
            rebuilt_q.sah_cost <= refitted.sah_cost,
            "rebuild must not be worse than refit: {} vs {}",
            rebuilt_q.sah_cost,
            refitted.sah_cost
        );
    }
}
