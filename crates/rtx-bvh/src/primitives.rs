//! Primitive sets: the geometry a BVH is built over.
//!
//! OptiX builds acceleration structures over three kinds of build input that
//! matter for RTIndeX: triangle arrays, sphere arrays (shared radius) and
//! user AABB arrays. A [`PrimitiveSet`] exposes the per-primitive bounds the
//! builders need and the intersection test the traversal calls for leaf
//! candidates.

use rtx_math::{Aabb, Ray, Sphere, Triangle, Vec3f};

/// The result of testing a ray against one primitive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PrimitiveHit {
    /// The ray misses the primitive.
    Miss,
    /// The ray hits the primitive at parameter `t` via the fixed-function
    /// (hardware) triangle unit.
    HardwareHit(f32),
    /// The ray hits the primitive at parameter `t` via a software
    /// intersection program (spheres, AABBs).
    SoftwareHit(f32),
}

impl PrimitiveHit {
    /// Returns the hit parameter if this is a hit.
    pub fn t(&self) -> Option<f32> {
        match self {
            PrimitiveHit::Miss => None,
            PrimitiveHit::HardwareHit(t) | PrimitiveHit::SoftwareHit(t) => Some(*t),
        }
    }

    /// True when this hit was produced by the hardware triangle unit.
    pub fn is_hardware(&self) -> bool {
        matches!(self, PrimitiveHit::HardwareHit(_))
    }
}

/// A collection of primitives a BVH can be built over.
pub trait PrimitiveSet: Sync {
    /// Number of primitives in the set.
    fn len(&self) -> usize;

    /// True when the set contains no primitives.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tight bounding box of primitive `i`.
    fn bounds(&self, i: usize) -> Aabb;

    /// Centroid of primitive `i` (used by the builders for partitioning).
    fn centroid(&self, i: usize) -> Vec3f {
        self.bounds(i).centroid()
    }

    /// Tests `ray` against primitive `i`.
    fn intersect(&self, i: usize, ray: &Ray) -> PrimitiveHit;

    /// Bytes of device memory one primitive occupies in the build input.
    fn bytes_per_primitive(&self) -> u64;

    /// Whether intersection runs on the fixed-function triangle unit
    /// (`true`) or in a software intersection program (`false`).
    fn hardware_intersection(&self) -> bool;
}

/// A triangle array build input (nine float32 per primitive).
#[derive(Debug, Clone, Default)]
pub struct TriangleSet {
    triangles: Vec<Triangle>,
}

impl TriangleSet {
    /// Creates a set from a vector of triangles.
    pub fn new(triangles: Vec<Triangle>) -> Self {
        TriangleSet { triangles }
    }

    /// Read-only access to the triangles.
    pub fn triangles(&self) -> &[Triangle] {
        &self.triangles
    }

    /// Mutable access (used by update workloads that move primitives).
    pub fn triangles_mut(&mut self) -> &mut [Triangle] {
        &mut self.triangles
    }
}

impl PrimitiveSet for TriangleSet {
    fn len(&self) -> usize {
        self.triangles.len()
    }

    fn bounds(&self, i: usize) -> Aabb {
        self.triangles[i].bounds()
    }

    fn centroid(&self, i: usize) -> Vec3f {
        self.triangles[i].centroid()
    }

    fn intersect(&self, i: usize, ray: &Ray) -> PrimitiveHit {
        match self.triangles[i].intersect(ray) {
            Some(hit) => PrimitiveHit::HardwareHit(hit.t),
            None => PrimitiveHit::Miss,
        }
    }

    fn bytes_per_primitive(&self) -> u64 {
        9 * 4
    }

    fn hardware_intersection(&self) -> bool {
        true
    }
}

/// A sphere array build input: three float32 per primitive plus one shared
/// radius for the whole set, exactly the space-saving layout the paper uses.
#[derive(Debug, Clone, Default)]
pub struct SphereSet {
    centers: Vec<Vec3f>,
    radius: f32,
}

impl SphereSet {
    /// Creates a set of spheres with a shared radius.
    pub fn new(centers: Vec<Vec3f>, radius: f32) -> Self {
        SphereSet { centers, radius }
    }

    /// The shared radius.
    pub fn radius(&self) -> f32 {
        self.radius
    }

    /// Read-only access to the centers.
    pub fn centers(&self) -> &[Vec3f] {
        &self.centers
    }

    /// Mutable access to the centers.
    pub fn centers_mut(&mut self) -> &mut [Vec3f] {
        &mut self.centers
    }

    /// The sphere at index `i`.
    pub fn sphere(&self, i: usize) -> Sphere {
        Sphere::new(self.centers[i], self.radius)
    }
}

impl PrimitiveSet for SphereSet {
    fn len(&self) -> usize {
        self.centers.len()
    }

    fn bounds(&self, i: usize) -> Aabb {
        self.sphere(i).bounds()
    }

    fn centroid(&self, i: usize) -> Vec3f {
        self.centers[i]
    }

    fn intersect(&self, i: usize, ray: &Ray) -> PrimitiveHit {
        match self.sphere(i).intersect(ray) {
            Some(hit) => PrimitiveHit::SoftwareHit(hit.t),
            None => PrimitiveHit::Miss,
        }
    }

    fn bytes_per_primitive(&self) -> u64 {
        3 * 4
    }

    fn hardware_intersection(&self) -> bool {
        false
    }
}

/// A user-AABB build input: six float32 per primitive, intersected by a
/// software intersection program.
#[derive(Debug, Clone, Default)]
pub struct AabbSet {
    boxes: Vec<Aabb>,
}

impl AabbSet {
    /// Creates a set from a vector of boxes.
    pub fn new(boxes: Vec<Aabb>) -> Self {
        AabbSet { boxes }
    }

    /// Read-only access to the boxes.
    pub fn boxes(&self) -> &[Aabb] {
        &self.boxes
    }

    /// Mutable access to the boxes.
    pub fn boxes_mut(&mut self) -> &mut [Aabb] {
        &mut self.boxes
    }
}

impl PrimitiveSet for AabbSet {
    fn len(&self) -> usize {
        self.boxes.len()
    }

    fn bounds(&self, i: usize) -> Aabb {
        self.boxes[i]
    }

    fn intersect(&self, i: usize, ray: &Ray) -> PrimitiveHit {
        match self.boxes[i].intersect(ray) {
            // The entry parameter counts as the hit position; a ray starting
            // inside the box hits at its tmin, which the traversal treats as
            // a hit just like OptiX reports the user-program hit.
            Some((t_enter, _)) => PrimitiveHit::SoftwareHit(t_enter),
            None => PrimitiveHit::Miss,
        }
    }

    fn bytes_per_primitive(&self) -> u64 {
        6 * 4
    }

    fn hardware_intersection(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key_triangles(n: usize) -> TriangleSet {
        TriangleSet::new(
            (0..n)
                .map(|i| Triangle::key_triangle(Vec3f::new(i as f32, 0.0, 0.0), 0.4))
                .collect(),
        )
    }

    #[test]
    fn triangle_set_properties() {
        let set = key_triangles(4);
        assert_eq!(set.len(), 4);
        assert!(!set.is_empty());
        assert!(set.hardware_intersection());
        assert_eq!(set.bytes_per_primitive(), 36);
        let b = set.bounds(2);
        assert!(b.contains_point(Vec3f::new(2.0, 0.0, 0.0)));
        let c = set.centroid(2);
        assert!((c.x - 2.0).abs() < 0.2);
    }

    #[test]
    fn triangle_set_intersection_is_hardware() {
        let set = key_triangles(4);
        let ray = Ray::new(
            Vec3f::new(2.0, 0.0, -0.5),
            Vec3f::new(0.0, 0.0, 1.0),
            0.0,
            1.0,
        );
        let hit = set.intersect(2, &ray);
        assert!(hit.is_hardware());
        assert!(hit.t().is_some());
        assert_eq!(set.intersect(3, &ray), PrimitiveHit::Miss);
    }

    #[test]
    fn sphere_set_properties() {
        let set = SphereSet::new(
            (0..3).map(|i| Vec3f::new(i as f32, 0.0, 0.0)).collect(),
            Sphere::KEY_RADIUS,
        );
        assert_eq!(set.len(), 3);
        assert!(!set.hardware_intersection());
        assert_eq!(set.bytes_per_primitive(), 12);
        assert_eq!(set.radius(), 0.25);
        assert_eq!(set.centroid(1), Vec3f::new(1.0, 0.0, 0.0));
        let ray = Ray::new(
            Vec3f::new(1.0, 0.0, -0.5),
            Vec3f::new(0.0, 0.0, 1.0),
            0.0,
            1.0,
        );
        let hit = set.intersect(1, &ray);
        assert!(matches!(hit, PrimitiveHit::SoftwareHit(_)));
        assert_eq!(set.intersect(0, &ray), PrimitiveHit::Miss);
    }

    #[test]
    fn aabb_set_properties() {
        let boxes: Vec<Aabb> = (0..3)
            .map(|i| {
                let c = Vec3f::new(i as f32, 0.0, 0.0);
                Aabb::new(c - Vec3f::splat(0.4), c + Vec3f::splat(0.4))
            })
            .collect();
        let set = AabbSet::new(boxes);
        assert_eq!(set.len(), 3);
        assert_eq!(set.bytes_per_primitive(), 24);
        assert!(!set.hardware_intersection());
        let ray = Ray::new(
            Vec3f::new(-1.0, 0.0, 0.0),
            Vec3f::new(1.0, 0.0, 0.0),
            0.0,
            10.0,
        );
        assert!(matches!(
            set.intersect(0, &ray),
            PrimitiveHit::SoftwareHit(_)
        ));
        assert!(matches!(
            set.intersect(2, &ray),
            PrimitiveHit::SoftwareHit(_)
        ));
        let short_ray = Ray::new(
            Vec3f::new(-1.0, 0.0, 0.0),
            Vec3f::new(1.0, 0.0, 0.0),
            0.0,
            0.5,
        );
        assert_eq!(set.intersect(0, &short_ray), PrimitiveHit::Miss);
    }

    #[test]
    fn primitive_hit_helpers() {
        assert_eq!(PrimitiveHit::Miss.t(), None);
        assert_eq!(PrimitiveHit::HardwareHit(1.0).t(), Some(1.0));
        assert!(!PrimitiveHit::SoftwareHit(1.0).is_hardware());
        assert!(PrimitiveHit::HardwareHit(1.0).is_hardware());
    }

    #[test]
    fn empty_sets() {
        assert!(TriangleSet::default().is_empty());
        assert!(SphereSet::default().is_empty());
        assert!(AabbSet::default().is_empty());
    }
}
