//! Non-negative least squares for the Section 4.9 cost decomposition.
//!
//! The paper fits the model
//! `LookupTime(2^n) = TraversalTime + 2^n * IntersectTime`
//! to the measured range-lookup times using non-negative least squares and
//! reports the two fitted constants. The model has two unknowns, so an exact
//! solver is simple: solve the unconstrained 2×2 normal equations and, if a
//! coefficient turns negative, clamp it to zero and re-fit the other.

/// Result of fitting `y ≈ a + b * x` with `a, b >= 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoTermFit {
    /// The constant term (the paper's TraversalTime).
    pub constant: f64,
    /// The per-unit term (the paper's IntersectTime).
    pub per_unit: f64,
    /// Residual sum of squares of the fit.
    pub residual: f64,
}

/// Fits `y[i] ≈ constant + per_unit * x[i]` subject to both coefficients
/// being non-negative.
///
/// # Panics
/// Panics when the slices have different lengths or fewer than two points.
pub fn nnls_two_term(x: &[f64], y: &[f64]) -> TwoTermFit {
    assert_eq!(x.len(), y.len(), "x and y must have the same length");
    assert!(x.len() >= 2, "need at least two observations");
    let n = x.len() as f64;
    let sx: f64 = x.iter().sum();
    let sy: f64 = y.iter().sum();
    let sxx: f64 = x.iter().map(|v| v * v).sum();
    let sxy: f64 = x.iter().zip(y).map(|(a, b)| a * b).sum();

    // Unconstrained ordinary least squares.
    let det = n * sxx - sx * sx;
    let (mut constant, mut per_unit) = if det.abs() < 1e-12 {
        (sy / n, 0.0)
    } else {
        ((sy * sxx - sx * sxy) / det, (n * sxy - sx * sy) / det)
    };

    // Clamp-and-refit for the active constraints.
    if per_unit < 0.0 {
        per_unit = 0.0;
        constant = (sy / n).max(0.0);
    }
    if constant < 0.0 {
        constant = 0.0;
        per_unit = if sxx > 0.0 { (sxy / sxx).max(0.0) } else { 0.0 };
    }

    let residual = x
        .iter()
        .zip(y)
        .map(|(xv, yv)| {
            let e = yv - (constant + per_unit * xv);
            e * e
        })
        .sum();
    TwoTermFit {
        constant,
        per_unit,
        residual,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_fit_recovers_coefficients() {
        let x: Vec<f64> = vec![1.0, 4.0, 16.0, 64.0, 256.0];
        let y: Vec<f64> = x.iter().map(|v| 100.0 + 3.5 * v).collect();
        let fit = nnls_two_term(&x, &y);
        assert!((fit.constant - 100.0).abs() < 1e-6);
        assert!((fit.per_unit - 3.5).abs() < 1e-9);
        assert!(fit.residual < 1e-9);
    }

    #[test]
    fn negative_slope_is_clamped_to_zero() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let y = vec![10.0, 8.0, 6.0, 4.0];
        let fit = nnls_two_term(&x, &y);
        assert_eq!(fit.per_unit, 0.0);
        assert!((fit.constant - 7.0).abs() < 1e-9, "falls back to the mean");
        assert!(fit.residual > 0.0);
    }

    #[test]
    fn negative_intercept_is_clamped_to_zero() {
        let x = vec![10.0, 20.0, 30.0];
        let y = vec![5.0, 25.0, 45.0]; // OLS intercept would be -15
        let fit = nnls_two_term(&x, &y);
        assert_eq!(fit.constant, 0.0);
        assert!(fit.per_unit > 0.0);
    }

    #[test]
    fn noisy_data_still_close() {
        let x: Vec<f64> = (0..10).map(|i| (1u64 << i) as f64).collect();
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, v)| 50.0 + 2.0 * v + (i % 3) as f64)
            .collect();
        let fit = nnls_two_term(&x, &y);
        assert!((fit.per_unit - 2.0).abs() < 0.05);
        assert!((fit.constant - 50.0).abs() < 5.0);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn mismatched_lengths_panic() {
        let _ = nnls_two_term(&[1.0], &[1.0, 2.0]);
    }
}
