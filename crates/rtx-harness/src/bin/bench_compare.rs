//! The CI perf-gate comparator: compares a perf-smoke run against the
//! checked-in baseline and exits non-zero when a gated metric regressed.
//!
//! ```text
//! bench-compare <baseline.json> <current.json> [--max-regression 0.30]
//! ```
//!
//! Exit codes: 0 = gate passes, 1 = gated regression (or a gated metric
//! silently disappeared), 2 = usage / unreadable or mismatched inputs.
//!
//! To re-baseline after an intentional change, regenerate the baseline with
//! `cargo run --release -p rtx-harness --bin perf-smoke -- --scale tiny
//! --out bench/baseline.json` and commit it (round host-relative gated
//! values like the coalescing speedup *down* to a conservative floor —
//! see `rtx_harness::perf`).

use rtx_harness::perf::{compare, failures, BenchReport, Verdict};

fn print_usage() {
    eprintln!("usage: bench-compare <baseline.json> <current.json> [--max-regression FRACTION]");
}

fn read_report(path: &str) -> BenchReport {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("cannot read {path}: {err}");
            std::process::exit(2);
        }
    };
    match BenchReport::from_json(&text) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("cannot parse {path}: {err}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<&str> = Vec::new();
    let mut max_regression = 0.30f64;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--max-regression" => {
                let value = iter.next().map(String::as_str).unwrap_or("");
                match value.parse::<f64>() {
                    Ok(f) if (0.0..1.0).contains(&f) => max_regression = f,
                    _ => {
                        eprintln!("invalid --max-regression '{value}' (need a fraction in [0, 1))");
                        std::process::exit(2);
                    }
                }
            }
            "--help" | "-h" => {
                print_usage();
                return;
            }
            path => paths.push(path),
        }
    }
    let [baseline_path, current_path] = paths[..] else {
        print_usage();
        std::process::exit(2);
    };

    let baseline = read_report(baseline_path);
    let current = read_report(current_path);
    if baseline.scale != current.scale {
        eprintln!(
            "scale mismatch: baseline ran at '{}' but current ran at '{}'",
            baseline.scale, current.scale
        );
        std::process::exit(2);
    }

    let comparisons = compare(&baseline, &current, max_regression);
    println!(
        "perf gate @ {} (allowed regression: {:.0}%):",
        current.scale,
        max_regression * 100.0
    );
    for c in &comparisons {
        let fmt = |v: Option<f64>| match v {
            Some(v) => format!("{v:>12.4e}"),
            None => format!("{:>12}", "-"),
        };
        let verdict = match c.verdict {
            Verdict::Pass => "ok",
            Verdict::Regressed => "REGRESSED",
            Verdict::MissingCurrent => "MISSING IN CURRENT",
            Verdict::MissingBaseline => "not in baseline (re-baseline to gate it)",
            Verdict::Ungated => "recorded (ungated)",
        };
        println!(
            "  {:<62} base {} -> cur {}  {}  {}",
            c.key,
            fmt(c.baseline),
            fmt(c.current),
            match c.ratio {
                Some(r) => format!("{:>6.2}x", r),
                None => format!("{:>7}", "-"),
            },
            verdict
        );
    }

    let failing = failures(&comparisons);
    if failing.is_empty() {
        println!("perf gate: PASS");
    } else {
        println!(
            "perf gate: FAIL ({} gated metric(s) regressed)",
            failing.len()
        );
        std::process::exit(1);
    }
}
