//! Ground-truth answers for generated workloads.
//!
//! Every index implementation (RX and the baselines) is verified against a
//! plain hash-map/sorted-vector oracle. The oracle also provides the
//! aggregate the paper's methodology reports: the sum of the projected
//! values of all qualifying rows.

use std::collections::HashMap;

/// Reserved rowID reported for misses, matching the index implementations.
pub const MISS: u32 = u32::MAX;

/// An exact oracle over a key column and an optional value column.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// key -> rowIDs holding that key.
    by_key: HashMap<u64, Vec<u32>>,
    /// (key, rowID) pairs sorted by key, for range queries.
    sorted: Vec<(u64, u32)>,
    values: Option<Vec<u64>>,
}

impl GroundTruth {
    /// Builds the oracle from the key column (rowID = position) and an
    /// optional value column of the same length.
    pub fn new(keys: &[u64], values: Option<&[u64]>) -> Self {
        if let Some(v) = values {
            assert_eq!(v.len(), keys.len(), "value column must match the key column length");
        }
        let mut by_key: HashMap<u64, Vec<u32>> = HashMap::with_capacity(keys.len());
        let mut sorted: Vec<(u64, u32)> = Vec::with_capacity(keys.len());
        for (row, &key) in keys.iter().enumerate() {
            by_key.entry(key).or_default().push(row as u32);
            sorted.push((key, row as u32));
        }
        sorted.sort_unstable();
        GroundTruth { by_key, sorted, values: values.map(|v| v.to_vec()) }
    }

    /// RowIDs holding `key` (empty on a miss).
    pub fn point_rows(&self, key: u64) -> &[u32] {
        self.by_key.get(&key).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Number of qualifying rows for a point lookup.
    pub fn point_hit_count(&self, key: u64) -> u32 {
        self.point_rows(key).len() as u32
    }

    /// First (smallest) qualifying rowID for a point lookup, or [`MISS`].
    pub fn point_first_row(&self, key: u64) -> u32 {
        self.point_rows(key).iter().copied().min().unwrap_or(MISS)
    }

    /// Sum of the values of all rows holding `key`.
    pub fn point_value_sum(&self, key: u64) -> u64 {
        let values = match &self.values {
            Some(v) => v,
            None => return 0,
        };
        self.point_rows(key).iter().map(|&r| values[r as usize]).fold(0u64, u64::wrapping_add)
    }

    /// RowIDs of all rows whose key lies in `[lower, upper]`.
    pub fn range_rows(&self, lower: u64, upper: u64) -> Vec<u32> {
        if lower > upper {
            return Vec::new();
        }
        let start = self.sorted.partition_point(|&(k, _)| k < lower);
        self.sorted[start..]
            .iter()
            .take_while(|&&(k, _)| k <= upper)
            .map(|&(_, r)| r)
            .collect()
    }

    /// Number of qualifying rows for a range lookup.
    pub fn range_hit_count(&self, lower: u64, upper: u64) -> u32 {
        self.range_rows(lower, upper).len() as u32
    }

    /// Sum of the values of all rows whose key lies in `[lower, upper]`.
    pub fn range_value_sum(&self, lower: u64, upper: u64) -> u64 {
        let values = match &self.values {
            Some(v) => v,
            None => return 0,
        };
        self.range_rows(lower, upper)
            .iter()
            .map(|&r| values[r as usize])
            .fold(0u64, u64::wrapping_add)
    }

    /// Total value sum over a batch of point lookups (the experiment-level
    /// aggregate).
    pub fn batch_point_sum(&self, queries: &[u64]) -> u64 {
        queries.iter().map(|&q| self.point_value_sum(q)).fold(0u64, u64::wrapping_add)
    }

    /// Total value sum over a batch of range lookups.
    pub fn batch_range_sum(&self, ranges: &[(u64, u64)]) -> u64 {
        ranges.iter().map(|&(l, u)| self.range_value_sum(l, u)).fold(0u64, u64::wrapping_add)
    }

    /// Expected hit count over a batch of point lookups (lookups that find
    /// at least one row).
    pub fn batch_point_hits(&self, queries: &[u64]) -> usize {
        queries.iter().filter(|&&q| self.point_hit_count(q) > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keyset::{dense_shuffled, value_column, with_multiplicity};

    #[test]
    fn point_oracle_matches_manual_scan() {
        let keys = dense_shuffled(100, 1);
        let values = value_column(100, 2);
        let truth = GroundTruth::new(&keys, Some(&values));
        for q in 0..120u64 {
            let expected_rows: Vec<u32> = keys
                .iter()
                .enumerate()
                .filter(|(_, &k)| k == q)
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(truth.point_rows(q), expected_rows.as_slice());
            assert_eq!(truth.point_hit_count(q), expected_rows.len() as u32);
            if q < 100 {
                assert_eq!(truth.point_first_row(q), expected_rows[0]);
                assert_eq!(truth.point_value_sum(q), values[expected_rows[0] as usize]);
            } else {
                assert_eq!(truth.point_first_row(q), MISS);
                assert_eq!(truth.point_value_sum(q), 0);
            }
        }
    }

    #[test]
    fn duplicates_are_counted() {
        let keys = with_multiplicity(10, 3, 1);
        let values = vec![1u64; keys.len()];
        let truth = GroundTruth::new(&keys, Some(&values));
        assert_eq!(truth.point_hit_count(5), 3);
        assert_eq!(truth.point_value_sum(5), 3);
    }

    #[test]
    fn range_oracle_counts_dense_spans() {
        let keys = dense_shuffled(1000, 1);
        let truth = GroundTruth::new(&keys, None);
        assert_eq!(truth.range_hit_count(100, 199), 100);
        assert_eq!(truth.range_hit_count(990, 1100), 10);
        assert_eq!(truth.range_hit_count(2000, 3000), 0);
        assert_eq!(truth.range_hit_count(10, 5), 0, "inverted range");
        assert_eq!(truth.range_rows(0, 999).len(), 1000);
    }

    #[test]
    fn batch_aggregates() {
        let keys = dense_shuffled(50, 1);
        let values = value_column(50, 2);
        let truth = GroundTruth::new(&keys, Some(&values));
        let queries = vec![1u64, 2, 3, 100];
        assert_eq!(truth.batch_point_hits(&queries), 3);
        let expected: u64 =
            queries.iter().map(|&q| truth.point_value_sum(q)).fold(0u64, u64::wrapping_add);
        assert_eq!(truth.batch_point_sum(&queries), expected);
        assert_eq!(
            truth.batch_range_sum(&[(0, 9), (40, 49)]),
            truth.range_value_sum(0, 9) + truth.range_value_sum(40, 49)
        );
    }

    #[test]
    #[should_panic(expected = "value column")]
    fn mismatched_value_column_panics() {
        let _ = GroundTruth::new(&[1, 2, 3], Some(&[1]));
    }
}
