//! Static GPU descriptions.
//!
//! The presets correspond to the four systems of Table 8 in the paper. The
//! figures (SM counts, RT core counts, bandwidth, L2 size) are public
//! specifications; the per-generation RT-core throughput factors follow
//! NVIDIA's architecture whitepapers, which state that ray/triangle
//! intersection throughput doubled with every RT core generation.

/// The raytracing-core generation of a GPU architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RtCoreGeneration {
    /// Turing (RTX 20x0) — 1st generation RT cores.
    Gen1,
    /// Ampere (RTX 30x0, A6000) — 2nd generation RT cores.
    Gen2,
    /// Ada Lovelace (RTX 40x0) — 3rd generation RT cores.
    Gen3,
}

impl RtCoreGeneration {
    /// Relative ray/triangle intersection throughput per RT core and clock,
    /// normalised to the first generation. NVIDIA's whitepapers claim a 2×
    /// improvement per generation.
    pub fn triangle_throughput_factor(self) -> f64 {
        match self {
            RtCoreGeneration::Gen1 => 1.0,
            RtCoreGeneration::Gen2 => 2.0,
            RtCoreGeneration::Gen3 => 4.0,
        }
    }

    /// Human-readable architecture name.
    pub fn architecture_name(self) -> &'static str {
        match self {
            RtCoreGeneration::Gen1 => "Turing",
            RtCoreGeneration::Gen2 => "Ampere",
            RtCoreGeneration::Gen3 => "Ada Lovelace",
        }
    }
}

/// Static description of a simulated GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name, e.g. `"RTX 4090"`.
    pub name: String,
    /// Streaming-multiprocessor count.
    pub sm_count: u32,
    /// Number of raytracing cores.
    pub rt_cores: u32,
    /// RT core generation.
    pub rt_core_generation: RtCoreGeneration,
    /// Number of CUDA cores (used for the instruction-throughput term).
    pub cuda_cores: u32,
    /// Boost clock in Hz.
    pub clock_hz: f64,
    /// Device memory capacity in bytes.
    pub vram_bytes: u64,
    /// Peak device-memory bandwidth in bytes per second.
    pub mem_bandwidth: f64,
    /// L2 cache size in bytes.
    pub l2_bytes: u64,
    /// Threads per warp (32 on every NVIDIA architecture).
    pub warp_size: u32,
    /// Maximum warps the scheduler keeps resident per SM for the raytracing
    /// pipeline (the paper measures a limit of 16 for RX).
    pub max_warps_per_sm: u32,
    /// Fixed overhead of launching one kernel, in seconds.
    pub kernel_launch_overhead_s: f64,
    /// Average instructions retired per CUDA core per clock (a throughput
    /// fudge factor of the cost model; < 1 accounts for stalls).
    pub ipc_per_core: f64,
}

impl DeviceSpec {
    /// NVIDIA RTX 4090 (Ada Lovelace) — the paper's primary system S1.
    pub fn rtx_4090() -> Self {
        DeviceSpec {
            name: "RTX 4090".to_string(),
            sm_count: 128,
            rt_cores: 128,
            rt_core_generation: RtCoreGeneration::Gen3,
            cuda_cores: 16384,
            clock_hz: 2.52e9,
            vram_bytes: 24 * (1 << 30),
            mem_bandwidth: 1008.0e9,
            l2_bytes: 72 * (1 << 20),
            warp_size: 32,
            max_warps_per_sm: 16,
            kernel_launch_overhead_s: 5.0e-6,
            ipc_per_core: 0.45,
        }
    }

    /// NVIDIA RTX A6000 (Ampere) — system S2a.
    pub fn rtx_a6000() -> Self {
        DeviceSpec {
            name: "RTX A6000".to_string(),
            sm_count: 84,
            rt_cores: 84,
            rt_core_generation: RtCoreGeneration::Gen2,
            cuda_cores: 10752,
            clock_hz: 1.80e9,
            vram_bytes: 48 * (1 << 30),
            mem_bandwidth: 768.0e9,
            l2_bytes: 6 * (1 << 20),
            warp_size: 32,
            max_warps_per_sm: 16,
            kernel_launch_overhead_s: 5.0e-6,
            ipc_per_core: 0.45,
        }
    }

    /// NVIDIA RTX 3090 (Ampere) — system S2b.
    pub fn rtx_3090() -> Self {
        DeviceSpec {
            name: "RTX 3090".to_string(),
            sm_count: 82,
            rt_cores: 82,
            rt_core_generation: RtCoreGeneration::Gen2,
            cuda_cores: 10496,
            clock_hz: 1.70e9,
            vram_bytes: 24 * (1 << 30),
            mem_bandwidth: 936.0e9,
            l2_bytes: 6 * (1 << 20),
            warp_size: 32,
            max_warps_per_sm: 16,
            kernel_launch_overhead_s: 5.0e-6,
            ipc_per_core: 0.45,
        }
    }

    /// NVIDIA RTX 2080 Ti (Turing) — system S3.
    pub fn rtx_2080ti() -> Self {
        DeviceSpec {
            name: "RTX 2080 Ti".to_string(),
            sm_count: 68,
            rt_cores: 68,
            rt_core_generation: RtCoreGeneration::Gen1,
            cuda_cores: 4352,
            clock_hz: 1.545e9,
            vram_bytes: 11 * (1 << 30),
            mem_bandwidth: 616.0e9,
            l2_bytes: (55 * (1 << 20)) / 10, // 5.5 MiB
            warp_size: 32,
            max_warps_per_sm: 16,
            kernel_launch_overhead_s: 5.0e-6,
            ipc_per_core: 0.45,
        }
    }

    /// All four presets of Table 8, ordered oldest to newest.
    pub fn table8_presets() -> Vec<DeviceSpec> {
        vec![
            Self::rtx_2080ti(),
            Self::rtx_3090(),
            Self::rtx_a6000(),
            Self::rtx_4090(),
        ]
    }

    /// Maximum number of warps that can be resident on the whole device.
    pub fn max_resident_warps(&self) -> u64 {
        self.sm_count as u64 * self.max_warps_per_sm as u64
    }

    /// Maximum number of threads that can be resident on the whole device.
    pub fn max_resident_threads(&self) -> u64 {
        self.max_resident_warps() * self.warp_size as u64
    }

    /// Peak instruction throughput in instructions per second.
    pub fn peak_instruction_throughput(&self) -> f64 {
        self.cuda_cores as f64 * self.clock_hz * self.ipc_per_core
    }

    /// Peak ray/triangle intersection-test throughput in tests per second.
    pub fn peak_rt_intersection_throughput(&self) -> f64 {
        // Baseline: a 1st-gen RT core retires roughly one box/triangle test
        // per clock.
        self.rt_cores as f64 * self.clock_hz * self.rt_core_generation.triangle_throughput_factor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table8() {
        let s1 = DeviceSpec::rtx_4090();
        assert_eq!(s1.rt_cores, 128);
        assert_eq!(s1.vram_bytes, 24 * (1 << 30));
        assert_eq!(s1.rt_core_generation, RtCoreGeneration::Gen3);

        let s2a = DeviceSpec::rtx_a6000();
        assert_eq!(s2a.rt_cores, 84);
        assert_eq!(s2a.vram_bytes, 48 * (1 << 30));

        let s2b = DeviceSpec::rtx_3090();
        assert_eq!(s2b.rt_cores, 82);

        let s3 = DeviceSpec::rtx_2080ti();
        assert_eq!(s3.rt_cores, 68);
        assert_eq!(s3.rt_core_generation, RtCoreGeneration::Gen1);
        assert_eq!(DeviceSpec::table8_presets().len(), 4);
    }

    #[test]
    fn generation_throughput_doubles() {
        assert_eq!(RtCoreGeneration::Gen1.triangle_throughput_factor(), 1.0);
        assert_eq!(RtCoreGeneration::Gen2.triangle_throughput_factor(), 2.0);
        assert_eq!(RtCoreGeneration::Gen3.triangle_throughput_factor(), 4.0);
        assert_eq!(RtCoreGeneration::Gen3.architecture_name(), "Ada Lovelace");
    }

    #[test]
    fn newer_devices_have_more_rt_throughput() {
        let presets = DeviceSpec::table8_presets();
        let throughputs: Vec<f64> = presets
            .iter()
            .map(|s| s.peak_rt_intersection_throughput())
            .collect();
        for w in throughputs.windows(2) {
            assert!(
                w[0] < w[1],
                "RT throughput must increase across generations"
            );
        }
    }

    #[test]
    fn resident_thread_budget() {
        let s1 = DeviceSpec::rtx_4090();
        assert_eq!(s1.max_resident_warps(), 128 * 16);
        assert_eq!(s1.max_resident_threads(), 128 * 16 * 32);
        assert!(s1.peak_instruction_throughput() > 1e12);
    }
}
