//! Parallel "kernel" execution and the shared host worker pool.
//!
//! A CUDA kernel launch spawns one logical thread per work item (one per
//! lookup in the raytracing pipeline). We execute those logical threads on a
//! pool of host worker threads: the grid is split into contiguous chunks, and
//! each worker runs the per-thread closure for its chunk while accumulating
//! counters in a private [`ThreadCtx`]. At the end, all contexts are merged
//! into a single [`KernelStats`] record, which mirrors how Nsight aggregates
//! per-kernel metrics.
//!
//! The pool logic is exposed through two reusable scoped-parallel helpers —
//! [`parallel_tasks`] and [`parallel_map`] — so that callers above the kernel
//! layer (the sharded execution layer, the simulated pipeline) reuse the same
//! width policy and scheduling instead of re-implementing scoped-thread
//! plumbing per call site. The helpers run on one **persistent, process-wide
//! pool** of parked worker threads: a call publishes its fan-out to the pool,
//! participates in draining it from the calling thread, and blocks until
//! every task has finished. Spawning threads per call — the previous
//! design — cost tens of microseconds per submission and dominated the
//! host query path (a sharded execute fans out twice: once per shard, once
//! per kernel chunk). With the shared pool a fan-out costs two mutex
//! acquisitions and at most `worker_count - 1` futex wakes. Each call's
//! *width* is still bounded by [`worker_count`] (so `RTX_WORKERS` keeps
//! timing runs reproducible); nested calls draw helpers from the same pool
//! and degrade to inline execution instead of oversubscribing the machine.

use std::sync::Mutex;

use crate::profiler::KernelStats;

/// Per-logical-thread execution context: local counters that are merged into
/// the kernel's [`KernelStats`] after the launch.
#[derive(Debug, Default)]
pub struct ThreadCtx {
    /// Counters accumulated by this worker.
    pub stats: KernelStats,
}

impl ThreadCtx {
    /// Creates a fresh context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` executed instructions.
    #[inline]
    pub fn add_instructions(&mut self, n: u64) {
        self.stats.instructions += n;
    }

    /// Records a memory read of `bytes` that missed the caches.
    #[inline]
    pub fn add_dram_read(&mut self, bytes: u64) {
        self.stats.dram_bytes_read += bytes;
    }

    /// Records a memory read of `bytes` served by the L2 cache.
    #[inline]
    pub fn add_l2_read(&mut self, bytes: u64) {
        self.stats.l2_hit_bytes += bytes;
    }

    /// Records a memory read of `bytes` served by the L1 cache.
    #[inline]
    pub fn add_l1_read(&mut self, bytes: u64) {
        self.stats.l1_hit_bytes += bytes;
    }

    /// Records a memory write of `bytes`.
    #[inline]
    pub fn add_dram_write(&mut self, bytes: u64) {
        self.stats.dram_bytes_written += bytes;
    }
}

/// Hard ceiling on the worker pool, with or without an override.
const MAX_WORKERS: usize = 64;

/// Default cap on the worker pool (kept small so per-test overhead stays
/// reasonable).
const DEFAULT_WORKER_CAP: usize = 16;

/// Number of host worker threads used to execute kernels and coarse parallel
/// tasks.
///
/// Defaults to the machine's available parallelism capped at 16; the
/// logical-thread semantics do not depend on this number. The `RTX_WORKERS`
/// environment variable overrides the detected value, clamped to `1..=64` —
/// `RTX_WORKERS=0` clamps *up* to 1 (fully serial) rather than configuring a
/// zero-worker pool that could never drain [`parallel_tasks`]. The clamp
/// keeps benchmark and CI runs reproducible on heterogeneous hosts; set
/// `RTX_WORKERS=1` for fully serial execution. Non-numeric or empty values
/// fall back to the detected default.
pub fn worker_count() -> usize {
    if let Ok(raw) = std::env::var("RTX_WORKERS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            return n.clamp(1, MAX_WORKERS);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(DEFAULT_WORKER_CAP)
}

/// The persistent helper-thread pool behind [`parallel_tasks`].
///
/// A fan-out lives on the **submitting thread's stack**; only a raw pointer
/// to it travels through the pool's queue. Soundness rests on a strict
/// protocol:
///
/// 1. a worker may dereference a queued pointer only while holding the
///    queue lock (the submitter cannot have returned: it must take that
///    same lock to retract its entry before unwinding its stack);
/// 2. a worker that wants to help *attaches* (bumps `attached`) under the
///    queue lock, and the submitter blocks until `attached == 0` **and**
///    every claimed task has finished before returning;
/// 3. every task body — on workers and on the submitter — runs under
///    `catch_unwind`, so an unwinding stack can never race a helper that
///    still borrows it; the first panic payload is re-thrown by the
///    submitter once the fan-out has fully quiesced.
mod pool {
    use std::collections::VecDeque;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Condvar, Mutex, OnceLock};

    /// One published fan-out: `run(i)` for every `i in 0..tasks`, claimed
    /// via an atomic cursor by the submitter and any attached helpers.
    struct Fanout {
        /// The type-erased task body, borrowed from the submitter's stack
        /// (lifetime upheld by the attach/retract protocol above).
        run: *const (dyn Fn(usize) + Sync),
        tasks: usize,
        /// Next unclaimed task index (may overshoot `tasks`).
        next: AtomicUsize,
        /// Tasks that have finished running (panicked ones included).
        finished: AtomicUsize,
        /// Helper slots still open — `worker_count() - 1` at submission, so
        /// the configured width bounds each call's concurrency.
        helper_slots: AtomicUsize,
        /// Helpers currently attached (mutated under `gate`).
        attached: Mutex<usize>,
        /// Wakes the submitter when the last task finishes or the last
        /// helper detaches.
        quiesced: Condvar,
        /// First panic payload observed by any claimant.
        panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    }

    /// Queue entry. The raw pointer is only dereferenced under the pool
    /// queue lock or after attaching — see the module protocol.
    struct FanoutPtr(*const Fanout);
    unsafe impl Send for FanoutPtr {}

    struct Pool {
        queue: Mutex<VecDeque<FanoutPtr>>,
        work: Condvar,
    }

    impl Fanout {
        /// Claims and runs tasks until the cursor is exhausted, recording
        /// completions and capturing the first panic.
        fn drain(&self) {
            let run = unsafe { &*self.run };
            loop {
                let i = self.next.fetch_add(1, Ordering::Relaxed);
                if i >= self.tasks {
                    return;
                }
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| run(i))) {
                    let mut slot = self.panic.lock().expect("panic slot poisoned");
                    slot.get_or_insert(payload);
                }
                let done = self.finished.fetch_add(1, Ordering::AcqRel) + 1;
                if done == self.tasks {
                    // Lock-then-notify so a submitter between its check and
                    // its wait cannot miss the wakeup.
                    let _gate = self.attached.lock().expect("fanout gate poisoned");
                    self.quiesced.notify_all();
                }
            }
        }
    }

    /// The process-wide pool, spawned on first use with one thread per
    /// available core (bounded by the worker cap). Threads park on the
    /// queue condvar and live for the rest of the process.
    fn pool() -> &'static Pool {
        static POOL: OnceLock<&'static Pool> = OnceLock::new();
        POOL.get_or_init(|| {
            let pool: &'static Pool = Box::leak(Box::new(Pool {
                queue: Mutex::new(VecDeque::new()),
                work: Condvar::new(),
            }));
            let threads = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(super::MAX_WORKERS);
            for i in 0..threads {
                std::thread::Builder::new()
                    .name(format!("gpu-pool-{i}"))
                    .spawn(move || worker_loop(pool))
                    .expect("spawn pool worker");
            }
            pool
        })
    }

    fn worker_loop(pool: &'static Pool) {
        let mut queue = pool.queue.lock().expect("pool queue poisoned");
        loop {
            // Find a fan-out worth helping: pop entries whose tasks are all
            // claimed or whose helper slots are spent, attach to the first
            // live one (deref is sound: we hold the queue lock).
            let fanout = loop {
                match queue.front() {
                    None => break None,
                    Some(entry) => {
                        let fanout = unsafe { &*entry.0 };
                        if fanout.next.load(Ordering::Relaxed) >= fanout.tasks
                            || fanout
                                .helper_slots
                                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                                    s.checked_sub(1)
                                })
                                .is_err()
                        {
                            queue.pop_front();
                            continue;
                        }
                        *fanout.attached.lock().expect("fanout gate poisoned") += 1;
                        break Some(fanout);
                    }
                }
            };
            let Some(fanout) = fanout else {
                queue = pool.work.wait(queue).expect("pool queue poisoned");
                continue;
            };
            drop(queue);

            fanout.drain();
            {
                let mut attached = fanout.attached.lock().expect("fanout gate poisoned");
                *attached -= 1;
                fanout.quiesced.notify_all();
                // The notify happens under the gate: once the submitter
                // observes `attached == 0` this helper no longer touches
                // the fan-out.
            }

            queue = pool.queue.lock().expect("pool queue poisoned");
        }
    }

    /// Publishes `run` over `0..tasks` to the pool, drains it from the
    /// calling thread alongside at most `width - 1` pool helpers, and
    /// returns once every task has finished. Panics in any task are
    /// re-thrown here after the fan-out has quiesced.
    pub(super) fn run_fanout(tasks: usize, width: usize, run: &(dyn Fn(usize) + Sync)) {
        // Erase the borrow's lifetime for storage in the queue; the
        // attach/retract protocol guarantees no claimant outlives the call.
        let run: &'static (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute::<&_, &'static _>(run) };
        let fanout = Fanout {
            run,
            tasks,
            next: AtomicUsize::new(0),
            finished: AtomicUsize::new(0),
            helper_slots: AtomicUsize::new(width.saturating_sub(1)),
            attached: Mutex::new(0),
            quiesced: Condvar::new(),
            panic: Mutex::new(None),
        };
        let pool = pool();
        {
            let mut queue = pool.queue.lock().expect("pool queue poisoned");
            queue.push_back(FanoutPtr(&fanout));
        }
        for _ in 0..width.saturating_sub(1) {
            pool.work.notify_one();
        }

        fanout.drain();

        // Retract the queue entry (if no helper consumed it) so no new
        // helper can attach, then wait for the attached ones to finish.
        {
            let mut queue = pool.queue.lock().expect("pool queue poisoned");
            let this = &fanout as *const Fanout;
            queue.retain(|entry| !std::ptr::eq(entry.0, this));
        }
        {
            let mut attached = fanout.attached.lock().expect("fanout gate poisoned");
            while *attached != 0 || fanout.finished.load(Ordering::Acquire) != fanout.tasks {
                attached = fanout
                    .quiesced
                    .wait(attached)
                    .expect("fanout gate poisoned");
            }
        }
        let payload = fanout.panic.lock().expect("panic slot poisoned").take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

/// Runs `tasks` independent jobs on the shared worker pool and returns
/// their results in task order.
///
/// At most [`worker_count`] jobs run concurrently *per call*; remaining
/// jobs are pulled from a shared counter as claimants free up, so
/// heterogeneous task costs balance dynamically (important when tasks are
/// per-shard sub-batches of very different sizes). With a single worker —
/// or a single task — the jobs run inline on the calling thread without
/// touching the pool. The calling thread always participates in draining
/// its own fan-out, so a call makes progress even when every pool thread
/// is busy; nested calls therefore compose without deadlock (they simply
/// degrade toward inline execution under pool pressure).
pub fn parallel_tasks<R, F>(tasks: usize, run: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if tasks == 0 {
        return Vec::new();
    }
    let workers = worker_count().min(tasks);
    if workers == 1 {
        return (0..tasks).map(run).collect();
    }

    let results: Vec<Mutex<Option<R>>> = (0..tasks).map(|_| Mutex::new(None)).collect();
    pool::run_fanout(tasks, workers, &|i| {
        let r = run(i);
        *results[i].lock().expect("task slot poisoned") = Some(r);
    });

    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("task slot poisoned")
                .expect("task result missing")
        })
        .collect()
}

/// Runs `run(index, item)` over every item on the worker pool, returning the
/// results in item order. Like [`parallel_tasks`], but each job takes
/// ownership of its input — the natural shape for fanning out per-shard
/// columns or per-worker output slices.
pub fn parallel_map<T, R, F>(items: Vec<T>, run: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    parallel_tasks(slots.len(), |i| {
        let item = slots[i]
            .lock()
            .expect("item slot poisoned")
            .take()
            .expect("item taken twice");
        run(i, item)
    })
}

/// Executes `grid_size` logical threads of a kernel in parallel.
///
/// `body(ctx, thread_idx)` is called once per logical thread. Returns the
/// merged [`KernelStats`] with `threads_launched` and `kernel_launches`
/// filled in.
pub fn launch_kernel<F>(grid_size: usize, body: F) -> KernelStats
where
    F: Fn(&mut ThreadCtx, usize) + Sync,
{
    let mut merged = KernelStats {
        threads_launched: grid_size as u64,
        kernel_launches: 1,
        ..KernelStats::new()
    };
    if grid_size == 0 {
        return merged;
    }

    let workers = worker_count().min(grid_size);
    let chunk = grid_size.div_ceil(workers);
    let partials = parallel_tasks(workers, |w| {
        let start = w * chunk;
        let end = ((w + 1) * chunk).min(grid_size);
        let mut ctx = ThreadCtx::new();
        for i in start..end {
            body(&mut ctx, i);
        }
        ctx.stats
    });

    for p in partials {
        merged.merge(&p);
    }
    // merge() also added the zeroed launch bookkeeping of the partials; the
    // canonical values are set explicitly.
    merged.threads_launched = grid_size as u64;
    merged.kernel_launches = 1;
    merged
}

/// Executes `grid_size` logical threads that each produce one output value,
/// writing results into a caller-provided slice. This mirrors a CUDA kernel
/// writing to a result buffer indexed by thread id.
pub fn launch_kernel_with_output<T, F>(grid_size: usize, output: &mut [T], body: F) -> KernelStats
where
    T: Send,
    F: Fn(&mut ThreadCtx, usize) -> T + Sync,
{
    assert!(
        output.len() >= grid_size,
        "output buffer too small: {} < {}",
        output.len(),
        grid_size
    );
    let mut merged = KernelStats {
        threads_launched: grid_size as u64,
        kernel_launches: 1,
        ..KernelStats::new()
    };
    if grid_size == 0 {
        return merged;
    }

    let workers = worker_count().min(grid_size);
    let chunk = grid_size.div_ceil(workers);
    let out_chunks: Vec<&mut [T]> = output[..grid_size].chunks_mut(chunk).collect();

    let partials = parallel_map(out_chunks, |w, out_chunk| {
        let start = w * chunk;
        let mut ctx = ThreadCtx::new();
        for (j, slot) in out_chunk.iter_mut().enumerate() {
            *slot = body(&mut ctx, start + j);
        }
        ctx.stats
    });

    for p in partials {
        merged.merge(&p);
    }
    merged.threads_launched = grid_size as u64;
    merged.kernel_launches = 1;
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn empty_launch_returns_bookkeeping_only() {
        let stats = launch_kernel(0, |_, _| panic!("must not run"));
        assert_eq!(stats.threads_launched, 0);
        assert_eq!(stats.kernel_launches, 1);
        assert_eq!(stats.instructions, 0);
    }

    #[test]
    fn every_logical_thread_runs_exactly_once() {
        let counter = AtomicU64::new(0);
        let n = 10_000;
        let stats = launch_kernel(n, |ctx, i| {
            counter.fetch_add(i as u64 + 1, Ordering::Relaxed);
            ctx.add_instructions(1);
        });
        assert_eq!(
            counter.load(Ordering::Relaxed),
            (n as u64) * (n as u64 + 1) / 2
        );
        assert_eq!(stats.instructions, n as u64);
        assert_eq!(stats.threads_launched, n as u64);
        assert_eq!(stats.kernel_launches, 1);
    }

    #[test]
    fn counters_are_merged_across_workers() {
        let stats = launch_kernel(1000, |ctx, _| {
            ctx.add_dram_read(64);
            ctx.add_l2_read(32);
            ctx.add_l1_read(16);
            ctx.add_dram_write(8);
            ctx.add_instructions(3);
        });
        assert_eq!(stats.dram_bytes_read, 64_000);
        assert_eq!(stats.l2_hit_bytes, 32_000);
        assert_eq!(stats.l1_hit_bytes, 16_000);
        assert_eq!(stats.dram_bytes_written, 8_000);
        assert_eq!(stats.instructions, 3_000);
    }

    #[test]
    fn output_kernel_writes_per_thread_results() {
        let n = 5000;
        let mut out = vec![0u64; n];
        let stats = launch_kernel_with_output(n, &mut out, |ctx, i| {
            ctx.add_instructions(1);
            (i as u64) * 2
        });
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u64 * 2));
        assert_eq!(stats.instructions, n as u64);
    }

    #[test]
    fn output_kernel_with_fewer_items_than_buffer() {
        let mut out = vec![9u32; 10];
        let stats = launch_kernel_with_output(3, &mut out, |_, i| i as u32);
        assert_eq!(&out[..3], &[0, 1, 2]);
        assert_eq!(&out[3..], &[9; 7]);
        assert_eq!(stats.threads_launched, 3);
    }

    #[test]
    #[should_panic(expected = "output buffer too small")]
    fn output_kernel_rejects_small_buffer() {
        let mut out = vec![0u8; 2];
        let _ = launch_kernel_with_output(3, &mut out, |_, i| i as u8);
    }

    #[test]
    fn worker_count_is_positive_and_bounded() {
        let w = worker_count();
        assert!((1..=MAX_WORKERS).contains(&w));
    }

    /// Serialises the tests that mutate `RTX_WORKERS` (process-global env).
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn rtx_workers_env_overrides_worker_count() {
        // Other tests in this binary never read RTX_WORKERS with a value
        // set, and every value used here stays within the documented clamp,
        // so a concurrent `worker_count` call observing the override is
        // still valid.
        let _guard = ENV_LOCK.lock().unwrap();
        std::env::set_var("RTX_WORKERS", "3");
        assert_eq!(worker_count(), 3);
        std::env::set_var("RTX_WORKERS", "100000");
        assert_eq!(worker_count(), MAX_WORKERS, "override clamps at the cap");
        let detected = {
            std::env::remove_var("RTX_WORKERS");
            worker_count()
        };
        for invalid in ["-2", "many", ""] {
            std::env::set_var("RTX_WORKERS", invalid);
            assert_eq!(worker_count(), detected, "invalid {invalid:?} ignored");
        }
        std::env::remove_var("RTX_WORKERS");
    }

    #[test]
    fn rtx_workers_zero_clamps_to_one_worker() {
        // A zero-worker pool could never drain `parallel_tasks`, so 0 must
        // clamp up to fully serial execution instead of being honoured.
        let _guard = ENV_LOCK.lock().unwrap();
        std::env::set_var("RTX_WORKERS", "0");
        assert_eq!(worker_count(), 1, "0 clamps to serial, not to a dead pool");
        let results = parallel_tasks(64, |i| i + 1);
        assert_eq!(results.len(), 64, "the clamped pool still drains");
        assert!(results.iter().enumerate().all(|(i, &r)| r == i + 1));
        std::env::remove_var("RTX_WORKERS");
    }

    #[test]
    fn parallel_tasks_preserves_task_order() {
        let results = parallel_tasks(257, |i| i * 3);
        assert_eq!(results.len(), 257);
        assert!(results.iter().enumerate().all(|(i, &r)| r == i * 3));
        assert!(parallel_tasks(0, |i| i).is_empty());
    }

    #[test]
    fn parallel_tasks_runs_every_task_exactly_once() {
        let hits = AtomicU64::new(0);
        let _ = parallel_tasks(1000, |_| hits.fetch_add(1, Ordering::Relaxed));
        assert_eq!(hits.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn parallel_map_moves_items_and_keeps_order() {
        let items: Vec<String> = (0..100).map(|i| format!("item-{i}")).collect();
        let results = parallel_map(items, |i, s| format!("{s}/{i}"));
        assert!(results
            .iter()
            .enumerate()
            .all(|(i, r)| *r == format!("item-{i}/{i}")));
        assert!(parallel_map(Vec::<u8>::new(), |_, b| b).is_empty());
    }

    #[test]
    fn nested_parallel_tasks_compose() {
        // A coarse task that itself launches a kernel (the sharded-execution
        // shape) must not deadlock or lose work.
        let totals = parallel_tasks(4, |t| {
            let stats = launch_kernel(100, |ctx, _| ctx.add_instructions(t as u64 + 1));
            stats.instructions
        });
        assert_eq!(totals, vec![100, 200, 300, 400]);
    }
}
