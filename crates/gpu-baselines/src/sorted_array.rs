//! SA: sorted array with binary search.
//!
//! The simplest order-preserving baseline: the key column is sorted with the
//! radix sort (out of place, which is where its build-time memory overhead
//! comes from), the rowIDs are carried along as values, and every lookup is a
//! binary search. Range lookups find the lower bound and scan forward.
//! Binary search has the "unfavourable (random) memory access patterns" the
//! paper points out — every probe lands far from the previous one, which the
//! access classifier translates into DRAM traffic.

use gpu_device::{Device, DeviceBuffer};
use rtx_query::IndexError;

use crate::common::{BaselineBatch, BaselineBuildMetrics, GpuIndex};
use crate::kernel::{fetch_value, run_lookup_kernel};
use crate::radix_sort::radix_sort_pairs;
use rtx_query::{LookupResult, MISS};

/// The sorted-array baseline.
#[derive(Debug)]
pub struct SortedArray {
    sorted_keys: Vec<u64>,
    rowids: Vec<u32>,
    build_metrics: BaselineBuildMetrics,
    /// Device allocations backing the sorted keys and rowIDs.
    _keys_buffer: DeviceBuffer<u64>,
    _rows_buffer: DeviceBuffer<u32>,
}

impl SortedArray {
    /// Builds the sorted array over `keys` (rowID = position in the input).
    ///
    /// An empty key set builds an empty array whose lookups all miss. Key
    /// counts that exhaust the 32-bit rowID space (the [`MISS`] sentinel is
    /// reserved) would silently wrap the carried rowIDs and are rejected
    /// with [`IndexError::CapacityOverflow`] instead.
    pub fn build(device: &Device, keys: &[u64]) -> Result<Self, IndexError> {
        let start = std::time::Instant::now();
        if keys.len() as u64 >= MISS as u64 {
            return Err(IndexError::CapacityOverflow {
                backend: "SA".to_string().into(),
                keys: keys.len(),
                limit: MISS as u64 - 1,
            });
        }
        let rowids: Vec<u32> = (0..keys.len() as u32).collect();
        let (sorted_keys, rowids, sort_metrics) = radix_sort_pairs(device, keys, &rowids);

        let keys_buffer = device.upload(&sorted_keys);
        let rows_buffer = device.upload(&rowids);

        Ok(SortedArray {
            sorted_keys,
            rowids,
            build_metrics: BaselineBuildMetrics {
                host_build_time: start.elapsed(),
                simulated_time_s: sort_metrics.simulated_time_s,
                scratch_bytes: sort_metrics.scratch_bytes,
            },
            _keys_buffer: keys_buffer,
            _rows_buffer: rows_buffer,
        })
    }

    /// Index of the first element `>= key` (lower bound), counting the
    /// binary-search probes via `on_probe(position)`.
    fn lower_bound<F: FnMut(usize)>(&self, key: u64, mut on_probe: F) -> usize {
        let mut lo = 0usize;
        let mut hi = self.sorted_keys.len();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            on_probe(mid);
            if self.sorted_keys[mid] < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

impl GpuIndex for SortedArray {
    fn name(&self) -> &'static str {
        "SA"
    }

    fn key_count(&self) -> usize {
        self.sorted_keys.len()
    }

    fn memory_bytes(&self) -> u64 {
        (self.sorted_keys.len() * 8 + self.rowids.len() * 4) as u64
    }

    fn build_metrics(&self) -> BaselineBuildMetrics {
        self.build_metrics
    }

    fn supports_range(&self) -> bool {
        true
    }

    fn supports_duplicates(&self) -> bool {
        true
    }

    fn supports_64bit_keys(&self) -> bool {
        true
    }

    fn point_lookup_batch(
        &self,
        device: &Device,
        queries: &[u64],
        values: Option<&[u64]>,
    ) -> BaselineBatch {
        let working_set = self.memory_bytes() + values.map(|v| v.len() as u64 * 8).unwrap_or(0);
        run_lookup_kernel(
            device,
            queries.len(),
            working_set,
            |ctx, classifier, idx| {
                let key = queries[idx];
                ctx.add_instructions(8);
                let mut probes = 0u64;
                let start = self.lower_bound(key, |pos| {
                    probes += 1;
                    // Every probe is its own region: binary search has no
                    // spatial locality between successive probes.
                    classifier.access(ctx, (pos as u64) / 8, 8);
                });
                // Binary-search probes are serially dependent loads: each stalls
                // the warp on memory latency, which shows up as a high effective
                // instruction cost per probe on real hardware.
                ctx.add_instructions(probes * 24);

                let mut first_row = MISS;
                let mut hit_count = 0u32;
                let mut sum = 0u64;
                let mut pos = start;
                while pos < self.sorted_keys.len() && self.sorted_keys[pos] == key {
                    let row = self.rowids[pos];
                    classifier.access(ctx, (pos as u64) / 8 + 1, 12);
                    if first_row == MISS || row < first_row {
                        first_row = row;
                    }
                    hit_count += 1;
                    if let Some(values) = values {
                        fetch_value(ctx, classifier, values, row, &mut sum);
                    }
                    pos += 1;
                }
                if hit_count == 0 {
                    LookupResult::miss()
                } else {
                    LookupResult {
                        first_row,
                        hit_count,
                        value_sum: sum,
                    }
                }
            },
        )
    }

    fn range_lookup_batch(
        &self,
        device: &Device,
        ranges: &[(u64, u64)],
        values: Option<&[u64]>,
    ) -> Option<BaselineBatch> {
        let working_set = self.memory_bytes() + values.map(|v| v.len() as u64 * 8).unwrap_or(0);
        Some(run_lookup_kernel(
            device,
            ranges.len(),
            working_set,
            |ctx, classifier, idx| {
                let (lower, upper) = ranges[idx];
                if lower > upper {
                    return LookupResult::miss();
                }
                ctx.add_instructions(8);
                let mut probes = 0u64;
                let start = self.lower_bound(lower, |pos| {
                    probes += 1;
                    classifier.access(ctx, (pos as u64) / 8, 8);
                });
                // Binary-search probes are serially dependent loads: each stalls
                // the warp on memory latency, which shows up as a high effective
                // instruction cost per probe on real hardware.
                ctx.add_instructions(probes * 24);

                let mut first_row = MISS;
                let mut hit_count = 0u32;
                let mut sum = 0u64;
                let mut pos = start;
                while pos < self.sorted_keys.len() && self.sorted_keys[pos] <= upper {
                    let row = self.rowids[pos];
                    // Sideways scan is sequential: consecutive positions share
                    // cache lines.
                    classifier.access(ctx, (pos as u64) / 8 + 1, 12);
                    ctx.add_instructions(3);
                    if first_row == MISS || row < first_row {
                        first_row = row;
                    }
                    hit_count += 1;
                    if let Some(values) = values {
                        fetch_value(ctx, classifier, values, row, &mut sum);
                    }
                    pos += 1;
                }
                if hit_count == 0 {
                    LookupResult::miss()
                } else {
                    LookupResult {
                        first_row,
                        hit_count,
                        value_sum: sum,
                    }
                }
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shuffled_keys(n: u64) -> Vec<u64> {
        (0..n).map(|i| (i * 37 + 11) % n).collect()
    }

    #[test]
    fn build_sorts_and_preserves_rowids() {
        let device = Device::default_eval();
        let keys = shuffled_keys(1000);
        let sa = SortedArray::build(&device, &keys).unwrap();
        assert_eq!(sa.key_count(), 1000);
        assert_eq!(sa.name(), "SA");
        assert!(sa.sorted_keys.windows(2).all(|w| w[0] <= w[1]));
        assert!(
            sa.build_metrics().scratch_bytes > 0,
            "out-of-place sort needs scratch"
        );
    }

    #[test]
    fn point_lookups_hit_and_miss() {
        let device = Device::default_eval();
        let keys = shuffled_keys(773);
        let sa = SortedArray::build(&device, &keys).unwrap();
        let queries: Vec<u64> = (0..1000).collect();
        let batch = sa.point_lookup_batch(&device, &queries, None);
        for (q, r) in queries.iter().zip(&batch.results) {
            if *q < 773 {
                assert!(r.is_hit(), "key {q} must hit");
                assert_eq!(keys[r.first_row as usize], *q);
            } else {
                assert!(!r.is_hit(), "key {q} must miss");
            }
        }
    }

    #[test]
    fn duplicates_return_all_rows() {
        let device = Device::default_eval();
        let keys: Vec<u64> = (0..64u64).flat_map(|k| std::iter::repeat_n(k, 3)).collect();
        let values = vec![2u64; keys.len()];
        let sa = SortedArray::build(&device, &keys).unwrap();
        let batch = sa.point_lookup_batch(&device, &[5], Some(&values));
        assert_eq!(batch.results[0].hit_count, 3);
        assert_eq!(batch.results[0].value_sum, 6);
    }

    #[test]
    fn range_lookups_count_qualifying_keys() {
        let device = Device::default_eval();
        let keys = shuffled_keys(1024);
        let values = vec![1u64; 1024];
        let sa = SortedArray::build(&device, &keys).unwrap();
        let batch = sa
            .range_lookup_batch(
                &device,
                &[(10, 19), (1000, 1023), (5000, 6000), (3, 2)],
                Some(&values),
            )
            .expect("SA supports ranges");
        assert_eq!(batch.results[0].hit_count, 10);
        assert_eq!(batch.results[1].hit_count, 24);
        assert_eq!(batch.results[2].hit_count, 0);
        assert_eq!(batch.results[3].hit_count, 0, "inverted range is a miss");
        assert!(sa.supports_range());
    }

    #[test]
    fn zero_structural_overhead_after_build() {
        let device = Device::default_eval();
        let n = 4096u64;
        let sa = SortedArray::build(&device, &shuffled_keys(n)).unwrap();
        // Keys (8 B) + rowIDs (4 B) only.
        assert_eq!(sa.memory_bytes(), n * 12);
        assert!(sa.supports_duplicates());
        assert!(sa.supports_64bit_keys());
    }

    #[test]
    fn value_aggregation_matches_ground_truth() {
        let device = Device::default_eval();
        let keys = shuffled_keys(300);
        let values: Vec<u64> = (0..300u64).map(|i| i + 7).collect();
        let sa = SortedArray::build(&device, &keys).unwrap();
        let queries: Vec<u64> = (0..300).collect();
        let batch = sa.point_lookup_batch(&device, &queries, Some(&values));
        let expected: u64 = queries
            .iter()
            .map(|q| values[keys.iter().position(|k| k == q).unwrap()])
            .sum();
        assert_eq!(batch.total_value_sum(), expected);
    }
}
