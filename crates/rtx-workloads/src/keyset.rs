//! Key-set generators.
//!
//! The paper's default build set is a dense set of consecutive integers
//! starting at zero, shuffled arbitrarily (Section 3.1); variations introduce
//! stride (Figure 3b), sparsity/full 32-bit domains (Section 4), duplicates
//! (Figure 11) and sorted insert order (Figure 12).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A dense shuffled key set: the integers `0..n`, shuffled with `seed`.
pub fn dense_shuffled(n: usize, seed: u64) -> Vec<u64> {
    let mut keys: Vec<u64> = (0..n as u64).collect();
    keys.shuffle(&mut StdRng::seed_from_u64(seed));
    keys
}

/// A dense sorted key set: the integers `0..n` in ascending order.
pub fn dense_sorted(n: usize) -> Vec<u64> {
    (0..n as u64).collect()
}

/// A strided key set: the integers `0, s, 2s, …` (shuffled), used by the
/// Figure 3b experiment to grow the value range `q` without growing the key
/// count.
pub fn with_stride(n: usize, stride: u64, seed: u64) -> Vec<u64> {
    let mut keys: Vec<u64> = (0..n as u64).map(|i| i * stride).collect();
    keys.shuffle(&mut StdRng::seed_from_u64(seed));
    keys
}

/// `n` distinct keys drawn uniformly from `0..=max_key` (shuffled order).
///
/// Used for the Section 4 experiments that permit the full 32-bit (or
/// 64-bit) key domain instead of a dense prefix.
pub fn sparse_uniform(n: usize, max_key: u64, seed: u64) -> Vec<u64> {
    assert!(
        (n as u64) <= max_key.saturating_add(1),
        "cannot draw {n} distinct keys from a domain of {max_key}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::with_capacity(n * 2);
    let mut keys = Vec::with_capacity(n);
    while keys.len() < n {
        let candidate = rng.gen_range(0..=max_key);
        if seen.insert(candidate) {
            keys.push(candidate);
        }
    }
    keys
}

/// A key set with `distinct` distinct dense keys, each appearing
/// `multiplicity` times (shuffled), as in the Figure 11 experiment.
pub fn with_multiplicity(distinct: usize, multiplicity: usize, seed: u64) -> Vec<u64> {
    let mut keys: Vec<u64> = (0..distinct as u64)
        .flat_map(|k| std::iter::repeat_n(k, multiplicity))
        .collect();
    keys.shuffle(&mut StdRng::seed_from_u64(seed));
    keys
}

/// The projected value column of the paper's methodology: one value per
/// rowID. Values are small pseudo-random integers so that sums stay well
/// inside `u64`.
pub fn value_column(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FF_EE00_BEEF_1234);
    (0..n).map(|_| rng.gen_range(0..1_000_000u64)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn dense_shuffled_is_a_permutation() {
        let keys = dense_shuffled(1000, 42);
        assert_eq!(keys.len(), 1000);
        let set: HashSet<u64> = keys.iter().copied().collect();
        assert_eq!(set.len(), 1000);
        assert!(keys.iter().all(|&k| k < 1000));
        // Shuffled: the identity order is astronomically unlikely.
        assert_ne!(keys, dense_sorted(1000));
        // Deterministic.
        assert_eq!(keys, dense_shuffled(1000, 42));
        assert_ne!(keys, dense_shuffled(1000, 43));
    }

    #[test]
    fn stride_scales_the_value_range() {
        let keys = with_stride(100, 4, 7);
        assert_eq!(keys.len(), 100);
        assert!(keys.iter().all(|&k| k % 4 == 0));
        assert_eq!(*keys.iter().max().unwrap(), 99 * 4);
        assert_eq!(with_stride(100, 1, 7).iter().max(), Some(&99));
    }

    #[test]
    fn sparse_uniform_draws_distinct_keys() {
        let keys = sparse_uniform(500, u32::MAX as u64, 1);
        assert_eq!(keys.len(), 500);
        let set: HashSet<u64> = keys.iter().copied().collect();
        assert_eq!(set.len(), 500);
        assert!(keys.iter().all(|&k| k <= u32::MAX as u64));
    }

    #[test]
    #[should_panic(expected = "cannot draw")]
    fn sparse_uniform_rejects_impossible_requests() {
        let _ = sparse_uniform(100, 10, 1);
    }

    #[test]
    fn multiplicity_repeats_each_key() {
        let keys = with_multiplicity(64, 4, 3);
        assert_eq!(keys.len(), 256);
        for k in 0..64u64 {
            assert_eq!(keys.iter().filter(|&&x| x == k).count(), 4);
        }
    }

    #[test]
    fn value_column_is_deterministic_and_bounded() {
        let a = value_column(100, 9);
        let b = value_column(100, 9);
        assert_eq!(a, b);
        assert!(a.iter().all(|&v| v < 1_000_000));
        assert_ne!(a, value_column(100, 10));
    }
}
