//! Morton (Z-order) codes.
//!
//! GPU BVH builders (including the one behind `optixAccelBuild`) are widely
//! believed to be LBVH-style builders that sort primitives by the Morton code
//! of their centroid. The `rtx-bvh` crate offers such a builder, and this
//! module provides the 30-bit (10 bits per axis) and 63-bit (21 bits per
//! axis) Morton encodings it needs.

use crate::aabb::Aabb;
use crate::vec3::Vec3f;

/// Expands a 10-bit integer so that its bits occupy every third position of a
/// 30-bit result.
#[inline]
fn expand_bits_10(v: u32) -> u32 {
    let mut v = v & 0x3ff;
    v = (v | (v << 16)) & 0x030000FF;
    v = (v | (v << 8)) & 0x0300F00F;
    v = (v | (v << 4)) & 0x030C30C3;
    v = (v | (v << 2)) & 0x09249249;
    v
}

/// Expands a 21-bit integer so that its bits occupy every third position of a
/// 63-bit result.
#[inline]
fn expand_bits_21(v: u64) -> u64 {
    let mut v = v & 0x1f_ffff;
    v = (v | (v << 32)) & 0x1f00000000ffff;
    v = (v | (v << 16)) & 0x1f0000ff0000ff;
    v = (v | (v << 8)) & 0x100f00f00f00f00f;
    v = (v | (v << 4)) & 0x10c30c30c30c30c3;
    v = (v | (v << 2)) & 0x1249249249249249;
    v
}

/// 30-bit Morton code for a point whose coordinates lie in `[0, 1)`.
/// Coordinates outside the range are clamped.
#[inline]
pub fn morton30(p: Vec3f) -> u32 {
    let scale = 1024.0f32;
    let x = (p.x * scale).clamp(0.0, 1023.0) as u32;
    let y = (p.y * scale).clamp(0.0, 1023.0) as u32;
    let z = (p.z * scale).clamp(0.0, 1023.0) as u32;
    (expand_bits_10(x) << 2) | (expand_bits_10(y) << 1) | expand_bits_10(z)
}

/// 63-bit Morton code for a point whose coordinates lie in `[0, 1)`.
/// Coordinates outside the range are clamped.
#[inline]
pub fn morton63(p: Vec3f) -> u64 {
    let scale = (1u64 << 21) as f32;
    let x = (p.x * scale).clamp(0.0, (1 << 21) as f32 - 1.0) as u64;
    let y = (p.y * scale).clamp(0.0, (1 << 21) as f32 - 1.0) as u64;
    let z = (p.z * scale).clamp(0.0, (1 << 21) as f32 - 1.0) as u64;
    (expand_bits_21(x) << 2) | (expand_bits_21(y) << 1) | expand_bits_21(z)
}

/// Normalises a point into the unit cube spanned by `bounds` and returns its
/// 63-bit Morton code. Degenerate axes (zero extent) map to 0.
#[inline]
pub fn morton_in_bounds(p: Vec3f, bounds: &Aabb) -> u64 {
    let extent = bounds.extent();
    let safe = |num: f32, den: f32| {
        if den > 0.0 {
            (num / den).clamp(0.0, 1.0)
        } else {
            0.0
        }
    };
    let normalised = Vec3f::new(
        safe(p.x - bounds.min.x, extent.x),
        safe(p.y - bounds.min.y, extent.y),
        safe(p.z - bounds.min.z, extent.z),
    );
    morton63(normalised)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn expand_bits_small_values() {
        assert_eq!(expand_bits_10(0), 0);
        assert_eq!(expand_bits_10(1), 1);
        assert_eq!(expand_bits_10(0b11), 0b1001);
        assert_eq!(expand_bits_21(0b11), 0b1001);
    }

    #[test]
    fn morton_orders_along_single_axis() {
        // Points increasing along x only must have increasing codes.
        let codes: Vec<u32> = (0..10)
            .map(|i| morton30(Vec3f::new(i as f32 / 10.0, 0.0, 0.0)))
            .collect();
        for w in codes.windows(2) {
            assert!(w[0] < w[1], "{} !< {}", w[0], w[1]);
        }
    }

    #[test]
    fn morton_origin_is_zero() {
        assert_eq!(morton30(Vec3f::ZERO), 0);
        assert_eq!(morton63(Vec3f::ZERO), 0);
    }

    #[test]
    fn morton_clamps_out_of_range() {
        let inside = morton30(Vec3f::new(0.9999, 0.9999, 0.9999));
        let outside = morton30(Vec3f::new(2.0, 2.0, 2.0));
        assert_eq!(inside, outside);
        let negative = morton30(Vec3f::new(-1.0, -1.0, -1.0));
        assert_eq!(negative, 0);
    }

    #[test]
    fn morton_in_bounds_handles_degenerate_axes() {
        // All keys lie on the x axis (y = z = 0), a common case for RTIndeX
        // scenes in Naive/Extended mode.
        let bounds = Aabb::new(Vec3f::new(0.0, 0.0, 0.0), Vec3f::new(100.0, 0.0, 0.0));
        let a = morton_in_bounds(Vec3f::new(10.0, 0.0, 0.0), &bounds);
        let b = morton_in_bounds(Vec3f::new(90.0, 0.0, 0.0), &bounds);
        assert!(a < b);
    }

    #[test]
    fn locality_neighbouring_points_share_prefix() {
        let a = morton63(Vec3f::new(0.500, 0.500, 0.500));
        let b = morton63(Vec3f::new(0.501, 0.500, 0.500));
        let c = morton63(Vec3f::new(0.999, 0.001, 0.3));
        // Close points differ in fewer leading bits than far points.
        let diff_ab = (a ^ b).leading_zeros();
        let diff_ac = (a ^ c).leading_zeros();
        assert!(diff_ab > diff_ac);
    }

    proptest! {
        #[test]
        fn prop_morton30_axis_monotone(a in 0.0f32..1.0, b in 0.0f32..1.0) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let ca = morton30(Vec3f::new(lo, 0.0, 0.0));
            let cb = morton30(Vec3f::new(hi, 0.0, 0.0));
            prop_assert!(ca <= cb);
        }

        #[test]
        fn prop_morton63_fits_in_63_bits(x in 0.0f32..1.0, y in 0.0f32..1.0, z in 0.0f32..1.0) {
            let c = morton63(Vec3f::new(x, y, z));
            prop_assert!(c < (1u64 << 63));
        }
    }
}
