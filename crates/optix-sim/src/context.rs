//! The device context: entry point of the simulated OptiX API.

use gpu_device::{Device, DeviceSpec};

use crate::accel::{AccelBuildOptions, GeometryAccel};
use crate::build_input::BuildInput;

/// Simulated `OptixDeviceContext`: owns the device the acceleration
/// structures and pipelines run on.
#[derive(Debug, Clone)]
pub struct DeviceContext {
    device: Device,
}

impl DeviceContext {
    /// Creates a context for the given device spec.
    pub fn new(spec: DeviceSpec) -> Self {
        DeviceContext {
            device: Device::new(spec),
        }
    }

    /// Creates a context for the paper's primary evaluation GPU (RTX 4090).
    pub fn default_eval() -> Self {
        DeviceContext {
            device: Device::default_eval(),
        }
    }

    /// Creates a context wrapping an existing device.
    pub fn from_device(device: Device) -> Self {
        DeviceContext { device }
    }

    /// The underlying simulated device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Builds an acceleration structure over `input` (our
    /// `optixAccelBuild`).
    pub fn accel_build(&self, input: BuildInput, options: &AccelBuildOptions) -> GeometryAccel {
        GeometryAccel::build(&self.device, input, options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_input::BuildInput;
    use rtx_math::Vec3f;

    #[test]
    fn context_builds_accel_structures() {
        let ctx = DeviceContext::default_eval();
        let centers: Vec<Vec3f> = (0..10).map(|i| Vec3f::new(i as f32, 0.0, 0.0)).collect();
        let gas = ctx.accel_build(
            BuildInput::triangles_from_centers(&centers, 0.4),
            &AccelBuildOptions::default(),
        );
        assert_eq!(gas.primitive_count(), 10);
        assert!(ctx.device().memory().current_bytes() > 0);
    }

    #[test]
    fn context_exposes_spec() {
        let ctx = DeviceContext::new(DeviceSpec::rtx_3090());
        assert_eq!(ctx.device().spec().name, "RTX 3090");
        let dev = gpu_device::Device::new(DeviceSpec::rtx_2080ti());
        let ctx2 = DeviceContext::from_device(dev);
        assert_eq!(ctx2.device().spec().name, "RTX 2080 Ti");
    }
}
