//! B+: a GPU-style bulk-loaded B+-tree.
//!
//! Modelled after the B+-tree of Awad et al. that the paper uses: nodes hold
//! [`NODE_FANOUT`] entries so that a warp-sized group can search a node
//! cooperatively, the tree is bulk-loaded from radix-sorted input, leaves are
//! linked for sideways range scans, and — like the original — it only
//! supports 32-bit keys and unique keys.

use gpu_device::{Device, DeviceBuffer};

use crate::common::{BaselineBatch, BaselineBuildMetrics, GpuIndex};
use crate::kernel::{fetch_value, run_lookup_kernel};
use crate::radix_sort::radix_sort_pairs;
use rtx_query::{LookupResult, MISS};

/// Entries per node (the paper's baseline traverses in groups of 16 threads).
pub const NODE_FANOUT: usize = 16;

/// Bytes per node entry: 4-byte key + 4-byte payload (child index or rowID).
const ENTRY_BYTES: u64 = 8;

/// One B+-tree node: parallel arrays of keys and payloads.
#[derive(Debug, Clone, Default)]
struct Node {
    /// Separator keys (leaves: the stored keys).
    keys: Vec<u32>,
    /// Child node indices (interior) or rowIDs (leaves).
    payloads: Vec<u32>,
    /// Index of the next leaf (leaves only, `u32::MAX` when last).
    next_leaf: u32,
    /// Whether this node is a leaf.
    is_leaf: bool,
}

/// Errors reported by [`BPlusTree::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BPlusTreeError {
    /// A key does not fit into 32 bits.
    KeyTooLarge {
        /// The offending key.
        key: u64,
    },
    /// The key set contains duplicates, which the baseline does not support.
    DuplicateKey {
        /// The duplicated key.
        key: u64,
    },
}

impl std::fmt::Display for BPlusTreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BPlusTreeError::KeyTooLarge { key } => {
                write!(f, "the B+ baseline only supports 32-bit keys, got {key}")
            }
            BPlusTreeError::DuplicateKey { key } => {
                write!(
                    f,
                    "the B+ baseline does not support duplicate keys, got {key} twice"
                )
            }
        }
    }
}

impl std::error::Error for BPlusTreeError {}

/// Both build failures mean "this key set violates the B+-tree's
/// restrictions", which the unified API models as an unsupported key set —
/// the registry's `build_supported` then skips the backend, exactly as the
/// paper omits B+ from duplicate-key and 64-bit experiments.
impl From<BPlusTreeError> for rtx_query::IndexError {
    fn from(err: BPlusTreeError) -> Self {
        rtx_query::IndexError::UnsupportedKeySet {
            backend: "B+".to_string().into(),
            reason: err.to_string(),
        }
    }
}

/// The GPU B+-tree baseline.
#[derive(Debug)]
pub struct BPlusTree {
    nodes: Vec<Node>,
    root: u32,
    key_count: usize,
    build_metrics: BaselineBuildMetrics,
    _nodes_buffer: DeviceBuffer<u8>,
}

impl BPlusTree {
    /// Bulk-loads the tree from `keys` (rowID = position in the slice).
    pub fn build(device: &Device, keys: &[u64]) -> Result<Self, BPlusTreeError> {
        let start = std::time::Instant::now();
        if let Some(&bad) = keys.iter().find(|&&k| k > u32::MAX as u64) {
            return Err(BPlusTreeError::KeyTooLarge { key: bad });
        }

        // Sort phase (CUB radix sort in the original).
        let rowids: Vec<u32> = (0..keys.len() as u32).collect();
        let (sorted_keys, sorted_rows, sort_metrics) = radix_sort_pairs(device, keys, &rowids);
        if let Some(w) = sorted_keys.windows(2).find(|w| w[0] == w[1]) {
            return Err(BPlusTreeError::DuplicateKey { key: w[0] });
        }

        // Bulk load: leaves first, then interior levels bottom-up.
        let mut nodes: Vec<Node> = Vec::new();
        let mut current_level: Vec<(u32, u32)> = Vec::new(); // (first key, node index)

        for chunk_start in (0..sorted_keys.len()).step_by(NODE_FANOUT) {
            let chunk_end = (chunk_start + NODE_FANOUT).min(sorted_keys.len());
            let node_index = nodes.len() as u32;
            nodes.push(Node {
                keys: sorted_keys[chunk_start..chunk_end]
                    .iter()
                    .map(|&k| k as u32)
                    .collect(),
                payloads: sorted_rows[chunk_start..chunk_end].to_vec(),
                next_leaf: u32::MAX,
                is_leaf: true,
            });
            current_level.push((sorted_keys[chunk_start] as u32, node_index));
        }
        // Link the leaves.
        for i in 0..current_level.len().saturating_sub(1) {
            let this = current_level[i].1 as usize;
            nodes[this].next_leaf = current_level[i + 1].1;
        }
        if current_level.is_empty() {
            // Empty tree: a single empty leaf keeps lookups trivial.
            nodes.push(Node {
                is_leaf: true,
                next_leaf: u32::MAX,
                ..Node::default()
            });
            current_level.push((0, 0));
        }

        while current_level.len() > 1 {
            let mut next_level = Vec::new();
            for chunk in current_level.chunks(NODE_FANOUT) {
                let node_index = nodes.len() as u32;
                nodes.push(Node {
                    keys: chunk.iter().map(|(k, _)| *k).collect(),
                    payloads: chunk.iter().map(|(_, idx)| *idx).collect(),
                    next_leaf: u32::MAX,
                    is_leaf: false,
                });
                next_level.push((chunk[0].0, node_index));
            }
            current_level = next_level;
        }
        let root = current_level[0].1;

        let node_bytes: u64 = nodes.len() as u64 * NODE_FANOUT as u64 * ENTRY_BYTES;
        let nodes_buffer = device.alloc::<u8>(node_bytes as usize);

        // Charge the bulk-load kernel (the sort already charged itself).
        let n = keys.len() as u64;
        let stats = gpu_device::KernelStats {
            threads_launched: n.max(1),
            kernel_launches: 1,
            instructions: n * 6,
            dram_bytes_read: n * 12,
            dram_bytes_written: node_bytes,
            ..gpu_device::KernelStats::new()
        };
        let simulated = device.cost_model().simulated_time(&stats);
        device.profiler().record_kernel(stats);

        Ok(BPlusTree {
            nodes,
            root,
            key_count: keys.len(),
            build_metrics: BaselineBuildMetrics {
                host_build_time: start.elapsed(),
                simulated_time_s: sort_metrics.simulated_time_s + simulated.as_seconds(),
                scratch_bytes: sort_metrics.scratch_bytes,
            },
            _nodes_buffer: nodes_buffer,
        })
    }

    /// Height of the tree (1 for a single leaf).
    pub fn height(&self) -> usize {
        let mut height = 1;
        let mut node = &self.nodes[self.root as usize];
        while !node.is_leaf {
            height += 1;
            node = &self.nodes[node.payloads[0] as usize];
        }
        height
    }

    /// Descends to the leaf that may contain `key`, reporting every visited
    /// node via `on_node(node_index)`. Returns the leaf index.
    fn descend<F: FnMut(u32)>(&self, key: u32, mut on_node: F) -> u32 {
        let mut index = self.root;
        loop {
            on_node(index);
            let node = &self.nodes[index as usize];
            if node.is_leaf {
                return index;
            }
            // Cooperative search: the last separator <= key selects the
            // child; key below the first separator goes to the first child.
            let mut child = node.payloads[0];
            for (i, &sep) in node.keys.iter().enumerate() {
                if sep <= key {
                    child = node.payloads[i];
                } else {
                    break;
                }
            }
            index = child;
        }
    }
}

impl GpuIndex for BPlusTree {
    fn name(&self) -> &'static str {
        "B+"
    }

    fn key_count(&self) -> usize {
        self.key_count
    }

    fn memory_bytes(&self) -> u64 {
        self.nodes.len() as u64 * NODE_FANOUT as u64 * ENTRY_BYTES
    }

    fn build_metrics(&self) -> BaselineBuildMetrics {
        self.build_metrics
    }

    fn supports_range(&self) -> bool {
        true
    }

    fn supports_duplicates(&self) -> bool {
        false
    }

    fn supports_64bit_keys(&self) -> bool {
        false
    }

    fn point_lookup_batch(
        &self,
        device: &Device,
        queries: &[u64],
        values: Option<&[u64]>,
    ) -> BaselineBatch {
        let working_set = self.memory_bytes() + values.map(|v| v.len() as u64 * 8).unwrap_or(0);
        run_lookup_kernel(
            device,
            queries.len(),
            working_set,
            |ctx, classifier, idx| {
                let query = queries[idx];
                if query > u32::MAX as u64 {
                    return LookupResult::miss();
                }
                let key = query as u32;
                ctx.add_instructions(6);
                let leaf = self.descend(key, |node_index| {
                    // Every visited node is scanned by the cooperative group:
                    // 16 entries of 8 bytes.
                    classifier.access(ctx, node_index as u64, NODE_FANOUT as u64 * ENTRY_BYTES);
                    // Cooperative node search: ballots, address arithmetic and
                    // predicate evaluation for every entry of the node.
                    ctx.add_instructions(NODE_FANOUT as u64 * 6);
                });
                let node = &self.nodes[leaf as usize];
                let mut result = LookupResult::miss();
                if let Some(pos) = node.keys.iter().position(|&k| k == key) {
                    let row = node.payloads[pos];
                    let mut sum = 0u64;
                    if let Some(values) = values {
                        fetch_value(ctx, classifier, values, row, &mut sum);
                    }
                    result = LookupResult {
                        first_row: row,
                        hit_count: 1,
                        value_sum: sum,
                    };
                }
                result
            },
        )
    }

    fn range_lookup_batch(
        &self,
        device: &Device,
        ranges: &[(u64, u64)],
        values: Option<&[u64]>,
    ) -> Option<BaselineBatch> {
        let working_set = self.memory_bytes() + values.map(|v| v.len() as u64 * 8).unwrap_or(0);
        Some(run_lookup_kernel(
            device,
            ranges.len(),
            working_set,
            |ctx, classifier, idx| {
                let (lower, upper) = ranges[idx];
                if lower > upper || lower > u32::MAX as u64 {
                    return LookupResult::miss();
                }
                let lower = lower as u32;
                let upper = upper.min(u32::MAX as u64) as u32;
                ctx.add_instructions(6);
                let mut leaf = self.descend(lower, |node_index| {
                    classifier.access(ctx, node_index as u64, NODE_FANOUT as u64 * ENTRY_BYTES);
                    // Cooperative node search: ballots, address arithmetic and
                    // predicate evaluation for every entry of the node.
                    ctx.add_instructions(NODE_FANOUT as u64 * 6);
                });

                let mut first_row = MISS;
                let mut hit_count = 0u32;
                let mut sum = 0u64;
                // Sideways scan through the linked leaves (with warp-level
                // aggregation in the original, modelled as cheap per-entry work).
                'scan: loop {
                    let node = &self.nodes[leaf as usize];
                    classifier.access(ctx, leaf as u64, NODE_FANOUT as u64 * ENTRY_BYTES);
                    for (i, &k) in node.keys.iter().enumerate() {
                        ctx.add_instructions(1);
                        if k < lower {
                            continue;
                        }
                        if k > upper {
                            break 'scan;
                        }
                        let row = node.payloads[i];
                        if first_row == MISS || row < first_row {
                            first_row = row;
                        }
                        hit_count += 1;
                        if let Some(values) = values {
                            fetch_value(ctx, classifier, values, row, &mut sum);
                        }
                    }
                    if node.next_leaf == u32::MAX {
                        break;
                    }
                    leaf = node.next_leaf;
                }
                if hit_count == 0 {
                    LookupResult::miss()
                } else {
                    LookupResult {
                        first_row,
                        hit_count,
                        value_sum: sum,
                    }
                }
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shuffled_keys(n: u64) -> Vec<u64> {
        (0..n).map(|i| (i * 37 + 11) % n).collect()
    }

    #[test]
    fn build_rejects_64bit_keys_and_duplicates() {
        let device = Device::default_eval();
        assert_eq!(
            BPlusTree::build(&device, &[1, 1 << 40]).unwrap_err(),
            BPlusTreeError::KeyTooLarge { key: 1 << 40 }
        );
        assert_eq!(
            BPlusTree::build(&device, &[5, 2, 5]).unwrap_err(),
            BPlusTreeError::DuplicateKey { key: 5 }
        );
        assert!(BPlusTreeError::KeyTooLarge { key: 0 }
            .to_string()
            .contains("32-bit"));
    }

    #[test]
    fn build_and_point_lookup_round_trip() {
        let device = Device::default_eval();
        let keys = shuffled_keys(4096);
        let tree = BPlusTree::build(&device, &keys).expect("build");
        assert_eq!(tree.key_count(), 4096);
        assert_eq!(tree.name(), "B+");
        assert!(
            tree.height() >= 3,
            "4096 keys / 16 per leaf needs at least 3 levels"
        );
        let queries: Vec<u64> = (0..4096).collect();
        let batch = tree.point_lookup_batch(&device, &queries, None);
        assert_eq!(batch.hit_count(), 4096);
        for (q, r) in queries.iter().zip(&batch.results) {
            assert_eq!(keys[r.first_row as usize], *q);
        }
    }

    #[test]
    fn misses_and_out_of_range_queries() {
        let device = Device::default_eval();
        let keys: Vec<u64> = (0..100).map(|i| i * 2).collect();
        let tree = BPlusTree::build(&device, &keys).expect("build");
        let batch = tree.point_lookup_batch(&device, &[1, 3, 201, 1 << 40], None);
        assert_eq!(batch.hit_count(), 0);
    }

    #[test]
    fn range_lookups_scan_sideways() {
        let device = Device::default_eval();
        let keys = shuffled_keys(1024);
        let values = vec![1u64; 1024];
        let tree = BPlusTree::build(&device, &keys).expect("build");
        let batch = tree
            .range_lookup_batch(
                &device,
                &[(0, 0), (10, 19), (100, 355), (5000, 6000)],
                Some(&values),
            )
            .expect("B+ supports ranges");
        assert_eq!(batch.results[0].hit_count, 1);
        assert_eq!(batch.results[1].hit_count, 10);
        assert_eq!(batch.results[2].hit_count, 256);
        assert_eq!(batch.results[2].value_sum, 256);
        assert_eq!(batch.results[3].hit_count, 0);
    }

    #[test]
    fn value_aggregation_matches_ground_truth() {
        let device = Device::default_eval();
        let keys = shuffled_keys(500);
        let values: Vec<u64> = (0..500u64).map(|i| i * 5 + 1).collect();
        let tree = BPlusTree::build(&device, &keys).expect("build");
        let queries: Vec<u64> = (0..500).collect();
        let batch = tree.point_lookup_batch(&device, &queries, Some(&values));
        let expected: u64 = queries
            .iter()
            .map(|q| values[keys.iter().position(|k| k == q).unwrap()])
            .sum();
        assert_eq!(batch.total_value_sum(), expected);
    }

    #[test]
    fn capability_flags_match_paper() {
        let device = Device::default_eval();
        let tree = BPlusTree::build(&device, &[1, 2, 3]).expect("build");
        assert!(tree.supports_range());
        assert!(!tree.supports_duplicates());
        assert!(!tree.supports_64bit_keys());
        assert!(tree.memory_bytes() > 0);
        assert!(tree.build_metrics().simulated_time_s > 0.0);
    }

    #[test]
    fn empty_tree_answers_misses() {
        let device = Device::default_eval();
        let tree = BPlusTree::build(&device, &[]).expect("build");
        assert_eq!(tree.key_count(), 0);
        let batch = tree.point_lookup_batch(&device, &[1, 2], None);
        assert_eq!(batch.hit_count(), 0);
        let ranges = tree.range_lookup_batch(&device, &[(0, 10)], None).unwrap();
        assert_eq!(ranges.results[0].hit_count, 0);
    }

    #[test]
    fn single_leaf_tree_works() {
        let device = Device::default_eval();
        let tree = BPlusTree::build(&device, &[5, 1, 9]).expect("build");
        assert_eq!(tree.height(), 1);
        let batch = tree.point_lookup_batch(&device, &[1, 5, 9, 2], None);
        assert_eq!(batch.hit_count(), 3);
    }
}
