//! [`SecondaryIndex`] + [`UpdatableIndex`] adapter for the dynamic index.
//!
//! Unlike the static backends, [`DynamicRtIndex`] *owns* its value column
//! (rows migrate between delta and base during compaction, so only the
//! index knows where a row's value lives). The adapter therefore builds the
//! index over the spec's `(keys, values)` pair — an absent value column
//! indexes zero values and disables value-fetching batches — and zeroes the
//! reported sums when a batch did not request a fetch, so all five backends
//! answer the same batch identically.

use rtx_query::{
    BatchOutcome, Capabilities, IndexBuildMetrics, IndexError, IndexSpec, MemoryUsage, Registry,
    SecondaryIndex, UpdatableIndex, UpdateReport,
};

use crate::config::DynamicRtConfig;
use crate::dynamic::{DynamicRtIndex, UpdateOutcome};

/// The dynamic delta-buffered RX backend behind the unified query API.
#[derive(Debug)]
pub struct DynamicAdapter {
    index: DynamicRtIndex,
    has_values: bool,
}

impl DynamicAdapter {
    /// Builds the dynamic index over the spec's columns with `config`. A
    /// builder selection in the spec (the `"RXD:sah"` / `"RXD:lbvh"`
    /// registry grammar) overrides the base index's BVH builder — for the
    /// initial build and every compaction rebuild.
    pub fn build(spec: &IndexSpec<'_>, mut config: DynamicRtConfig) -> Result<Self, IndexError> {
        if let Some(builder) = spec.builder {
            config.rx.builder = builder;
        }
        // Under a durability wrapper the swap point of a background
        // compaction must be an explicit, logged decision — the wrapper
        // polls and records it; the index must not land swaps on its own.
        if spec.durability.is_some() {
            config.auto_swap = false;
        }
        let zeros;
        let values = match spec.values() {
            Some(v) => v,
            None => {
                zeros = vec![0u64; spec.keys.len()];
                &zeros
            }
        };
        let index = DynamicRtIndex::build(spec.device, spec.keys, values, config)?;
        Ok(DynamicAdapter {
            index,
            has_values: spec.values.is_some(),
        })
    }

    /// The wrapped dynamic index.
    pub fn inner(&self) -> &DynamicRtIndex {
        &self.index
    }

    /// The wrapped dynamic index, mutably — e.g. to
    /// [`poll_compaction`](DynamicRtIndex::poll_compaction) /
    /// [`wait_for_compaction`](DynamicRtIndex::wait_for_compaction) on a
    /// background-compacting index.
    pub fn inner_mut(&mut self) -> &mut DynamicRtIndex {
        &mut self.index
    }

    /// The dynamic index always aggregates its owned values; strip the sums
    /// when the batch did not ask for them so the answer matches the static
    /// backends queried without a fetch.
    fn strip_sums(mut outcome: BatchOutcome, fetch: bool) -> BatchOutcome {
        if !fetch {
            for r in &mut outcome.results {
                r.value_sum = 0;
            }
        }
        outcome
    }
}

impl SecondaryIndex for DynamicAdapter {
    fn name(&self) -> &str {
        "RXD"
    }

    fn key_count(&self) -> usize {
        self.index.len()
    }

    fn memory_bytes(&self) -> u64 {
        self.index.memory_bytes()
    }

    fn build_metrics(&self) -> IndexBuildMetrics {
        let m = self.index.base_build_metrics();
        IndexBuildMetrics {
            simulated_time_s: m.simulated_time_s,
            host_time: m.host_build_time,
            scratch_bytes: m.scratch_bytes,
        }
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            updates: true,
            ..Capabilities::read_only()
        }
    }

    fn has_value_column(&self) -> bool {
        self.has_values
    }

    fn memory_usage(&self) -> MemoryUsage {
        let (base_bytes, delta_bytes, tombstone_bytes) = self.index.memory_breakdown();
        MemoryUsage {
            base_bytes,
            delta_bytes,
            tombstone_bytes,
            wal_buffer_bytes: 0,
        }
    }

    fn point_chunk(&self, queries: &[u64], fetch: bool) -> Result<BatchOutcome, IndexError> {
        let outcome = self.index.point_lookup_batch(queries)?;
        Ok(Self::strip_sums(outcome, fetch))
    }

    fn range_chunk(&self, ranges: &[(u64, u64)], fetch: bool) -> Result<BatchOutcome, IndexError> {
        let outcome = self.index.range_lookup_batch(ranges)?;
        Ok(Self::strip_sums(outcome, fetch))
    }
}

fn report(outcome: UpdateOutcome) -> UpdateReport {
    UpdateReport {
        inserted_rows: outcome.inserted_rows,
        deleted_rows: outcome.deleted_rows,
        simulated_time_s: outcome.simulated_time_s,
        reorganisations: outcome.compaction.is_some() as u64,
    }
}

impl UpdatableIndex for DynamicAdapter {
    fn insert(&mut self, keys: &[u64], values: &[u64]) -> Result<UpdateReport, IndexError> {
        // RowID-space exhaustion is checked by the index itself
        // (`RtIndexError::RowIdSpaceExhausted`) and converts to
        // `IndexError::CapacityOverflow`.
        Ok(report(self.index.insert_batch(keys, values)?))
    }

    fn delete(&mut self, keys: &[u64]) -> Result<UpdateReport, IndexError> {
        Ok(report(self.index.delete_batch(keys)?))
    }

    fn upsert(&mut self, keys: &[u64], values: &[u64]) -> Result<UpdateReport, IndexError> {
        Ok(report(self.index.upsert_batch(keys, values)?))
    }

    fn poll_reorganisation(&mut self) -> Result<u64, IndexError> {
        Ok(self.index.poll_compaction().is_some() as u64)
    }

    fn await_reorganisation(&mut self) -> Result<u64, IndexError> {
        Ok(self.index.wait_for_compaction().is_some() as u64)
    }

    fn reorganisation_in_flight(&self) -> bool {
        self.index.compaction_in_flight()
    }

    fn compact(&mut self) -> Result<UpdateReport, IndexError> {
        let event = self.index.compact_now();
        Ok(UpdateReport {
            inserted_rows: 0,
            deleted_rows: 0,
            simulated_time_s: event.simulated_build_s,
            reorganisations: 1,
        })
    }

    fn checkpoint_rows(&self) -> Option<Vec<(u64, u64)>> {
        let ix = &self.index;
        // The snapshot contract: a fresh build over exactly these columns
        // reproduces the index. That holds only right after a compaction —
        // no delta, no frozen generation, no tombstones, and a row
        // allocator dense over the live rows.
        let clean = ix.delta_len() == 0
            && ix.frozen_delta_len() == 0
            && !ix.compaction_in_flight()
            && ix.dead_base_rows() == 0
            && ix.allocated_rows() as usize == ix.len();
        if !clean {
            return None;
        }
        Some(
            ix.live_entries()
                .into_iter()
                .map(|(_, key, value)| (key, value))
                .collect(),
        )
    }
}

/// Registers the dynamic backend (name `"RXD"`) with the given
/// configuration, as both an updatable and a read-only backend.
pub fn register_dynamic(registry: &mut Registry, config: DynamicRtConfig) {
    registry.register_updatable("RXD", move |spec: &IndexSpec<'_>| {
        DynamicAdapter::build(spec, config).map(|ix| Box::new(ix) as Box<dyn UpdatableIndex>)
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_device::Device;
    use rtx_query::QueryBatch;

    fn registry() -> Registry {
        let mut registry = Registry::new();
        register_dynamic(&mut registry, DynamicRtConfig::default());
        registry
    }

    #[test]
    fn registry_builds_rxd_as_updatable_and_read_only() {
        let device = Device::default_eval();
        let registry = registry();
        assert_eq!(registry.backends(), vec!["RXD"]);
        assert_eq!(registry.updatable_backends(), vec!["RXD"]);

        let keys = vec![10u64, 20, 30];
        let values = vec![1u64, 2, 3];
        let spec = IndexSpec::with_values(&device, &keys, &values);

        let ro = registry.build("RXD", &spec).unwrap();
        assert_eq!(ro.name(), "RXD");
        assert!(ro.capabilities().updates);
        let out = ro
            .execute(&QueryBatch::new().point(20).range(10, 30).fetch_values(true))
            .unwrap();
        assert_eq!(out.results[0].value_sum, 2);
        assert_eq!(out.results[1].hit_count, 3);

        let mut rw = registry.build_updatable("RXD", &spec).unwrap();
        let rep = rw.insert(&[40], &[4]).unwrap();
        assert_eq!(rep.inserted_rows, 1);
        let rep = rw.delete(&[10]).unwrap();
        assert_eq!(rep.deleted_rows, 1);
        let rep = rw.upsert(&[20], &[22]).unwrap();
        assert_eq!((rep.inserted_rows, rep.deleted_rows), (1, 1));
        let out = rw
            .execute(&QueryBatch::of_points(&[10, 20, 40]).fetch_values(true))
            .unwrap();
        assert!(!out.results[0].is_hit(), "deleted key misses");
        assert_eq!(out.results[1].value_sum, 22, "upsert replaced the value");
        assert_eq!(out.results[2].value_sum, 4, "insert visible");
        assert_eq!(rw.key_count(), 3);
    }

    #[test]
    fn fetchless_batches_report_zero_sums_like_static_backends() {
        let device = Device::default_eval();
        let registry = registry();
        let keys = vec![1u64, 2];
        let values = vec![5u64, 6];
        let ix = registry
            .build("RXD", &IndexSpec::with_values(&device, &keys, &values))
            .unwrap();
        let out = ix.execute(&QueryBatch::of_points(&keys)).unwrap();
        assert_eq!(out.hit_count(), 2);
        assert_eq!(out.total_value_sum(), 0);
    }

    #[test]
    fn value_less_spec_disables_fetching() {
        let device = Device::default_eval();
        let registry = registry();
        let ix = registry
            .build("RXD", &IndexSpec::keys_only(&device, &[7]))
            .unwrap();
        assert!(!ix.has_value_column());
        let err = ix
            .execute(&QueryBatch::new().point(7).fetch_values(true))
            .unwrap_err();
        assert!(matches!(err, IndexError::NoValueColumn { .. }));
    }
}
