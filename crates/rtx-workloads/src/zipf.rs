//! Zipf-distributed sampling for skewed lookup workloads (Figure 16).
//!
//! The sampler draws ranks `0..n` with probability proportional to
//! `1 / (rank + 1)^theta`. `theta = 0` degenerates to the uniform
//! distribution, `theta = 2` is the highest skew the paper evaluates.
//! Sampling uses an exact precomputed CDF with binary search, which is
//! plenty fast at the scales of the reproduction and keeps the distribution
//! exact.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A Zipf sampler over the ranks `0..n`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
    rng: StdRng,
}

impl ZipfSampler {
    /// Creates a sampler over `n` ranks with skew `theta`, seeded
    /// deterministically.
    ///
    /// # Panics
    /// Panics when `n == 0` or `theta < 0`.
    pub fn new(n: usize, theta: f64, seed: u64) -> Self {
        assert!(n > 0, "Zipf sampler needs at least one rank");
        assert!(theta >= 0.0, "Zipf coefficient must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for rank in 0..n {
            acc += 1.0 / ((rank + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        ZipfSampler {
            cdf,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the sampler has exactly one rank (degenerate).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one rank.
    pub fn sample(&mut self) -> usize {
        let u: f64 = self.rng.gen_range(0.0..1.0);
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(idx) => idx,
            Err(idx) => idx.min(self.cdf.len() - 1),
        }
    }

    /// Draws `count` ranks.
    pub fn sample_many(&mut self, count: usize) -> Vec<usize> {
        (0..count).map(|_| self.sample()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_when_theta_zero() {
        let mut sampler = ZipfSampler::new(100, 0.0, 1);
        assert_eq!(sampler.len(), 100);
        let samples = sampler.sample_many(100_000);
        let first_decile = samples.iter().filter(|&&r| r < 10).count() as f64 / 100_000.0;
        assert!(
            (first_decile - 0.10).abs() < 0.02,
            "theta=0 must be uniform, got {first_decile}"
        );
    }

    #[test]
    fn heavy_skew_concentrates_on_low_ranks() {
        let mut sampler = ZipfSampler::new(10_000, 1.5, 2);
        let samples = sampler.sample_many(50_000);
        let top10 = samples.iter().filter(|&&r| r < 10).count() as f64 / 50_000.0;
        assert!(
            top10 > 0.5,
            "theta=1.5 must concentrate most mass on the top ranks, got {top10}"
        );
        assert!(samples.iter().all(|&r| r < 10_000));
    }

    #[test]
    fn higher_theta_means_more_skew() {
        let share_of_top = |theta: f64| {
            let mut s = ZipfSampler::new(1000, theta, 3);
            let samples = s.sample_many(20_000);
            samples.iter().filter(|&&r| r < 10).count()
        };
        let s0 = share_of_top(0.0);
        let s1 = share_of_top(1.0);
        let s2 = share_of_top(2.0);
        assert!(
            s0 < s1 && s1 < s2,
            "skew must increase with theta: {s0} {s1} {s2}"
        );
    }

    #[test]
    fn rank_frequency_is_monotone_under_skew() {
        // Empirical frequencies must decay with rank: bucket the 64 ranks
        // into 8 octiles and require strictly fewer draws per octile as
        // rank grows (300k draws keep the ordering far outside noise).
        let mut sampler = ZipfSampler::new(64, 1.2, 5);
        let mut counts = [0usize; 64];
        for rank in sampler.sample_many(300_000) {
            counts[rank] += 1;
        }
        let octiles: Vec<usize> = counts.chunks(8).map(|c| c.iter().sum()).collect();
        assert!(
            octiles.windows(2).all(|w| w[0] > w[1]),
            "octile draw counts must strictly decrease with rank: {octiles:?}"
        );
        // And the hottest rank beats the coldest outright.
        assert!(
            counts[0] > counts[63] * 10,
            "{} vs {}",
            counts[0],
            counts[63]
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = ZipfSampler::new(50, 1.0, 7).sample_many(100);
        let b = ZipfSampler::new(50, 1.0, 7).sample_many(100);
        assert_eq!(a, b);
    }

    #[test]
    fn single_rank_always_returns_zero() {
        let mut s = ZipfSampler::new(1, 1.0, 0);
        assert!(!s.is_empty());
        assert!(s.sample_many(10).iter().all(|&r| r == 0));
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = ZipfSampler::new(0, 1.0, 0);
    }
}
