//! Figure 14: varying the hit rate of point lookups.
//!
//! Misses make the order-based indexes faster — RX disproportionately so,
//! because BVH traversal can abort as soon as no bounding volume covers the
//! searched key — while HT gets slower (misses lengthen its probe
//! sequences).

use rtindex_core::RtIndexConfig;
use rtx_workloads as wl;

use crate::indexes::{build_all_indexes, measure_points};
use crate::report::{fmt_ms, Table};
use crate::scale::ExperimentScale;

/// Hit rates evaluated (as in the paper).
pub const HIT_RATES: [f64; 9] = [1.0, 0.99, 0.9, 0.7, 0.5, 0.3, 0.1, 0.01, 0.0];

/// Runs the hit-rate experiment for unsorted lookups.
pub fn run(scale: &ExperimentScale) -> Vec<Table> {
    let device = crate::scaled_device(scale);
    let keys = wl::dense_shuffled(scale.default_keys(), scale.seed);
    let values = wl::value_column(keys.len(), scale.seed + 7);
    let indexes = build_all_indexes(&device, &keys, Some(&values), RtIndexConfig::default());

    let mut table = Table::new(
        "Figure 14: hit rate vs. cumulative lookup time [ms] (unsorted lookups)",
        &["hit rate", "HT", "B+", "SA", "RX", "RX early aborts"],
    );
    for h in HIT_RATES {
        let lookups = wl::point_lookups_with_hit_rate(
            &keys,
            scale.default_lookups(),
            h,
            scale.seed + (h * 100.0) as u64,
        );
        let mut row = vec![format!("{h}")];
        let mut rx_aborts = 0u64;
        for name in ["HT", "B+", "SA", "RX"] {
            let cell = indexes
                .iter()
                .find(|ix| ix.name() == name)
                .map(|ix| {
                    let m = measure_points(ix.as_ref(), &lookups, true);
                    if name == "RX" {
                        rx_aborts = m.kernel.early_aborts;
                    }
                    fmt_ms(m.sim_ms)
                })
                .unwrap_or_else(|| "N/A".to_string());
            row.push(cell);
        }
        row.push(rx_aborts.to_string());
        table.push_row(row);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn misses_speed_up_rx_and_trigger_early_aborts() {
        let device = crate::default_device();
        let keys = wl::dense_shuffled(1 << 14, 1);
        let index = rtindex_core::RtIndex::build(&device, &keys, RtIndexConfig::default()).unwrap();
        let all_hits = wl::point_lookups_with_hit_rate(&keys, 1 << 14, 1.0, 2);
        let all_misses = wl::point_lookups_with_hit_rate(&keys, 1 << 14, 0.0, 3);
        let out_hits = index.point_lookup_batch(&all_hits, None).unwrap();
        let out_misses = index.point_lookup_batch(&all_misses, None).unwrap();
        assert_eq!(out_hits.hit_count(), all_hits.len());
        assert_eq!(out_misses.hit_count(), 0);
        // Misses beyond the key domain abort at the root.
        assert!(out_misses.metrics.kernel.early_aborts > (all_misses.len() as u64) / 2);
        assert!(
            out_misses.metrics.kernel.dram_bytes_read + out_misses.metrics.kernel.l2_hit_bytes
                < out_hits.metrics.kernel.dram_bytes_read + out_hits.metrics.kernel.l2_hit_bytes,
            "misses must touch less memory than hits"
        );
        assert!(
            out_misses.metrics.simulated_time_s < out_hits.metrics.simulated_time_s,
            "an all-miss workload must be faster for RX"
        );
    }

    #[test]
    fn misses_do_not_speed_up_the_hash_table() {
        let device = crate::default_device();
        let keys = wl::dense_shuffled(1 << 14, 1);
        let ht = gpu_baselines::WarpHashTable::build(&device, &keys).unwrap();
        use gpu_baselines::GpuIndex;
        let hits = wl::point_lookups_with_hit_rate(&keys, 1 << 14, 1.0, 2);
        let misses = wl::point_lookups_with_hit_rate(&keys, 1 << 14, 0.0, 3);
        let t_hits = ht.point_lookup_batch(&device, &hits, None).simulated_time_s;
        let t_misses = ht
            .point_lookup_batch(&device, &misses, None)
            .simulated_time_s;
        assert!(
            t_misses >= t_hits * 0.9,
            "HT must not benefit from misses (hits {t_hits}, misses {t_misses})"
        );
    }

    #[test]
    fn smoke_has_one_row_per_hit_rate() {
        let tables = run(&ExperimentScale::tiny());
        assert_eq!(tables[0].rows.len(), HIT_RATES.len());
    }
}
