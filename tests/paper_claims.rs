//! Cross-crate tests for the headline qualitative claims of the paper,
//! exercised through the public facade at a slightly larger scale than the
//! per-crate unit tests.

use rtindex::{Device, GpuIndex, RtIndex, RtIndexConfig, WarpHashTable};
use rtx_harness::{build_all_indexes, find_index, measure_points, ExperimentScale};
use rtx_workloads as wl;

/// Section 4.6: under low hit rates RX becomes disproportionately faster and
/// eventually overtakes the hash table.
#[test]
fn rx_overtakes_ht_when_most_lookups_miss() {
    let device = rtx_harness::scaled_device(&ExperimentScale::tiny());
    let keys = wl::dense_shuffled(1 << 14, 1);
    let lookups_all_miss = wl::point_lookups_with_hit_rate(&keys, 1 << 15, 0.0, 2);

    let rx = RtIndex::build(&device, &keys, RtIndexConfig::default()).unwrap();
    let ht = WarpHashTable::build(&device, &keys).unwrap();

    let rx_ms = rx
        .point_lookup_batch(&lookups_all_miss, None)
        .unwrap()
        .metrics
        .simulated_time_s;
    let ht_ms = ht
        .point_lookup_batch(&device, &lookups_all_miss, None)
        .simulated_time_s;
    assert!(
        rx_ms <= ht_ms,
        "with h = 0.0 RX must not lose to HT (RX {rx_ms}, HT {ht_ms})"
    );
}

/// Section 4.6: the same comparison at hit rate 1.0 goes the other way.
#[test]
fn ht_beats_rx_when_every_lookup_hits() {
    let device = rtx_harness::scaled_device(&ExperimentScale::tiny());
    let keys = wl::dense_shuffled(1 << 14, 1);
    let lookups = wl::point_lookups_with_hit_rate(&keys, 1 << 15, 1.0, 2);

    let rx = RtIndex::build(&device, &keys, RtIndexConfig::default()).unwrap();
    let ht = WarpHashTable::build(&device, &keys).unwrap();
    let rx_ms = rx
        .point_lookup_batch(&lookups, None)
        .unwrap()
        .metrics
        .simulated_time_s;
    let ht_ms = ht
        .point_lookup_batch(&device, &lookups, None)
        .simulated_time_s;
    assert!(
        ht_ms <= rx_ms,
        "with h = 1.0 HT must win (RX {rx_ms}, HT {ht_ms})"
    );
}

/// Section 4.8: lookup skew benefits RX more than the comparison-based
/// indexes (on the real hardware this eventually lets RX overtake them; at
/// the reduced test scale we assert the relative benefit and that RX stays
/// in the same league).
#[test]
fn skew_benefits_rx_more_than_order_based_indexes() {
    let device = rtx_harness::scaled_device(&ExperimentScale::tiny());
    let keys = wl::dense_shuffled(1 << 14, 1);
    let values = wl::value_column(keys.len(), 2);
    let uniform = wl::point_lookups_zipf(&keys, 1 << 15, 0.0, 3);
    let skewed = wl::point_lookups_zipf(&keys, 1 << 15, 2.0, 3);
    let indexes = build_all_indexes(&device, &keys, Some(&values), RtIndexConfig::default());
    let time = |name: &str, queries: &[u64]| {
        measure_points(find_index(&indexes, name).unwrap(), queries, true).sim_ms
    };
    let speedup = |name: &str| time(name, &uniform) / time(name, &skewed);
    let (rx, bp, sa) = (speedup("RX"), speedup("B+"), speedup("SA"));
    assert!(rx > 1.0, "skew must speed RX up, got {rx:.2}x");
    assert!(
        rx >= bp * 0.95 && rx >= sa * 0.95,
        "skew must benefit RX at least as much as B+/SA (RX {rx:.2}x, B+ {bp:.2}x, SA {sa:.2}x)"
    );
    // And RX must stay in the same league as the order-based indexes on the
    // skewed workload itself. The factor is generous because at this reduced
    // test scale the B+-tree (unlike at paper scale) almost fits into the
    // scaled L2 cache, which flatters the baselines.
    let rx_skewed = time("RX", &skewed);
    assert!(rx_skewed <= time("B+", &skewed) * 3.0);
    assert!(rx_skewed <= time("SA", &skewed) * 3.0);
}

/// Section 4.3: key multiplicity does not inflate RX's structure and every
/// duplicate is returned.
#[test]
fn key_multiplicity_is_free_for_rx_structure_size() {
    let device = Device::default_eval();
    let unique = wl::with_multiplicity(1 << 12, 1, 1);
    let duplicated = wl::with_multiplicity(1 << 9, 8, 1);
    assert_eq!(unique.len(), duplicated.len());
    let a = RtIndex::build(&device, &unique, RtIndexConfig::default()).unwrap();
    let b = RtIndex::build(&device, &duplicated, RtIndexConfig::default()).unwrap();
    let ratio = b.index_memory_bytes() as f64 / a.index_memory_bytes() as f64;
    assert!(
        (0.8..1.25).contains(&ratio),
        "duplicates must not change the footprint, ratio {ratio}"
    );

    let out = b.point_lookup_batch(&[42], None).unwrap();
    assert_eq!(out.results[0].hit_count, 8);
}

/// Section 6 / Figure 18: RX improves across GPU generations at least as fast
/// as the baselines, thanks to the growing RT-core throughput.
#[test]
fn rx_scales_across_hardware_generations() {
    let improvement = rtx_harness::experiments::fig18::generational_improvement;
    let rx = improvement("RX", 13, 1 << 14, 5);
    let sa = improvement("SA", 13, 1 << 14, 5);
    assert!(
        rx > 1.5,
        "RX must improve substantially from Turing to Ada, got {rx:.2}"
    );
    assert!(
        rx >= sa * 0.9,
        "RX improvement ({rx:.2}x) must keep up with SA ({sa:.2}x)"
    );
}

/// Table 6 / Section 4.2: the price of RX is its footprint and build time.
#[test]
fn rx_pays_with_memory_and_build_time() {
    let device = Device::default_eval();
    let keys = wl::dense_shuffled(1 << 14, 1);
    let indexes = build_all_indexes(&device, &keys, None, RtIndexConfig::default());
    let rx = find_index(&indexes, "RX").unwrap();
    for other in indexes.iter().filter(|i| i.name() != "RX") {
        assert!(
            rx.memory_bytes() > other.memory_bytes(),
            "RX footprint must exceed {}",
            other.name()
        );
        assert!(
            rx.build_metrics().sim_ms() >= other.build_metrics().sim_ms(),
            "RX build must not be cheaper than {}",
            other.name()
        );
    }
}
