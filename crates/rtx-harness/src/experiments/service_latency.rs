//! Beyond-paper experiment: open-loop tail latency under skewed traffic.
//!
//! [`service_throughput`](crate::experiments::service_throughput) is
//! *closed-loop*: clients submit as fast as the service answers, so the
//! offered load adapts to the service and queueing delay never shows up.
//! This experiment measures what a production ingress actually feels — an
//! *open-loop* Poisson arrival process
//! ([`ArrivalSchedule`]) submitting Zipf-skewed point
//! batches on a fixed schedule regardless of completions, with per-event
//! latency taken from the *scheduled* arrival to the answered result (so
//! backlog counts against the service — no coordinated omission).
//!
//! Two arms run the identical workload on identical sharded backends:
//!
//! * **fixed** — the static [`ServiceConfig`] defaults: arrivals are
//!   sparser than the fixed linger window ([`MEAN_GAP`]), so nearly every
//!   drain holds its batch for the full window for company that never
//!   comes, and the hot shard stays hot;
//! * **adaptive** — the heavy-traffic hardening stack:
//!   [`AdaptiveLingerConfig`] scales the linger with the observed arrival
//!   rate (sparse open-loop traffic collapses to the floor instead of
//!   holding every batch for the full window), and [`RebalanceConfig`]
//!   lets the coalescer migrate rows off the Zipf-hot shard behind the
//!   write fence.
//!
//! The first [`WARMUP_FRACTION`] of events is excluded from the
//! percentiles: it covers the rate estimator's spin-up and the one-off
//! rebalance migration, leaving the steady state the gate cares about.
//!
//! Host latency tails are noisy — a single scheduler hiccup or a slow
//! background compaction can blow one run's p99 by an order of magnitude
//! — so each arm runs [`TRIALS`] interleaved trials over distinct Poisson
//! schedules and reports the per-arm *median* p50/p99 across trials. The
//! CI perf gate records both arms' medians and gates on the
//! adaptive-over-fixed p50 and p99 ratios (lower is better,
//! structurally < 1).

use std::sync::mpsc;
use std::time::{Duration, Instant};

use rtx_query::{IndexSpec, QueryBatch, Registry};
use rtx_serve::{AdaptiveLingerConfig, QueryService, RebalanceConfig, ServiceConfig};
use rtx_workloads as wl;
use wl::{ArrivalSchedule, OpenLoopDriver, SkewProfile};

use crate::indexes::registry;
use crate::report::{fmt_ms, Table};
use crate::scale::ExperimentScale;

/// The backend both arms run against: the updatable delta index sharded
/// over 4 shards, so skewed traffic produces a genuinely hot shard and the
/// adaptive arm has something to migrate.
pub const LATENCY_BACKEND: &str = "RXD@4";

/// Point lookups per arrival event (one client submission).
pub const OPS_PER_EVENT: usize = 16;

/// Mean inter-arrival gap of the Poisson schedule. Deliberately *longer*
/// than the fixed arm's linger window: most events ride alone, so the
/// static configuration pays its full window on nearly every drain while
/// the adaptive policy recognises the sparse regime and collapses to its
/// floor. (The opposite, saturating regime — where batching itself is the
/// win — is what the closed-loop `service_throughput` gate covers.)
pub const MEAN_GAP: Duration = Duration::from_micros(300);

/// Zipf skew of the queried keys (rank 0 is the hottest).
pub const ZIPF_THETA: f64 = 1.2;

/// Fraction of events excluded from the percentiles as warm-up (rate
/// estimator spin-up plus the one-off rebalance migration).
pub const WARMUP_FRACTION: f64 = 0.25;

/// Interleaved trials per arm; the reported percentiles are the medians
/// across trials, so one outlier trial (scheduler hiccup, slow background
/// compaction) cannot poison the gated ratio.
pub const TRIALS: usize = 3;

/// One arm's measured latency distribution plus its service counters.
/// Percentiles are medians across the arm's [`TRIALS`] trials; the counters
/// sum over them.
#[derive(Debug, Clone)]
pub struct LatencyRun {
    /// Arm name (`"fixed"` / `"adaptive"`).
    pub label: &'static str,
    /// Arrival events submitted per trial.
    pub events: usize,
    /// Events inside the measurement window per trial (after warm-up
    /// exclusion).
    pub measured: usize,
    /// Median scheduled-arrival-to-answer latency, host milliseconds
    /// (median across trials).
    pub p50_ms: f64,
    /// 99th-percentile latency, host milliseconds (median across trials).
    pub p99_ms: f64,
    /// Worst latency of any trial, host milliseconds.
    pub max_ms: f64,
    /// Mean linger the coalescer actually chose, microseconds (mean across
    /// trials).
    pub mean_linger_us: f64,
    /// Hot-shard rebalance passes the coalescer ran, summed over trials.
    pub rebalances: u64,
    /// Rows migrated across shards by those passes, summed over trials.
    pub rebalanced_rows: u64,
    /// Worst final shard-imbalance gauge of any trial, permille.
    pub imbalance_permille: u64,
    /// Lookups that hit per trial (identical across trials and arms by
    /// construction — every trial runs the same batches).
    pub hits: usize,
}

/// The two arms of one run, measured over the identical workload.
#[derive(Debug, Clone)]
pub struct LatencyPair {
    /// Static linger, no rebalancing.
    pub fixed: LatencyRun,
    /// Adaptive linger plus hot-shard rebalancing.
    pub adaptive: LatencyRun,
}

impl LatencyPair {
    /// Adaptive over fixed median-p50 — gated; < 1 means the adaptive
    /// stack answers the typical event faster.
    pub fn p50_ratio(&self) -> f64 {
        self.adaptive.p50_ms / self.fixed.p50_ms.max(1e-12)
    }

    /// Adaptive over fixed median-p99 — gated; < 1 means the adaptive
    /// stack beats the static configuration at the tail.
    pub fn p99_ratio(&self) -> f64 {
        self.adaptive.p99_ms / self.fixed.p99_ms.max(1e-12)
    }
}

/// Sorted-sample percentile by nearest-rank interpolation on the index.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Median of an unsorted sample.
fn median(xs: &[f64]) -> f64 {
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
    percentile(&sorted, 0.50)
}

/// Runs one trial of one arm: a fresh backend, the trial's schedule, the
/// shared batches, and the arm's service configuration. The dispatcher
/// walks the open-loop schedule on this thread while a waiter thread
/// collects completions, so a lingering service accumulates backlog
/// exactly as a real ingress would.
fn run_trial(
    label: &'static str,
    registry: &Registry,
    spec: &IndexSpec<'_>,
    batches: &[QueryBatch],
    schedule: &ArrivalSchedule,
    config: ServiceConfig,
) -> LatencyRun {
    let backend = registry
        .build_updatable(LATENCY_BACKEND, spec)
        .expect("latency backend");
    let service = QueryService::start_updatable(backend, config);
    let handle = service.handle();
    let events = schedule.len();

    let (tx, rx) = mpsc::channel::<(usize, Instant, rtx_serve::PendingQuery)>();
    let (latencies_ms, hits) = std::thread::scope(|scope| {
        // Completions arrive in submission order (one coalescer, FIFO
        // replies), so a single in-order waiter observes each answer as it
        // lands.
        let waiter = scope.spawn(move || {
            let mut latencies = vec![0.0f64; events];
            let mut hits = 0usize;
            for (i, scheduled, pending) in rx {
                let out = pending.wait().expect("service answer");
                hits += out.hit_count();
                let done = Instant::now();
                latencies[i] = done.saturating_duration_since(scheduled).as_secs_f64() * 1e3;
            }
            (latencies, hits)
        });
        let mut driver = OpenLoopDriver::start(schedule.clone());
        while let Some(i) = driver.wait_next() {
            let scheduled = driver.started_at() + schedule.offset(i);
            let pending = handle.submit(batches[i].clone()).expect("open-loop submit");
            tx.send((i, scheduled, pending)).expect("waiter alive");
        }
        drop(tx);
        waiter.join().expect("waiter thread")
    });
    let stats = service.shutdown();

    let warmup = ((events as f64) * WARMUP_FRACTION) as usize;
    let mut window: Vec<f64> = latencies_ms[warmup..].to_vec();
    window.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    LatencyRun {
        label,
        events,
        measured: window.len(),
        p50_ms: percentile(&window, 0.50),
        p99_ms: percentile(&window, 0.99),
        max_ms: window.last().copied().unwrap_or(0.0),
        mean_linger_us: stats.mean_linger_s() * 1e6,
        rebalances: stats.rebalances,
        rebalanced_rows: stats.rebalanced_rows,
        imbalance_permille: stats.shard_imbalance_permille,
        hits,
    }
}

/// Folds an arm's trials into the reported [`LatencyRun`]: median
/// percentiles, worst max, mean linger, summed migration counters.
fn aggregate_arm(trials: Vec<LatencyRun>) -> LatencyRun {
    let p50s: Vec<f64> = trials.iter().map(|t| t.p50_ms).collect();
    let p99s: Vec<f64> = trials.iter().map(|t| t.p99_ms).collect();
    let first = &trials[0];
    LatencyRun {
        label: first.label,
        events: first.events,
        measured: first.measured,
        p50_ms: median(&p50s),
        p99_ms: median(&p99s),
        max_ms: trials.iter().map(|t| t.max_ms).fold(0.0, f64::max),
        mean_linger_us: trials.iter().map(|t| t.mean_linger_us).sum::<f64>() / trials.len() as f64,
        rebalances: trials.iter().map(|t| t.rebalances).sum(),
        rebalanced_rows: trials.iter().map(|t| t.rebalanced_rows).sum(),
        imbalance_permille: trials
            .iter()
            .map(|t| t.imbalance_permille)
            .max()
            .unwrap_or(0),
        hits: first.hits,
    }
}

/// The adaptive arm's configuration: linger scaled between a near-zero
/// floor and the fixed arm's window, plus hot-shard rebalancing triggered
/// early enough that the migration (and the backlog it stalls up) drains
/// well inside the warm-up window.
fn adaptive_config(total_ops: usize) -> ServiceConfig {
    ServiceConfig::new()
        .with_adaptive_linger(
            AdaptiveLingerConfig::new()
                .with_floor(Duration::from_micros(2))
                .with_ceiling(ServiceConfig::default().linger)
                .with_target_ops(512),
        )
        .with_rebalance(
            RebalanceConfig::new()
                .with_min_ops((total_ops as u64 / 32).max(256))
                .with_max_imbalance_permille(1200),
        )
}

/// Runs both arms: [`TRIALS`] interleaved trials each, every trial pair
/// sharing its schedule, batches and backend spec.
pub fn run_pair(scale: &ExperimentScale) -> LatencyPair {
    let device = crate::scaled_device(scale);
    let n = scale.default_keys();
    let keys = wl::dense_shuffled(n, scale.seed);
    let values = wl::value_column(n, scale.seed + 1);
    let spec = IndexSpec::with_values(&device, &keys, &values);
    let registry = registry();

    let events = (scale.default_lookups() / OPS_PER_EVENT).max(64);
    let total_ops = events * OPS_PER_EVENT;
    let profile = SkewProfile::zipfian(ZIPF_THETA);
    let queries = wl::skewed_point_lookups(&keys, total_ops, &profile, scale.seed + 11);
    let batches: Vec<QueryBatch> = queries
        .chunks(OPS_PER_EVENT)
        .map(|chunk| QueryBatch::of_points(chunk).fetch_values(true))
        .collect();

    // Interleaving the arms (fixed, adaptive, fixed, ...) spreads slow
    // host phases across both instead of loading them onto one.
    let mut fixed_trials = Vec::with_capacity(TRIALS);
    let mut adaptive_trials = Vec::with_capacity(TRIALS);
    for trial in 0..TRIALS {
        let schedule = ArrivalSchedule::poisson(events, MEAN_GAP, scale.seed + 13 + trial as u64);
        fixed_trials.push(run_trial(
            "fixed",
            &registry,
            &spec,
            &batches,
            &schedule,
            ServiceConfig::new(),
        ));
        adaptive_trials.push(run_trial(
            "adaptive",
            &registry,
            &spec,
            &batches,
            &schedule,
            adaptive_config(total_ops),
        ));
    }
    for (f, a) in fixed_trials.iter().zip(&adaptive_trials) {
        assert_eq!(
            f.hits, a.hits,
            "both arms must answer the identical workload identically"
        );
    }
    LatencyPair {
        fixed: aggregate_arm(fixed_trials),
        adaptive: aggregate_arm(adaptive_trials),
    }
}

/// The `service_latency` experiment: open-loop tail latency of the static
/// configuration against the adaptive linger + rebalancing stack.
pub fn run(scale: &ExperimentScale) -> Vec<Table> {
    let pair = run_pair(scale);
    let mut table = Table::new(
        format!(
            "Open-loop service latency, backend {LATENCY_BACKEND}, zipf theta {ZIPF_THETA}, \
             {TRIALS} trials x {} events x {OPS_PER_EVENT} ops, mean gap {}us \
             (percentiles: median across trials)",
            pair.fixed.events,
            MEAN_GAP.as_micros()
        ),
        &[
            "arm",
            "events",
            "measured",
            "p50 [ms]",
            "p99 [ms]",
            "max [ms]",
            "mean linger [us]",
            "rebalances",
            "moved rows",
            "imbalance [permille]",
            "hits",
        ],
    );
    for run in [&pair.fixed, &pair.adaptive] {
        table.push_row(vec![
            run.label.to_string(),
            run.events.to_string(),
            run.measured.to_string(),
            fmt_ms(run.p50_ms),
            fmt_ms(run.p99_ms),
            fmt_ms(run.max_ms),
            format!("{:.1}", run.mean_linger_us),
            run.rebalances.to_string(),
            run.rebalanced_rows.to_string(),
            run.imbalance_permille.to_string(),
            run.hits.to_string(),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_arms_answer_identically_and_the_adaptive_arm_rebalances() {
        let scale = ExperimentScale::tiny();
        let pair = run_pair(&scale);

        for run in [&pair.fixed, &pair.adaptive] {
            assert!(run.hits > 0, "zipf lookups over the key set must hit");
            assert_eq!(
                run.events,
                (scale.default_lookups() / OPS_PER_EVENT).max(64)
            );
            assert_eq!(run.measured, run.events - run.events / 4);
            assert!(run.p50_ms > 0.0, "{}: latency must be measured", run.label);
            assert!(run.p50_ms <= run.p99_ms && run.p99_ms <= run.max_ms);
        }

        // The fixed arm never rebalances; the adaptive arm must have both
        // migrated the hot shard (in every trial) and averaged a shorter
        // linger than the static window it was given as a ceiling.
        assert_eq!(pair.fixed.rebalances, 0);
        assert!(pair.adaptive.rebalances >= TRIALS as u64, "{pair:?}");
        assert!(pair.adaptive.rebalanced_rows > 0);
        assert!(
            pair.adaptive.mean_linger_us < pair.fixed.mean_linger_us,
            "adaptive linger must undercut the fixed window: {pair:?}"
        );
        assert!(pair.p50_ratio() > 0.0 && pair.p99_ratio() > 0.0);

        // The report renders one row per arm.
        let tables = run(&scale);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows.len(), 2);
    }
}
