//! Durability quickstart: a persistent index that survives a restart.
//!
//! Appending `+wal:<path>` to any updatable backend name makes it durable:
//! every update batch is appended to a write-ahead log before it applies,
//! and `checkpoint()` serializes the compacted base into a snapshot so the
//! log stays short. Dropping the index and rebuilding it by the *same name*
//! over the same directory reopens it from disk — snapshot plus WAL replay —
//! instead of building from columns.
//!
//! This example lives one full cycle: create a durable `"RXD+wal:"` index,
//! mutate it, checkpoint, "restart" (drop and reopen), keep writing, and
//! verify the final answers against an in-memory oracle that never
//! restarted.
//!
//! Run with: `cargo run --release --example durable_restart`

use rtindex::{registry, Device, IndexSpec, QueryBatch};
use rtx_workloads::{dense_shuffled, value_column, DynamicOracle};

fn main() {
    let device = Device::default_eval();
    let dir = std::env::temp_dir().join(format!("rtx-durable-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let name = format!("RXD+wal:{}", dir.display());

    // The oracle lives in memory for the whole run; the index will be
    // dropped and reopened in the middle.
    let keys = dense_shuffled(1000, 42);
    let values = value_column(1000, 43);
    let mut oracle = DynamicOracle::new(&keys, &values);

    // First life: create on disk, mutate, checkpoint.
    let mut index = registry()
        .build_updatable(&name, &IndexSpec::with_values(&device, &keys, &values))
        .expect("create durable index");
    println!(
        "created {} over {} keys in {}",
        index.name(),
        index.key_count(),
        dir.display()
    );

    index
        .insert(&[2000, 2001, 2002], &[1, 2, 3])
        .expect("insert");
    oracle.insert_batch(&[2000, 2001, 2002], &[1, 2, 3]);
    index.delete(&[7, 11, 13]).expect("delete");
    oracle.delete_batch(&[7, 11, 13]);

    let snapshots = index.checkpoint().expect("checkpoint");
    oracle.compact(); // a checkpoint compacts, renumbering rowIDs
    let stats = index.durability_stats().expect("durable stats");
    println!(
        "checkpointed ({snapshots} snapshot, {} B, bsn {}); WAL now {} B after {} fsyncs",
        stats.last_snapshot_bytes, stats.last_snapshot_bsn, stats.wal_bytes, stats.fsyncs
    );

    // The restart: drop the index — only the directory survives.
    drop(index);

    // Second life: same name, empty columns — reopened from disk.
    let mut index = registry()
        .build_updatable(&name, &IndexSpec::keys_only(&device, &[]))
        .expect("reopen durable index");
    let stats = index.durability_stats().expect("durable stats");
    println!(
        "reopened from snapshot + {} replayed WAL batches; {} keys live",
        stats.replayed_batches,
        index.key_count()
    );

    // Keep writing — recovery leaves an append-clean log behind.
    index.upsert(&[2000, 17], &[100, 200]).expect("upsert");
    oracle.upsert_batch(&[2000, 17], &[100, 200]);

    // Verify against the never-restarted oracle, rowIDs included.
    let batch = QueryBatch::new()
        .points([2000, 2001, 7, 17, 999])
        .range(0, 20)
        .fetch_values(true);
    let out = index.execute(&batch).expect("probe");
    assert_eq!(
        out.results,
        oracle.expected_batch(&batch),
        "oracle-exact after restart"
    );
    println!(
        "post-restart probe: {} lookups oracle-exact (rowIDs included)",
        out.results.len()
    );

    let memory = index.memory_usage();
    println!(
        "memory: {} B base + {} B delta + {} B tombstones + {} B WAL buffer",
        memory.base_bytes, memory.delta_bytes, memory.tombstone_bytes, memory.wal_buffer_bytes
    );

    let _ = std::fs::remove_dir_all(&dir);
}
