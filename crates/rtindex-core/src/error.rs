//! Error types of the RTIndeX core crate.

use crate::key_mode::KeyMode;
use optix_sim::PrimitiveKind;

/// Errors reported when building, updating or querying an [`RtIndex`].
///
/// [`RtIndex`]: crate::index::RtIndex
#[derive(Debug, Clone, PartialEq)]
pub enum RtIndexError {
    /// A key exceeds the range representable by the configured key mode.
    KeyOutOfRange {
        /// The offending key.
        key: u64,
        /// The configured mode.
        mode: KeyMode,
        /// The largest key the mode supports.
        max_key: u64,
    },
    /// The configured primitive type is not supported by the configured key
    /// mode (e.g. spheres in Extended Mode, Table 1 of the paper).
    UnsupportedPrimitive {
        /// The configured mode.
        mode: KeyMode,
        /// The unsupported primitive kind.
        primitive: PrimitiveKind,
    },
    /// A range lookup would require more rays than the configured limit
    /// (only possible for gigantic ranges in 3D Mode).
    RangeTooWide {
        /// Lower bound of the offending range.
        lower: u64,
        /// Upper bound of the offending range.
        upper: u64,
        /// Number of rays that would be required.
        rays_required: u64,
        /// The per-lookup ray limit.
        limit: u64,
    },
    /// An update supplied a key buffer whose length differs from the indexed
    /// key count (OptiX updates cannot add or remove primitives).
    KeyCountChanged {
        /// Keys in the existing index.
        expected: usize,
        /// Keys supplied to the update.
        actual: usize,
    },
    /// Updates were requested on an index built without `allow_update`.
    UpdatesNotEnabled,
    /// A lookup supplied a value column whose length does not match the
    /// number of indexed keys.
    ValueColumnLengthMismatch {
        /// Number of indexed keys (and expected values).
        expected: usize,
        /// Values supplied.
        actual: usize,
    },
    /// A masked lookup supplied a validity mask whose length does not match
    /// the number of indexed keys.
    LiveMaskLengthMismatch {
        /// Number of indexed keys (and expected mask entries).
        expected: usize,
        /// Mask entries supplied.
        actual: usize,
    },
    /// An insert would exhaust the 32-bit rowID space (the `MISS` sentinel
    /// is reserved). Raised by the dynamic index, whose rowIDs come from a
    /// monotonic counter that only a compaction resets.
    RowIdSpaceExhausted {
        /// RowIDs allocated so far.
        allocated: u64,
        /// Rows the rejected batch asked for.
        requested: u64,
        /// Largest allocatable rowID count.
        limit: u64,
    },
}

impl std::fmt::Display for RtIndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RtIndexError::KeyOutOfRange { key, mode, max_key } => write!(
                f,
                "key {key} exceeds the maximum key {max_key} supported by {} mode",
                mode.name()
            ),
            RtIndexError::UnsupportedPrimitive { mode, primitive } => write!(
                f,
                "{} primitives are not supported in {} mode",
                primitive.name(),
                mode.name()
            ),
            RtIndexError::RangeTooWide { lower, upper, rays_required, limit } => write!(
                f,
                "range [{lower}, {upper}] requires {rays_required} rays, more than the limit of {limit}"
            ),
            RtIndexError::KeyCountChanged { expected, actual } => write!(
                f,
                "updates cannot add or remove keys (index holds {expected}, update supplied {actual})"
            ),
            RtIndexError::UpdatesNotEnabled => {
                write!(f, "index was built without allow_update; rebuild instead")
            }
            RtIndexError::ValueColumnLengthMismatch { expected, actual } => write!(
                f,
                "value column has {actual} entries but the index holds {expected} keys"
            ),
            RtIndexError::LiveMaskLengthMismatch { expected, actual } => write!(
                f,
                "live mask has {actual} entries but the index holds {expected} keys"
            ),
            RtIndexError::RowIdSpaceExhausted {
                allocated,
                requested,
                limit,
            } => write!(
                f,
                "inserting {requested} rows would exhaust the rowID space \
                 ({allocated} of {limit} allocated); compact first"
            ),
        }
    }
}

impl std::error::Error for RtIndexError {}

/// Conversion into the unified query-API error: structured variants map to
/// their `rtx-query` counterparts, key-range violations become
/// "unsupported key set" (so the registry's `build_supported` skips an RX
/// configured with a too-narrow key mode, mirroring how the paper omits
/// inapplicable configurations), and everything else is wrapped verbatim.
impl From<RtIndexError> for rtx_query::IndexError {
    fn from(err: RtIndexError) -> Self {
        match err {
            RtIndexError::KeyOutOfRange { .. } => rtx_query::IndexError::UnsupportedKeySet {
                backend: "RX".to_string().into(),
                reason: err.to_string(),
            },
            RtIndexError::ValueColumnLengthMismatch { expected, actual } => {
                rtx_query::IndexError::ValueColumnLengthMismatch { expected, actual }
            }
            RtIndexError::RowIdSpaceExhausted {
                allocated,
                requested,
                limit,
            } => rtx_query::IndexError::CapacityOverflow {
                backend: "RX".to_string().into(),
                keys: requested as usize,
                limit: limit.saturating_sub(allocated),
            },
            other => rtx_query::IndexError::Backend {
                backend: "RX".to_string().into(),
                message: other.to_string(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_human_readable_messages() {
        let e = RtIndexError::KeyOutOfRange {
            key: 100,
            mode: KeyMode::Naive,
            max_key: 10,
        };
        assert!(e.to_string().contains("key 100"));
        assert!(e.to_string().contains("naive"));

        let e = RtIndexError::UnsupportedPrimitive {
            mode: KeyMode::Extended,
            primitive: PrimitiveKind::Sphere,
        };
        assert!(e.to_string().contains("sphere"));
        assert!(e.to_string().contains("ext mode"));

        let e = RtIndexError::UpdatesNotEnabled;
        assert!(e.to_string().contains("allow_update"));

        let e = RtIndexError::KeyCountChanged {
            expected: 4,
            actual: 5,
        };
        assert!(e.to_string().contains('4') && e.to_string().contains('5'));

        let e = RtIndexError::ValueColumnLengthMismatch {
            expected: 2,
            actual: 1,
        };
        assert!(e.to_string().contains("value column"));

        let e = RtIndexError::RangeTooWide {
            lower: 0,
            upper: u64::MAX,
            rays_required: 1 << 40,
            limit: 1024,
        };
        assert!(e.to_string().contains("limit"));
    }
}
