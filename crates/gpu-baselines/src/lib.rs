//! # gpu-baselines
//!
//! The three traditional GPU-resident index structures the paper compares
//! RTIndeX against (Section 4.1), plus the radix sort they rely on:
//!
//! * **HT** — [`WarpHashTable`]: a WarpCore-style open-addressing hash table
//!   with cooperative probing groups of 8 slots and a target load factor of
//!   0.8. Fastest point lookups; no range lookups.
//! * **B+** — [`BPlusTree`]: a bulk-loaded GPU B+-tree with 16-entry nodes
//!   and linked leaves (modelled after Awad et al.). Best range lookups;
//!   32-bit keys only, no duplicates.
//! * **SA** — [`SortedArray`]: a sorted array with binary search, the
//!   simplest order-preserving baseline.
//! * [`radix_sort`] — an LSD radix sort standing in for CUB's
//!   `DeviceRadixSort`, used by the SA/B+ builds and for sorting lookup
//!   batches.
//!
//! All baselines run their lookups through the same [`gpu_device`] kernel
//! executor and report the same counters as the raytracing pipeline, so the
//! experiment harness can compare RX and the baselines on simulated device
//! time, memory traffic, instructions and footprint.

pub mod adapter;
pub mod bplus_tree;
pub mod common;
pub mod hash_table;
pub mod kernel;
pub mod radix_sort;
pub mod sorted_array;

pub use adapter::{register_baselines, GpuIndexAdapter};
pub use bplus_tree::{BPlusTree, BPlusTreeError};
pub use common::{BaselineBatch, BaselineBuildMetrics, GpuIndex};
pub use hash_table::{slot_hash, WarpHashTable, GROUP_SIZE, TARGET_LOAD_FACTOR};
pub use radix_sort::{radix_sort_pairs, RadixSortMetrics};
pub use sorted_array::SortedArray;
