//! Adaptive coalescer linger: scale the wait-for-arrivals window with the
//! observed arrival rate and queue depth instead of paying one fixed
//! linger on every drain.
//!
//! A fixed linger is tuned for exactly one traffic level. Under heavy
//! concurrent load it is too long (the fusion fills long before the
//! deadline, and a backlog should never wait at all); under sparse
//! open-loop traffic it is pure added latency (nothing else is going to
//! arrive, yet every drain holds its batch for the full window). The
//! policy here closes both ends:
//!
//! * the coalescer feeds the policy each drain's *observed arrivals*
//!   ([`LingerPolicy::observe`]) and it keeps an exponentially weighted
//!   arrival rate;
//! * at drain time ([`LingerPolicy::linger`]) the policy estimates how
//!   long filling the remaining fusion budget would take at that rate and
//!   lingers exactly that long, clamped between
//!   [`floor`](AdaptiveLingerConfig::floor) and
//!   [`ceiling`](AdaptiveLingerConfig::ceiling);
//! * a queue already holding [`target_ops`](AdaptiveLingerConfig::target_ops)
//!   (backlog), or traffic too sparse to ever fill the budget inside the
//!   ceiling, both collapse to the floor — draining immediately beats
//!   holding admitted operations hostage.
//!
//! The policy is pure state over explicit nanosecond timestamps — no
//! clock is read here, so tests drive it with a simulated clock.

use std::time::Duration;

/// Tuning of the adaptive linger policy (see the [module docs](self)).
/// Plugged into a service via
/// [`ServiceConfig::with_adaptive_linger`](crate::ServiceConfig::with_adaptive_linger).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveLingerConfig {
    /// Shortest linger ever chosen — the drain overhead floor. Also the
    /// answer whenever lingering cannot help (backlog, or near-idle
    /// traffic).
    pub floor: Duration,
    /// Longest linger ever chosen, no matter how slowly the fusion budget
    /// would fill.
    pub ceiling: Duration,
    /// The fused-submission size the policy aims for: it lingers only as
    /// long as filling this many operations should take at the observed
    /// arrival rate.
    pub target_ops: usize,
}

impl Default for AdaptiveLingerConfig {
    fn default() -> Self {
        AdaptiveLingerConfig {
            floor: Duration::from_micros(10),
            ceiling: Duration::from_micros(500),
            target_ops: 1024,
        }
    }
}

impl AdaptiveLingerConfig {
    /// The default policy bounds.
    pub fn new() -> Self {
        AdaptiveLingerConfig::default()
    }

    /// Sets the linger floor.
    pub fn with_floor(mut self, floor: Duration) -> Self {
        self.floor = floor;
        self
    }

    /// Sets the linger ceiling (clamped to at least the floor).
    pub fn with_ceiling(mut self, ceiling: Duration) -> Self {
        self.ceiling = ceiling.max(self.floor);
        self
    }

    /// Sets the fusion-size target (clamped to at least 1).
    pub fn with_target_ops(mut self, ops: usize) -> Self {
        self.target_ops = ops.max(1);
        self
    }
}

/// Weight of the newest observation in the arrival-rate average. One
/// drain's burst moves the estimate, a sustained shift dominates it within
/// a handful of drains.
const EWMA_ALPHA: f64 = 0.2;

/// The adaptive linger state owned by the coalescer thread: an
/// exponentially weighted arrival rate over explicit timestamps, and the
/// per-drain linger decision derived from it.
#[derive(Debug, Clone)]
pub struct LingerPolicy {
    config: AdaptiveLingerConfig,
    /// Smoothed arrival rate in operations per nanosecond.
    rate: f64,
    last_observed_ns: Option<u64>,
}

impl LingerPolicy {
    /// A fresh policy: no traffic observed, so the first drains linger at
    /// the floor until a rate estimate exists.
    pub fn new(config: AdaptiveLingerConfig) -> Self {
        LingerPolicy {
            config,
            rate: 0.0,
            last_observed_ns: None,
        }
    }

    /// The configured bounds.
    pub fn config(&self) -> AdaptiveLingerConfig {
        self.config
    }

    /// Folds one drain's observation — `arrived_ops` operations admitted
    /// since the previous call, as of the caller's clock reading `now_ns` —
    /// into the arrival-rate average. Non-advancing clocks are ignored
    /// (rate spikes to infinity otherwise).
    pub fn observe(&mut self, now_ns: u64, arrived_ops: u64) {
        let Some(last) = self.last_observed_ns else {
            self.last_observed_ns = Some(now_ns);
            return;
        };
        if now_ns <= last {
            return;
        }
        let instant_rate = arrived_ops as f64 / (now_ns - last) as f64;
        self.rate = EWMA_ALPHA * instant_rate + (1.0 - EWMA_ALPHA) * self.rate;
        self.last_observed_ns = Some(now_ns);
    }

    /// The smoothed arrival rate, in operations per second.
    pub fn ops_per_second(&self) -> f64 {
        self.rate * 1e9
    }

    /// The linger for a drain that starts with `queue_depth` operations
    /// already admitted. See the [module docs](self) for the three
    /// regimes (backlog, paced, sparse).
    pub fn linger(&self, queue_depth: usize) -> Duration {
        let config = &self.config;
        if queue_depth >= config.target_ops {
            return config.floor;
        }
        let deficit = (config.target_ops - queue_depth) as f64;
        // Time to fill the deficit at the observed rate. A zero rate
        // divides to infinity, which the sparse-traffic branch handles.
        let fill_ns = deficit / self.rate.max(f64::MIN_POSITIVE);
        if fill_ns > config.ceiling.as_nanos() as f64 {
            // Too sparse to fill inside the ceiling: lingering buys
            // latency, not fusion.
            return config.floor;
        }
        Duration::from_nanos(fill_ns as u64).clamp(config.floor, config.ceiling)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(floor_us: u64, ceiling_us: u64, target: usize) -> LingerPolicy {
        LingerPolicy::new(
            AdaptiveLingerConfig::new()
                .with_floor(Duration::from_micros(floor_us))
                .with_ceiling(Duration::from_micros(ceiling_us))
                .with_target_ops(target),
        )
    }

    /// Drives the policy with a constant simulated arrival rate until the
    /// EWMA settles, continuing from wherever its clock already is.
    fn settle(policy: &mut LingerPolicy, ops_per_tick: u64, tick_ns: u64) {
        let mut now = policy.last_observed_ns.unwrap_or(0);
        for _ in 0..200u64 {
            now += tick_ns;
            policy.observe(now, ops_per_tick);
        }
    }

    #[test]
    fn fresh_policy_lingers_at_the_floor() {
        let policy = policy(10, 500, 1024);
        assert_eq!(policy.linger(0), Duration::from_micros(10));
        assert_eq!(policy.ops_per_second(), 0.0);
    }

    #[test]
    fn backlog_skips_the_linger_entirely() {
        let mut policy = policy(10, 500, 256);
        // Even under heavy observed traffic, a full queue drains at once.
        settle(&mut policy, 1000, 1000);
        assert_eq!(policy.linger(256), Duration::from_micros(10));
        assert_eq!(policy.linger(100_000), Duration::from_micros(10));
    }

    #[test]
    fn paced_traffic_lingers_proportionally_to_the_deficit() {
        let mut policy = policy(10, 500, 1000);
        // 1 op per µs: filling 1000 ops takes ~1ms — above the 500µs
        // ceiling, so the policy refuses to wait at all.
        settle(&mut policy, 1, 1_000);
        assert_eq!(policy.linger(0), Duration::from_micros(10));

        // 10 ops per µs: 1000 ops in ~100µs — linger lands there, and the
        // linger shrinks as the queue pre-fills.
        settle(&mut policy, 10, 1_000);
        let deep = policy.linger(0);
        assert!(
            deep >= Duration::from_micros(80) && deep <= Duration::from_micros(120),
            "expected ~100us, got {deep:?}"
        );
        let half = policy.linger(500);
        assert!(half < deep, "a half-full queue waits less: {half:?}");
        assert!(half >= Duration::from_micros(10));
    }

    #[test]
    fn sparse_then_bursty_traffic_moves_the_estimate_both_ways() {
        let mut policy = policy(20, 400, 512);
        settle(&mut policy, 0, 1_000);
        assert_eq!(policy.linger(0), Duration::from_micros(20), "idle → floor");

        // A sustained burst raises the rate until the fill-time estimate
        // drops inside the ceiling (~5 ops/µs fills 512 ops in ~100µs).
        settle(&mut policy, 5, 1_000);
        let lingering = policy.linger(0);
        assert!(
            lingering > Duration::from_micros(20) && lingering <= Duration::from_micros(400),
            "burst traffic lingers inside the bounds: {lingering:?}"
        );

        // Going idle again decays the rate back to the floor regime.
        settle(&mut policy, 0, 1_000);
        assert_eq!(policy.linger(0), Duration::from_micros(20));
    }

    #[test]
    fn extreme_rates_clamp_to_the_bounds() {
        let mut policy = policy(10, 500, 1 << 20);
        // Absurdly fast arrivals: fill time rounds below the floor.
        settle(&mut policy, 1 << 30, 1);
        assert_eq!(policy.linger(0), Duration::from_micros(10));
    }

    #[test]
    fn non_advancing_clock_is_ignored() {
        let mut policy = policy(10, 500, 1024);
        policy.observe(1_000, 0);
        policy.observe(1_000, u64::MAX); // same instant: dropped
        policy.observe(500, u64::MAX); // backwards: dropped
        assert_eq!(policy.ops_per_second(), 0.0);
        assert_eq!(policy.linger(0), Duration::from_micros(10));
    }

    #[test]
    fn config_builder_clamps_degenerate_bounds() {
        let config = AdaptiveLingerConfig::new()
            .with_floor(Duration::from_micros(100))
            .with_ceiling(Duration::from_micros(50))
            .with_target_ops(0);
        assert_eq!(config.ceiling, Duration::from_micros(100));
        assert_eq!(config.target_ops, 1);
    }
}
