//! A measured memory-locality model.
//!
//! The paper attributes most performance effects to where traversal data is
//! served from: the whole index fitting into the L2 cache (small builds),
//! consecutive lookups touching the same subtree (sorted or skewed lookups),
//! or neither (large builds with random lookups, which become DRAM-bandwidth
//! bound).
//!
//! Simulating a real cache hierarchy per access would be prohibitively slow,
//! so the [`AccessClassifier`] uses two *measured* signals instead:
//!
//! 1. whether the structure's working set fits into the device's L2 cache,
//! 2. whether the current access touches a region (cache-line-sized token)
//!    that the same logical thread stream touched recently — which is
//!    precisely the locality that sorted/skewed lookups create.
//!
//! Accesses are then charged to L1, L2 or DRAM in the kernel counters.

use crate::executor::ThreadCtx;

/// Number of recently touched regions remembered per stream. Hot regions
/// (skewed lookups, sorted neighbours) stay in this window and hit the L1.
const RECENT_REGIONS: usize = 8;

/// Classifies logical memory accesses into L1 / L2 / DRAM traffic.
#[derive(Debug, Clone)]
pub struct AccessClassifier {
    /// L2 capacity of the device (bytes).
    l2_bytes: u64,
    /// Working set of the kernel (bytes) — index structure + fetched data.
    working_set_bytes: u64,
    /// Recently touched region tokens of this stream (a tiny LRU standing in
    /// for the per-SM L1/TLB reuse that skewed or sorted lookups enjoy).
    recent: [u64; RECENT_REGIONS],
    /// Number of valid entries in `recent`.
    recent_len: usize,
    /// Round-robin replacement cursor.
    cursor: usize,
    /// Fraction of the working set assumed resident in L2 when the working
    /// set is larger than the cache (top levels of the tree stay cached).
    resident_fraction: f64,
}

impl AccessClassifier {
    /// Creates a classifier for a kernel whose data structures span
    /// `working_set_bytes` on a device with `l2_bytes` of L2 cache.
    pub fn new(l2_bytes: u64, working_set_bytes: u64) -> Self {
        let resident_fraction = if working_set_bytes == 0 {
            1.0
        } else {
            (l2_bytes as f64 / working_set_bytes as f64).min(1.0)
        };
        AccessClassifier {
            l2_bytes,
            working_set_bytes,
            recent: [0; RECENT_REGIONS],
            recent_len: 0,
            cursor: 0,
            resident_fraction,
        }
    }

    /// True when the entire working set fits into the L2 cache.
    pub fn fits_in_l2(&self) -> bool {
        self.working_set_bytes <= self.l2_bytes
    }

    /// Fraction of the working set resident in L2 (1.0 when it fits).
    pub fn resident_fraction(&self) -> f64 {
        self.resident_fraction
    }

    /// Records an access of `bytes` to the region identified by `token`
    /// (e.g. a node index or a rowID divided by the cache-line size),
    /// charging it to the appropriate level in `ctx`.
    ///
    /// * Working set fits in L2 → L2 hit.
    /// * Region recently touched by this stream → L1 hit (temporal locality
    ///   from sorted or skewed lookups).
    /// * Otherwise: a `resident_fraction` share of the bytes is served from
    ///   L2 (top-of-tree nodes that stay cached), the rest from DRAM.
    pub fn access(&mut self, ctx: &mut ThreadCtx, token: u64, bytes: u64) {
        let recently_touched = self.recent[..self.recent_len].contains(&token);
        if !recently_touched {
            self.recent[self.cursor] = token;
            self.cursor = (self.cursor + 1) % RECENT_REGIONS;
            self.recent_len = (self.recent_len + 1).min(RECENT_REGIONS);
        }

        if self.fits_in_l2() {
            ctx.add_l2_read(bytes);
            return;
        }
        if recently_touched {
            ctx.add_l1_read(bytes);
            return;
        }
        let cached = (bytes as f64 * self.resident_fraction) as u64;
        ctx.add_l2_read(cached);
        ctx.add_dram_read(bytes - cached);
    }

    /// Resets the stream-locality state (e.g. between rays of unrelated
    /// batches).
    pub fn reset_stream(&mut self) {
        self.recent_len = 0;
        self.cursor = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_working_set_is_all_l2() {
        let mut c = AccessClassifier::new(1 << 20, 1 << 16);
        assert!(c.fits_in_l2());
        assert_eq!(c.resident_fraction(), 1.0);
        let mut ctx = ThreadCtx::new();
        c.access(&mut ctx, 1, 100);
        c.access(&mut ctx, 2, 100);
        assert_eq!(ctx.stats.l2_hit_bytes, 200);
        assert_eq!(ctx.stats.dram_bytes_read, 0);
    }

    #[test]
    fn large_working_set_spills_to_dram() {
        let mut c = AccessClassifier::new(1 << 20, 1 << 30);
        assert!(!c.fits_in_l2());
        let mut ctx = ThreadCtx::new();
        c.access(&mut ctx, 1, 1000);
        c.access(&mut ctx, 2, 1000);
        assert!(
            ctx.stats.dram_bytes_read > 1900,
            "most traffic must go to DRAM"
        );
        assert!(ctx.stats.l2_hit_bytes < 100);
    }

    #[test]
    fn repeated_region_hits_l1() {
        let mut c = AccessClassifier::new(1 << 20, 1 << 30);
        let mut ctx = ThreadCtx::new();
        c.access(&mut ctx, 42, 1000);
        c.access(&mut ctx, 42, 1000);
        c.access(&mut ctx, 42, 1000);
        assert_eq!(
            ctx.stats.l1_hit_bytes, 2000,
            "second and third access hit L1"
        );
        assert!(ctx.stats.dram_bytes_read >= 900);
    }

    #[test]
    fn reset_stream_forgets_locality() {
        let mut c = AccessClassifier::new(1 << 20, 1 << 30);
        let mut ctx = ThreadCtx::new();
        c.access(&mut ctx, 42, 1000);
        c.reset_stream();
        c.access(&mut ctx, 42, 1000);
        assert_eq!(ctx.stats.l1_hit_bytes, 0);
    }

    #[test]
    fn zero_working_set_is_degenerate_but_safe() {
        let mut c = AccessClassifier::new(1 << 20, 0);
        assert!(c.fits_in_l2());
        let mut ctx = ThreadCtx::new();
        c.access(&mut ctx, 0, 64);
        assert_eq!(ctx.stats.l2_hit_bytes, 64);
    }

    #[test]
    fn partial_residency_scales_with_cache_ratio() {
        // Working set twice the L2 size -> about half the bytes cached.
        let mut c = AccessClassifier::new(1 << 20, 1 << 21);
        let mut ctx = ThreadCtx::new();
        c.access(&mut ctx, 7, 1000);
        assert!((ctx.stats.l2_hit_bytes as i64 - 500).abs() <= 1);
        assert!((ctx.stats.dram_bytes_read as i64 - 500).abs() <= 1);
    }
}
