//! Durability configuration: fsync policy, segment rolling, checkpoint
//! cadence.

/// When appended WAL records are flushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every logged batch before it is applied — a committed
    /// batch survives any crash. The default.
    Always,
    /// `fsync` once every `n` logged batches: bounded data loss (at most
    /// the unsynced batches) for much higher append throughput.
    EveryN(u64),
    /// Never `fsync` explicitly; the OS flushes when it pleases. Recovery
    /// still works from whatever prefix reached the disk (the frame CRCs
    /// cut the torn tail), but an acknowledged batch may be lost.
    Never,
}

/// Configuration of a [`DurableIndex`](crate::DurableIndex) /
/// [`ShardedDurableIndex`](crate::ShardedDurableIndex).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurableConfig {
    /// Flush policy for the WAL (and, sharded, the root journal).
    pub fsync: FsyncPolicy,
    /// Roll to a fresh WAL segment once the active one reaches this many
    /// bytes. Truncation drops whole sealed segments, so smaller segments
    /// reclaim space sooner at the cost of more files.
    pub segment_bytes: u64,
    /// Run an automatic checkpoint (compact, snapshot, truncate the WAL)
    /// once the live WAL exceeds this many bytes. `u64::MAX` disables
    /// automatic checkpoints — the WAL then only truncates on an explicit
    /// [`checkpoint`](rtx_query::UpdatableIndex::checkpoint).
    pub snapshot_wal_bytes: u64,
}

impl Default for DurableConfig {
    fn default() -> Self {
        DurableConfig {
            fsync: FsyncPolicy::Always,
            segment_bytes: 4 << 20,
            snapshot_wal_bytes: 8 << 20,
        }
    }
}

impl DurableConfig {
    /// Returns the configuration with a different fsync policy.
    pub fn with_fsync(mut self, fsync: FsyncPolicy) -> Self {
        self.fsync = fsync;
        self
    }

    /// Returns the configuration with a different segment roll size.
    pub fn with_segment_bytes(mut self, segment_bytes: u64) -> Self {
        self.segment_bytes = segment_bytes.max(1);
        self
    }

    /// Returns the configuration with a different automatic-checkpoint
    /// threshold (`u64::MAX` disables automatic checkpoints).
    pub fn with_snapshot_wal_bytes(mut self, snapshot_wal_bytes: u64) -> Self {
        self.snapshot_wal_bytes = snapshot_wal_bytes;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_safe_and_builders_compose() {
        let c = DurableConfig::default();
        assert_eq!(c.fsync, FsyncPolicy::Always);
        assert!(c.segment_bytes > 0 && c.snapshot_wal_bytes > 0);

        let c = DurableConfig::default()
            .with_fsync(FsyncPolicy::EveryN(8))
            .with_segment_bytes(0)
            .with_snapshot_wal_bytes(u64::MAX);
        assert_eq!(c.fsync, FsyncPolicy::EveryN(8));
        assert_eq!(c.segment_bytes, 1, "zero clamps to one byte");
        assert_eq!(c.snapshot_wal_bytes, u64::MAX);
    }
}
