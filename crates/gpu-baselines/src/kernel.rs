//! Shared lookup-kernel driver for the baseline indexes.
//!
//! HT, B+ and SA all answer lookup batches the same way: one logical thread
//! per lookup, executed by a pool of host workers, each accumulating hardware
//! counters and classifying its memory traffic with an [`AccessClassifier`].
//! This module factors that driver out so the three index implementations
//! only provide the per-lookup body.

use gpu_device::{AccessClassifier, Device, KernelStats, ThreadCtx};

use crate::common::BaselineBatch;
use rtx_query::LookupResult;

/// Runs a lookup kernel of `width` logical threads.
///
/// `working_set_bytes` is the total device data the kernel may touch (index
/// structure + value column); `body(ctx, classifier, idx)` computes the
/// result of lookup `idx` while recording its work.
pub fn run_lookup_kernel<F>(
    device: &Device,
    width: usize,
    working_set_bytes: u64,
    body: F,
) -> BaselineBatch
where
    F: Fn(&mut ThreadCtx, &mut AccessClassifier, usize) -> LookupResult + Sync,
{
    let start = std::time::Instant::now();
    let mut results = vec![LookupResult::miss(); width];
    let mut merged = KernelStats {
        threads_launched: width as u64,
        kernel_launches: 1,
        ..KernelStats::new()
    };

    if width > 0 {
        let workers = gpu_device::executor::worker_count().min(width);
        let chunk = width.div_ceil(workers);
        let l2 = device.spec().l2_bytes;
        let chunks: Vec<&mut [LookupResult]> = results.chunks_mut(chunk).collect();

        // Runs on the shared gpu-device worker pool: each claimant owns one
        // contiguous result chunk, mirroring a CUDA block writing its slice
        // of the output buffer.
        let partials = gpu_device::parallel_map(chunks, |w, out_chunk| {
            let start_idx = w * chunk;
            let mut ctx = ThreadCtx::new();
            let mut classifier = AccessClassifier::new(l2, working_set_bytes);
            for (j, slot) in out_chunk.iter_mut().enumerate() {
                *slot = body(&mut ctx, &mut classifier, start_idx + j);
            }
            ctx.stats
        });

        for p in partials {
            merged.merge(&p);
        }
        merged.threads_launched = width as u64;
        merged.kernel_launches = 1;
    }

    let simulated = device.cost_model().simulated_time(&merged);
    device.profiler().record_kernel(merged);

    BaselineBatch {
        results,
        kernel: merged,
        simulated_time_s: simulated.as_seconds(),
        host_time: start.elapsed(),
    }
}

/// Fetches the value for `row` and adds it to `sum`, charging the access to
/// the classifier the same way the raytracing pipeline charges its value
/// fetches (eight values per cache line).
#[inline]
pub fn fetch_value(
    ctx: &mut ThreadCtx,
    classifier: &mut AccessClassifier,
    values: &[u64],
    row: u32,
    sum: &mut u64,
) {
    ctx.add_instructions(2);
    classifier.access(
        ctx,
        (row as u64 / 8).wrapping_mul(2654435761).rotate_left(17),
        8,
    );
    *sum = sum.wrapping_add(values[row as usize]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_runs_every_index_once() {
        let device = Device::default_eval();
        let batch = run_lookup_kernel(&device, 1000, 1 << 10, |ctx, _cl, idx| {
            ctx.add_instructions(1);
            LookupResult {
                first_row: idx as u32,
                hit_count: 1,
                value_sum: idx as u64,
            }
        });
        assert_eq!(batch.results.len(), 1000);
        assert!(batch
            .results
            .iter()
            .enumerate()
            .all(|(i, r)| r.first_row == i as u32));
        assert_eq!(batch.kernel.instructions, 1000);
        assert_eq!(batch.kernel.threads_launched, 1000);
        assert!(batch.simulated_time_s > 0.0);
    }

    #[test]
    fn empty_kernel_is_safe() {
        let device = Device::default_eval();
        let batch = run_lookup_kernel(&device, 0, 0, |_, _, _| LookupResult::miss());
        assert!(batch.results.is_empty());
        assert_eq!(batch.kernel.threads_launched, 0);
    }

    #[test]
    fn fetch_value_accumulates_and_accounts() {
        let device = Device::default_eval();
        let values = vec![10u64, 20, 30];
        let batch = run_lookup_kernel(&device, 1, 1 << 30, |ctx, cl, _| {
            let mut sum = 0;
            fetch_value(ctx, cl, &values, 0, &mut sum);
            fetch_value(ctx, cl, &values, 2, &mut sum);
            LookupResult {
                first_row: 0,
                hit_count: 2,
                value_sum: sum,
            }
        });
        assert_eq!(batch.results[0].value_sum, 40);
        assert!(batch.kernel.instructions >= 4);
        assert!(batch.kernel.total_bytes_accessed() >= 16);
    }
}
