//! # rtx-query
//!
//! The backend-agnostic secondary-index query API of the RTIndeX
//! reproduction.
//!
//! The paper evaluates RX against three GPU baselines on identical
//! workloads; this crate is the single interface all of them (and the
//! dynamic delta index) are driven through:
//!
//! * [`SecondaryIndex`] — the read-only backend trait: mixed-batch
//!   [`execute`](SecondaryIndex::execute) plus the allocation-free hot-path
//!   variants [`execute_in`](SecondaryIndex::execute_in) /
//!   [`execute_ops_in`](SecondaryIndex::execute_ops_in) over a reusable
//!   [`ExecArena`], memory/build metadata and [`Capabilities`] flags
//!   (range lookups, duplicate keys, 64-bit keys, updates);
//! * [`UpdatableIndex`] — the write extension (batched insert / delete /
//!   upsert);
//! * [`QueryBatch`] — one submission mixing point lookups, range lookups
//!   and an optional value-column fetch, with configurable chunked
//!   execution for large batches;
//! * [`FusedBatch`] — cross-client coalescing: fuse many small client
//!   batches into one large submission and split the fused outcome back
//!   per client (the pure half of the `rtx-serve` service);
//! * [`IndexError`] — the unified error type every backend converts its
//!   native errors into;
//! * [`Registry`] / [`IndexSpec`] — the factory that builds any backend by
//!   name ("RX", "HT", "B+", "SA", "RXD"). Backend crates register their
//!   builders at runtime (this crate cannot depend on them — they depend
//!   on it); `rtx_harness::registry()` composes the default registry
//!   holding all five;
//! * [`TableSchema`] / [`IngestBatch`] / [`TableQuery`] /
//!   [`ExplainPlan`] — the multi-column table vocabulary ([`table`]):
//!   named columns with per-column index specs, CDC ingest operations and
//!   multi-predicate queries, consumed by the `rtx-table` subsystem.
//!
//! * [`KeySchema`] / [`TypedBatch`] — typed composite keys ([`keys`]):
//!   multi-column `u8/u16/u32/u64/i64/str<N>` schemas, order-preserving
//!   byte encoding, and typed point / range / prefix-range queries that
//!   compile into the 1-D `u64` key space before any backend sees them
//!   (the [`composite`] wrapper handles multi-limb schemas).
//!
//! The canonical result types ([`MISS`], [`LookupResult`],
//! [`BatchOutcome`]) live here and **only** here — the historical
//! re-exports from `rtindex-core` and `gpu-baselines` were removed once
//! every caller migrated (see the DESIGN.md migration note).
//!
//! ```
//! use rtx_query::QueryBatch;
//!
//! // One submission mixing points and ranges; executed via
//! // `SecondaryIndex::execute` on any backend built by the registry.
//! let batch = QueryBatch::new()
//!     .points([23, 29, 31])
//!     .range(25, 27)
//!     .fetch_values(true)
//!     .with_chunk_size(1 << 20);
//! assert_eq!(batch.len(), 4);
//! ```

pub mod arena;
pub mod batch;
pub mod composite;
pub mod error;
pub mod fuse;
pub mod index;
pub mod keys;
pub mod registry;
pub mod shard;
pub mod table;
pub mod types;

pub use arena::{ArenaPool, ExecArena};
pub use batch::{QueryBatch, QueryOp, QueryOps};
pub use composite::{parse_schema_name, CompositeIndex};
pub use error::IndexError;
pub use fuse::{FusedBatch, FusedSlice, SharedOutcome};
pub use index::{SecondaryIndex, UpdatableIndex};
pub use keys::{
    ColumnType, EncodedKey, EncodedRange, KeyBound, KeySchema, KeyTuple, KeyValue, TypedBatch,
    TypedOp,
};
pub use registry::{
    parse_builder_name, parse_durable_name, DurabilitySpec, DurableBuilder, IndexBuilder,
    IndexSpec, Registry, ShardedBuilder, SpecName, UpdatableBuilder, UpdatableShardedBuilder,
};

// The builder-selection grammar (`"RX:sah"`, `"RX:lbvh"`) names this enum;
// re-exported so callers need not depend on `rtx-bvh` directly.
pub use rtx_bvh::BuilderKind;
pub use shard::{KeyRouter, Partitioning, RebalanceReport, ScatterPlan, ShardLoad, ShardSpec};
pub use table::{
    Candidate, ExplainPlan, IndexDef, IngestBatch, IngestOp, PlanChoice, Predicate, Record, Route,
    TableQuery, TableSchema,
};
pub use types::{
    BatchOutcome, Capabilities, DurableStats, IndexBuildMetrics, LookupResult, MemoryUsage,
    QueryOutcome, UpdateReport, MISS,
};
