//! # rtx-workloads
//!
//! Deterministic workload generators for the RTIndeX evaluation.
//!
//! Every experiment in the paper is described by (a) a key set and (b) a
//! batch of lookups over it. This crate generates both, covering all nine
//! experimental dimensions:
//!
//! * [`keyset`] — dense shuffled key sets, strided key sets (Figure 3b),
//!   sparse uniform key sets, key multiplicity (Figure 11), sorted vs.
//!   shuffled order (Figure 12), 32-bit vs. 64-bit domains (Figure 15),
//! * [`lookups`] — point-lookup batches with a configurable hit rate
//!   (Figure 14), Zipf-skewed lookups (Figure 16), range lookups with a
//!   target number of qualifying entries (Figures 9, 17), sorted lookup
//!   batches (Figure 12), batch splitting (Figure 13),
//! * [`zipf`] — the Zipf sampler used for skewed workloads,
//! * [`mixed`] — interleaved insert/delete/upsert/lookup operation streams
//!   (uniform and Zipf-skewed) for the dynamic-update layer,
//! * [`skew`] — heavy-traffic skew models (Zipf, hot-set, multi-tenant)
//!   applied to both read batches and mixed streams,
//! * [`arrival`] — deterministic open-loop arrival schedules (Poisson and
//!   paced) for tail-latency experiments,
//! * [`truth`] — ground-truth answers (hit sets and value sums) computed
//!   with plain hash maps, used to verify every index implementation —
//!   including [`truth::DynamicOracle`] for dynamic workloads,
//! * [`tables`] — multi-column record streams, CDC
//!   [`IngestBatch`](rtx_query::IngestBatch) generators, mixed
//!   multi-predicate [`TableQuery`](rtx_query::TableQuery) streams, and
//!   the scan-based [`tables::TableOracle`] that verifies the table
//!   layer.
//!
//! All generators take an explicit seed and are fully deterministic so that
//! experiments are reproducible.

pub mod arrival;
pub mod keyset;
pub mod lookups;
pub mod mixed;
pub mod skew;
pub mod tables;
pub mod truth;
pub mod zipf;

pub use arrival::{ArrivalSchedule, OpenLoopDriver};
pub use keyset::{dense_shuffled, sparse_uniform, value_column, with_multiplicity, with_stride};
pub use lookups::{
    point_lookups, point_lookups_with_hit_rate, point_lookups_zipf, range_lookups, split_batches,
};
pub use mixed::{apply_mixed_op, mixed_ops, MixedOp, MixedWorkloadConfig};
pub use skew::{
    multi_tenant_ops, skewed_mixed_ops, skewed_point_lookups, MultiTenantConfig, SkewProfile,
    TenantOp,
};
pub use tables::{
    ingest_batches, table_queries, table_records, TableOracle, TableQueryConfig,
    TableWorkloadConfig,
};
pub use truth::{DynamicOracle, DynamicTruth, GroundTruth};
pub use zipf::ZipfSampler;
