//! The CI perf-smoke runner: runs the quick benchmark suite and writes the
//! metrics as JSON (the `BENCH_ci.json` artifact of the CI perf gate).
//!
//! ```text
//! perf-smoke [--scale tiny|small|medium|paper] [--seed N] [--out PATH]
//! ```
//!
//! Without `--out` the JSON goes to stdout; the human-readable table always
//! goes to stderr, so redirecting stdout captures clean JSON either way.

use rtx_harness::perf::quick_suite;
use rtx_harness::ExperimentScale;

fn print_usage() {
    eprintln!("usage: perf-smoke [--scale tiny|small|medium|paper] [--seed N] [--out PATH]");
}

fn main() {
    // Pin the worker-pool width unless the caller chose one: simulated
    // build times scale with `worker_count()` since the staged pipeline,
    // so gated metrics would otherwise vary with the host's core count.
    // Set before any thread spawns (this binary is single-threaded here).
    if std::env::var_os("RTX_WORKERS").is_none() {
        std::env::set_var("RTX_WORKERS", "8");
    }

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = ExperimentScale::tiny();
    // Applied after the loop so `--seed N --scale small` keeps the seed.
    let mut seed: Option<u64> = None;
    let mut out: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => {
                let name = iter.next().map(String::as_str).unwrap_or("");
                match ExperimentScale::from_name(name) {
                    Some(s) => scale = s,
                    None => {
                        eprintln!("unknown scale '{name}'");
                        print_usage();
                        std::process::exit(2);
                    }
                }
            }
            "--seed" => {
                let value = iter.next().map(String::as_str).unwrap_or("");
                match value.parse::<u64>() {
                    Ok(s) => seed = Some(s),
                    Err(_) => {
                        eprintln!("invalid seed '{value}'");
                        std::process::exit(2);
                    }
                }
            }
            "--out" => match iter.next() {
                Some(path) => out = Some(path.clone()),
                None => {
                    eprintln!("--out needs a path");
                    print_usage();
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                print_usage();
                return;
            }
            other => {
                eprintln!("unexpected argument '{other}'");
                print_usage();
                std::process::exit(2);
            }
        }
    }

    if let Some(seed) = seed {
        scale.seed = seed;
    }

    let report = quick_suite(&scale);
    eprintln!(
        "perf-smoke @ {} ({} metrics, {} gated):",
        report.scale,
        report.metrics.len(),
        report.metrics.iter().filter(|m| m.gated).count()
    );
    for m in &report.metrics {
        eprintln!(
            "  {:<62} {:>12.4e} {:<7} {}",
            m.key(),
            m.value,
            m.unit,
            if m.gated { "[gated]" } else { "" }
        );
    }

    let json = report.to_json();
    match out {
        Some(path) => {
            if let Err(err) = std::fs::write(&path, &json) {
                eprintln!("cannot write {path}: {err}");
                std::process::exit(1);
            }
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }
}
