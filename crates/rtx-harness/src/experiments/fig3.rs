//! Figure 3: effect of the key-representation mode on lookup time.
//!
//! * Figure 3a varies the build size and compares Naive, Extended and 3D
//!   mode on dense keys (Naive/Extended become `N/A` once the build size
//!   exceeds the mode's key range).
//! * Figure 3b introduces a key *stride* to grow the value range `q` and
//!   shows that Extended Mode degrades with the value range while 3D mode
//!   stays stable.

use rtindex_core::{KeyMode, RtIndex, RtIndexConfig};
use rtx_workloads as wl;

use crate::report::{fmt_ms, Table};
use crate::scale::ExperimentScale;

fn lookup_ms_for_mode(
    device: &gpu_device::Device,
    keys: &[u64],
    lookups: &[u64],
    mode: KeyMode,
) -> Option<f64> {
    let max = keys.iter().copied().max().unwrap_or(0);
    if !mode.supports_key(max) {
        return None;
    }
    let config = RtIndexConfig::default().with_key_mode(mode);
    let index = RtIndex::build(device, keys, config).ok()?;
    let out = index.point_lookup_batch(lookups, None).ok()?;
    Some(out.metrics.simulated_time_s * 1e3)
}

/// Figure 3a: cumulative lookup time per key mode while varying the number
/// of indexed keys.
pub fn run_fig3a(scale: &ExperimentScale) -> Vec<Table> {
    let device = crate::scaled_device(scale);
    let mut table = Table::new(
        "Figure 3a: key representations, cumulative lookup time [ms] (N/A = key range exceeded)",
        &["keys [2^n]", "naive", "ext", "3d"],
    );
    for exp in scale.key_exponent_sweep(6) {
        let n = 1usize << exp;
        let keys = wl::dense_shuffled(n, scale.seed);
        let lookups = wl::point_lookups(&keys, scale.default_lookups(), scale.seed + 1);
        let mut row = vec![exp.to_string()];
        for mode in KeyMode::all() {
            row.push(
                lookup_ms_for_mode(&device, &keys, &lookups, mode)
                    .map(fmt_ms)
                    .unwrap_or_else(|| "N/A".to_string()),
            );
        }
        table.push_row(row);
    }
    vec![table]
}

/// Figure 3b: the same comparison with key stride 1, 2 and 4 for Extended
/// and 3D mode.
pub fn run_fig3b(scale: &ExperimentScale) -> Vec<Table> {
    let device = crate::scaled_device(scale);
    let mut table = Table::new(
        "Figure 3b: key stride (value range) vs. lookup time [ms]",
        &[
            "keys [2^n]",
            "ext s=1",
            "ext s=2",
            "ext s=4",
            "3d s=1",
            "3d s=2",
            "3d s=4",
        ],
    );
    for exp in scale.key_exponent_sweep(4) {
        let n = 1usize << exp;
        let mut row = vec![exp.to_string()];
        for mode in [KeyMode::Extended, KeyMode::three_d_default()] {
            for stride in [1u64, 2, 4] {
                let keys = wl::with_stride(n, stride, scale.seed);
                let lookups = wl::point_lookups(&keys, scale.default_lookups(), scale.seed + 1);
                row.push(
                    lookup_ms_for_mode(&device, &keys, &lookups, mode)
                        .map(fmt_ms)
                        .unwrap_or_else(|| "N/A".to_string()),
                );
            }
        }
        table.push_row(row);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3a_marks_unsupported_modes_and_reports_times() {
        // Use a key count beyond the Naive range so the N/A column shows up.
        let scale = ExperimentScale {
            keys_exp: 24,
            lookups_exp: 10,
            seed: 7,
        };
        let device = crate::default_device();
        let keys = wl::dense_shuffled(1 << 24, scale.seed);
        let lookups = wl::point_lookups(&keys, 1 << 10, scale.seed);
        assert!(lookup_ms_for_mode(&device, &keys, &lookups, KeyMode::Naive).is_none());
        assert!(lookup_ms_for_mode(&device, &keys, &lookups, KeyMode::Extended).is_some());
        assert!(lookup_ms_for_mode(&device, &keys, &lookups, KeyMode::three_d_default()).is_some());
    }

    #[test]
    fn fig3a_smoke_produces_one_row_per_size() {
        let scale = ExperimentScale::tiny();
        let tables = run_fig3a(&scale);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows.len(), scale.key_exponent_sweep(6).len());
        // At tiny scale every mode supports the keys: no N/A cells.
        assert!(tables[0].rows.iter().all(|r| r.iter().all(|c| c != "N/A")));
    }

    #[test]
    fn fig3b_smoke_has_stride_columns() {
        let tables = run_fig3b(&ExperimentScale::tiny());
        assert_eq!(tables[0].headers.len(), 7);
        assert!(!tables[0].rows.is_empty());
    }
}
