//! Beyond-paper experiment: cost-based planner vs forced index choice.
//!
//! A multi-index table can answer the same predicate through several
//! indexes; what the paper settles per experiment by hand (which backend
//! serves which lookup shape), the `rtx-table` planner decides per
//! predicate from capability flags and calibrated probe costs. This
//! experiment quantifies that decision on a mixed point+range workload
//! over one column carrying three indexes — `HT` (points only), `RX` and
//! `SA` (both shapes):
//!
//! * **forced arms** — every predicate executes through one fixed
//!   range-capable index ([`FORCED_ARMS`]), the only single-index choices
//!   able to serve the whole workload;
//! * **planner arm** — every predicate routes to its cheapest eligible
//!   index, so points peel off to the hash table while ranges go to the
//!   cheaper of RX and SA.
//!
//! All arms answer identically (asserted); the comparison is purely about
//! execution cost. The headline number is *simulated* device time — a
//! deterministic function of the workload and the cost model — and the
//! planner arm must at least match the worst forced arm: that is the
//! floor a cost-based optimiser has to clear to justify existing.

use std::time::Instant;

use rtx_query::{TableQuery, TableSchema};
use rtx_table::Table;
use rtx_workloads as wl;

use crate::indexes::registry;
use crate::report::{fmt_ms, fmt_throughput, Table as Report};
use crate::scale::ExperimentScale;

/// The indexes of the experiment's table, all on the keyed column.
pub const TABLE_INDEXES: [(&str, &str); 3] = [("id_ht", "HT"), ("id_rx", "RX"), ("id_sa", "SA")];

/// The forced arms: the range-capable indexes (the hash table cannot
/// serve the mixed workload alone).
pub const FORCED_ARMS: [&str; 2] = ["id_rx", "id_sa"];

/// One measured arm of the comparison.
#[derive(Debug, Clone)]
pub struct PlannerRun {
    /// `"planner"` or `"forced:<index>"`.
    pub arm: String,
    /// Queries executed.
    pub queries: usize,
    /// Predicates across all queries.
    pub predicates: usize,
    /// Total simulated device seconds (deterministic).
    pub sim_s: f64,
    /// Host wall-clock milliseconds (includes planning).
    pub host_ms: f64,
    /// Total hits — identical across arms by construction.
    pub hits: u64,
    /// Predicates routed per index name, in [`TABLE_INDEXES`] order
    /// (forced arms concentrate everything on one entry).
    pub routes: Vec<(String, u64)>,
}

impl PlannerRun {
    /// Simulated predicate throughput in operations per second.
    pub fn sim_throughput(&self) -> f64 {
        if self.sim_s <= 0.0 {
            return 0.0;
        }
        self.predicates as f64 / self.sim_s
    }

    /// Host predicate throughput in operations per second.
    pub fn host_throughput(&self) -> f64 {
        if self.host_ms <= 0.0 {
            return 0.0;
        }
        self.predicates as f64 / (self.host_ms / 1e3)
    }
}

/// The experiment's table: one keyed column under all three indexes, plus
/// a timestamp and a value column.
fn build_table(scale: &ExperimentScale, n: usize) -> Table {
    let device = crate::scaled_device(scale);
    let mut schema = TableSchema::new(["id", "ts", "amount"]).with_value_column("amount");
    for (name, spec) in TABLE_INDEXES {
        schema = schema.with_index(name, "id", spec);
    }
    let records = wl::table_records(3, n, n as u64, scale.seed);
    Table::load(schema, &device, std::sync::Arc::new(registry()), &records)
        .expect("experiment table builds")
}

/// The mixed point+range query stream every arm executes.
fn workload(scale: &ExperimentScale, n: usize) -> Vec<TableQuery> {
    wl::table_queries(&wl::TableQueryConfig {
        queries: (scale.default_lookups() / 64).max(16),
        predicates_per_query: 4,
        point_columns: vec!["id".to_string()],
        range_columns: vec!["id".to_string()],
        key_domain: n as u64,
        range_span: 32,
        fetch_values: true,
        seed: scale.seed + 11,
    })
}

fn run_arm(table: &Table, queries: &[TableQuery], forced: Option<&str>) -> PlannerRun {
    let mut sim_s = 0.0;
    let mut hits = 0u64;
    let mut predicates = 0usize;
    let mut routes: Vec<(String, u64)> = TABLE_INDEXES
        .iter()
        .map(|(name, _)| (name.to_string(), 0))
        .collect();
    let started = Instant::now();
    for query in queries {
        let out = match forced {
            Some(index) => table.query_forced(query, index),
            None => table.query(query),
        }
        .expect("arm executes the workload");
        sim_s += out.metrics.simulated_time_s;
        hits += out.hit_count();
        predicates += query.len();
        for choice in &out.plan.choices {
            if let Some(index) = choice.route.index_name() {
                if let Some(entry) = routes.iter_mut().find(|(name, _)| name == index) {
                    entry.1 += 1;
                }
            }
        }
    }
    PlannerRun {
        arm: forced.map_or("planner".to_string(), |f| format!("forced:{f}")),
        queries: queries.len(),
        predicates,
        sim_s,
        host_ms: started.elapsed().as_secs_f64() * 1e3,
        hits,
        routes,
    }
}

/// Runs every arm over the same table and workload: the forced arms in
/// [`FORCED_ARMS`] order, then the planner arm last.
pub fn run_arms(scale: &ExperimentScale) -> Vec<PlannerRun> {
    let n = scale.default_keys().min(1 << 14);
    let table = build_table(scale, n);
    let queries = workload(scale, n);
    let mut runs: Vec<PlannerRun> = FORCED_ARMS
        .iter()
        .map(|arm| run_arm(&table, &queries, Some(arm)))
        .collect();
    runs.push(run_arm(&table, &queries, None));
    let hits = runs[0].hits;
    assert!(
        runs.iter().all(|r| r.hits == hits),
        "all arms must answer identically"
    );
    runs
}

/// The planner arm and the *worst* forced arm by simulated throughput —
/// the pair the CI perf gate compares.
pub fn planner_vs_worst_forced(runs: &[PlannerRun]) -> (&PlannerRun, &PlannerRun) {
    let planner = runs
        .iter()
        .find(|r| r.arm == "planner")
        .expect("the planner arm ran");
    let worst = runs
        .iter()
        .filter(|r| r.arm != "planner")
        .min_by(|a, b| a.sim_throughput().total_cmp(&b.sim_throughput()))
        .expect("a forced arm ran");
    (planner, worst)
}

/// The `planner_selection` experiment: planner-chosen vs forced-index
/// execution of the same mixed workload.
pub fn run(scale: &ExperimentScale) -> Vec<Report> {
    let runs = run_arms(scale);
    let mut table = Report::new(
        format!(
            "Planner selection vs forced index, mixed point+range workload, \
             indexes {:?}, 2^{} keys",
            TABLE_INDEXES.map(|(_, spec)| spec),
            scale.keys_exp.min(14),
        ),
        &[
            "arm",
            "queries",
            "predicates",
            "sim [ms]",
            "sim ops/s",
            "host [ms]",
            "host ops/s",
            "routes",
            "hits",
        ],
    );
    for run in &runs {
        let routes = run
            .routes
            .iter()
            .filter(|(_, count)| *count > 0)
            .map(|(name, count)| format!("{name}:{count}"))
            .collect::<Vec<_>>()
            .join(" ");
        table.push_row(vec![
            run.arm.clone(),
            run.queries.to_string(),
            run.predicates.to_string(),
            fmt_ms(run.sim_s * 1e3),
            fmt_throughput(run.sim_throughput()),
            fmt_ms(run.host_ms),
            fmt_throughput(run.host_throughput()),
            routes,
            run.hits.to_string(),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planner_at_least_matches_the_worst_forced_arm() {
        let scale = ExperimentScale::tiny();
        let runs = run_arms(&scale);
        assert_eq!(runs.len(), FORCED_ARMS.len() + 1);
        for run in &runs {
            assert!(run.hits > 0, "the workload must hit");
            assert!(run.sim_s > 0.0 && run.host_ms > 0.0);
            assert_eq!(run.predicates, run.queries * 4);
        }
        // A forced arm concentrates every predicate on its own index.
        let forced = &runs[0];
        assert_eq!(
            forced.routes.iter().map(|(_, c)| *c).sum::<u64>() as usize,
            forced.predicates
        );
        assert_eq!(forced.routes[1].1 as usize, forced.predicates, "all on RX");
        // The planner splits: points on the hash table, ranges elsewhere.
        let planner = runs.last().unwrap();
        assert!(planner.routes[0].1 > 0, "points routed to HT: {planner:?}");

        let (planner, worst) = planner_vs_worst_forced(&runs);
        assert!(
            planner.sim_throughput() >= worst.sim_throughput(),
            "planner {:.3e} ops/s must not lose to the worst forced arm {:.3e} ops/s",
            planner.sim_throughput(),
            worst.sim_throughput()
        );

        let tables = run(&scale);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows.len(), runs.len());
    }
}
