//! Tables & planning: a multi-index table with CDC ingest and a cost-based
//! planner.
//!
//! A three-column fact table (`id`, `ts`, `amount`) carries three named
//! indexes in the full registry grammar — a hash table on `id`, a sharded
//! raytracing index on `ts` and an updatable RXD on `id`. A stream of
//! transactional insert/delete/upsert batches keeps every index in sync
//! (all-or-nothing, with rollback on rejection), while mixed point + range
//! queries are routed predicate-by-predicate to the cheapest eligible index.
//! The planner's choices are printed as an `ExplainPlan` and compared against
//! forcing the whole query through a single index.
//!
//! Run with: `cargo run --release --example table_planner`

use std::sync::Arc;

use rtindex::{registry, Device, IngestBatch, Table, TableQuery, TableSchema};
use rtx_workloads as wl;

fn main() {
    let device = Device::default_eval();
    let registry = Arc::new(registry());
    println!("registered backends: {}", registry.names().join(", "));

    // The table: three u64 columns, `amount` is the fetchable value column.
    // Each index is a registry spec — the full grammar (builder selection,
    // sharding, durability) is available per column.
    let schema = TableSchema::new(["id", "ts", "amount"])
        .with_value_column("amount")
        .with_index("id_ht", "id", "HT")
        .with_index("ts_rx", "ts", "RX:sah@2:range")
        .with_index("id_rxd", "id", "RXD");

    let rows = 1usize << 14;
    let records = wl::table_records(3, rows, rows as u64, 7);
    let mut table =
        Table::load(schema, &device, Arc::clone(&registry), &records).expect("table build");
    println!(
        "\ntable loaded: {} rows, indexes [{}], {:.2} MiB total",
        table.row_count(),
        table.index_names().join(", "),
        table.memory_bytes() as f64 / (1 << 20) as f64
    );

    // CDC ingest: each batch applies transactionally across the row store
    // and all three indexes.
    let config = wl::TableWorkloadConfig::uniform(3, 16, 64, 11);
    let mut inserted = 0usize;
    let mut deleted = 0usize;
    for batch in wl::ingest_batches(&config) {
        let report = table.ingest(&batch).expect("ingest batch");
        inserted += report.inserted_rows as usize;
        deleted += report.deleted_rows as usize;
    }
    println!(
        "ingested 16 CDC batches: +{inserted} rows, -{deleted} rows, {} rows live",
        table.row_count()
    );

    // A poisoned batch: the mid-batch failure (a delete after an insert the
    // row store rejects) rolls the whole batch back.
    let poisoned = IngestBatch::new()
        .upsert(vec![3, 3, 3])
        .insert(vec![9, 9]) // wrong arity -> rejected
        .delete(5);
    let before = table.row_count();
    assert!(table.ingest(&poisoned).is_err());
    assert_eq!(table.row_count(), before);
    println!("poisoned batch rejected, table rolled back to {before} rows");

    // One mixed query: the planner peels the point predicates off to the
    // hash table and sends the range to the raytracing index.
    let query = TableQuery::new()
        .point("id", 42)
        .range("ts", 0, 4096)
        .prefix("id", 1, 6)
        .fetch_values(true);
    let out = table.query(&query).expect("planned query");
    println!("\n{}", out.plan);
    println!(
        "{} predicates answered: {} hits, simulated {:.3} ms",
        query.len(),
        out.hit_count(),
        out.sim_ms()
    );

    // Force the same query through each range-capable index and compare.
    println!("\nforced-index comparison:");
    for name in ["ts_rx", "id_rxd"] {
        // `ts_rx` cannot serve the `id` predicates and vice versa, so force
        // only the predicates each index is eligible for.
        let forced_query = if name == "ts_rx" {
            TableQuery::new().range("ts", 0, 4096).fetch_values(true)
        } else {
            TableQuery::new().point("id", 42).prefix("id", 1, 6)
        };
        let forced = table.query_forced(&forced_query, name).expect("forced");
        let planned = table.query(&forced_query).expect("planned");
        println!(
            "  {name:>6}: forced {:.3} ms vs planner {:.3} ms ({})",
            forced.sim_ms(),
            planned.sim_ms(),
            planned
                .plan
                .routed_index(0)
                .map(|ix| format!("planner picked {ix}"))
                .unwrap_or_else(|| "planner chose a scan".into())
        );
        assert_eq!(forced.hit_count(), planned.hit_count());
    }
    println!("\nplanner answers match every forced execution: OK");
}
