//! Sharded service: run any backend partitioned over N shards, serve mixed
//! batches scattered across the worker pool, and take writes routed through
//! the same partitioner — all by just appending `@N` to the backend name.
//!
//! Run with: `cargo run --release --example sharded_service`
//! Pin the worker pool with e.g. `RTX_WORKERS=8` for reproducible timings.

use rtindex::{registry, Device, IndexSpec, QueryBatch, SecondaryIndex};

fn main() {
    let device = Device::default_eval();
    let registry = registry();

    // A secondary index over one million-ish rows (scaled down so the
    // example runs in moments): key = order id bucket, value = cents.
    let n: u64 = 200_000;
    let keys: Vec<u64> = (0..n).map(|i| (i * 2_654_435_761) % n).collect();
    let values: Vec<u64> = keys.iter().map(|k| k * 3 + 7).collect();
    let spec = IndexSpec::with_values(&device, &keys, &values);

    // The service's read traffic: one submission mixing point lookups and
    // range scans, fetching the value column.
    let batch = QueryBatch::new()
        .points((0..2_000).map(|i| (i * 97) % (n + 50)))
        .ranges((0..200).map(|i| (i * 631 % n, i * 631 % n + 40)))
        .fetch_values(true);

    // Shard-count sweep on the raytracing backend, hash-partitioned:
    // `"RX@4"` builds four RX shards in parallel and scatters every batch
    // across them. Results are identical at every shard count.
    println!(
        "workers: {}, batch: {} ops",
        rtindex::gpu_device::worker_count(),
        batch.len()
    );
    let mut reference_hits = None;
    for name in ["RX@1", "RX@2", "RX@4", "RX@8"] {
        let index = registry.build(name, &spec).expect("sharded build");
        // Time the whole call: the outcome's merged host_time sums the
        // per-shard kernel times, which hides the parallel win.
        let started = std::time::Instant::now();
        let out = index.execute(&batch).expect("mixed batch");
        let batch_ms = started.elapsed().as_secs_f64() * 1e3;
        let hits = out.hit_count();
        assert_eq!(*reference_hits.get_or_insert(hits), hits, "{name}");
        println!(
            "{name:>6}: build {:>7.1} ms (host, parallel), batch {batch_ms:>7.1} ms host / {:.3} ms simulated, {hits} hits",
            index.build_metrics().host_time.as_secs_f64() * 1e3,
            out.sim_ms(),
        );
    }

    // Range partitioning keeps the key order: range lookups split at the
    // shard boundaries instead of broadcasting. Watch the shard balance the
    // way a service operator would.
    let sharded =
        rtindex::ShardedIndex::build(&registry, &rtindex::ShardSpec::range("SA", 4), &spec)
            .expect("range-partitioned build");
    println!("\n{} shard balance:", sharded.name());
    for (name, keys, bytes) in sharded.shard_stats() {
        println!("  {name:>4}: {keys:>7} keys, {bytes:>9} B");
    }

    // Writes route through the same partitioner: an updatable sharded
    // backend ("RXD@4") takes batched inserts/deletes/upserts and stays
    // consistent with the reads.
    let mut store = registry
        .build_updatable("RXD@4", &spec)
        .expect("updatable sharded build");
    let fresh: Vec<u64> = (n..n + 1_000).collect();
    let fresh_values: Vec<u64> = fresh.iter().map(|k| k + 1).collect();
    let report = store.insert(&fresh, &fresh_values).expect("insert");
    println!(
        "\nRXD@4: inserted {} rows in {:.3} simulated ms",
        report.inserted_rows,
        report.simulated_time_s * 1e3
    );
    let report = store.delete(&fresh[..500]).expect("delete");
    println!("RXD@4: deleted {} rows", report.deleted_rows);
    let out = store
        .execute(
            &QueryBatch::new()
                .point(fresh[0]) // deleted again
                .point(fresh[500]) // still live
                .range(n, n + 999)
                .fetch_values(true),
        )
        .expect("post-update batch");
    assert!(!out.results[0].is_hit() && out.results[1].is_hit());
    println!(
        "RXD@4: range over the fresh keys finds {} live rows (value sum {})",
        out.results[2].hit_count, out.results[2].value_sum
    );
}
