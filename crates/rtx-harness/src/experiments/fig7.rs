//! Figure 7: primitive types (triangles vs. spheres vs. AABBs),
//! uncompacted vs. compacted.
//!
//! Three sub-figures: (a) cumulative lookup time, (b) build time, (c) BVH
//! memory footprint. The paper finds triangles fastest to look up (hardware
//! intersection), AABBs cheapest to build, spheres smallest on the wire but
//! largest after BVH construction, and compaction shrinking the footprint by
//! up to ~50 % at negligible cost.

use rtindex_core::{PrimitiveKind, RtIndex, RtIndexConfig};
use rtx_workloads as wl;

use crate::report::{fmt_ms, Table};
use crate::scale::ExperimentScale;

/// Runs the primitive-type comparison (lookup time, build time, memory).
pub fn run(scale: &ExperimentScale) -> Vec<Table> {
    let device = crate::scaled_device(scale);
    let mut lookup_table = Table::new(
        "Figure 7a: primitive types, cumulative lookup time [ms]",
        &["keys [2^n]", "triangle", "sphere", "aabb"],
    );
    let mut build_table = Table::new(
        "Figure 7b: primitive types, simulated build time [ms] (uncompacted / compacted)",
        &["keys [2^n]", "triangle", "sphere", "aabb"],
    );
    let mut memory_table = Table::new(
        "Figure 7c: primitive types, index size [MiB] (uncompacted / compacted)",
        &[
            "keys [2^n]",
            "triangle unc",
            "triangle cmp",
            "sphere unc",
            "sphere cmp",
            "aabb unc",
            "aabb cmp",
        ],
    );

    for exp in scale.key_exponent_sweep(4) {
        let n = 1usize << exp;
        let keys = wl::dense_shuffled(n, scale.seed);
        let lookups = wl::point_lookups(&keys, scale.default_lookups(), scale.seed + 1);

        let mut lookup_row = vec![exp.to_string()];
        let mut build_row = vec![exp.to_string()];
        let mut memory_row = vec![exp.to_string()];
        for kind in PrimitiveKind::all() {
            let compacted_cfg = RtIndexConfig::default().with_primitive(kind);
            let uncompacted_cfg = compacted_cfg.with_compaction(false);

            let uncompacted = RtIndex::build(&device, &keys, uncompacted_cfg).expect("build");
            let compacted = RtIndex::build(&device, &keys, compacted_cfg).expect("build");

            let out = compacted
                .point_lookup_batch(&lookups, None)
                .expect("lookup");
            lookup_row.push(fmt_ms(out.metrics.simulated_time_s * 1e3));
            build_row.push(format!(
                "{} / {}",
                fmt_ms(uncompacted.build_metrics().simulated_time_s * 1e3),
                fmt_ms(compacted.build_metrics().simulated_time_s * 1e3)
            ));
            memory_row.push(format!(
                "{:.2}",
                uncompacted.index_memory_bytes() as f64 / (1 << 20) as f64
            ));
            memory_row.push(format!(
                "{:.2}",
                compacted.index_memory_bytes() as f64 / (1 << 20) as f64
            ));
        }
        lookup_table.push_row(lookup_row);
        build_table.push_row(build_row);
        memory_table.push_row(memory_row);
    }
    vec![lookup_table, build_table, memory_table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangles_use_hardware_and_win_lookup_time() {
        let device = crate::default_device();
        let keys = wl::dense_shuffled(1 << 12, 1);
        let lookups = wl::point_lookups(&keys, 1 << 12, 2);
        let mut sim_ms = std::collections::HashMap::new();
        for kind in PrimitiveKind::all() {
            let index = RtIndex::build(
                &device,
                &keys,
                RtIndexConfig::default().with_primitive(kind),
            )
            .expect("build");
            let out = index.point_lookup_batch(&lookups, None).expect("lookup");
            if kind == PrimitiveKind::Triangle {
                assert!(out.metrics.kernel.rt_triangle_tests > 0);
                assert_eq!(out.metrics.kernel.sw_intersection_tests, 0);
            } else {
                assert!(out.metrics.kernel.sw_intersection_tests > 0);
            }
            sim_ms.insert(kind.name(), out.metrics.simulated_time_s * 1e3);
        }
        // Paper: triangles perform best with a significant margin.
        assert!(sim_ms["triangle"] <= sim_ms["sphere"]);
        assert!(sim_ms["triangle"] <= sim_ms["aabb"]);
    }

    #[test]
    fn compaction_halves_the_footprint_and_spheres_have_smallest_buffers() {
        let device = crate::default_device();
        let keys = wl::dense_shuffled(1 << 12, 1);
        let tri_unc = RtIndex::build(
            &device,
            &keys,
            RtIndexConfig::default().with_compaction(false),
        )
        .expect("build");
        let tri_cmp = RtIndex::build(&device, &keys, RtIndexConfig::default()).expect("build");
        assert!(tri_cmp.index_memory_bytes() < tri_unc.index_memory_bytes());
        let sphere = RtIndex::build(
            &device,
            &keys,
            RtIndexConfig::default().with_primitive(PrimitiveKind::Sphere),
        )
        .expect("build");
        assert!(
            sphere.accel().input().primitive_buffer_bytes()
                < tri_cmp.accel().input().primitive_buffer_bytes()
        );
    }

    #[test]
    fn smoke_returns_three_tables() {
        let tables = run(&ExperimentScale::tiny());
        assert_eq!(tables.len(), 3);
        assert!(!tables[0].rows.is_empty());
    }
}
