//! Quickstart: build an RTIndeX secondary index over a small table column and
//! answer point and range lookups — the running example of Figure 1 in the
//! paper.
//!
//! Run with: `cargo run --release --example quickstart`

use rtindex::{Device, KeyMode, PrimitiveKind, RtIndex, RtIndexConfig, MISS};

fn main() {
    // The simulated GPU (an RTX 4090 by default).
    let device = Device::default_eval();

    // The exemplary table from Figure 1a: rowID -> (Article, Category).
    let articles = ["Juice", "Bread", "Cookies", "Coffee", "Donuts", "Wine"];
    let category: Vec<u64> = vec![26, 25, 29, 23, 29, 27];

    // Build the secondary index on the Category column. The paper's selected
    // configuration is the default: 3D key mode, triangles, compacted BVH,
    // perpendicular point rays, offset range rays.
    let config = RtIndexConfig::default();
    println!(
        "building RX over {} keys (mode: {}, primitive: {})",
        category.len(),
        config.key_mode.name(),
        config.primitive.name()
    );
    let index = RtIndex::build(&device, &category, config).expect("index build");

    // Q1 from the paper: range lookup [23, 25] -> Coffee (rowID 3) and Bread
    // (rowID 1).
    let out = index
        .range_lookup_batch(&[(23, 25)], None)
        .expect("range lookup");
    let result = &out.results[0];
    println!(
        "\nrange lookup [23, 25]: {} qualifying rows",
        result.hit_count
    );
    println!(
        "  first qualifying rowID: {} ({})",
        result.first_row, articles[result.first_row as usize]
    );

    // Point lookups, including a miss. Misses are reported with the reserved
    // MISS rowID, exactly like the paper's result-array convention.
    let queries = vec![29u64, 27, 24];
    let out = index
        .point_lookup_batch(&queries, None)
        .expect("point lookups");
    println!("\npoint lookups:");
    for (query, result) in queries.iter().zip(&out.results) {
        if result.first_row == MISS {
            println!("  key {query}: miss");
        } else {
            println!(
                "  key {query}: {} row(s), first rowID {} ({})",
                result.hit_count, result.first_row, articles[result.first_row as usize]
            );
        }
    }

    // The same index works for the other key representations and primitives.
    for mode in [KeyMode::Naive, KeyMode::Extended] {
        let alt = RtIndex::build(
            &device,
            &category,
            RtIndexConfig::default().with_key_mode(mode),
        )
        .expect("alternate build");
        let hits = alt
            .point_lookup_batch(&queries, None)
            .expect("lookup")
            .hit_count();
        println!(
            "\n{} mode answers the same lookups ({} hits)",
            mode.name(),
            hits
        );
    }
    let aabb = RtIndex::build(
        &device,
        &category,
        RtIndexConfig::default().with_primitive(PrimitiveKind::Aabb),
    )
    .expect("aabb build");
    println!(
        "AABB primitives occupy {} bytes of primitive buffer (triangles: {})",
        aabb.accel().input().primitive_buffer_bytes(),
        index.accel().input().primitive_buffer_bytes()
    );

    // Every lookup batch reports the simulated device time and the hardware
    // counters the evaluation relies on.
    println!(
        "\nlast batch: simulated time {:.3} ms, {} BVH nodes visited, {} triangle tests",
        out.metrics.simulated_time_s * 1e3,
        out.metrics.kernel.bvh_nodes_visited,
        out.metrics.kernel.rt_triangle_tests
    );
}
