//! A minimal 3-component `f32` vector.
//!
//! Only the operations needed by the BVH builders and the primitive
//! intersection routines are implemented; this keeps the type easy to audit
//! and avoids pulling in a linear-algebra dependency.

use std::ops::{Add, AddAssign, Div, Index, Mul, Neg, Sub};

/// A 3-component single-precision vector, the only coordinate type OptiX
/// accepts for scene geometry.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3f {
    /// x component.
    pub x: f32,
    /// y component.
    pub y: f32,
    /// z component.
    pub z: f32,
}

impl Vec3f {
    /// The zero vector.
    pub const ZERO: Vec3f = Vec3f {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a new vector from its components.
    #[inline]
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Vec3f { x, y, z }
    }

    /// Creates a vector whose three components all equal `v`.
    #[inline]
    pub const fn splat(v: f32) -> Self {
        Vec3f { x: v, y: v, z: v }
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Vec3f) -> Vec3f {
        Vec3f::new(
            self.x.min(other.x),
            self.y.min(other.y),
            self.z.min(other.z),
        )
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Vec3f) -> Vec3f {
        Vec3f::new(
            self.x.max(other.x),
            self.y.max(other.y),
            self.z.max(other.z),
        )
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec3f) -> f32 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, other: Vec3f) -> Vec3f {
        Vec3f::new(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )
    }

    /// Squared Euclidean length.
    #[inline]
    pub fn length_squared(self) -> f32 {
        self.dot(self)
    }

    /// Euclidean length.
    #[inline]
    pub fn length(self) -> f32 {
        self.length_squared().sqrt()
    }

    /// Returns the vector scaled to unit length.
    ///
    /// Returns the zero vector unchanged (the raytracing code never
    /// normalises degenerate directions, but the guard keeps the helper
    /// total).
    #[inline]
    pub fn normalized(self) -> Vec3f {
        let len = self.length();
        if len > 0.0 {
            self / len
        } else {
            self
        }
    }

    /// Index of the component with the largest absolute value (0 = x, 1 = y,
    /// 2 = z). Used by the watertight triangle intersection to pick the
    /// projection axis.
    #[inline]
    pub fn max_dimension(self) -> usize {
        let ax = self.x.abs();
        let ay = self.y.abs();
        let az = self.z.abs();
        if ax >= ay && ax >= az {
            0
        } else if ay >= az {
            1
        } else {
            2
        }
    }

    /// Largest component value.
    #[inline]
    pub fn max_component(self) -> f32 {
        self.x.max(self.y).max(self.z)
    }

    /// Smallest component value.
    #[inline]
    pub fn min_component(self) -> f32 {
        self.x.min(self.y).min(self.z)
    }

    /// Component-wise absolute value.
    #[inline]
    pub fn abs(self) -> Vec3f {
        Vec3f::new(self.x.abs(), self.y.abs(), self.z.abs())
    }

    /// Returns true when all three components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Component-wise multiplication (Hadamard product).
    #[inline]
    pub fn mul_elem(self, other: Vec3f) -> Vec3f {
        Vec3f::new(self.x * other.x, self.y * other.y, self.z * other.z)
    }

    /// Returns the component at `axis` (0 = x, 1 = y, 2 = z).
    ///
    /// # Panics
    /// Panics if `axis > 2`.
    #[inline]
    pub fn axis(self, axis: usize) -> f32 {
        match axis {
            0 => self.x,
            1 => self.y,
            2 => self.z,
            _ => panic!("Vec3f axis out of range: {axis}"),
        }
    }
}

impl Add for Vec3f {
    type Output = Vec3f;
    #[inline]
    fn add(self, rhs: Vec3f) -> Vec3f {
        Vec3f::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3f {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3f) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3f {
    type Output = Vec3f;
    #[inline]
    fn sub(self, rhs: Vec3f) -> Vec3f {
        Vec3f::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl Mul<f32> for Vec3f {
    type Output = Vec3f;
    #[inline]
    fn mul(self, rhs: f32) -> Vec3f {
        Vec3f::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3f> for f32 {
    type Output = Vec3f;
    #[inline]
    fn mul(self, rhs: Vec3f) -> Vec3f {
        rhs * self
    }
}

impl Div<f32> for Vec3f {
    type Output = Vec3f;
    #[inline]
    fn div(self, rhs: f32) -> Vec3f {
        Vec3f::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl Neg for Vec3f {
    type Output = Vec3f;
    #[inline]
    fn neg(self) -> Vec3f {
        Vec3f::new(-self.x, -self.y, -self.z)
    }
}

impl Index<usize> for Vec3f {
    type Output = f32;
    #[inline]
    fn index(&self, index: usize) -> &f32 {
        match index {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3f index out of range: {index}"),
        }
    }
}

impl From<[f32; 3]> for Vec3f {
    #[inline]
    fn from(v: [f32; 3]) -> Self {
        Vec3f::new(v[0], v[1], v[2])
    }
}

impl From<Vec3f> for [f32; 3] {
    #[inline]
    fn from(v: Vec3f) -> Self {
        [v.x, v.y, v.z]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_basics() {
        let a = Vec3f::new(1.0, 2.0, 3.0);
        let b = Vec3f::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3f::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3f::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3f::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, Vec3f::new(2.0, 4.0, 6.0));
        assert_eq!(a / 2.0, Vec3f::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3f::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn dot_and_cross() {
        let x = Vec3f::new(1.0, 0.0, 0.0);
        let y = Vec3f::new(0.0, 1.0, 0.0);
        let z = Vec3f::new(0.0, 0.0, 1.0);
        assert_eq!(x.dot(y), 0.0);
        assert_eq!(x.cross(y), z);
        assert_eq!(y.cross(z), x);
        assert_eq!(z.cross(x), y);
    }

    #[test]
    fn length_and_normalize() {
        let v = Vec3f::new(3.0, 4.0, 0.0);
        assert_eq!(v.length_squared(), 25.0);
        assert_eq!(v.length(), 5.0);
        let n = v.normalized();
        assert!((n.length() - 1.0).abs() < 1e-6);
        assert_eq!(Vec3f::ZERO.normalized(), Vec3f::ZERO);
    }

    #[test]
    fn min_max_and_components() {
        let a = Vec3f::new(1.0, 5.0, -2.0);
        let b = Vec3f::new(2.0, 4.0, -3.0);
        assert_eq!(a.min(b), Vec3f::new(1.0, 4.0, -3.0));
        assert_eq!(a.max(b), Vec3f::new(2.0, 5.0, -2.0));
        assert_eq!(a.max_component(), 5.0);
        assert_eq!(a.min_component(), -2.0);
        assert_eq!(a.max_dimension(), 1);
        assert_eq!(Vec3f::new(-7.0, 1.0, 2.0).max_dimension(), 0);
        assert_eq!(Vec3f::new(0.0, 1.0, 2.0).max_dimension(), 2);
    }

    #[test]
    fn indexing_and_axis() {
        let v = Vec3f::new(1.0, 2.0, 3.0);
        assert_eq!(v[0], 1.0);
        assert_eq!(v[1], 2.0);
        assert_eq!(v[2], 3.0);
        assert_eq!(v.axis(2), 3.0);
    }

    #[test]
    #[should_panic]
    fn indexing_out_of_range_panics() {
        let v = Vec3f::ZERO;
        let _ = v[3];
    }

    #[test]
    fn conversions() {
        let arr = [1.0f32, 2.0, 3.0];
        let v: Vec3f = arr.into();
        let back: [f32; 3] = v.into();
        assert_eq!(arr, back);
    }

    #[test]
    fn splat_and_abs_and_finite() {
        assert_eq!(Vec3f::splat(2.5), Vec3f::new(2.5, 2.5, 2.5));
        assert_eq!(Vec3f::new(-1.0, 2.0, -3.0).abs(), Vec3f::new(1.0, 2.0, 3.0));
        assert!(Vec3f::new(1.0, 2.0, 3.0).is_finite());
        assert!(!Vec3f::new(f32::NAN, 0.0, 0.0).is_finite());
        assert!(!Vec3f::new(0.0, f32::INFINITY, 0.0).is_finite());
    }

    #[test]
    fn mul_elem_multiplies_componentwise() {
        let a = Vec3f::new(1.0, 2.0, 3.0);
        let b = Vec3f::new(4.0, 5.0, 6.0);
        assert_eq!(a.mul_elem(b), Vec3f::new(4.0, 10.0, 18.0));
    }
}
