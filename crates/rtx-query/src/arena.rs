//! Reusable execution scratch: [`ExecArena`] and the concurrent
//! [`ArenaPool`].
//!
//! The mixed-batch executor ([`SecondaryIndex::execute`]) regroups every
//! submission into homogeneous point/range runs before launching the
//! backend hooks. Done naively that regrouping allocates four scratch
//! vectors per execution — slot maps and key/bound buffers — which at
//! service rates (thousands of fused submissions per second) turns the
//! allocator into a fixed per-submission tax. An [`ExecArena`] owns those
//! buffers and is reused across submissions via
//! [`execute_in`](crate::SecondaryIndex::execute_in): the buffers are cleared
//! (length, not capacity) and refilled, so steady-state execution performs
//! no scratch allocation at all.
//!
//! [`ArenaPool`] extends the same reuse to concurrent executors — the
//! sharded scatter path checks one arena out per in-flight shard task and
//! returns it afterwards, so a fixed working set of arenas serves any
//! number of submissions.
//!
//! [`SecondaryIndex::execute`]: crate::SecondaryIndex::execute
//! [`execute_in`]: crate::SecondaryIndex::execute_in

use std::sync::Mutex;

/// Reusable scratch buffers for one mixed-batch execution.
///
/// Obtain one with [`ExecArena::new`] (or from an [`ArenaPool`]) and thread
/// it through [`execute_in`](crate::SecondaryIndex::execute_in) calls. The
/// arena carries no result state between executions — every call clears and
/// refills it — so reusing one arena across different backends and batches
/// is always correct; reuse only buys back the allocations.
#[derive(Debug, Default)]
pub struct ExecArena {
    /// Submission-order slots of the point lookups.
    pub(crate) point_slots: Vec<usize>,
    /// Point keys, contiguous, parallel to `point_slots`.
    pub(crate) point_keys: Vec<u64>,
    /// Submission-order slots of the non-inverted range lookups.
    pub(crate) range_slots: Vec<usize>,
    /// Inclusive range bounds, parallel to `range_slots`.
    pub(crate) range_bounds: Vec<(u64, u64)>,
}

impl ExecArena {
    /// A fresh arena; buffers grow on first use and are kept afterwards.
    pub fn new() -> Self {
        ExecArena::default()
    }

    /// Clears every buffer, keeping capacity.
    pub(crate) fn clear(&mut self) {
        self.point_slots.clear();
        self.point_keys.clear();
        self.range_slots.clear();
        self.range_bounds.clear();
    }

    /// Total capacity currently retained, in entries (a reuse diagnostic).
    pub fn capacity(&self) -> usize {
        self.point_slots.capacity()
            + self.point_keys.capacity()
            + self.range_slots.capacity()
            + self.range_bounds.capacity()
    }
}

/// A concurrent free list of [`ExecArena`]s.
///
/// Executors that fan work out (the sharded scatter path, parallel chunk
/// dispatch) check an arena out per in-flight task and return it when the
/// task completes; the pool grows to the peak concurrency ever observed and
/// then serves every later submission allocation-free.
#[derive(Debug, Default)]
pub struct ArenaPool {
    free: Mutex<Vec<ExecArena>>,
}

impl ArenaPool {
    /// An empty pool.
    pub fn new() -> Self {
        ArenaPool::default()
    }

    /// Checks an arena out, creating a fresh one when the pool is empty.
    pub fn check_out(&self) -> ExecArena {
        self.free
            .lock()
            .expect("arena pool poisoned")
            .pop()
            .unwrap_or_default()
    }

    /// Returns an arena to the pool for later reuse.
    pub fn check_in(&self, arena: ExecArena) {
        self.free.lock().expect("arena pool poisoned").push(arena);
    }

    /// Runs `f` with a checked-out arena, returning it afterwards (also on
    /// the error path — the arena is returned before `f`'s result is
    /// propagated).
    pub fn with<R>(&self, f: impl FnOnce(&mut ExecArena) -> R) -> R {
        let mut arena = self.check_out();
        let result = f(&mut arena);
        self.check_in(arena);
        result
    }

    /// Number of arenas currently parked in the pool.
    pub fn idle(&self) -> usize {
        self.free.lock().expect("arena pool poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_reuse_keeps_capacity() {
        let mut arena = ExecArena::new();
        arena.point_slots.extend(0..100);
        arena.point_keys.extend(0..100);
        arena.range_slots.extend(0..10);
        arena.range_bounds.extend((0..10).map(|i| (i, i + 1)));
        let cap = arena.capacity();
        assert!(cap >= 220);
        arena.clear();
        assert!(arena.point_slots.is_empty() && arena.range_bounds.is_empty());
        assert_eq!(arena.capacity(), cap, "clear keeps capacity");
    }

    #[test]
    fn pool_round_trips_arenas() {
        let pool = ArenaPool::new();
        assert_eq!(pool.idle(), 0);
        let mut a = pool.check_out();
        a.point_keys.extend(0..1000);
        a.point_keys.clear();
        let cap = a.capacity();
        pool.check_in(a);
        assert_eq!(pool.idle(), 1);
        // The same arena (same capacity) comes back out.
        let b = pool.check_out();
        assert_eq!(b.capacity(), cap);
        assert_eq!(pool.idle(), 0);
        pool.check_in(b);
        pool.with(|arena| arena.point_slots.push(1));
        assert_eq!(pool.idle(), 1);
    }
}
