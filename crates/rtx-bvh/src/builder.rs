//! BVH construction.
//!
//! Two builders are provided:
//!
//! * [`build_sah`] — a top-down binned surface-area-heuristic builder. This
//!   is the "quality" builder: slower to construct, cheaper to traverse.
//! * [`build_lbvh`] — an LBVH-style builder that sorts primitives by the
//!   Morton code of their centroid and splits the sorted range recursively.
//!   GPU drivers (including, most likely, the one behind `optixAccelBuild`)
//!   use this family of builders because construction parallelises well.
//!
//! Both produce the same flattened [`Bvh`] representation and identical
//! traversal semantics, so experiments can ablate the builder choice.

use rtx_math::morton::morton_in_bounds;
use rtx_math::Aabb;

use crate::node::{Bvh, BvhNode};
use crate::primitives::PrimitiveSet;

/// Which construction algorithm to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BuilderKind {
    /// Binned surface-area-heuristic builder.
    Sah,
    /// Morton-code (LBVH) builder — the default, matching GPU behaviour.
    #[default]
    Lbvh,
}

/// Build-time options, mirroring the `OptixAccelBuildOptions` flags RTIndeX
/// uses.
#[derive(Debug, Clone, Copy)]
pub struct BuildConfig {
    /// Maximum number of primitives per leaf.
    pub max_leaf_size: usize,
    /// Number of SAH bins per axis (only used by the SAH builder).
    pub sah_bins: usize,
    /// Whether the structure may later be refitted
    /// (`OPTIX_BUILD_FLAG_ALLOW_UPDATE`). Disables compaction.
    pub allow_update: bool,
    /// Which builder to run.
    pub builder: BuilderKind,
}

impl Default for BuildConfig {
    fn default() -> Self {
        BuildConfig {
            max_leaf_size: 4,
            sah_bins: 16,
            allow_update: false,
            builder: BuilderKind::Lbvh,
        }
    }
}

impl BuildConfig {
    /// Returns a config with `allow_update` enabled.
    pub fn updatable(mut self) -> Self {
        self.allow_update = true;
        self
    }

    /// Returns a config using the SAH builder.
    pub fn with_sah(mut self) -> Self {
        self.builder = BuilderKind::Sah;
        self
    }
}

/// Builds a BVH over `prims` using the builder selected in `config`.
pub fn build(prims: &dyn PrimitiveSet, config: &BuildConfig) -> Bvh {
    match config.builder {
        BuilderKind::Sah => build_sah(prims, config),
        BuilderKind::Lbvh => build_lbvh(prims, config),
    }
}

/// Per-primitive info snapshotted before construction.
pub(crate) struct PrimInfo {
    pub(crate) index: u32,
    pub(crate) bounds: Aabb,
    pub(crate) centroid: rtx_math::Vec3f,
}

pub(crate) fn collect_prim_info(prims: &dyn PrimitiveSet) -> Vec<PrimInfo> {
    (0..prims.len())
        .map(|i| PrimInfo {
            index: i as u32,
            bounds: prims.bounds(i),
            centroid: prims.centroid(i),
        })
        .collect()
}

/// One pending range of the iterative builders. Only right children carry a
/// fix-up: the left child is always the next node in pre-order, so its
/// parent needs no patching.
struct Frame {
    lo: usize,
    hi: usize,
    /// Index of the interior node whose `right_child` this range's root is.
    fixup: Option<usize>,
}

/// Builds a BVH with the binned SAH algorithm.
pub fn build_sah(prims: &dyn PrimitiveSet, config: &BuildConfig) -> Bvh {
    let mut info = collect_prim_info(prims);
    let mut nodes = Vec::with_capacity(prims.len().max(1) * 2);
    let mut order = Vec::with_capacity(prims.len());
    if !info.is_empty() {
        build_sah_range(&mut info[..], &mut nodes, &mut order, config);
    }
    Bvh::new(nodes, order, config.allow_update)
}

/// The SAH split position for `info`: sorts the slice along the chosen axis
/// and returns the split index (always in `1..len`). Shared by the one-shot
/// builder and the staged pipeline's top-level splitting so both produce the
/// same tree.
pub(crate) fn sah_split_position(info: &mut [PrimInfo], config: &BuildConfig) -> usize {
    let centroid_bounds = info
        .iter()
        .fold(Aabb::EMPTY, |acc, p| acc.union_point(p.centroid));
    let axis = centroid_bounds.longest_axis();
    let extent = centroid_bounds.extent().axis(axis);

    let split = if extent <= f32::EPSILON {
        // All centroids coincide (duplicate keys): split in the middle to
        // keep the tree balanced.
        info.len() / 2
    } else {
        binned_sah_split(info, axis, &centroid_bounds, config.sah_bins).unwrap_or(info.len() / 2)
    };
    split.clamp(1, info.len() - 1)
}

/// Builds the subtree for `info` with an explicit work stack, appending
/// nodes in pre-order (identical to the historical recursive builder, but
/// immune to call-stack overflow on adversarial inputs whose splits
/// degenerate into long spines). Returns the index of the subtree root.
pub(crate) fn build_sah_range(
    info: &mut [PrimInfo],
    nodes: &mut Vec<BvhNode>,
    order: &mut Vec<u32>,
    config: &BuildConfig,
) -> usize {
    let root = nodes.len();
    let mut stack = vec![Frame {
        lo: 0,
        hi: info.len(),
        fixup: None,
    }];
    while let Some(Frame { lo, hi, fixup }) = stack.pop() {
        let node_index = nodes.len();
        if let Some(parent) = fixup {
            nodes[parent].right_child = node_index as u32;
        }
        let slice = &mut info[lo..hi];
        let bounds = slice
            .iter()
            .fold(Aabb::EMPTY, |acc, p| acc.union(&p.bounds));

        if slice.len() <= config.max_leaf_size {
            let first = order.len() as u32;
            order.extend(slice.iter().map(|p| p.index));
            nodes.push(BvhNode::leaf(bounds, first, slice.len() as u32));
            continue;
        }

        // Partition is implicit: `sah_split_position` sorts by centroid
        // along the chosen axis, so splitting the range is enough.
        let split = sah_split_position(slice, config);
        nodes.push(BvhNode::interior(bounds, 0));
        // Right pushed first so the left child pops next (pre-order).
        stack.push(Frame {
            lo: lo + split,
            hi,
            fixup: Some(node_index),
        });
        stack.push(Frame {
            lo,
            hi: lo + split,
            fixup: None,
        });
    }
    root
}

/// Sorts `info` along `axis` and returns the SAH-optimal split position.
fn binned_sah_split(
    info: &mut [PrimInfo],
    axis: usize,
    centroid_bounds: &Aabb,
    bin_count: usize,
) -> Option<usize> {
    info.sort_unstable_by(|a, b| {
        a.centroid
            .axis(axis)
            .partial_cmp(&b.centroid.axis(axis))
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let lo = centroid_bounds.min.axis(axis);
    let hi = centroid_bounds.max.axis(axis);
    let extent = hi - lo;
    if extent <= 0.0 || bin_count < 2 {
        return None;
    }

    // Assign primitives to bins.
    let bin_of = |c: f32| -> usize {
        let rel = ((c - lo) / extent * bin_count as f32) as usize;
        rel.min(bin_count - 1)
    };
    let mut bin_bounds = vec![Aabb::EMPTY; bin_count];
    let mut bin_counts = vec![0usize; bin_count];
    for p in info.iter() {
        let b = bin_of(p.centroid.axis(axis));
        bin_bounds[b] = bin_bounds[b].union(&p.bounds);
        bin_counts[b] += 1;
    }

    // Sweep to find the cheapest split between bins.
    let mut best_cost = f32::INFINITY;
    let mut best_bin = None;
    for split_bin in 1..bin_count {
        let (mut left_b, mut right_b) = (Aabb::EMPTY, Aabb::EMPTY);
        let (mut left_n, mut right_n) = (0usize, 0usize);
        for b in 0..split_bin {
            left_b = left_b.union(&bin_bounds[b]);
            left_n += bin_counts[b];
        }
        for b in split_bin..bin_count {
            right_b = right_b.union(&bin_bounds[b]);
            right_n += bin_counts[b];
        }
        if left_n == 0 || right_n == 0 {
            continue;
        }
        let cost = left_b.surface_area() * left_n as f32 + right_b.surface_area() * right_n as f32;
        if cost < best_cost {
            best_cost = cost;
            best_bin = Some(split_bin);
        }
    }

    best_bin.map(|split_bin| {
        info.iter()
            .position(|p| bin_of(p.centroid.axis(axis)) >= split_bin)
            .unwrap_or(info.len() / 2)
    })
}

/// Builds a BVH with the LBVH (Morton sort) algorithm.
pub fn build_lbvh(prims: &dyn PrimitiveSet, config: &BuildConfig) -> Bvh {
    let keyed = morton_sorted(collect_prim_info(prims));
    let mut nodes = Vec::with_capacity(keyed.len().max(1) * 2);
    let mut order = Vec::with_capacity(keyed.len());
    if !keyed.is_empty() {
        build_lbvh_range(&keyed[..], &mut nodes, &mut order, config);
    }
    Bvh::new(nodes, order, config.allow_update)
}

/// Keys the snapshotted primitives by the Morton code of their centroid and
/// sorts them (code, then primitive index for a stable total order). Shared
/// with the staged pipeline.
pub(crate) fn morton_sorted(info: Vec<PrimInfo>) -> Vec<(u64, PrimInfo)> {
    let scene_bounds = info
        .iter()
        .fold(Aabb::EMPTY, |acc, p| acc.union_point(p.centroid));
    let mut keyed: Vec<(u64, PrimInfo)> = info
        .into_iter()
        .map(|p| (morton_in_bounds(p.centroid, &scene_bounds), p))
        .collect();
    keyed.sort_unstable_by_key(|(code, p)| (*code, p.index));
    keyed
}

/// Builds the subtree over the Morton-sorted slice `sorted` with an
/// explicit work stack, appending nodes in pre-order (identical layout to
/// the historical recursive builder).
pub(crate) fn build_lbvh_range(
    sorted: &[(u64, PrimInfo)],
    nodes: &mut Vec<BvhNode>,
    order: &mut Vec<u32>,
    config: &BuildConfig,
) -> usize {
    let root = nodes.len();
    let mut stack = vec![Frame {
        lo: 0,
        hi: sorted.len(),
        fixup: None,
    }];
    while let Some(Frame { lo, hi, fixup }) = stack.pop() {
        let node_index = nodes.len();
        if let Some(parent) = fixup {
            nodes[parent].right_child = node_index as u32;
        }
        let slice = &sorted[lo..hi];
        let bounds = slice
            .iter()
            .fold(Aabb::EMPTY, |acc, (_, p)| acc.union(&p.bounds));

        if slice.len() <= config.max_leaf_size {
            let first = order.len() as u32;
            order.extend(slice.iter().map(|(_, p)| p.index));
            nodes.push(BvhNode::leaf(bounds, first, slice.len() as u32));
            continue;
        }

        let split = lbvh_split_position(slice);
        nodes.push(BvhNode::interior(bounds, 0));
        stack.push(Frame {
            lo: lo + split,
            hi,
            fixup: Some(node_index),
        });
        stack.push(Frame {
            lo,
            hi: lo + split,
            fixup: None,
        });
    }
    root
}

/// Chooses the split position for an LBVH node: the point where the highest
/// differing Morton bit flips; falls back to the middle when all codes are
/// equal (duplicate keys).
pub(crate) fn lbvh_split_position(sorted: &[(u64, PrimInfo)]) -> usize {
    let first = sorted.first().map(|(c, _)| *c).unwrap_or(0);
    let last = sorted.last().map(|(c, _)| *c).unwrap_or(0);
    if first == last {
        return sorted.len() / 2;
    }
    // Highest bit in which first and last differ.
    let diff_bit = 63 - (first ^ last).leading_zeros() as u64;
    let mask = 1u64 << diff_bit;
    let prefix = first & !(mask | (mask - 1));
    let threshold = prefix | mask;
    // First element whose code has the bit set.
    match sorted.binary_search_by(|(c, _)| {
        if *c < threshold {
            std::cmp::Ordering::Less
        } else {
            std::cmp::Ordering::Greater
        }
    }) {
        Ok(pos) | Err(pos) => pos.clamp(1, sorted.len() - 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives::TriangleSet;
    use rtx_math::{Triangle, Vec3f};

    fn line_of_triangles(n: usize) -> TriangleSet {
        TriangleSet::new(
            (0..n)
                .map(|i| Triangle::key_triangle(Vec3f::new(i as f32, 0.0, 0.0), 0.4))
                .collect(),
        )
    }

    fn check_build(builder: BuilderKind, n: usize) -> Bvh {
        let prims = line_of_triangles(n);
        let config = BuildConfig {
            builder,
            ..BuildConfig::default()
        };
        let bvh = build(&prims, &config);
        bvh.validate()
            .unwrap_or_else(|e| panic!("{builder:?} with {n} prims invalid: {e}"));
        assert_eq!(bvh.primitive_count(), n);
        bvh
    }

    #[test]
    fn sah_build_produces_valid_bvh() {
        for n in [0, 1, 2, 3, 5, 17, 100, 1000] {
            check_build(BuilderKind::Sah, n);
        }
    }

    #[test]
    fn lbvh_build_produces_valid_bvh() {
        for n in [0, 1, 2, 3, 5, 17, 100, 1000] {
            check_build(BuilderKind::Lbvh, n);
        }
    }

    #[test]
    fn builds_handle_duplicate_positions() {
        // 64 primitives all at the same location (maximum key multiplicity).
        let prims = TriangleSet::new(
            (0..64)
                .map(|_| Triangle::key_triangle(Vec3f::new(7.0, 0.0, 0.0), 0.4))
                .collect(),
        );
        for builder in [BuilderKind::Sah, BuilderKind::Lbvh] {
            let bvh = build(
                &prims,
                &BuildConfig {
                    builder,
                    ..Default::default()
                },
            );
            bvh.validate().expect("valid");
            assert_eq!(bvh.primitive_count(), 64);
        }
    }

    #[test]
    fn root_bounds_cover_all_primitives() {
        let prims = line_of_triangles(256);
        let bvh = build(&prims, &BuildConfig::default());
        let root = bvh.root_bounds();
        for i in 0..prims.len() {
            assert!(
                root.contains_aabb(&prims.bounds(i)),
                "primitive {i} escapes root bounds"
            );
        }
    }

    #[test]
    fn depth_is_logarithmic_for_uniform_input() {
        let prims = line_of_triangles(1024);
        for builder in [BuilderKind::Sah, BuilderKind::Lbvh] {
            let bvh = build(
                &prims,
                &BuildConfig {
                    builder,
                    ..Default::default()
                },
            );
            // 1024 prims / 4 per leaf = 256 leaves -> ideal depth 9; allow
            // slack but reject degenerate linear trees.
            assert!(
                bvh.depth() <= 20,
                "{builder:?} depth {} too large",
                bvh.depth()
            );
        }
    }

    #[test]
    fn leaf_size_limit_is_respected() {
        let prims = line_of_triangles(333);
        let config = BuildConfig {
            max_leaf_size: 2,
            ..Default::default()
        };
        let bvh = build(&prims, &config);
        for node in &bvh.nodes {
            if node.is_leaf() {
                assert!(node.prim_count <= 2);
            }
        }
    }

    #[test]
    fn updatable_config_marks_bvh() {
        let prims = line_of_triangles(16);
        let bvh = build(&prims, &BuildConfig::default().updatable());
        assert!(bvh.allows_update());
        let bvh2 = build(&prims, &BuildConfig::default().with_sah());
        assert!(!bvh2.allows_update());
    }

    #[test]
    fn sah_quality_not_worse_than_lbvh_on_uniform_line() {
        use crate::quality::BvhQuality;
        let prims = line_of_triangles(512);
        let sah = build(
            &prims,
            &BuildConfig {
                builder: BuilderKind::Sah,
                ..Default::default()
            },
        );
        let lbvh = build(
            &prims,
            &BuildConfig {
                builder: BuilderKind::Lbvh,
                ..Default::default()
            },
        );
        let q_sah = BvhQuality::measure(&sah);
        let q_lbvh = BvhQuality::measure(&lbvh);
        assert!(
            q_sah.sah_cost <= q_lbvh.sah_cost * 1.5,
            "SAH cost {} should not be much worse than LBVH cost {}",
            q_sah.sah_cost,
            q_lbvh.sah_cost
        );
    }
}
