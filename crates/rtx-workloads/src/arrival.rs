//! Open-loop arrival processes for latency experiments.
//!
//! Throughput experiments are *closed-loop*: each client submits its next
//! batch as soon as the previous one returns, so the offered load adapts to
//! the service and latency never builds a queue. Measuring tail latency
//! requires the opposite — an *open-loop* driver that submits on a fixed
//! schedule regardless of completions, so a slow service accumulates
//! backlog exactly as a production ingress would.
//!
//! [`ArrivalSchedule`] is that schedule: a deterministic, seeded sequence of
//! arrival offsets from an experiment's start instant. The Poisson
//! constructor draws exponential inter-arrival gaps (the classic open-loop
//! model); the paced constructor spaces events evenly. [`OpenLoopDriver`]
//! walks a schedule against a real clock, sleeping until each deadline.
//!
//! Schedules are pure data — the simulated-clock unit tests in `rtx-serve`
//! and the wall-clock harness in `rtx-harness` share the same sequences.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic open-loop arrival schedule: monotone offsets (from an
/// arbitrary start instant) at which events fire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrivalSchedule {
    /// Arrival offsets in nanoseconds, non-decreasing.
    offsets_ns: Vec<u64>,
}

impl ArrivalSchedule {
    /// Poisson process: `count` arrivals with exponential inter-arrival gaps
    /// of mean `mean_gap`, drawn deterministically from `seed`. Individual
    /// gaps are capped at 20x the mean so one extreme draw cannot dominate
    /// a short experiment.
    pub fn poisson(count: usize, mean_gap: Duration, seed: u64) -> Self {
        let mean_ns = mean_gap.as_nanos() as f64;
        assert!(mean_ns > 0.0, "the mean inter-arrival gap must be positive");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x4152_5249_5641_4C53);
        let mut now = 0u64;
        let offsets_ns = (0..count)
            .map(|_| {
                let u: f64 = rng.gen_range(0.0..1.0);
                // Inverse-CDF exponential draw; (1 - u) in (0, 1].
                let gap = (-(1.0 - u).ln() * mean_ns).min(20.0 * mean_ns);
                now = now.saturating_add(gap as u64);
                now
            })
            .collect();
        ArrivalSchedule { offsets_ns }
    }

    /// Evenly paced arrivals: event `i` fires at `(i + 1) * gap`.
    pub fn paced(count: usize, gap: Duration) -> Self {
        let gap_ns = gap.as_nanos() as u64;
        ArrivalSchedule {
            offsets_ns: (1..=count as u64).map(|i| i * gap_ns).collect(),
        }
    }

    /// Number of scheduled arrivals.
    pub fn len(&self) -> usize {
        self.offsets_ns.len()
    }

    /// True when no arrivals are scheduled.
    pub fn is_empty(&self) -> bool {
        self.offsets_ns.is_empty()
    }

    /// Offset of arrival `i` from the schedule's start.
    pub fn offset(&self, i: usize) -> Duration {
        Duration::from_nanos(self.offsets_ns[i])
    }

    /// All offsets from the schedule's start, in order.
    pub fn offsets(&self) -> impl Iterator<Item = Duration> + '_ {
        self.offsets_ns.iter().map(|&ns| Duration::from_nanos(ns))
    }

    /// Offset of the last arrival (the schedule's span); zero when empty.
    pub fn span(&self) -> Duration {
        Duration::from_nanos(self.offsets_ns.last().copied().unwrap_or(0))
    }

    /// Mean inter-arrival gap actually realised by the schedule; zero when
    /// fewer than one arrival is scheduled.
    pub fn mean_gap(&self) -> Duration {
        if self.offsets_ns.is_empty() {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.span().as_nanos() as u64 / self.offsets_ns.len() as u64)
    }
}

/// Walks an [`ArrivalSchedule`] against the real clock: each
/// [`wait_next`](OpenLoopDriver::wait_next) call sleeps until the next
/// scheduled arrival and returns its index — never earlier, and without
/// skipping events when the driver falls behind (late events fire
/// immediately, preserving the open-loop backlog).
#[derive(Debug)]
pub struct OpenLoopDriver {
    schedule: ArrivalSchedule,
    start: Instant,
    next: usize,
}

impl OpenLoopDriver {
    /// Starts the schedule's clock now.
    pub fn start(schedule: ArrivalSchedule) -> Self {
        OpenLoopDriver {
            schedule,
            start: Instant::now(),
            next: 0,
        }
    }

    /// The instant the experiment's clock started.
    pub fn started_at(&self) -> Instant {
        self.start
    }

    /// Blocks until the next scheduled arrival and returns its index, or
    /// `None` when the schedule is exhausted.
    pub fn wait_next(&mut self) -> Option<usize> {
        if self.next >= self.schedule.len() {
            return None;
        }
        let i = self.next;
        self.next += 1;
        let deadline = self.start + self.schedule.offset(i);
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Some(i);
            }
            let remaining = deadline - now;
            if remaining > Duration::from_micros(200) {
                std::thread::sleep(remaining - Duration::from_micros(100));
            } else {
                std::thread::yield_now();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_schedules_are_deterministic_and_monotone() {
        let a = ArrivalSchedule::poisson(5_000, Duration::from_micros(10), 9);
        let b = ArrivalSchedule::poisson(5_000, Duration::from_micros(10), 9);
        assert_eq!(a, b);
        assert_ne!(
            a,
            ArrivalSchedule::poisson(5_000, Duration::from_micros(10), 10)
        );
        let offsets: Vec<Duration> = a.offsets().collect();
        assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(a.len(), 5_000);
    }

    #[test]
    fn poisson_mean_gap_tracks_the_target() {
        let target = Duration::from_micros(50);
        let schedule = ArrivalSchedule::poisson(20_000, target, 3);
        let mean = schedule.mean_gap().as_nanos() as f64;
        let want = target.as_nanos() as f64;
        assert!(
            (mean - want).abs() < 0.1 * want,
            "realised mean {mean}ns vs target {want}ns"
        );
    }

    #[test]
    fn paced_schedules_are_exact() {
        let schedule = ArrivalSchedule::paced(4, Duration::from_millis(2));
        let offsets: Vec<Duration> = schedule.offsets().collect();
        assert_eq!(
            offsets,
            vec![
                Duration::from_millis(2),
                Duration::from_millis(4),
                Duration::from_millis(6),
                Duration::from_millis(8),
            ]
        );
        assert_eq!(schedule.span(), Duration::from_millis(8));
        assert_eq!(schedule.mean_gap(), Duration::from_millis(2));
        assert!(ArrivalSchedule::paced(0, Duration::from_millis(1)).is_empty());
    }

    #[test]
    fn driver_fires_every_event_no_earlier_than_scheduled() {
        let schedule = ArrivalSchedule::paced(5, Duration::from_micros(300));
        let mut driver = OpenLoopDriver::start(schedule.clone());
        let mut fired = Vec::new();
        while let Some(i) = driver.wait_next() {
            let elapsed = driver.started_at().elapsed();
            assert!(
                elapsed >= schedule.offset(i),
                "event {i} fired at {elapsed:?}, scheduled {:?}",
                schedule.offset(i)
            );
            fired.push(i);
        }
        assert_eq!(fired, vec![0, 1, 2, 3, 4]);
    }
}
