//! [`ShardedIndex`]: N inner backends behind one [`SecondaryIndex`].
//!
//! The key space is cut by a [`KeyRouter`] (hash or contiguous-range, see
//! [`partition`](crate::partition)); each shard runs its own inner backend
//! built from the registry, over the slice of the column pair it owns. A
//! mixed [`QueryBatch`] is planned into per-shard sub-batches
//! ([`ScatterPlan`]), the sub-batches execute concurrently on the
//! `gpu-device` worker pool, and the per-shard outcomes are gathered back
//! into submission order with merged launch metrics.
//!
//! ## Global rowIDs
//!
//! Inner backends number rows by their position in the shard's local
//! column, but callers must see the *global* rowIDs of the original column
//! (a sharded backend answers exactly like its unsharded counterpart, which
//! the property suite asserts). Each shard therefore keeps a local→global
//! row mirror: built from the scatter of the build column, extended by
//! routed inserts in submission order, thinned by deletes and collapsed
//! when the inner backend reports a reorganisation — the same
//! row-assignment rules the dynamic backend documents. Because a shard's
//! local order is a subsequence of global order, translating the inner
//! `first_row` through the mirror and taking the minimum across shards
//! yields the global first row.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use gpu_device::executor::{parallel_map, parallel_tasks};
use rtx_query::{
    ArenaPool, BatchOutcome, Capabilities, ExecArena, IndexBuildMetrics, IndexError, IndexSpec,
    KeyRouter, MemoryUsage, Partitioning, QueryBatch, QueryOps, QueryOutcome, RebalanceReport,
    Registry, ScatterPlan, SecondaryIndex, ShardLoad, ShardSpec, UpdatableIndex, UpdateReport,
    MISS,
};

use crate::partition::{
    HashPartitioner, RangePartitioner, WeightedHashPartitioner, WEIGHTED_HASH_SLOTS,
};

/// A serializable description of a [`KeyRouter`]: everything a durability
/// manifest must persist to reconstruct the exact routing of a sharded
/// index on recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouterConfig {
    /// Hash partitioning over `shards` shards.
    Hash {
        /// Number of shards.
        shards: usize,
    },
    /// Range partitioning with the captured per-shard upper bounds.
    Range {
        /// Inclusive upper bounds of every shard but the last.
        bounds: Vec<u64>,
    },
    /// Weighted hash partitioning through an explicit slot-to-shard table
    /// (what hash routing becomes after the first hot-shard rebalance).
    WeightedHash {
        /// Number of shards.
        shards: usize,
        /// Slot-to-shard table of length [`WEIGHTED_HASH_SLOTS`].
        slots: Vec<u32>,
    },
}

impl RouterConfig {
    /// Number of shards the config routes over.
    pub fn shard_count(&self) -> usize {
        match self {
            RouterConfig::Hash { shards } => *shards,
            RouterConfig::Range { bounds } => bounds.len() + 1,
            RouterConfig::WeightedHash { shards, .. } => *shards,
        }
    }

    /// Instantiates the router the config describes.
    pub fn router(&self) -> Box<dyn KeyRouter> {
        match self {
            RouterConfig::Hash { shards } => Box::new(HashPartitioner::new(*shards)),
            RouterConfig::Range { bounds } => {
                Box::new(RangePartitioner::from_bounds(bounds.clone()))
            }
            RouterConfig::WeightedHash { shards, slots } => {
                Box::new(WeightedHashPartitioner::from_slots(slots.clone(), *shards))
            }
        }
    }
}

/// One shard's inner backend: read-only or updatable, depending on which
/// registry path built it.
enum ShardBackend {
    Read(Box<dyn SecondaryIndex>),
    Write(Box<dyn UpdatableIndex>),
}

impl ShardBackend {
    fn read(&self) -> &dyn SecondaryIndex {
        match self {
            ShardBackend::Read(ix) => ix.as_ref(),
            ShardBackend::Write(ix) => ix.as_ref() as &dyn UpdatableIndex as &dyn SecondaryIndex,
        }
    }

    fn write(&mut self) -> Option<&mut dyn UpdatableIndex> {
        match self {
            ShardBackend::Read(_) => None,
            ShardBackend::Write(ix) => Some(ix.as_mut()),
        }
    }
}

/// One shard's local→global row mirror in recovered form: entry `local`
/// holds `Some((key, global))` for a live row, `None` for a deleted one.
pub type RecoveredRows = Vec<Option<(u64, u32)>>;

/// The local→global row mirror of one shard (see the module docs): entry
/// `local` holds the key and global rowID of the shard's local row, `None`
/// once the row is deleted.
struct ShardRows {
    entries: RecoveredRows,
}

impl ShardRows {
    fn new(assigned: Vec<(u64, u32)>) -> Self {
        ShardRows {
            entries: assigned.into_iter().map(Some).collect(),
        }
    }

    /// Global rowID of a live local row.
    fn global(&self, local: u32) -> u32 {
        self.entries
            .get(local as usize)
            .copied()
            .flatten()
            .expect("shard row mirror out of sync with the inner backend")
            .1
    }

    /// Mirrors an insert: fresh local rows take the next local slots, in
    /// batch order.
    fn append(&mut self, keys: &[u64], globals: &[u32]) {
        self.entries
            .extend(keys.iter().zip(globals).map(|(&k, &g)| Some((k, g))));
    }

    /// Mirrors a delete: every live row holding a doomed key dies.
    fn delete(&mut self, doomed: &HashSet<u64>) {
        for entry in &mut self.entries {
            if matches!(entry, Some((k, _)) if doomed.contains(k)) {
                *entry = None;
            }
        }
    }

    /// Mirrors a reorganisation (compaction): survivors renumber densely in
    /// preserved order.
    fn compact(&mut self) {
        self.entries.retain(Option::is_some);
    }
}

struct Shard {
    backend: ShardBackend,
    rows: ShardRows,
    /// Primitive operations routed to this shard (lookups plus update rows)
    /// since build or the last rebalance — the hot-shard detection signal.
    ops: AtomicU64,
}

impl Shard {
    /// Rewrites an outcome's rowIDs from shard-local to global.
    fn translate(&self, mut outcome: QueryOutcome) -> QueryOutcome {
        for r in &mut outcome.results {
            if r.first_row != MISS {
                r.first_row = self.rows.global(r.first_row);
            }
        }
        outcome
    }
}

/// A partitioned index: any registered backend (homogeneous, or mixed per
/// shard) behind the ordinary [`SecondaryIndex`] interface, with mixed
/// batches scattered across the shards and executed in parallel.
///
/// Build it through the registry by name (`"RX@8"`, `"SA@4:range"`, once
/// [`install_sharding`](crate::install_sharding) ran) or directly via
/// [`ShardedIndex::build`] / [`ShardedIndex::build_mixed`].
pub struct ShardedIndex {
    /// Interned so hot error paths clone a pointer, not a String.
    label: Arc<str>,
    router: Box<dyn KeyRouter>,
    /// The serializable description `router` was built from (persisted by
    /// durability manifests, restored by [`ShardedIndex::from_parts`]).
    router_config: RouterConfig,
    shards: Vec<Shard>,
    capabilities: Capabilities,
    has_values: bool,
    build_metrics: IndexBuildMetrics,
    /// Next global rowID handed to an insert (u64 so the overflow check is
    /// trivial; valid rowIDs stay below [`MISS`]).
    next_row: u64,
    /// Per-slot op counters under hash-family routing (length
    /// [`WEIGHTED_HASH_SLOTS`]), `None` under range routing. The per-shard
    /// counters say *that* a shard is hot; these say *which* hash slots
    /// make it hot — what a rebalance pass needs to move the right rows.
    slot_ops: Option<Vec<AtomicU64>>,
    /// Pooled scatter plans, replanned in place per submission.
    plan_pool: Mutex<Vec<ScatterPlan>>,
    arena_pool: ArenaPool,
}

impl std::fmt::Debug for ShardedIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedIndex")
            .field("label", &self.label)
            .field("shards", &self.shards.len())
            .field("key_count", &self.key_count())
            .field("capabilities", &self.capabilities)
            .finish()
    }
}

/// Per-slot op counters for a router family: hash-family routing tracks
/// every point key's hash slot so a rebalance pass knows which slots carry
/// the traffic; range routing has no slots (its pass reweights keys by
/// shard-level op density instead).
fn slot_counters(config: &RouterConfig) -> Option<Vec<AtomicU64>> {
    matches!(
        config,
        RouterConfig::Hash { .. } | RouterConfig::WeightedHash { .. }
    )
    .then(|| {
        (0..WEIGHTED_HASH_SLOTS)
            .map(|_| AtomicU64::new(0))
            .collect()
    })
}

/// Routes every `(key, value)` of the build column to its shard, keeping
/// the global row order within each shard.
struct BuildScatter {
    keys: Vec<Vec<u64>>,
    values: Option<Vec<Vec<u64>>>,
    assigned: Vec<Vec<(u64, u32)>>,
}

fn scatter_build_columns(router: &dyn KeyRouter, spec: &IndexSpec<'_>) -> BuildScatter {
    let shards = router.shard_count();
    let mut scatter = BuildScatter {
        keys: vec![Vec::new(); shards],
        values: spec.values().map(|_| vec![Vec::new(); shards]),
        assigned: vec![Vec::new(); shards],
    };
    for (row, &key) in spec.keys.iter().enumerate() {
        let s = router.shard_of_point(key);
        scatter.keys[s].push(key);
        if let (Some(per_shard), Some(values)) = (&mut scatter.values, spec.values()) {
            per_shard[s].push(values[row]);
        }
        scatter.assigned[s].push((key, row as u32));
    }
    scatter
}

fn and_capabilities(a: Capabilities, b: Capabilities) -> Capabilities {
    Capabilities {
        range_lookups: a.range_lookups && b.range_lookups,
        duplicate_keys: a.duplicate_keys && b.duplicate_keys,
        full_64bit_keys: a.full_64bit_keys && b.full_64bit_keys,
        updates: a.updates && b.updates,
    }
}

impl ShardedIndex {
    /// Builds a homogeneous sharded backend for `spec` (one
    /// `spec.backend` instance per shard) over the columns of `index`.
    pub fn build(
        registry: &Registry,
        spec: &ShardSpec,
        index: &IndexSpec<'_>,
    ) -> Result<Self, IndexError> {
        let backends = vec![spec.backend.as_str(); spec.shards];
        Self::build_inner(
            registry,
            &backends,
            spec.partitioning,
            spec.name(),
            index,
            false,
        )
    }

    /// Builds a sharded backend whose shards are all updatable (so the
    /// result implements the update operations of [`UpdatableIndex`] by
    /// routing them through the same partitioner as the lookups).
    pub fn build_updatable(
        registry: &Registry,
        spec: &ShardSpec,
        index: &IndexSpec<'_>,
    ) -> Result<Self, IndexError> {
        let backends = vec![spec.backend.as_str(); spec.shards];
        Self::build_inner(
            registry,
            &backends,
            spec.partitioning,
            spec.name(),
            index,
            true,
        )
    }

    /// Builds a sharded backend running a *different* backend per shard
    /// (one registry name per shard) — e.g. the hot hash-owned shards on
    /// `"HT"` and the rest on `"RX"`. Capabilities are the intersection of
    /// the shards' capabilities.
    pub fn build_mixed(
        registry: &Registry,
        backends: &[&str],
        partitioning: Partitioning,
        index: &IndexSpec<'_>,
    ) -> Result<Self, IndexError> {
        let label = format!(
            "{}@{}:{}",
            backends.join("+"),
            backends.len(),
            partitioning.name()
        );
        Self::build_inner(registry, backends, partitioning, label, index, false)
    }

    fn build_inner(
        registry: &Registry,
        backends: &[&str],
        partitioning: Partitioning,
        label: String,
        index: &IndexSpec<'_>,
        updatable: bool,
    ) -> Result<Self, IndexError> {
        if backends.is_empty() {
            return Err(IndexError::Backend {
                backend: label.into(),
                message: "shard count must be at least 1".to_string(),
            });
        }
        if index.keys.len() as u64 >= MISS as u64 {
            return Err(IndexError::CapacityOverflow {
                backend: label.into(),
                keys: index.keys.len(),
                limit: MISS as u64 - 1,
            });
        }

        let router_config = match partitioning {
            Partitioning::Hash => RouterConfig::Hash {
                shards: backends.len(),
            },
            Partitioning::Range => RouterConfig::Range {
                bounds: RangePartitioner::from_keys(index.keys, backends.len())
                    .bounds()
                    .to_vec(),
            },
        };
        let router = router_config.router();

        let start = Instant::now();
        let scatter = scatter_build_columns(router.as_ref(), index);
        let values_per_shard: Vec<Option<Vec<u64>>> = match scatter.values {
            Some(v) => v.into_iter().map(Some).collect(),
            None => vec![None; backends.len()],
        };
        let shard_inputs: Vec<(Vec<u64>, Option<Vec<u64>>)> =
            scatter.keys.into_iter().zip(values_per_shard).collect();

        // Build every inner backend in parallel on the worker pool; each
        // build allocates against (and is profiled by) the shared device.
        let built: Vec<Result<ShardBackend, IndexError>> =
            parallel_map(shard_inputs, |s, (keys, values)| {
                let spec = IndexSpec {
                    device: index.device,
                    keys: &keys,
                    values: values.map(Arc::from),
                    // Builder selection propagates to every shard; so does
                    // a durability request, which tells each inner backend
                    // to prepare for the external wrapper (the wrapper owns
                    // the WAL — inner backends never persist themselves).
                    builder: index.builder,
                    durability: index.durability.clone(),
                    // Composite schemas wrap *outside* the shard layer, so
                    // inner shards always see schema-free specs.
                    key_schema: None,
                    rows: None,
                };
                if updatable {
                    registry
                        .build_updatable(backends[s], &spec)
                        .map(ShardBackend::Write)
                } else {
                    registry.build(backends[s], &spec).map(ShardBackend::Read)
                }
            });

        let mut shards = Vec::with_capacity(built.len());
        for (backend, assigned) in built.into_iter().zip(scatter.assigned) {
            shards.push(Shard {
                backend: backend?,
                rows: ShardRows::new(assigned),
                ops: AtomicU64::new(0),
            });
        }

        let capabilities = shards
            .iter()
            .map(|s| s.backend.read().capabilities())
            .reduce(and_capabilities)
            .map(|caps| Capabilities {
                updates: caps.updates && updatable,
                ..caps
            })
            .expect("at least one shard");
        let build_metrics = IndexBuildMetrics {
            simulated_time_s: shards
                .iter()
                .map(|s| s.backend.read().build_metrics().simulated_time_s)
                .sum(),
            host_time: start.elapsed(),
            scratch_bytes: shards
                .iter()
                .map(|s| s.backend.read().build_metrics().scratch_bytes)
                .sum(),
        };

        Ok(ShardedIndex {
            label: label.into(),
            router,
            slot_ops: slot_counters(&router_config),
            router_config,
            shards,
            capabilities,
            has_values: index.values.is_some(),
            build_metrics,
            next_row: index.keys.len() as u64,
            plan_pool: Mutex::new(Vec::new()),
            arena_pool: ArenaPool::new(),
        })
    }

    /// Reassembles a sharded index from recovered parts: one updatable
    /// inner backend plus its local→global row mirror per shard (mirror
    /// entry `local` holds `Some((key, global))` for a live row, `None` for
    /// a deleted one), the router the manifest captured, and the global row
    /// counter at crash time. This is the recovery entry point of the
    /// durability layer — each shard replays its own WAL in parallel, then
    /// the parts snap together here.
    pub fn from_parts(
        label: String,
        router_config: RouterConfig,
        parts: Vec<(Box<dyn UpdatableIndex>, RecoveredRows)>,
        has_values: bool,
        next_row: u64,
    ) -> Result<Self, IndexError> {
        if parts.len() != router_config.shard_count() {
            return Err(IndexError::Backend {
                backend: label.into(),
                message: format!(
                    "router expects {} shards but {} were recovered",
                    router_config.shard_count(),
                    parts.len()
                ),
            });
        }
        let shards: Vec<Shard> = parts
            .into_iter()
            .map(|(backend, entries)| Shard {
                backend: ShardBackend::Write(backend),
                rows: ShardRows { entries },
                ops: AtomicU64::new(0),
            })
            .collect();
        let capabilities = shards
            .iter()
            .map(|s| s.backend.read().capabilities())
            .reduce(and_capabilities)
            .ok_or_else(|| IndexError::Backend {
                backend: "from_parts".into(),
                message: "shard count must be at least 1".to_string(),
            })?;
        Ok(ShardedIndex {
            label: label.into(),
            router: router_config.router(),
            slot_ops: slot_counters(&router_config),
            router_config,
            shards,
            capabilities,
            has_values,
            build_metrics: IndexBuildMetrics::default(),
            next_row,
            plan_pool: Mutex::new(Vec::new()),
            arena_pool: ArenaPool::new(),
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard `(backend name, live key count, memory bytes)` — the
    /// balance view a service operator would watch.
    pub fn shard_stats(&self) -> Vec<(String, usize, u64)> {
        self.shards
            .iter()
            .map(|s| {
                let ix = s.backend.read();
                (ix.name().to_string(), ix.key_count(), ix.memory_bytes())
            })
            .collect()
    }

    /// The key router distributing lookups and updates over the shards.
    pub fn router(&self) -> &dyn KeyRouter {
        self.router.as_ref()
    }

    /// The serializable router description (persisted by durability
    /// manifests, fed back to [`ShardedIndex::from_parts`] on recovery).
    pub fn router_config(&self) -> &RouterConfig {
        &self.router_config
    }

    /// The next global rowID an insert would be assigned (monotonic; never
    /// reused even across deletes).
    pub fn next_row(&self) -> u64 {
        self.next_row
    }

    /// Lands every shard's completed deferred reorganisation without
    /// blocking, returning the per-shard landed counts (and collapsing the
    /// affected row mirrors). The durability layer calls this before
    /// logging each update batch so per-shard swap points become explicit
    /// WAL records.
    pub fn poll_shard_reorganisations(&mut self) -> Result<Vec<u64>, IndexError> {
        self.writable()?;
        self.shards
            .iter_mut()
            .map(|shard| {
                let landed = shard
                    .backend
                    .write()
                    .expect("writability checked")
                    .poll_reorganisation()?;
                if landed > 0 {
                    shard.rows.compact();
                }
                Ok(landed)
            })
            .collect()
    }

    /// Waits for every shard's in-flight reorganisation and lands it,
    /// returning the per-shard landed counts.
    pub fn await_shard_reorganisations(&mut self) -> Result<Vec<u64>, IndexError> {
        self.writable()?;
        self.shards
            .iter_mut()
            .map(|shard| {
                let landed = shard
                    .backend
                    .write()
                    .expect("writability checked")
                    .await_reorganisation()?;
                if landed > 0 {
                    shard.rows.compact();
                }
                Ok(landed)
            })
            .collect()
    }

    /// The live `(key, value, global rowID)` triples of every shard, in
    /// shard-local row order — but only when *every* shard is in the clean
    /// state its [`UpdatableIndex::checkpoint_rows`] contract demands and
    /// its row mirror agrees. This is what a sharded snapshot persists:
    /// rebuilding shard `s` from its triples (keys+values as the build
    /// columns, globals as the mirror) reproduces the shard exactly.
    pub fn shard_checkpoint_rows(&self) -> Option<Vec<Vec<(u64, u64, u32)>>> {
        self.shards
            .iter()
            .map(|shard| {
                let rows = match &shard.backend {
                    ShardBackend::Write(ix) => ix.checkpoint_rows()?,
                    ShardBackend::Read(_) => return None,
                };
                let live: Vec<(u64, u32)> = shard.rows.entries.iter().copied().flatten().collect();
                if live.len() != rows.len() {
                    return None;
                }
                Some(
                    rows.iter()
                        .zip(live)
                        .map(|(&(key, value), (_, global))| (key, value, global))
                        .collect(),
                )
            })
            .collect()
    }

    /// Per-shard load snapshot: operations routed since build (or the last
    /// [`rebalance`](Self::rebalance), which resets the counters) plus the
    /// live row count of every shard.
    pub fn load(&self) -> ShardLoad {
        ShardLoad {
            ops: self
                .shards
                .iter()
                .map(|s| s.ops.load(Ordering::Relaxed))
                .collect(),
            rows: self
                .shards
                .iter()
                .map(|s| s.backend.read().key_count() as u64)
                .collect(),
        }
    }

    /// Migrates rows from hot shards to cold ones based on the observed
    /// per-shard op counters, preserving every global rowID (so results —
    /// rowIDs included — stay oracle-exact across the migration).
    ///
    /// Mechanism by partitioning family:
    ///
    /// * **hash** routing switches to a weighted slot table
    ///   ([`WeightedHashPartitioner`]) and reassigns individual hash slots
    ///   — weighted by their *observed per-slot op counts* — from the
    ///   hottest shard to the coldest until their load gap closes;
    /// * **range** routing recomputes its bounds as *load-weighted*
    ///   quantiles of the live keys (each key weighted by its shard's ops
    ///   per row), splitting hot spans and merging cold ones.
    ///
    /// Rows whose owner changes are tombstone-deleted from the donor and
    /// re-inserted into the receiver with their original global rowIDs. A
    /// receiver ingests its *entire* new row set in global-rowID order (so
    /// its local→global mirror stays monotone — range `first_row`
    /// translation depends on that); the bulk structural rebuild this
    /// triggers rides each inner backend's two-generation background
    /// compaction, so reads keep serving from the old generation while the
    /// new one builds and writes only stall at the swap. Callers running a
    /// service route this through the write fence (`rtx-serve` does).
    ///
    /// Per-shard op counters reset afterwards, starting a fresh observation
    /// window. Read-only sharded indexes report `UnsupportedOperation`;
    /// single-shard and non-snapshottable backends report an empty pass.
    pub fn rebalance(&mut self) -> Result<RebalanceReport, IndexError> {
        self.writable()?;
        if self.shards.len() < 2 {
            return Ok(RebalanceReport::default());
        }
        // Land anything in flight so every row mirror is dense, then
        // snapshot the live triples — compacting first when a shard is
        // dirty (delta entries or tombstones outstanding).
        self.await_shard_reorganisations()?;
        let mut reorganisations = 0u64;
        let triples = match self.shard_checkpoint_rows() {
            Some(t) => t,
            None => {
                match self.compact() {
                    Ok(report) => reorganisations += report.reorganisations,
                    Err(IndexError::UnsupportedOperation { .. }) => {
                        return Ok(RebalanceReport::default())
                    }
                    Err(e) => return Err(e),
                }
                match self.shard_checkpoint_rows() {
                    Some(t) => t,
                    None => return Ok(RebalanceReport::default()),
                }
            }
        };

        let new_config = match self.rebalanced_config(&triples) {
            Some(config) => config,
            None => {
                self.reset_shard_ops();
                return Ok(RebalanceReport {
                    moved_rows: 0,
                    reorganisations,
                });
            }
        };
        let new_router = new_config.router();

        // Plan every live row's new owner.
        let shard_count = self.shards.len();
        let mut outgoing: Vec<Vec<u64>> = vec![Vec::new(); shard_count];
        let mut incoming: Vec<Vec<(u64, u64, u32)>> = vec![Vec::new(); shard_count];
        let mut moved_rows = 0u64;
        for (s, rows) in triples.iter().enumerate() {
            for &(key, value, global) in rows {
                let owner = new_router.shard_of_point(key);
                if owner != s {
                    outgoing[s].push(key);
                    incoming[owner].push((key, value, global));
                    moved_rows += 1;
                }
            }
        }

        // Per-shard migration plans: donors tombstone the moved keys;
        // receivers re-ingest their full new row set sorted by global
        // rowID so the mirror stays monotone.
        enum Plan {
            Keep,
            Shrink {
                doomed: HashSet<u64>,
            },
            Rebuild {
                doomed: HashSet<u64>,
                rows: Vec<(u64, u64, u32)>,
            },
        }
        let plans: Vec<Plan> = (0..shard_count)
            .map(|s| {
                if incoming[s].is_empty() && outgoing[s].is_empty() {
                    Plan::Keep
                } else if incoming[s].is_empty() {
                    Plan::Shrink {
                        doomed: outgoing[s].iter().copied().collect(),
                    }
                } else {
                    let leaving: HashSet<u64> = outgoing[s].iter().copied().collect();
                    let mut rows: Vec<(u64, u64, u32)> = triples[s]
                        .iter()
                        .filter(|(key, _, _)| !leaving.contains(key))
                        .copied()
                        .chain(std::mem::take(&mut incoming[s]))
                        .collect();
                    rows.sort_unstable_by_key(|&(_, _, global)| global);
                    Plan::Rebuild {
                        doomed: triples[s].iter().map(|&(key, _, _)| key).collect(),
                        rows,
                    }
                }
            })
            .collect();

        let work: Vec<(&mut Shard, Plan)> = self.shards.iter_mut().zip(plans).collect();
        let reports = parallel_map(work, |_, (shard, plan)| -> Result<u64, IndexError> {
            let Shard { backend, rows, .. } = shard;
            let writer = backend.write().expect("writability checked");
            match plan {
                Plan::Keep => Ok(0),
                Plan::Shrink { doomed } => {
                    let batch: Vec<u64> = doomed.iter().copied().collect();
                    let report = writer.delete(&batch)?;
                    rows.delete(&doomed);
                    if report.reorganisations > 0 {
                        rows.compact();
                    }
                    Ok(report.reorganisations)
                }
                Plan::Rebuild {
                    doomed,
                    rows: new_rows,
                } => {
                    let mut reorganisations = 0;
                    let batch: Vec<u64> = doomed.iter().copied().collect();
                    let report = writer.delete(&batch)?;
                    rows.delete(&doomed);
                    reorganisations += report.reorganisations;
                    if report.reorganisations > 0 {
                        rows.compact();
                    }
                    let keys: Vec<u64> = new_rows.iter().map(|&(key, _, _)| key).collect();
                    let values: Vec<u64> = new_rows.iter().map(|&(_, value, _)| value).collect();
                    let globals: Vec<u32> = new_rows.iter().map(|&(_, _, global)| global).collect();
                    let report = writer.insert(&keys, &values)?;
                    rows.append(&keys, &globals);
                    reorganisations += report.reorganisations;
                    if report.reorganisations > 0 {
                        rows.compact();
                    }
                    Ok(reorganisations)
                }
            }
        });
        for report in reports {
            reorganisations += report?;
        }

        self.router = new_router;
        self.router_config = new_config;
        self.reset_shard_ops();
        Ok(RebalanceReport {
            moved_rows,
            reorganisations,
        })
    }

    fn reset_shard_ops(&self) {
        for shard in &self.shards {
            shard.ops.store(0, Ordering::Relaxed);
        }
        if let Some(slot_ops) = &self.slot_ops {
            for slot in slot_ops {
                slot.store(0, Ordering::Relaxed);
            }
        }
    }

    /// Computes the load-balanced router description from the observed op
    /// counters and the live triples, or `None` when nothing would change
    /// (already balanced, or no data to balance on).
    fn rebalanced_config(&self, triples: &[Vec<(u64, u64, u32)>]) -> Option<RouterConfig> {
        let shard_count = self.shards.len();
        let live_rows: usize = triples.iter().map(Vec::len).sum();
        if live_rows == 0 {
            return None;
        }
        let ops: Vec<u64> = self
            .shards
            .iter()
            .map(|s| s.ops.load(Ordering::Relaxed))
            .collect();
        let total_ops: u64 = ops.iter().sum();
        // Shard-level op density (ops per live row): the weight a row
        // carries into a recomputed *range* layout. Hash routing uses the
        // finer per-slot histogram below instead. With no observations yet
        // every row weighs the same (pure placement balancing).
        let density: Vec<f64> = (0..shard_count)
            .map(|s| {
                let rows = triples[s].len() as f64;
                if total_ops == 0 {
                    1.0
                } else if rows == 0.0 {
                    0.0
                } else {
                    ops[s] as f64 / rows
                }
            })
            .collect();

        match &self.router_config {
            RouterConfig::Range { bounds } => {
                let new_bounds = weighted_range_bounds(triples, &density, shard_count)?;
                (new_bounds != *bounds).then_some(RouterConfig::Range { bounds: new_bounds })
            }
            RouterConfig::Hash { .. } | RouterConfig::WeightedHash { .. } => {
                let mut slots = match &self.router_config {
                    RouterConfig::WeightedHash { slots, .. } => slots.clone(),
                    // First rebalance of a plain-hash index: start from the
                    // balanced table (identical routing whenever the shard
                    // count divides the slot count; see the partitioner).
                    _ => WeightedHashPartitioner::balanced(shard_count)
                        .slots()
                        .to_vec(),
                };
                // The observed per-slot histogram is the weight vector:
                // it says *which* slots carry the traffic, so the table
                // moves the genuinely hot slots. (Smearing a shard's ops
                // uniformly over its residents makes every slot of a hot
                // shard look equally warm — the pass then shuffles cold
                // slots while the hot key stays put and never converges.)
                // Rows keep a small placement weight so untouched slots
                // still spread storage; with no observations at all the
                // pass degenerates to pure placement balancing.
                let observed: Vec<u64> = match &self.slot_ops {
                    Some(slot_ops) => slot_ops.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
                    None => vec![0; WEIGHTED_HASH_SLOTS],
                };
                let observed_total: u64 = observed.iter().sum();
                let row_weight = if observed_total == 0 {
                    1.0
                } else {
                    0.1 * observed_total as f64 / live_rows as f64
                };
                let mut weight: Vec<f64> = observed.iter().map(|&ops| ops as f64).collect();
                for rows in triples {
                    for &(key, _, _) in rows {
                        weight[WeightedHashPartitioner::slot_of_key(key)] += row_weight;
                    }
                }
                let changed = rebalance_slot_table(&mut slots, &weight, shard_count);
                (changed || matches!(self.router_config, RouterConfig::Hash { .. })).then_some(
                    RouterConfig::WeightedHash {
                        shards: shard_count,
                        slots,
                    },
                )
            }
        }
    }

    fn writable(&self) -> Result<(), IndexError> {
        if self
            .shards
            .iter()
            .any(|s| matches!(s.backend, ShardBackend::Read(_)))
        {
            return Err(IndexError::UnsupportedOperation {
                backend: Arc::clone(&self.label),
                operation: "updates",
            });
        }
        Ok(())
    }

    /// Routes an update batch's keys (and optional values/global rows) to
    /// their owning shards, preserving batch order within each shard.
    fn route_update(
        &mut self,
        keys: &[u64],
        values: Option<&[u64]>,
        assign_rows: bool,
    ) -> Result<Vec<UpdateRoute>, IndexError> {
        if assign_rows && self.next_row + keys.len() as u64 >= MISS as u64 {
            return Err(IndexError::CapacityOverflow {
                backend: Arc::clone(&self.label),
                keys: keys.len(),
                limit: (MISS as u64 - 1).saturating_sub(self.next_row),
            });
        }
        let mut routes: Vec<UpdateRoute> = (0..self.shards.len())
            .map(|_| UpdateRoute::default())
            .collect();
        // Update rows count toward slot heat exactly like lookups do —
        // mirroring the per-shard op counters, which track both.
        if let Some(slot_ops) = &self.slot_ops {
            for &key in keys {
                slot_ops[WeightedHashPartitioner::slot_of_key(key)].fetch_add(1, Ordering::Relaxed);
            }
        }
        for (i, &key) in keys.iter().enumerate() {
            let route = &mut routes[self.router.shard_of_point(key)];
            route.keys.push(key);
            if let Some(values) = values {
                route.values.push(values[i]);
            }
            if assign_rows {
                route.globals.push(self.next_row as u32);
                self.next_row += 1;
            }
        }
        Ok(routes)
    }

    /// Applies one routed update operation to every shard in parallel and
    /// merges the per-shard reports.
    fn apply_update<F>(
        &mut self,
        routes: Vec<UpdateRoute>,
        apply: F,
    ) -> Result<UpdateReport, IndexError>
    where
        F: Fn(
                &mut dyn UpdatableIndex,
                &mut ShardRows,
                UpdateRoute,
            ) -> Result<UpdateReport, IndexError>
            + Sync,
    {
        let work: Vec<(&mut Shard, UpdateRoute)> = self.shards.iter_mut().zip(routes).collect();
        let reports = parallel_map(work, |_, (shard, route)| {
            if route.keys.is_empty() {
                return Ok(UpdateReport::default());
            }
            shard
                .ops
                .fetch_add(route.keys.len() as u64, Ordering::Relaxed);
            let writer = shard.backend.write().expect("writability checked");
            apply(writer, &mut shard.rows, route)
        });
        let mut merged = UpdateReport::default();
        for report in reports {
            let report = report?;
            merged.inserted_rows += report.inserted_rows;
            merged.deleted_rows += report.deleted_rows;
            merged.simulated_time_s += report.simulated_time_s;
            merged.reorganisations += report.reorganisations;
        }
        Ok(merged)
    }

    /// The uniform sharded-execution prechecks (same errors the provided
    /// trait executor raises, with the sharded label).
    fn validate(&self, fetches_values: bool, has_range_op: bool) -> Result<(), IndexError> {
        if fetches_values && !self.has_values {
            return Err(IndexError::NoValueColumn {
                backend: Arc::clone(&self.label),
            });
        }
        if has_range_op && !self.capabilities.range_lookups {
            return Err(IndexError::UnsupportedOperation {
                backend: Arc::clone(&self.label),
                operation: "range lookups",
            });
        }
        Ok(())
    }

    fn check_out_plan(&self) -> ScatterPlan {
        self.plan_pool
            .lock()
            .expect("plan pool poisoned")
            .pop()
            .unwrap_or_default()
    }

    fn check_in_plan(&self, plan: ScatterPlan) {
        self.plan_pool
            .lock()
            .expect("plan pool poisoned")
            .push(plan);
    }

    /// Executes a ready scatter plan: every non-empty shard sub-batch runs
    /// concurrently on the worker pool through a pooled arena, outcomes are
    /// translated to global rowIDs and gathered into submission order.
    fn execute_planned(&self, plan: &ScatterPlan) -> Result<QueryOutcome, IndexError> {
        let outcomes = parallel_tasks(self.shards.len(), |s| {
            let sub = &plan.sub_ops()[s];
            if sub.is_empty() {
                return Ok(QueryOutcome::default());
            }
            let shard = &self.shards[s];
            shard.ops.fetch_add(sub.len() as u64, Ordering::Relaxed);
            // Point keys also feed the per-slot histogram (each slot maps
            // to exactly one shard, so these adds never contend across the
            // parallel shard tasks). Ranges broadcast and carry no slot.
            if let Some(slot_ops) = &self.slot_ops {
                for &key in sub.points() {
                    slot_ops[WeightedHashPartitioner::slot_of_key(key)]
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
            let mut arena = self.arena_pool.check_out();
            let result = shard
                .backend
                .read()
                .execute_ops_in(sub, &mut arena)
                .map(|out| shard.translate(out));
            self.arena_pool.check_in(arena);
            result
        });
        let mut gathered = Vec::with_capacity(outcomes.len());
        for outcome in outcomes {
            gathered.push(outcome?);
        }
        Ok(plan.gather(gathered))
    }

    fn check_value_batch(&self, keys: &[u64], values: &[u64]) -> Result<(), IndexError> {
        if keys.len() != values.len() {
            return Err(IndexError::ValueColumnLengthMismatch {
                expected: keys.len(),
                actual: values.len(),
            });
        }
        Ok(())
    }
}

/// One shard's slice of an update batch, in batch order.
#[derive(Default)]
struct UpdateRoute {
    keys: Vec<u64>,
    values: Vec<u64>,
    globals: Vec<u32>,
}

/// Reassigns hash slots from the hottest shard to the coldest until their
/// load gap closes (or no single-slot move improves it). Each move picks
/// the hot shard's slot whose weight is closest to half the gap — such a
/// move strictly shrinks the pair's squared-load sum, so the loop cannot
/// cycle. Returns whether any slot moved.
fn rebalance_slot_table(slots: &mut [u32], weight: &[f64], shards: usize) -> bool {
    let mut load = vec![0f64; shards];
    for (slot, &owner) in slots.iter().enumerate() {
        load[owner as usize] += weight[slot];
    }
    let total: f64 = load.iter().sum();
    if total <= 0.0 {
        return false;
    }
    let mean = total / shards as f64;
    let mut changed = false;
    for _ in 0..4 * WEIGHTED_HASH_SLOTS {
        let (hot, _) = argmax(&load);
        let (cold, _) = argmin(&load);
        let gap = load[hot] - load[cold];
        if gap <= 0.10 * mean {
            break;
        }
        // The best single-slot move: weight strictly inside (0, gap) —
        // anything heavier would just swap which shard is hot — closest
        // to gap/2 (the perfect split).
        let mut best: Option<(usize, f64)> = None;
        for (slot, &w) in weight.iter().enumerate() {
            if slots[slot] as usize == hot && w > 0.0 && w < gap {
                let score = (gap - 2.0 * w).abs();
                if best.is_none_or(|(_, s)| score < s) {
                    best = Some((slot, score));
                }
            }
        }
        let Some((slot, _)) = best else { break };
        load[hot] -= weight[slot];
        load[cold] += weight[slot];
        slots[slot] = cold as u32;
        changed = true;
    }
    changed
}

fn argmax(xs: &[f64]) -> (usize, f64) {
    xs.iter().copied().enumerate().fold(
        (0, f64::MIN),
        |acc, (i, x)| if x > acc.1 { (i, x) } else { acc },
    )
}

fn argmin(xs: &[f64]) -> (usize, f64) {
    xs.iter().copied().enumerate().fold(
        (0, f64::MAX),
        |acc, (i, x)| if x < acc.1 { (i, x) } else { acc },
    )
}

/// Range bounds as *load-weighted* quantiles of the live keys: every key
/// carries its current shard's op density, and the inclusive upper bounds
/// cut the cumulative weight into `shards` equal spans. Duplicate keys are
/// grouped before cutting (they share a shard whatever the bounds say), so
/// a bound never splits a key. `None` when no weight was observed.
fn weighted_range_bounds(
    triples: &[Vec<(u64, u64, u32)>],
    density: &[f64],
    shards: usize,
) -> Option<Vec<u64>> {
    let mut keyed: Vec<(u64, f64)> = triples
        .iter()
        .enumerate()
        .flat_map(|(s, rows)| rows.iter().map(move |&(key, _, _)| (key, density[s])))
        .collect();
    keyed.sort_unstable_by_key(|&(key, _)| key);
    let total: f64 = keyed.iter().map(|&(_, w)| w).sum();
    if total <= 0.0 {
        return None;
    }
    let mut bounds = Vec::with_capacity(shards - 1);
    let mut acc = 0.0;
    let mut i = 0;
    while i < keyed.len() {
        let key = keyed[i].0;
        while i < keyed.len() && keyed[i].0 == key {
            acc += keyed[i].1;
            i += 1;
        }
        while bounds.len() < shards - 1 && acc >= (bounds.len() + 1) as f64 * total / shards as f64
        {
            bounds.push(key);
        }
    }
    // Fewer heavy key groups than shards: the trailing shards stay empty.
    let last = keyed.last().map_or(0, |&(key, _)| key);
    while bounds.len() < shards - 1 {
        bounds.push(last);
    }
    Some(bounds)
}

impl SecondaryIndex for ShardedIndex {
    fn name(&self) -> &str {
        &self.label
    }

    fn key_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.backend.read().key_count())
            .sum()
    }

    fn memory_bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.backend.read().memory_bytes())
            .sum()
    }

    fn build_metrics(&self) -> IndexBuildMetrics {
        self.build_metrics
    }

    fn memory_usage(&self) -> MemoryUsage {
        let mut usage = MemoryUsage::default();
        for shard in &self.shards {
            usage.add(&shard.backend.read().memory_usage());
            // The local→global row mirror is sharding bookkeeping that
            // exists to track liveness — account it with the tombstones.
            usage.tombstone_bytes +=
                (shard.rows.entries.len() * std::mem::size_of::<Option<(u64, u32)>>()) as u64;
        }
        usage
    }

    fn capabilities(&self) -> Capabilities {
        self.capabilities
    }

    fn shard_load(&self) -> Option<ShardLoad> {
        Some(self.load())
    }

    fn has_value_column(&self) -> bool {
        self.has_values
    }

    fn point_chunk(&self, queries: &[u64], fetch_values: bool) -> Result<BatchOutcome, IndexError> {
        self.execute(&QueryBatch::of_points(queries).fetch_values(fetch_values))
    }

    fn range_chunk(
        &self,
        ranges: &[(u64, u64)],
        fetch_values: bool,
    ) -> Result<BatchOutcome, IndexError> {
        self.execute(&QueryBatch::of_ranges(ranges).fetch_values(fetch_values))
    }

    /// Scatter/gather execution: the batch is planned into per-shard SoA
    /// sub-batches which run concurrently on the worker pool; outcomes are
    /// translated to global rowIDs and gathered back into submission order
    /// with merged metrics. Results are identical to executing the batch on
    /// the equivalent unsharded backend.
    ///
    /// The scatter plan comes from this index's plan pool (replanned in
    /// place) and every shard task executes through a pooled [`ExecArena`],
    /// so steady-state sharded execution reuses all of its scratch. The
    /// caller's `arena` is not used — the per-shard pool is the sharded
    /// equivalent.
    fn execute_in(
        &self,
        batch: &QueryBatch,
        _arena: &mut ExecArena,
    ) -> Result<QueryOutcome, IndexError> {
        self.validate(batch.fetches_values(), batch.range_count() > 0)?;
        let mut plan = self.check_out_plan();
        plan.replan(batch, self.router.as_ref());
        let result = self.execute_planned(&plan);
        self.check_in_plan(plan);
        result
    }

    /// SoA entry point — identical to
    /// [`execute_in`](SecondaryIndex::execute_in) but replans straight from
    /// the [`QueryOps`] stream.
    fn execute_ops_in(
        &self,
        ops: &QueryOps,
        _arena: &mut ExecArena,
    ) -> Result<QueryOutcome, IndexError> {
        self.validate(ops.fetches_values(), ops.range_count() > 0)?;
        let mut plan = self.check_out_plan();
        plan.replan_ops(ops, self.router.as_ref());
        let result = self.execute_planned(&plan);
        self.check_in_plan(plan);
        result
    }
}

/// Routed updates: each batch is split by the partitioner and applied to
/// the owning shards concurrently, with global rowIDs assigned in batch
/// order and the per-shard reports merged.
///
/// **Atomicity caveat:** unlike a monolithic backend — which validates a
/// batch up front and leaves the index untouched on error — a sharded
/// update is *not* atomic across shards. If one shard's sub-batch fails,
/// sub-batches already applied to other shards stay applied (and the
/// global rowIDs planned for the failing shard stay consumed, leaving
/// harmless holes in the monotonic row space). Callers that need
/// all-or-nothing semantics must validate batches against the inner
/// backend's constraints before submitting, exactly as a distributed
/// store would.
impl UpdatableIndex for ShardedIndex {
    fn insert(&mut self, keys: &[u64], values: &[u64]) -> Result<UpdateReport, IndexError> {
        self.writable()?;
        self.check_value_batch(keys, values)?;
        let routes = self.route_update(keys, Some(values), true)?;
        self.apply_update(routes, |writer, rows, route| {
            let report = writer.insert(&route.keys, &route.values)?;
            rows.append(&route.keys, &route.globals);
            if report.reorganisations > 0 {
                rows.compact();
            }
            Ok(report)
        })
    }

    fn delete(&mut self, keys: &[u64]) -> Result<UpdateReport, IndexError> {
        self.writable()?;
        let routes = self.route_update(keys, None, false)?;
        self.apply_update(routes, |writer, rows, route| {
            let report = writer.delete(&route.keys)?;
            rows.delete(&route.keys.iter().copied().collect());
            if report.reorganisations > 0 {
                rows.compact();
            }
            Ok(report)
        })
    }

    fn upsert(&mut self, keys: &[u64], values: &[u64]) -> Result<UpdateReport, IndexError> {
        self.writable()?;
        self.check_value_batch(keys, values)?;
        let routes = self.route_update(keys, Some(values), true)?;
        self.apply_update(routes, |writer, rows, route| {
            let report = writer.upsert(&route.keys, &route.values)?;
            // Mirror the documented upsert semantics: every existing row of
            // the keys dies, then one fresh row per pair appends in batch
            // order.
            rows.delete(&route.keys.iter().copied().collect());
            rows.append(&route.keys, &route.globals);
            if report.reorganisations > 0 {
                rows.compact();
            }
            Ok(report)
        })
    }

    fn poll_reorganisation(&mut self) -> Result<u64, IndexError> {
        Ok(self.poll_shard_reorganisations()?.iter().sum())
    }

    fn await_reorganisation(&mut self) -> Result<u64, IndexError> {
        Ok(self.await_shard_reorganisations()?.iter().sum())
    }

    fn reorganisation_in_flight(&self) -> bool {
        self.shards.iter().any(|s| match &s.backend {
            ShardBackend::Write(ix) => ix.reorganisation_in_flight(),
            ShardBackend::Read(_) => false,
        })
    }

    fn rebalance_shards(&mut self) -> Result<RebalanceReport, IndexError> {
        self.rebalance()
    }

    /// Forces a synchronous compaction of every shard (collapsing the row
    /// mirrors with them) and merges the per-shard reports. Fails if any
    /// shard's backend has no explicit compaction.
    fn compact(&mut self) -> Result<UpdateReport, IndexError> {
        self.writable()?;
        let work: Vec<&mut Shard> = self.shards.iter_mut().collect();
        let reports = parallel_map(work, |_, shard| -> Result<UpdateReport, IndexError> {
            let report = shard
                .backend
                .write()
                .expect("writability checked")
                .compact()?;
            shard.rows.compact();
            Ok(report)
        });
        let mut merged = UpdateReport::default();
        for report in reports {
            let report: UpdateReport = report?;
            merged.inserted_rows += report.inserted_rows;
            merged.deleted_rows += report.deleted_rows;
            merged.simulated_time_s += report.simulated_time_s;
            merged.reorganisations += report.reorganisations;
        }
        Ok(merged)
    }
}
