//! [`DurableIndex`]: the WAL + snapshot wrapper around one updatable
//! backend.
//!
//! Every acknowledged update batch is appended to the WAL (and flushed per
//! the configured [`FsyncPolicy`](crate::FsyncPolicy)) *before* it applies
//! to the wrapped index; reorganisation points the replay cannot re-derive
//! (a background swap landing, an explicit compaction) are logged as their
//! own records. Reopening the directory replays the newest intact snapshot
//! plus the surviving WAL suffix and lands, batch for batch, on the exact
//! pre-crash state — rowIDs included.
//!
//! # Determinism contract
//!
//! Replay reproduces rowIDs because the wrapped backend behaves
//! deterministically given the same batch sequence: building it from a
//! spec with [`IndexSpec::durability`] set disables autonomous
//! background-swap landing (RXD's `auto_swap`), so structural
//! reorganisations happen either synchronously inside a batch (re-derived
//! by replay from the same policy) or at an explicit
//! [`poll_reorganisation`](UpdatableIndex::poll_reorganisation) that the
//! wrapper turns into a [`WalPayload::Swap`] record.
//!
//! A batch whose apply *fails* (e.g. capacity overflow) still has its
//! record in the log — the failure is deterministic, so replay fails the
//! same way and skips it, leaving state unchanged on both sides.

use std::path::{Path, PathBuf};

use rtx_query::{
    BatchOutcome, Capabilities, DurableStats, ExecArena, IndexBuildMetrics, IndexError, IndexSpec,
    MemoryUsage, QueryBatch, QueryOps, QueryOutcome, Registry, SecondaryIndex, UpdatableIndex,
    UpdateReport,
};

use crate::config::DurableConfig;
use crate::io_err;
use crate::record::{WalPayload, WalRecord};
use crate::snapshot::{read_latest_snapshot, write_snapshot, Snapshot};
use crate::wal::WriteAheadLog;

/// WAL subdirectory of a durable index directory.
pub(crate) const WAL_SUBDIR: &str = "wal";

/// A WAL-backed persistent wrapper around one updatable backend.
///
/// Built by the registry from a `"<base>+wal:<path>"` name (see
/// [`install_durability`](crate::install_durability)); the directory layout
/// is `<path>/META`, `<path>/wal/wal-*.seg` and `<path>/snap-*.snap`.
pub struct DurableIndex {
    label: String,
    inner: Box<dyn UpdatableIndex>,
    wal: WriteAheadLog,
    dir: PathBuf,
    config: DurableConfig,
    /// Next batch sequence number to log.
    bsn: u64,
    snapshots: u64,
    last_snapshot_bsn: u64,
    last_snapshot_bytes: u64,
    replayed_batches: u64,
    has_values: bool,
}

impl DurableIndex {
    /// Creates a fresh durable index at `dir`: builds the base backend over
    /// the spec's columns, writes the initial snapshot (a fresh build is
    /// trivially clean — the columns *are* the checkpoint) and starts an
    /// empty WAL.
    pub fn create(
        registry: &Registry,
        base: &str,
        spec: &IndexSpec<'_>,
        dir: &Path,
        config: DurableConfig,
    ) -> Result<Self, IndexError> {
        let label = durable_label(base);
        let inner = registry.build_updatable(base, spec)?;
        let has_values = inner.has_value_column();
        let rows: Vec<(u64, u64)> = match spec.values() {
            Some(values) => spec
                .keys
                .iter()
                .copied()
                .zip(values.iter().copied())
                .collect(),
            None => spec.keys.iter().map(|&k| (k, 0)).collect(),
        };
        let snapshot = Snapshot {
            bsn: 0,
            next_row: rows.len() as u64,
            has_values,
            rows,
            globals: None,
        };
        let last_snapshot_bytes = write_snapshot(dir, &snapshot).map_err(|e| io_err(&label, e))?;
        let wal =
            WriteAheadLog::create(&dir.join(WAL_SUBDIR), &config).map_err(|e| io_err(&label, e))?;
        Ok(DurableIndex {
            label,
            inner,
            wal,
            dir: dir.to_path_buf(),
            config,
            bsn: 1,
            snapshots: 1,
            last_snapshot_bsn: 0,
            last_snapshot_bytes,
            replayed_batches: 0,
            has_values,
        })
    }

    /// Reopens the durable index at `dir`: rebuilds the base backend from
    /// the newest intact snapshot, then replays the surviving WAL suffix
    /// batch by batch. `spec` supplies the ambient device / builder
    /// selection; its key column is ignored (the snapshot is the truth).
    pub fn open(
        registry: &Registry,
        base: &str,
        spec: &IndexSpec<'_>,
        dir: &Path,
        config: DurableConfig,
    ) -> Result<Self, IndexError> {
        let label = durable_label(base);
        let (snapshot, snapshot_bytes) = read_latest_snapshot(dir)
            .map_err(|e| io_err(&label, e))?
            .ok_or_else(|| IndexError::Backend {
                backend: label.clone().into(),
                message: format!("no intact snapshot found in {}", dir.display()),
            })?;
        let (keys, values) = snapshot.columns();
        let inner_spec = IndexSpec {
            device: spec.device,
            keys: &keys,
            values: values.map(std::sync::Arc::from),
            builder: spec.builder,
            durability: spec.durability.clone(),
            // Composite schemas wrap outside the durable layer; the inner
            // rebuild always happens in the encoded key space.
            key_schema: None,
            rows: None,
        };
        let mut inner = registry.build_updatable(base, &inner_spec)?;
        let has_values = inner.has_value_column();

        let (mut wal, records) = WriteAheadLog::open(&dir.join(WAL_SUBDIR), &config, None)
            .map_err(|e| io_err(&label, e))?;
        let (replayed_batches, bsn) = replay_records(&mut *inner, &mut wal, &records, snapshot.bsn)
            .map_err(|e| io_err(&label, e))?;
        Ok(DurableIndex {
            label,
            inner,
            wal,
            dir: dir.to_path_buf(),
            config,
            bsn,
            snapshots: 0,
            last_snapshot_bsn: snapshot.bsn,
            last_snapshot_bytes: snapshot_bytes,
            replayed_batches,
            has_values,
        })
    }

    /// The wrapped backend (for inspection in tests and tooling).
    pub fn inner(&self) -> &dyn UpdatableIndex {
        &*self.inner
    }

    fn next_bsn(&mut self) -> u64 {
        let bsn = self.bsn;
        self.bsn += 1;
        bsn
    }

    fn log(&mut self, payload: WalPayload) -> Result<(), IndexError> {
        let bsn = self.next_bsn();
        self.wal
            .append(&WalRecord::new(bsn, payload))
            .map_err(|e| io_err(&self.label, e))?;
        Ok(())
    }

    fn commit_log(&mut self) -> Result<(), IndexError> {
        self.wal.commit().map_err(|e| io_err(&self.label, e))
    }

    /// Lands a completed background swap, logging it so replay reproduces
    /// the renumbering point.
    fn land_swaps(&mut self) -> Result<u64, IndexError> {
        let landed = self.inner.poll_reorganisation()?;
        if landed > 0 {
            self.log(WalPayload::Swap)?;
            self.commit_log()?;
        }
        Ok(landed)
    }

    /// The shared log-then-apply path of insert / delete / upsert.
    fn logged_update<F>(
        &mut self,
        payload: WalPayload,
        apply: F,
    ) -> Result<UpdateReport, IndexError>
    where
        F: FnOnce(&mut dyn UpdatableIndex) -> Result<UpdateReport, IndexError>,
    {
        // Land any completed background rebuild first so its swap point is
        // an explicit record *before* this batch.
        self.land_swaps()?;
        let was_in_flight = self.inner.reorganisation_in_flight();
        self.log(payload)?;
        self.commit_log()?;
        let report = apply(&mut *self.inner)?;
        // Annotations: no-ops for index replay (the policy re-derives them)
        // but they make the log self-describing for rowID-exact oracle
        // replay. A crash can tear them off the tail; recovery re-derives
        // and re-appends them (log healing).
        if report.reorganisations > 0 {
            self.log(WalPayload::SyncCompact)?;
        }
        if !was_in_flight && self.inner.reorganisation_in_flight() {
            self.log(WalPayload::Freeze)?;
        }
        self.commit_log()?;
        self.maybe_checkpoint()?;
        Ok(report)
    }

    fn check_value_batch(&self, keys: &[u64], values: &[u64]) -> Result<(), IndexError> {
        if keys.len() != values.len() {
            return Err(IndexError::ValueColumnLengthMismatch {
                expected: keys.len(),
                actual: values.len(),
            });
        }
        Ok(())
    }

    /// Runs an automatic checkpoint when the WAL has outgrown the
    /// configured threshold. A backend without explicit compaction cannot
    /// checkpoint; its WAL simply keeps growing (documented trade-off).
    fn maybe_checkpoint(&mut self) -> Result<(), IndexError> {
        if self.wal.bytes() < self.config.snapshot_wal_bytes {
            return Ok(());
        }
        match self.checkpoint_now() {
            Ok(_) => Ok(()),
            Err(IndexError::UnsupportedOperation { .. }) => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// The checkpoint protocol: log a `Compact` record (bsn `b`), force it
    /// to disk, compact the index to a clean state, snapshot the clean rows
    /// at `b` and truncate the WAL through `b`. A crash at any point
    /// replays to the same state: before the snapshot lands, recovery
    /// re-runs the compaction from the logged record; after it, the record
    /// is gone but the snapshot covers it.
    fn checkpoint_now(&mut self) -> Result<u64, IndexError> {
        let bsn = self.next_bsn();
        self.wal
            .append(&WalRecord::new(bsn, WalPayload::Compact))
            .map_err(|e| io_err(&self.label, e))?;
        self.wal.sync().map_err(|e| io_err(&self.label, e))?;
        self.inner.compact()?;
        let rows = self
            .inner
            .checkpoint_rows()
            .ok_or_else(|| IndexError::Backend {
                backend: self.label.clone().into(),
                message: "index did not reach a clean state after compaction; cannot snapshot"
                    .to_string(),
            })?;
        let snapshot = Snapshot {
            bsn,
            next_row: rows.len() as u64,
            has_values: self.has_values,
            rows,
            globals: None,
        };
        let bytes = write_snapshot(&self.dir, &snapshot).map_err(|e| io_err(&self.label, e))?;
        self.wal
            .truncate_through(bsn)
            .map_err(|e| io_err(&self.label, e))?;
        self.snapshots += 1;
        self.last_snapshot_bsn = bsn;
        self.last_snapshot_bytes = bytes;
        Ok(1)
    }
}

/// `"<base>+wal"` — the display label of a durable wrapper.
pub(crate) fn durable_label(base: &str) -> String {
    format!("{base}+wal")
}

/// Replays `records` with bsn above `covered` into `inner`, healing
/// torn-off tail annotations back into `wal`. Returns the number of update
/// batches replayed and the next bsn to log.
pub(crate) fn replay_records(
    inner: &mut dyn UpdatableIndex,
    wal: &mut WriteAheadLog,
    records: &[WalRecord],
    covered: u64,
) -> std::io::Result<(u64, u64)> {
    let mut max_bsn = covered;
    let mut replayed = 0u64;
    let mut healed: Vec<WalPayload> = Vec::new();
    let mut i = 0;
    while i < records.len() {
        let record = &records[i];
        max_bsn = max_bsn.max(record.bsn);
        if record.bsn <= covered {
            i += 1;
            continue;
        }
        match &record.payload {
            WalPayload::Insert { keys, values, .. } => {
                let was_in_flight = inner.reorganisation_in_flight();
                let report = inner.insert(keys, values);
                replayed += 1;
                i = consume_annotations(inner, records, i, was_in_flight, report, &mut healed);
            }
            WalPayload::Delete { keys } => {
                let was_in_flight = inner.reorganisation_in_flight();
                let report = inner.delete(keys);
                replayed += 1;
                i = consume_annotations(inner, records, i, was_in_flight, report, &mut healed);
            }
            WalPayload::Upsert { keys, values, .. } => {
                let was_in_flight = inner.reorganisation_in_flight();
                let report = inner.upsert(keys, values);
                replayed += 1;
                i = consume_annotations(inner, records, i, was_in_flight, report, &mut healed);
            }
            // Replay forces the swap exactly where it landed live.
            WalPayload::Swap => {
                let _ = inner.await_reorganisation();
            }
            // Re-run the explicit compaction (a deterministic failure is
            // skipped, exactly as it failed live).
            WalPayload::Compact => {
                let _ = inner.compact();
            }
            // Stray annotations (already consumed ones never reach here).
            WalPayload::Freeze | WalPayload::SyncCompact | WalPayload::Commit { .. } => {}
        }
        i += 1;
    }
    // Heal: re-append annotations the crash tore off the tail, so the log
    // is self-describing again for the *next* recovery / inspector.
    for payload in healed {
        max_bsn += 1;
        wal.append(&WalRecord::new(max_bsn, payload))?;
    }
    wal.commit()?;
    Ok((replayed, max_bsn + 1))
}

/// After replaying an update record at `i`, consumes its expected
/// annotation records (logged live right after the batch) or schedules the
/// missing ones for healing. Returns the new position (still pointing at
/// the last consumed record; the caller's `i += 1` advances past it).
fn consume_annotations(
    inner: &dyn UpdatableIndex,
    records: &[WalRecord],
    mut i: usize,
    was_in_flight: bool,
    report: Result<UpdateReport, IndexError>,
    healed: &mut Vec<WalPayload>,
) -> usize {
    let (sync_compacted, froze) = match report {
        Ok(report) => (
            report.reorganisations > 0,
            !was_in_flight && inner.reorganisation_in_flight(),
        ),
        // A failed batch changed nothing and logged no annotations.
        Err(_) => (false, false),
    };
    // Live order: SyncCompact first, then Freeze.
    for (expected, payload) in [
        (sync_compacted, WalPayload::SyncCompact),
        (froze, WalPayload::Freeze),
    ] {
        if !expected {
            continue;
        }
        if records.get(i + 1).map(|r| &r.payload) == Some(&payload) {
            i += 1;
        } else {
            healed.push(payload);
        }
    }
    i
}

impl SecondaryIndex for DurableIndex {
    fn name(&self) -> &str {
        &self.label
    }

    fn key_count(&self) -> usize {
        self.inner.key_count()
    }

    fn memory_bytes(&self) -> u64 {
        self.inner.memory_bytes()
    }

    fn build_metrics(&self) -> IndexBuildMetrics {
        self.inner.build_metrics()
    }

    fn capabilities(&self) -> Capabilities {
        self.inner.capabilities()
    }

    fn has_value_column(&self) -> bool {
        self.has_values
    }

    fn memory_usage(&self) -> MemoryUsage {
        let mut usage = self.inner.memory_usage();
        usage.wal_buffer_bytes += self.wal.unsynced_bytes();
        usage
    }

    fn durability_stats(&self) -> Option<DurableStats> {
        Some(DurableStats {
            wal_bytes: self.wal.bytes(),
            fsyncs: self.wal.fsyncs(),
            snapshots: self.snapshots,
            last_snapshot_bsn: self.last_snapshot_bsn,
            last_snapshot_bytes: self.last_snapshot_bytes,
            replayed_batches: self.replayed_batches,
        })
    }

    fn point_chunk(&self, queries: &[u64], fetch_values: bool) -> Result<BatchOutcome, IndexError> {
        self.inner.point_chunk(queries, fetch_values)
    }

    fn range_chunk(
        &self,
        ranges: &[(u64, u64)],
        fetch_values: bool,
    ) -> Result<BatchOutcome, IndexError> {
        self.inner.range_chunk(ranges, fetch_values)
    }

    /// Delegates whole-batch execution to the wrapped backend so its own
    /// `execute` strategy (e.g. sharded scatter/gather parallelism) is
    /// preserved rather than flattened through the chunk hooks.
    fn execute(&self, batch: &QueryBatch) -> Result<QueryOutcome, IndexError> {
        self.inner.execute(batch)
    }

    fn execute_in(
        &self,
        batch: &QueryBatch,
        arena: &mut ExecArena,
    ) -> Result<QueryOutcome, IndexError> {
        self.inner.execute_in(batch, arena)
    }

    fn execute_ops_in(
        &self,
        ops: &QueryOps,
        arena: &mut ExecArena,
    ) -> Result<QueryOutcome, IndexError> {
        self.inner.execute_ops_in(ops, arena)
    }
}

impl UpdatableIndex for DurableIndex {
    fn insert(&mut self, keys: &[u64], values: &[u64]) -> Result<UpdateReport, IndexError> {
        // Validate *before* logging: a mismatched batch must not reach the
        // log (its frame encodes `keys.len()` pairs).
        self.check_value_batch(keys, values)?;
        self.logged_update(
            WalPayload::Insert {
                keys: keys.to_vec(),
                values: values.to_vec(),
                globals: None,
            },
            |inner| inner.insert(keys, values),
        )
    }

    fn delete(&mut self, keys: &[u64]) -> Result<UpdateReport, IndexError> {
        self.logged_update(
            WalPayload::Delete {
                keys: keys.to_vec(),
            },
            |inner| inner.delete(keys),
        )
    }

    fn upsert(&mut self, keys: &[u64], values: &[u64]) -> Result<UpdateReport, IndexError> {
        self.check_value_batch(keys, values)?;
        self.logged_update(
            WalPayload::Upsert {
                keys: keys.to_vec(),
                values: values.to_vec(),
                globals: None,
            },
            |inner| inner.upsert(keys, values),
        )
    }

    fn poll_reorganisation(&mut self) -> Result<u64, IndexError> {
        self.land_swaps()
    }

    fn await_reorganisation(&mut self) -> Result<u64, IndexError> {
        let landed = self.inner.await_reorganisation()?;
        if landed > 0 {
            self.log(WalPayload::Swap)?;
            self.commit_log()?;
        }
        Ok(landed)
    }

    fn reorganisation_in_flight(&self) -> bool {
        self.inner.reorganisation_in_flight()
    }

    /// An explicit compaction is logged like any other reorganisation point
    /// (no snapshot — use [`checkpoint`](UpdatableIndex::checkpoint) for
    /// that).
    fn compact(&mut self) -> Result<UpdateReport, IndexError> {
        self.log(WalPayload::Compact)?;
        self.commit_log()?;
        self.inner.compact()
    }

    fn checkpoint_rows(&self) -> Option<Vec<(u64, u64)>> {
        self.inner.checkpoint_rows()
    }

    fn checkpoint(&mut self) -> Result<u64, IndexError> {
        self.checkpoint_now()
    }
}

impl std::fmt::Debug for DurableIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableIndex")
            .field("label", &self.label)
            .field("dir", &self.dir)
            .field("bsn", &self.bsn)
            .field("key_count", &self.inner.key_count())
            .finish()
    }
}
