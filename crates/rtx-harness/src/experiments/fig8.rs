//! Figure 8: point lookups under varying key decompositions.
//!
//! The paper sweeps decompositions of a dense 2^26 key set from 23+3+0 to
//! 16+0+10 and shows that assigning bits to the z axis hurts point lookups
//! (triangles stack along the perpendicular-ray direction), while y-heavy
//! splits stay cheap.

use rtindex_core::{Decomposition, KeyMode, RtIndex, RtIndexConfig};
use rtx_workloads as wl;

use crate::report::{fmt_ms, Table};
use crate::scale::ExperimentScale;

/// Scales the paper's figure-8 decompositions (which assume 26 key bits) down
/// to `total_bits`, preserving the x-vs-y-vs-z allocation pattern.
pub fn scaled_sweep(total_bits: u32) -> Vec<Decomposition> {
    let mut sweep = Vec::new();
    // y-heavy half of the sweep, then z-heavy half — mirroring the paper's
    // x+y+0 and x+0+z halves.
    for extra in 0..6 {
        let x = (total_bits - 3 - extra).min(23);
        let rest = total_bits - x;
        sweep.push(Decomposition::new(x, rest, 0));
    }
    for extra in 0..6 {
        let x = (total_bits - 3 - extra).min(23);
        let rest = total_bits - x;
        if rest <= 18 {
            sweep.push(Decomposition::new(x, 0, rest));
        }
    }
    sweep
}

/// Runs the point-lookup decomposition sweep.
pub fn run(scale: &ExperimentScale) -> Vec<Table> {
    let device = crate::scaled_device(scale);
    let n = scale.default_keys();
    let keys = wl::dense_shuffled(n, scale.seed);
    let lookups = wl::point_lookups(&keys, scale.default_lookups(), scale.seed + 1);

    let mut table = Table::new(
        "Figure 8: point lookups under varying key decompositions",
        &["decomposition [x+y+z]", "lookup time [ms]", "box tests"],
    );
    for decomposition in scaled_sweep(scale.keys_exp) {
        let config = RtIndexConfig::default().with_key_mode(KeyMode::ThreeD(decomposition));
        let index = RtIndex::build(&device, &keys, config).expect("build");
        let out = index.point_lookup_batch(&lookups, None).expect("lookup");
        table.push_row(vec![
            decomposition.label(),
            fmt_ms(out.metrics.simulated_time_s * 1e3),
            out.metrics.kernel.rt_box_tests.to_string(),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z_heavy_decompositions_cost_more_than_y_heavy_ones() {
        let device = crate::default_device();
        let bits = 12u32;
        let keys = wl::dense_shuffled(1 << bits, 1);
        let lookups = wl::point_lookups(&keys, 1 << 12, 2);
        let measure = |d: Decomposition| {
            let config = RtIndexConfig::default().with_key_mode(KeyMode::ThreeD(d));
            let index = RtIndex::build(&device, &keys, config).expect("build");
            let out = index.point_lookup_batch(&lookups, None).expect("lookup");
            assert_eq!(out.hit_count(), lookups.len(), "all lookups must hit");
            (
                out.metrics.simulated_time_s,
                out.metrics.kernel.rt_box_tests,
            )
        };
        // All bits beyond x on y vs. all of them on z.
        let (_y_time, y_boxes) = measure(Decomposition::new(6, 6, 0));
        let (_z_time, z_boxes) = measure(Decomposition::new(6, 0, 6));
        // Paper: "assigning more bits to the z component means triangles
        // stack along the z axis, which effectively turns the perpendicular
        // ray into a parallel ray" -> more candidate boxes tested. Our
        // traversal clips child boxes by the ray's t-interval, which prunes
        // the stacked layers that NVIDIA's traversal apparently visits, so
        // the reproduction only shows that z-heavy splits are never cheaper
        // (see EXPERIMENTS.md for the discussion of this deviation).
        assert!(
            z_boxes * 10 >= y_boxes * 9,
            "z-heavy decomposition must not be significantly cheaper ({z_boxes} vs {y_boxes})"
        );
    }

    #[test]
    fn sweep_is_scaled_and_labelled() {
        let sweep = scaled_sweep(12);
        assert!(!sweep.is_empty());
        assert!(sweep.iter().all(|d| d.total_bits() == 12));
        let tables = run(&ExperimentScale::tiny());
        assert_eq!(tables[0].rows.len(), scaled_sweep(12).len());
    }
}
