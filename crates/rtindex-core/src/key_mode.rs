//! Key representation modes (Section 3.2 of the paper).
//!
//! OptiX coordinates are float32, so a 64-bit integer key cannot simply be
//! cast to a coordinate. The paper proposes three order-preserving
//! workarounds, all implemented here:
//!
//! * **Naive Mode** — cast the key to float32 directly; works for keys below
//!   2^23 (so that `k ± 0.5` stays exactly representable).
//! * **Extended Mode** — map key `k` to the float whose bit pattern is
//!   `2k + C` with `C = bit_cast::<u32>(0.5f32)`; every second representable
//!   float is skipped so `nextafter` yields a gap value between any two
//!   adjacent keys. Supports keys up to 2^29 − 1.
//! * **3D Mode** — split the key bits across the three coordinate axes using
//!   a [`Decomposition`]; supports full 64-bit keys and is the paper's
//!   selected default.

use optix_sim::PrimitiveKind;
use rtx_math::float_bits;
use rtx_math::Vec3f;

use crate::decomposition::Decomposition;

/// Half-extent (in x/y/z) of key primitives in Naive and 3D mode, where the
/// distance between adjacent keys on an axis is 1.0.
pub const KEY_HALF_EXTENT: f32 = 0.4;

/// How integer keys are expressed as float32 scene coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeyMode {
    /// Direct cast to float32; keys < 2^23.
    Naive,
    /// Order-preserving bit-pattern mapping; keys < 2^29.
    Extended,
    /// Bit decomposition across three axes; full 64-bit keys.
    ThreeD(Decomposition),
}

impl KeyMode {
    /// 3D Mode with the paper's default decomposition.
    pub fn three_d_default() -> Self {
        KeyMode::ThreeD(Decomposition::DEFAULT)
    }

    /// All three modes (3D with the default decomposition), in the order
    /// used by Figure 3.
    pub fn all() -> [KeyMode; 3] {
        [
            KeyMode::Naive,
            KeyMode::Extended,
            KeyMode::three_d_default(),
        ]
    }

    /// Short lowercase name used in experiment output ("naive", "ext", "3d").
    pub fn name(&self) -> &'static str {
        match self {
            KeyMode::Naive => "naive",
            KeyMode::Extended => "ext",
            KeyMode::ThreeD(_) => "3d",
        }
    }

    /// Largest key the mode can represent.
    pub fn max_key(&self) -> u64 {
        match self {
            KeyMode::Naive => float_bits::naive_mode_max_key(),
            KeyMode::Extended => float_bits::extended_mode_max_key(),
            KeyMode::ThreeD(d) => d.max_key(),
        }
    }

    /// Whether `key` is representable in this mode.
    pub fn supports_key(&self, key: u64) -> bool {
        key <= self.max_key()
    }

    /// Whether the mode supports the given primitive type (Table 1: Extended
    /// Mode cannot use spheres because adjacent keys are only ULPs apart).
    pub fn supports_primitive(&self, primitive: PrimitiveKind) -> bool {
        !matches!(
            (self, primitive),
            (KeyMode::Extended, PrimitiveKind::Sphere)
        )
    }

    /// The decomposition in use (only for 3D mode).
    pub fn decomposition(&self) -> Option<Decomposition> {
        match self {
            KeyMode::ThreeD(d) => Some(*d),
            _ => None,
        }
    }

    /// Scene coordinate of the key's primitive centre.
    pub fn center(&self, key: u64) -> Vec3f {
        debug_assert!(
            self.supports_key(key),
            "key {key} out of range for {}",
            self.name()
        );
        match self {
            KeyMode::Naive => Vec3f::new(key as f32, 0.0, 0.0),
            KeyMode::Extended => Vec3f::new(extended_coord(key), 0.0, 0.0),
            KeyMode::ThreeD(d) => {
                let (x, y, z) = d.split(key);
                Vec3f::new(x as f32, y as f32, z as f32)
            }
        }
    }

    /// Per-axis half extents of the key's primitive, chosen so that the
    /// primitive never reaches the gap positions where rays may start or end.
    pub fn half_extents(&self, key: u64) -> Vec3f {
        match self {
            KeyMode::Naive | KeyMode::ThreeD(_) => Vec3f::splat(KEY_HALF_EXTENT),
            KeyMode::Extended => {
                let x = extended_coord(key);
                let below = float_bits::next_down(x);
                let above = float_bits::next_up(x);
                // The primitive extends exactly to the neighbouring gap
                // values (one ULP either side). A smaller extent is not
                // representable — `x - 0.5 * ulp` rounds back onto `x` — and
                // rays never reach the gap values themselves because the ray
                // interval is exclusive at both ends.
                let hx = (x - below).min(above - x);
                Vec3f::new(hx.max(f32::MIN_POSITIVE), KEY_HALF_EXTENT, KEY_HALF_EXTENT)
            }
        }
    }

    /// The x coordinate where a ray belonging to key `key` may start: the gap
    /// value just below the key's coordinate.
    pub fn x_gap_below(&self, key: u64) -> f32 {
        match self {
            KeyMode::Naive => key as f32 - 0.5,
            KeyMode::Extended => float_bits::next_down(extended_coord(key)),
            KeyMode::ThreeD(d) => {
                let (x, _, _) = d.split(key);
                x as f32 - 0.5
            }
        }
    }

    /// The x coordinate where a ray belonging to key `key` may end: the gap
    /// value just above the key's coordinate.
    pub fn x_gap_above(&self, key: u64) -> f32 {
        match self {
            KeyMode::Naive => key as f32 + 0.5,
            KeyMode::Extended => float_bits::next_up(extended_coord(key)),
            KeyMode::ThreeD(d) => {
                let (x, _, _) = d.split(key);
                x as f32 + 0.5
            }
        }
    }

    /// The "row" (combined y/z part) a key belongs to. Naive and Extended
    /// mode have a single row.
    pub fn row(&self, key: u64) -> u64 {
        match self {
            KeyMode::Naive | KeyMode::Extended => 0,
            KeyMode::ThreeD(d) => d.row(key),
        }
    }

    /// The (y, z) scene coordinates of a row.
    pub fn row_coords(&self, row: u64) -> (f32, f32) {
        match self {
            KeyMode::Naive | KeyMode::Extended => (0.0, 0.0),
            KeyMode::ThreeD(d) => {
                let (y, z) = d.row_to_yz(row);
                (y as f32, z as f32)
            }
        }
    }

    /// Largest x component (used as the end of unbounded middle-row rays in
    /// multi-row range lookups).
    pub fn max_x_component(&self) -> u64 {
        match self {
            KeyMode::Naive => self.max_key(),
            KeyMode::Extended => self.max_key(),
            KeyMode::ThreeD(d) => d.max_x(),
        }
    }

    /// Converts keys to primitive centres in bulk.
    pub fn centers(&self, keys: &[u64]) -> Vec<Vec3f> {
        keys.iter().map(|&k| self.center(k)).collect()
    }

    /// Converts keys to per-key half extents in bulk.
    pub fn half_extent_list(&self, keys: &[u64]) -> Vec<Vec3f> {
        keys.iter().map(|&k| self.half_extents(k)).collect()
    }
}

/// The Extended-Mode conversion formula from Table 1:
/// `k ↦ bit_cast::<f32>(2k + C)` with `C = bit_cast::<u32>(0.5f32)`.
#[inline]
pub fn extended_coord(key: u64) -> f32 {
    float_bits::bit_cast_f32((2 * key) as u32 + float_bits::EXTENDED_MODE_OFFSET)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mode_names_and_limits() {
        assert_eq!(KeyMode::Naive.name(), "naive");
        assert_eq!(KeyMode::Extended.name(), "ext");
        assert_eq!(KeyMode::three_d_default().name(), "3d");
        assert_eq!(KeyMode::Naive.max_key(), (1 << 23) - 1);
        assert_eq!(KeyMode::Extended.max_key(), (1 << 29) - 1);
        assert_eq!(KeyMode::three_d_default().max_key(), u64::MAX);
        assert_eq!(KeyMode::all().len(), 3);
    }

    #[test]
    fn key_support_checks() {
        assert!(KeyMode::Naive.supports_key((1 << 23) - 1));
        assert!(!KeyMode::Naive.supports_key(1 << 23));
        assert!(KeyMode::Extended.supports_key((1 << 29) - 1));
        assert!(!KeyMode::Extended.supports_key(1 << 29));
        assert!(KeyMode::three_d_default().supports_key(u64::MAX));
    }

    #[test]
    fn primitive_support_matches_table1() {
        for mode in KeyMode::all() {
            assert!(mode.supports_primitive(PrimitiveKind::Triangle));
            assert!(mode.supports_primitive(PrimitiveKind::Aabb));
        }
        assert!(KeyMode::Naive.supports_primitive(PrimitiveKind::Sphere));
        assert!(!KeyMode::Extended.supports_primitive(PrimitiveKind::Sphere));
        assert!(KeyMode::three_d_default().supports_primitive(PrimitiveKind::Sphere));
    }

    #[test]
    fn naive_center_is_direct_cast() {
        assert_eq!(KeyMode::Naive.center(42), Vec3f::new(42.0, 0.0, 0.0));
        assert_eq!(KeyMode::Naive.x_gap_below(42), 41.5);
        assert_eq!(KeyMode::Naive.x_gap_above(42), 42.5);
        assert_eq!(KeyMode::Naive.row(42), 0);
    }

    #[test]
    fn extended_mode_is_order_preserving_with_gaps() {
        let mut prev_above = f32::NEG_INFINITY;
        for key in [0u64, 1, 2, 3, 1000, 1_000_000, (1 << 29) - 1] {
            let c = extended_coord(key);
            let below = KeyMode::Extended.x_gap_below(key);
            let above = KeyMode::Extended.x_gap_above(key);
            assert!(
                below < c && c < above,
                "gaps must bracket the key coordinate"
            );
            assert!(
                c > prev_above,
                "coordinates and gaps must be strictly increasing"
            );
            prev_above = above;
        }
    }

    #[test]
    fn extended_adjacent_keys_share_a_gap_value() {
        // The gap above key k is the gap below key k+1: exactly one float32
        // lies between adjacent key coordinates.
        for key in [0u64, 5, 12345, 1 << 20] {
            assert_eq!(
                KeyMode::Extended.x_gap_above(key),
                KeyMode::Extended.x_gap_below(key + 1)
            );
        }
    }

    #[test]
    fn extended_half_extent_stays_inside_gaps() {
        for key in [0u64, 7, 999_999, (1 << 29) - 1] {
            let c = extended_coord(key);
            let h = KeyMode::Extended.half_extents(key);
            assert!(c - h.x > KeyMode::Extended.x_gap_below(key) - f32::EPSILON * c.abs());
            assert!(c + h.x < KeyMode::Extended.x_gap_above(key) + f32::EPSILON * c.abs());
            assert!(h.x > 0.0);
        }
    }

    #[test]
    fn three_d_center_splits_bits() {
        let d = Decomposition::new(4, 4, 4);
        let mode = KeyMode::ThreeD(d);
        let key = d.join(3, 5, 7);
        assert_eq!(mode.center(key), Vec3f::new(3.0, 5.0, 7.0));
        assert_eq!(mode.row(key), d.row(key));
        assert_eq!(mode.row_coords(mode.row(key)), (5.0, 7.0));
        assert_eq!(mode.max_x_component(), 15);
    }

    #[test]
    fn three_d_is_identical_to_naive_below_2_23() {
        // "This mode is identical to Naive Mode for all keys smaller than
        // 2^23" — Section 3.2.
        let mode3d = KeyMode::three_d_default();
        for key in [0u64, 1, 1000, (1 << 23) - 1] {
            assert_eq!(mode3d.center(key), KeyMode::Naive.center(key));
            assert_eq!(mode3d.x_gap_below(key), KeyMode::Naive.x_gap_below(key));
        }
    }

    #[test]
    fn bulk_conversions_match_single_conversions() {
        let mode = KeyMode::three_d_default();
        let keys = [1u64, 2, 1 << 30, u64::MAX];
        let centers = mode.centers(&keys);
        let halves = mode.half_extent_list(&keys);
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(centers[i], mode.center(k));
            assert_eq!(halves[i], mode.half_extents(k));
        }
    }

    proptest! {
        #[test]
        fn prop_naive_coordinates_are_monotone(a in 0u64..(1 << 23), b in 0u64..(1 << 23)) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(KeyMode::Naive.center(lo).x <= KeyMode::Naive.center(hi).x);
        }

        #[test]
        fn prop_extended_coordinates_are_monotone(a in 0u64..(1 << 29), b in 0u64..(1 << 29)) {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            if lo != hi {
                prop_assert!(extended_coord(lo) < extended_coord(hi));
            }
        }

        #[test]
        fn prop_3d_round_trip_through_split(key in any::<u64>()) {
            let d = Decomposition::DEFAULT;
            let mode = KeyMode::ThreeD(d);
            let c = mode.center(key);
            let (x, y, z) = d.split(key);
            prop_assert_eq!(c.x, x as f32);
            prop_assert_eq!(c.y, y as f32);
            prop_assert_eq!(c.z, z as f32);
        }
    }
}
