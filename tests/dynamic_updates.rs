//! Acceptance test of the dynamic-update subsystem, driven entirely through
//! the unified query/update API: the `"RXD"` backend obtained from the
//! registry must answer identically to the CPU oracle over a 10k-operation
//! mixed workload (inserts, deletes, upserts, point and range lookups;
//! uniform and Zipf key choice), with at least one *automatic* compaction
//! observed mid-workload and the device-memory accounting balanced
//! afterwards.

use rtindex::rtx_delta::{register_dynamic, CompactionPolicy};
use rtindex::{Device, DynamicRtConfig, IndexSpec, QueryBatch, Registry, UpdatableIndex, MISS};
use rtx_workloads as wl;
use rtx_workloads::mixed::{apply_mixed_op, mixed_ops, MixedOp, MixedWorkloadConfig};
use rtx_workloads::truth::DynamicOracle;

/// Drives `index` and `oracle` through `ops` in lockstep via
/// `apply_mixed_op`, comparing every lookup answer, and mirroring each
/// compaction (reported through the update reports) into the oracle.
fn drive_and_verify(
    index: &mut dyn UpdatableIndex,
    oracle: &mut DynamicOracle,
    ops: &[MixedOp],
) -> (usize, u64) {
    let mut verified_lookups = 0usize;
    let mut compactions = 0u64;
    for (op_idx, op) in ops.iter().enumerate() {
        let expected = op.as_query_batch().map(|b| oracle.expected_batch(&b));
        let result = apply_mixed_op(index, op).expect("apply op");
        let expected_deletes = oracle.apply(op);

        if let Some(report) = &result.update {
            assert_eq!(
                report.deleted_rows,
                expected_deletes,
                "op {op_idx}: {} deletions",
                op.kind()
            );
            // Compactions renumber rows; mirror each reported one into the
            // oracle. An unreported (or multiply-run) compaction desyncs
            // the first_row of every subsequent lookup comparison, so the
            // at-most-one-per-batch contract is verified by the lockstep
            // itself rather than by a local counter assertion.
            if report.reorganisations >= 1 {
                oracle.compact();
                compactions += report.reorganisations;
            }
        }
        if let Some(out) = &result.lookups {
            let expected = expected.expect("read op has an expected batch");
            assert_eq!(out.results, expected, "op {op_idx}: {} answers", op.kind());
            verified_lookups += out.results.len();
        }
        assert_eq!(
            index.key_count(),
            oracle.len(),
            "op {op_idx}: live entry count"
        );
    }
    (verified_lookups, compactions)
}

fn run_mixed_workload(config: MixedWorkloadConfig) {
    let device = Device::default_eval();
    let initial_keys = wl::dense_shuffled((config.key_domain / 4) as usize, config.seed);
    let initial_values = wl::value_column(initial_keys.len(), config.seed + 1);

    // Thresholds low enough that the 10k-operation stream compacts several
    // times mid-workload.
    let dyn_config = DynamicRtConfig::default().with_policy(CompactionPolicy {
        max_delta_entries: 1 << 12,
        max_delta_fraction: 0.25,
        max_delete_ratio: 0.25,
    });
    let mut registry = Registry::new();
    register_dynamic(&mut registry, dyn_config);
    let mut index = registry
        .build_updatable(
            "RXD",
            &IndexSpec::with_values(&device, &initial_keys, &initial_values),
        )
        .unwrap();
    let mut oracle = DynamicOracle::new(&initial_keys, &initial_values);

    let ops = mixed_ops(&config);
    let total_ops: usize = ops.iter().map(MixedOp::len).sum();
    assert_eq!(total_ops, config.total_ops);

    let (verified_lookups, compactions) = drive_and_verify(index.as_mut(), &mut oracle, &ops);

    assert!(
        verified_lookups > 1000,
        "the mix must verify a substantial lookup volume"
    );
    assert!(
        compactions >= 1,
        "the workload must trigger at least one automatic compaction"
    );
    assert_eq!(
        device.memory().current_bytes(),
        index.memory_bytes(),
        "device memory accounting must balance after compactions"
    );

    // Full final sweep: every key of the domain answers like the oracle.
    let sweep: Vec<u64> = (0..config.key_domain).collect();
    let batch = QueryBatch::of_points(&sweep).fetch_values(true);
    let out = index.execute(&batch).unwrap();
    assert_eq!(out.results, oracle.expected_batch(&batch), "final sweep");
    for r in &out.results {
        if r.hit_count == 0 {
            assert_eq!(r.first_row, MISS);
        }
    }
}

#[test]
fn uniform_mixed_workload_matches_oracle_10k_ops() {
    run_mixed_workload(MixedWorkloadConfig::uniform(10_000, 4096, 0x00DD_BA11));
}

#[test]
fn zipfian_mixed_workload_matches_oracle_10k_ops() {
    run_mixed_workload(MixedWorkloadConfig::zipfian(10_000, 4096, 1.0, 0x5EED));
}

#[test]
fn heavy_zipf_hot_key_churn_matches_oracle() {
    // theta = 1.5 hammers a handful of hot keys with repeated
    // delete/reinsert/upsert cycles — the delta/tombstone stress case.
    run_mixed_workload(MixedWorkloadConfig::zipfian(6_000, 1024, 1.5, 7));
}
