//! [`SecondaryIndex`] adapters for the three baselines.
//!
//! One generic adapter serves every [`GpuIndex`] implementor: it binds the
//! device and the optional value column at build time (the unified API
//! models a secondary index over a `(key, value)` column pair) and converts
//! [`BaselineBatch`] outcomes into the shared [`BatchOutcome`].

use gpu_device::Device;
use optix_sim::LaunchMetrics;
use rtx_query::{
    BatchOutcome, Capabilities, IndexBuildMetrics, IndexError, IndexSpec, Registry, SecondaryIndex,
};

use crate::bplus_tree::BPlusTree;
use crate::common::{BaselineBatch, GpuIndex};
use crate::hash_table::WarpHashTable;
use crate::sorted_array::SortedArray;

/// Any [`GpuIndex`] behind the unified query API.
#[derive(Debug)]
pub struct GpuIndexAdapter<T: GpuIndex> {
    inner: T,
    device: Device,
    values: Option<std::sync::Arc<[u64]>>,
}

impl<T: GpuIndex> GpuIndexAdapter<T> {
    /// Wraps a built baseline index together with the device it runs on and
    /// the spec's optional value column (shared with the spec, not copied).
    pub fn new(inner: T, spec: &IndexSpec<'_>) -> Self {
        GpuIndexAdapter {
            inner,
            device: spec.device.clone(),
            values: spec.values.clone(),
        }
    }

    /// The wrapped baseline index.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    fn values(&self, fetch: bool) -> Option<&[u64]> {
        if fetch {
            self.values.as_deref()
        } else {
            None
        }
    }
}

/// Converts a baseline kernel outcome into the unified batch outcome.
fn convert(batch: BaselineBatch) -> BatchOutcome {
    BatchOutcome {
        results: batch.results,
        metrics: LaunchMetrics {
            kernel: batch.kernel,
            simulated_time_s: batch.simulated_time_s,
            host_time: batch.host_time,
            ..Default::default()
        },
    }
}

impl<T: GpuIndex> SecondaryIndex for GpuIndexAdapter<T> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn key_count(&self) -> usize {
        self.inner.key_count()
    }

    fn memory_bytes(&self) -> u64 {
        self.inner.memory_bytes()
    }

    fn build_metrics(&self) -> IndexBuildMetrics {
        let m = self.inner.build_metrics();
        IndexBuildMetrics {
            simulated_time_s: m.simulated_time_s,
            host_time: m.host_build_time,
            scratch_bytes: m.scratch_bytes,
        }
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            range_lookups: self.inner.supports_range(),
            duplicate_keys: self.inner.supports_duplicates(),
            full_64bit_keys: self.inner.supports_64bit_keys(),
            updates: false,
        }
    }

    fn has_value_column(&self) -> bool {
        self.values.is_some()
    }

    fn point_chunk(&self, queries: &[u64], fetch: bool) -> Result<BatchOutcome, IndexError> {
        Ok(convert(self.inner.point_lookup_batch(
            &self.device,
            queries,
            self.values(fetch),
        )))
    }

    fn range_chunk(&self, ranges: &[(u64, u64)], fetch: bool) -> Result<BatchOutcome, IndexError> {
        self.inner
            .range_lookup_batch(&self.device, ranges, self.values(fetch))
            .map(convert)
            .ok_or_else(|| IndexError::UnsupportedOperation {
                backend: self.name().to_string().into(),
                operation: "range lookups",
            })
    }
}

/// Registers the three baseline backends (`"HT"`, `"B+"`, `"SA"`).
pub fn register_baselines(registry: &mut Registry) {
    registry.register("HT", |spec| {
        let inner = WarpHashTable::build(spec.device, spec.keys)?;
        Ok(Box::new(GpuIndexAdapter::new(inner, spec)) as Box<dyn SecondaryIndex>)
    });
    registry.register("B+", |spec| {
        let inner = BPlusTree::build(spec.device, spec.keys)?;
        Ok(Box::new(GpuIndexAdapter::new(inner, spec)) as Box<dyn SecondaryIndex>)
    });
    registry.register("SA", |spec| {
        let inner = SortedArray::build(spec.device, spec.keys)?;
        Ok(Box::new(GpuIndexAdapter::new(inner, spec)) as Box<dyn SecondaryIndex>)
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_query::{QueryBatch, MISS};

    fn registry() -> Registry {
        let mut registry = Registry::new();
        register_baselines(&mut registry);
        registry
    }

    #[test]
    fn all_baselines_answer_mixed_batches_via_the_registry() {
        let device = Device::default_eval();
        let keys: Vec<u64> = (0..256u64).rev().collect();
        let values: Vec<u64> = (0..256u64).map(|v| v + 1).collect();
        let registry = registry();
        assert_eq!(registry.backends(), vec!["B+", "HT", "SA"]);

        let spec = IndexSpec::with_values(&device, &keys, &values);
        for name in ["B+", "SA"] {
            let ix = registry.build(name, &spec).unwrap();
            let out = ix
                .execute(
                    &QueryBatch::new()
                        .point(255)
                        .range(0, 9)
                        .point(999)
                        .fetch_values(true),
                )
                .unwrap();
            assert_eq!(out.results[0].first_row, 0, "{name}: key 255 is row 0");
            assert_eq!(out.results[0].value_sum, 1, "{name}");
            assert_eq!(out.results[1].hit_count, 10, "{name}");
            assert_eq!(out.results[2].first_row, MISS, "{name}");
        }

        // HT answers the points but fails the mixed batch on the range op.
        let ht = registry.build("HT", &spec).unwrap();
        assert!(!ht.capabilities().range_lookups);
        let points = ht
            .execute(&QueryBatch::of_points(&[255, 999]).fetch_values(true))
            .unwrap();
        assert_eq!(points.results[0].value_sum, 1);
        let err = ht
            .execute(&QueryBatch::new().point(1).range(0, 9))
            .unwrap_err();
        assert!(matches!(err, IndexError::UnsupportedOperation { .. }));
    }

    #[test]
    fn bplus_key_set_restrictions_surface_as_unsupported() {
        let device = Device::default_eval();
        let registry = registry();
        let dup = [1u64, 2, 2];
        let err = registry
            .build("B+", &IndexSpec::keys_only(&device, &dup))
            .map(|_| ())
            .unwrap_err();
        assert!(err.is_unsupported_key_set());

        let supported = registry
            .build_supported(&IndexSpec::keys_only(&device, &dup))
            .unwrap();
        let names: Vec<&str> = supported.iter().map(|ix| ix.name()).collect();
        assert_eq!(names, vec!["HT", "SA"]);
    }

    #[test]
    fn empty_key_sets_build_indexes_that_only_miss() {
        let device = Device::default_eval();
        let registry = registry();
        let spec = IndexSpec::keys_only(&device, &[]);
        for name in registry.backends() {
            let ix = registry.build(name, &spec).unwrap();
            assert_eq!(ix.key_count(), 0, "{name}");
            let batch = if ix.capabilities().range_lookups {
                QueryBatch::new().point(1).range(0, 100)
            } else {
                QueryBatch::new().point(1)
            };
            let out = ix.execute(&batch).unwrap();
            assert_eq!(out.hit_count(), 0, "{name}");
        }
    }
}
