//! The CI perf gate: quick benchmark metrics, their JSON round-trip and
//! the baseline comparison.
//!
//! CI runs [`quick_suite`] (via the `perf-smoke` binary) on a small preset,
//! uploads the resulting JSON as the `BENCH_ci.json` artifact, and fails
//! the build when a **gated** metric regresses more than the allowed
//! fraction against the checked-in `bench/baseline.json` (via the
//! `bench-compare` binary).
//!
//! Two classes of metric keep the gate meaningful on heterogeneous CI
//! hosts:
//!
//! * **gated** metrics are deterministic (simulated device throughput — a
//!   pure function of the workload and the cost model), relative (the
//!   coalescing speedup, a ratio of two host timings on the *same*
//!   machine), or absolute host throughputs whose baseline is committed
//!   far enough below the measured value that only a structural
//!   regression (not runner jitter) can trip them. These must not
//!   regress.
//! * **ungated** metrics are recorded for the trajectory but never fail
//!   the build.
//!
//! Re-baselining: run
//! `cargo run --release -p rtx-harness --bin perf-smoke -- --scale tiny --out bench/baseline.json`
//! and commit the result. Checked-in values for *relative* gated metrics
//! should be rounded toward the conservative side — **down** for
//! higher-is-better ratios (the coalescing speedup), **up** for
//! lower-is-better ones (the compaction stall ratio) — so the gate
//! tolerates slower CI hosts while still catching real regressions.
//! Simulated build costs scale with the worker-pool width, so the
//! `perf-smoke` binary pins `RTX_WORKERS=8` when unset (CI pins the same
//! width); re-baseline under the same pin.
//!
//! The JSON schema is deliberately flat; writer and parser live here (the
//! workspace builds offline — no serde):
//!
//! ```json
//! {
//!   "schema": 1,
//!   "scale": "tiny",
//!   "metrics": [
//!     {"experiment": "point_lookup", "metric": "RX simulated throughput",
//!      "unit": "ops/s", "value": 1.0e7, "higher_is_better": true, "gated": true}
//!   ]
//! }
//! ```

use rtx_query::{IndexSpec, QueryBatch};
use rtx_workloads as wl;

use crate::experiments::build_pipeline::{self, CompactionMode};
use crate::experiments::service_throughput;
use crate::indexes::{measure_points, registry};
use crate::scale::ExperimentScale;

/// Schema version stamped into every report.
pub const SCHEMA_VERSION: u64 = 1;

/// One benchmark metric of the perf-smoke suite.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchMetric {
    /// Experiment the metric comes from (e.g. `"service_throughput"`).
    pub experiment: String,
    /// Metric name, unique within the experiment.
    pub metric: String,
    /// Unit the value is expressed in (`"ops/s"`, `"x"`, …).
    pub unit: String,
    /// The measured value.
    pub value: f64,
    /// Direction of improvement.
    pub higher_is_better: bool,
    /// Whether the CI gate fails on a regression of this metric.
    pub gated: bool,
}

impl BenchMetric {
    /// The `experiment/metric` key used to match baseline and current.
    pub fn key(&self) -> String {
        format!("{}/{}", self.experiment, self.metric)
    }
}

/// A full perf-smoke report: the scale it ran at plus its metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Scale name the suite ran at (`"tiny"`, `"small"`, …).
    pub scale: String,
    /// The measured metrics.
    pub metrics: Vec<BenchMetric>,
}

// --- JSON writing ---------------------------------------------------------

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl BenchReport {
    /// Renders the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": {SCHEMA_VERSION},\n"));
        out.push_str(&format!("  \"scale\": \"{}\",\n", escape_json(&self.scale)));
        out.push_str("  \"metrics\": [\n");
        for (i, m) in self.metrics.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"experiment\": \"{}\", \"metric\": \"{}\", \"unit\": \"{}\", \
                 \"value\": {:e}, \"higher_is_better\": {}, \"gated\": {}}}{}\n",
                escape_json(&m.experiment),
                escape_json(&m.metric),
                escape_json(&m.unit),
                m.value,
                m.higher_is_better,
                m.gated,
                if i + 1 < self.metrics.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a report written by [`BenchReport::to_json`] (or any JSON
    /// document with the same shape).
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        let value = JsonValue::parse(text)?;
        let object = value.as_object().ok_or("top level must be an object")?;
        let schema = get(object, "schema")?
            .as_number()
            .ok_or("\"schema\" must be a number")? as u64;
        if schema != SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema version {schema} (expected {SCHEMA_VERSION})"
            ));
        }
        let scale = get(object, "scale")?
            .as_string()
            .ok_or("\"scale\" must be a string")?
            .to_string();
        let metrics = get(object, "metrics")?
            .as_array()
            .ok_or("\"metrics\" must be an array")?
            .iter()
            .map(|entry| {
                let m = entry.as_object().ok_or("metric entries must be objects")?;
                Ok(BenchMetric {
                    experiment: get(m, "experiment")?
                        .as_string()
                        .ok_or("\"experiment\" must be a string")?
                        .to_string(),
                    metric: get(m, "metric")?
                        .as_string()
                        .ok_or("\"metric\" must be a string")?
                        .to_string(),
                    unit: get(m, "unit")?
                        .as_string()
                        .ok_or("\"unit\" must be a string")?
                        .to_string(),
                    value: get(m, "value")?
                        .as_number()
                        .ok_or("\"value\" must be a number")?,
                    higher_is_better: get(m, "higher_is_better")?
                        .as_bool()
                        .ok_or("\"higher_is_better\" must be a bool")?,
                    gated: get(m, "gated")?
                        .as_bool()
                        .ok_or("\"gated\" must be a bool")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(BenchReport { scale, metrics })
    }
}

fn get<'a>(object: &'a [(String, JsonValue)], key: &str) -> Result<&'a JsonValue, String> {
    object
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing key {key:?}"))
}

// --- Minimal JSON parser --------------------------------------------------

/// A parsed JSON value — just enough JSON for the bench-report schema (and
/// any hand-edited baseline): objects, arrays, strings, f64 numbers, bools
/// and null.
#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    Object(Vec<(String, JsonValue)>),
    Array(Vec<JsonValue>),
    String(String),
    Number(f64),
    Bool(bool),
    Null,
}

impl JsonValue {
    fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_whitespace(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }

    fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(entries) => Some(entries),
            _ => None,
        }
    }

    fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    fn as_string(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    fn as_number(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

fn skip_whitespace(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {} (found {:?})",
            c as char,
            *pos,
            bytes.get(*pos).map(|&b| b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_whitespace(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'{')?;
    let mut entries = Vec::new();
    skip_whitespace(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(entries));
    }
    loop {
        skip_whitespace(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_whitespace(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        entries.push((key, value));
        skip_whitespace(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(entries));
            }
            other => return Err(format!("expected ',' or '}}' (found {other:?})")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_whitespace(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_whitespace(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            other => return Err(format!("expected ',' or ']' (found {other:?})")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hi = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        let code = if (0xD800..=0xDBFF).contains(&hi) {
                            // High surrogate: valid JSON continues with an
                            // escaped low surrogate forming one code point.
                            if bytes.get(*pos + 1) != Some(&b'\\')
                                || bytes.get(*pos + 2) != Some(&b'u')
                            {
                                return Err("unpaired \\u surrogate".to_string());
                            }
                            let lo = parse_hex4(bytes, *pos + 3)?;
                            if !(0xDC00..=0xDFFF).contains(&lo) {
                                return Err("unpaired \\u surrogate".to_string());
                            }
                            *pos += 6;
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                    }
                    other => return Err(format!("invalid escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (multi-byte sequences are
                // copied verbatim).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty remainder");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// Parses the four hex digits of a `\u` escape starting at `start`.
fn parse_hex4(bytes: &[u8], start: usize) -> Result<u32, String> {
    let hex = bytes.get(start..start + 4).ok_or("truncated \\u escape")?;
    u32::from_str_radix(
        std::str::from_utf8(hex).map_err(|_| "invalid \\u escape")?,
        16,
    )
    .map_err(|_| "invalid \\u escape".to_string())
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(JsonValue::Number)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

// --- Baseline comparison --------------------------------------------------

/// Verdict of one metric's baseline comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within the allowed regression (or an improvement).
    Pass,
    /// A gated metric regressed beyond the allowed fraction.
    Regressed,
    /// The baseline has this gated metric but the current run does not —
    /// a silently dropped measurement must fail, not pass by omission.
    MissingCurrent,
    /// The current run has a metric the baseline does not know; passes
    /// with a re-baseline hint.
    MissingBaseline,
    /// Recorded for the trajectory only; never fails the gate.
    Ungated,
}

/// One metric's baseline-vs-current comparison.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// The `experiment/metric` key.
    pub key: String,
    /// Baseline value, when present.
    pub baseline: Option<f64>,
    /// Current value, when present.
    pub current: Option<f64>,
    /// current/baseline when both are present.
    pub ratio: Option<f64>,
    /// The verdict.
    pub verdict: Verdict,
}

/// Compares a current report against the checked-in baseline.
/// `max_regression` is the allowed fractional loss on gated metrics (0.30
/// = fail when more than 30% worse than baseline, in the metric's own
/// direction of improvement).
pub fn compare(
    baseline: &BenchReport,
    current: &BenchReport,
    max_regression: f64,
) -> Vec<Comparison> {
    let mut comparisons = Vec::new();
    for b in &baseline.metrics {
        let key = b.key();
        let cur = current.metrics.iter().find(|c| c.key() == key);
        let (verdict, ratio) = match cur {
            None => (
                if b.gated {
                    Verdict::MissingCurrent
                } else {
                    Verdict::Ungated
                },
                None,
            ),
            Some(c) => {
                let ratio = if b.value != 0.0 {
                    Some(c.value / b.value)
                } else {
                    None
                };
                let regressed = match (ratio, b.higher_is_better) {
                    (Some(r), true) => r < 1.0 - max_regression,
                    (Some(r), false) => r > 1.0 + max_regression,
                    (None, _) => false,
                };
                let verdict = if !b.gated {
                    Verdict::Ungated
                } else if regressed {
                    Verdict::Regressed
                } else {
                    Verdict::Pass
                };
                (verdict, ratio)
            }
        };
        comparisons.push(Comparison {
            key,
            baseline: Some(b.value),
            current: cur.map(|c| c.value),
            ratio,
            verdict,
        });
    }
    for c in &current.metrics {
        let key = c.key();
        if !baseline.metrics.iter().any(|b| b.key() == key) {
            comparisons.push(Comparison {
                key,
                baseline: None,
                current: Some(c.value),
                ratio: None,
                verdict: Verdict::MissingBaseline,
            });
        }
    }
    comparisons
}

/// The comparisons that fail the gate.
pub fn failures(comparisons: &[Comparison]) -> Vec<&Comparison> {
    comparisons
        .iter()
        .filter(|c| matches!(c.verdict, Verdict::Regressed | Verdict::MissingCurrent))
        .collect()
}

// --- The quick suite ------------------------------------------------------

fn metric(
    experiment: &str,
    name: impl Into<String>,
    unit: &str,
    value: f64,
    higher_is_better: bool,
    gated: bool,
) -> BenchMetric {
    BenchMetric {
        experiment: experiment.to_string(),
        metric: name.into(),
        unit: unit.to_string(),
        value,
        higher_is_better,
        gated,
    }
}

/// Runs the quick perf-smoke suite at the given scale and names it after
/// the scale. Gated metrics are deterministic (simulated throughput) or
/// relative (the coalescing speedup); absolute host timings are recorded
/// ungated.
pub fn quick_suite(scale: &ExperimentScale) -> BenchReport {
    let scale_name = match scale.keys_exp {
        12 => "tiny",
        18 => "small",
        20 => "medium",
        26 => "paper",
        _ => "custom",
    };
    let device = crate::scaled_device(scale);
    let n = scale.default_keys();
    let keys = wl::dense_shuffled(n, scale.seed);
    let values = wl::value_column(n, scale.seed + 1);
    let spec = IndexSpec::with_values(&device, &keys, &values);
    let registry = registry();
    let mut metrics = Vec::new();

    // Simulated lookup throughput per backend: a pure function of the
    // workload and the cost model, so it gates deterministically.
    let queries = wl::point_lookups(&keys, scale.default_lookups().min(n), scale.seed + 2);
    for backend in ["RX", "HT", "B+", "SA", "RXD"] {
        let index = registry.build(backend, &spec).expect("backend");
        let m = measure_points(index.as_ref(), &queries, true);
        metrics.push(metric(
            "point_lookup",
            format!("{backend} simulated throughput"),
            "ops/s",
            m.throughput(queries.len()),
            true,
            true,
        ));
    }
    let ranges = wl::range_lookups(n as u64, (n / 32).max(1), 32, scale.seed + 3);
    for backend in ["RX", "SA"] {
        let index = registry.build(backend, &spec).expect("backend");
        let out = index
            .execute(&QueryBatch::of_ranges(&ranges).fetch_values(true))
            .expect("ranges");
        metrics.push(metric(
            "range_lookup",
            format!("{backend} simulated throughput"),
            "ops/s",
            if out.sim_ms() > 0.0 {
                ranges.len() as f64 / (out.sim_ms() / 1e3)
            } else {
                0.0
            },
            true,
            true,
        ));
    }

    // Simulated update throughput of the delta layer.
    {
        let mut index = registry.build_updatable("RXD", &spec).expect("RXD");
        let fresh: Vec<u64> = (0..n as u64 / 4).map(|k| k + 2 * n as u64).collect();
        let fresh_values: Vec<u64> = fresh.iter().map(|k| k * 3).collect();
        let insert = index.insert(&fresh, &fresh_values).expect("insert");
        let delete = index.delete(&fresh[..fresh.len() / 2]).expect("delete");
        let rows = (insert.inserted_rows + delete.deleted_rows) as f64;
        let sim_s = insert.simulated_time_s + delete.simulated_time_s;
        metrics.push(metric(
            "update_throughput",
            "RXD simulated update throughput",
            "rows/s",
            if sim_s > 0.0 { rows / sim_s } else { 0.0 },
            true,
            true,
        ));
    }

    // The coalescing gate: host-relative (both sides of the ratio run on
    // this machine), plus the absolute host throughputs — gated since the
    // allocation-free host path landed, with baselines committed far
    // enough below the measured steady state that runner jitter cannot
    // trip them. One cell only — the worst case for serial submission
    // (most clients, smallest batches) — not the whole sweep.
    let clients = *service_throughput::CLIENT_COUNTS
        .last()
        .expect("client sweep is non-empty");
    let cell = &service_throughput::run_one(scale, clients, service_throughput::BATCH_OPS[0]);
    metrics.push(metric(
        "service_throughput",
        format!(
            "coalescing speedup, {} clients x {}-op batches",
            cell.clients, cell.batch_ops
        ),
        "x",
        cell.speedup(),
        true,
        true,
    ));
    metrics.push(metric(
        "service_throughput",
        "coalesced host throughput",
        "ops/s",
        cell.service_throughput(),
        true,
        true,
    ));
    metrics.push(metric(
        "service_throughput",
        "serial host throughput",
        "ops/s",
        cell.serial_throughput(),
        true,
        true,
    ));
    metrics.push(metric(
        "service_throughput",
        "mean fused ops",
        "ops",
        cell.mean_fused_ops,
        true,
        false,
    ));

    // Open-loop tail latency: the adaptive linger + hot-shard rebalancing
    // stack against the static service defaults on identical Zipf
    // schedules, median percentiles across interleaved trials. The ratios
    // are host-relative (both arms run on this machine back to back) so
    // they gate; the absolute percentiles are wall-clock and record
    // ungated for the trajectory.
    {
        let pair = crate::experiments::service_latency::run_pair(scale);
        metrics.push(metric(
            "service_latency",
            "p50 latency ratio, adaptive vs fixed linger",
            "x",
            pair.p50_ratio(),
            false,
            true,
        ));
        metrics.push(metric(
            "service_latency",
            "p99 latency ratio, adaptive vs fixed linger",
            "x",
            pair.p99_ratio(),
            false,
            true,
        ));
        metrics.push(metric(
            "service_latency",
            "adaptive p50 latency",
            "ms",
            pair.adaptive.p50_ms,
            false,
            false,
        ));
        metrics.push(metric(
            "service_latency",
            "adaptive p99 latency",
            "ms",
            pair.adaptive.p99_ms,
            false,
            false,
        ));
        metrics.push(metric(
            "service_latency",
            "fixed p99 latency",
            "ms",
            pair.fixed.p99_ms,
            false,
            false,
        ));
    }

    // Planner selection: the cost-based table planner against the worst
    // single-index choice on the same mixed workload. Recorded ungated
    // for the trajectory (the ratio is simulated-deterministic but young;
    // promote once the table layer's cost model settles).
    {
        let runs = crate::experiments::planner_selection::run_arms(scale);
        let (planner, worst) =
            crate::experiments::planner_selection::planner_vs_worst_forced(&runs);
        metrics.push(metric(
            "planner_selection",
            "planner-chosen simulated throughput",
            "ops/s",
            planner.sim_throughput(),
            true,
            false,
        ));
        metrics.push(metric(
            "planner_selection",
            "planner speedup vs worst forced index",
            "x",
            planner.sim_throughput() / worst.sim_throughput().max(1e-12),
            true,
            false,
        ));
    }

    // Staged-build gate: the pipeline's simulated throughput and its
    // 8-vs-1-queue speedup are pure cost-model functions of the workload
    // (the queue widths are explicit, not taken from the host), so they
    // gate deterministically on any machine.
    {
        let cells = build_pipeline::run_build_scaling(&device, &keys);
        let cell = |workers: usize| {
            cells
                .iter()
                .find(|c| c.builder == "lbvh" && c.workers == workers)
                .expect("lbvh sweep covers the width")
        };
        let (serial, wide) = (cell(1), cell(8));
        metrics.push(metric(
            "build_throughput",
            "staged LBVH simulated build throughput, 8 queues",
            "keys/s",
            wide.throughput(),
            true,
            true,
        ));
        metrics.push(metric(
            "build_throughput",
            "staged build speedup, 8 vs 1 queues",
            "x",
            serial.sim_s / wide.sim_s,
            true,
            true,
        ));
    }

    // Compaction-stall gate: host-relative (both modes timed on this
    // machine); always measured at 2^14 keys so the rebuild dwarfs timer
    // noise even when the suite runs at tiny scale.
    {
        let stall_scale = ExperimentScale {
            keys_exp: scale.keys_exp.max(14),
            ..*scale
        };
        let sync = build_pipeline::run_compaction_stall(&stall_scale, CompactionMode::Synchronous);
        let background =
            build_pipeline::run_compaction_stall(&stall_scale, CompactionMode::Background);
        metrics.push(metric(
            "build_throughput",
            "compaction stall ratio, background vs sync p99",
            "x",
            background.p99() / sync.p99().max(1e-12),
            false,
            true,
        ));
        metrics.push(metric(
            "build_throughput",
            "sync compaction p99 write stall",
            "ms",
            sync.p99() * 1e3,
            false,
            false,
        ));
        metrics.push(metric(
            "build_throughput",
            "background compaction p99 write stall",
            "ms",
            background.p99() * 1e3,
            false,
            false,
        ));
    }

    // WAL replay throughput: absolute host wall-clock over a durable
    // reopen, so it is recorded for the trajectory only (ungated; promote
    // once it proves stable across runners).
    {
        let runs = crate::experiments::recovery_throughput::run_sweep(scale);
        let (run, replayed_ops) = runs
            .iter()
            .rfind(|(r, _)| !r.checkpointed)
            .expect("sweep has uncheckpointed runs");
        metrics.push(metric(
            "recovery_throughput",
            "WAL replay host throughput, full log",
            "ops/s",
            run.replay_ops_per_s(*replayed_ops),
            true,
            false,
        ));
        metrics.push(metric(
            "recovery_throughput",
            "recovery host time, full log",
            "ms",
            run.recovery_s * 1e3,
            false,
            false,
        ));
    }

    // Composite-key overhead: the typed `{u64}` identity schema (the
    // composite layer's direct codec over the same RX build) against the
    // raw path, host wall-clock over the same point batch. The encoding
    // is the identity so the target ratio is 1.0. The ratio is
    // host-relative (both sides timed on this machine) and has tracked
    // ~1.0 since it landed, so it now gates against a conservative floor;
    // the absolute throughput stays ungated.
    {
        use rtx_query::{KeyValue, TypedBatch};
        let raw = registry.build("RX", &spec).expect("RX");
        let typed = registry.build("RX{u64}", &spec).expect("RX{u64}");
        let raw_batch = QueryBatch::of_points(&queries).fetch_values(true);
        let typed_batch = queries
            .iter()
            .fold(TypedBatch::new(), |b, &k| b.point([KeyValue::U64(k)]))
            .fetch_values(true);
        raw.execute(&raw_batch).expect("raw warmup");
        typed.execute_typed(&typed_batch).expect("typed warmup");
        let reps = 5;
        let start = std::time::Instant::now();
        for _ in 0..reps {
            raw.execute(&raw_batch).expect("raw points");
        }
        let raw_s = start.elapsed().as_secs_f64();
        let start = std::time::Instant::now();
        for _ in 0..reps {
            typed.execute_typed(&typed_batch).expect("typed points");
        }
        let typed_s = start.elapsed().as_secs_f64();
        let ops = (queries.len() * reps) as f64;
        let typed_tp = ops / typed_s.max(1e-12);
        let raw_tp = ops / raw_s.max(1e-12);
        metrics.push(metric(
            "composite_overhead",
            "typed {u64} host throughput",
            "ops/s",
            typed_tp,
            true,
            false,
        ));
        metrics.push(metric(
            "composite_overhead",
            "typed vs raw host throughput ratio",
            "x",
            typed_tp / raw_tp.max(1e-12),
            true,
            true,
        ));
    }

    BenchReport {
        scale: scale_name.to_string(),
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> BenchReport {
        BenchReport {
            scale: "tiny".to_string(),
            metrics: vec![
                metric(
                    "point_lookup",
                    "RX simulated throughput",
                    "ops/s",
                    1.5e7,
                    true,
                    true,
                ),
                metric(
                    "service_throughput",
                    "coalescing speedup",
                    "x",
                    2.5,
                    true,
                    true,
                ),
                metric(
                    "service_throughput",
                    "host throughput",
                    "ops/s",
                    9e5,
                    true,
                    false,
                ),
            ],
        }
    }

    #[test]
    fn json_round_trips() {
        let report = sample_report();
        let json = report.to_json();
        let parsed = BenchReport::from_json(&json).expect("round trip");
        assert_eq!(parsed, report);
    }

    #[test]
    fn parser_handles_escapes_whitespace_and_rejects_junk() {
        let json = "{ \"schema\": 1, \"scale\": \"a\\\"b\\u0041\\n\",\n \"metrics\": [] }";
        let report = BenchReport::from_json(json).unwrap();
        assert_eq!(report.scale, "a\"bA\n");
        assert!(report.metrics.is_empty());

        // Surrogate pairs decode to one code point; unpaired halves fail.
        let json = "{\"schema\": 1, \"scale\": \"\\ud83d\\ude00\", \"metrics\": []}";
        assert_eq!(BenchReport::from_json(json).unwrap().scale, "😀");
        for unpaired in [
            "{\"schema\": 1, \"scale\": \"\\ud83d\", \"metrics\": []}",
            "{\"schema\": 1, \"scale\": \"\\ud83dx\", \"metrics\": []}",
            "{\"schema\": 1, \"scale\": \"\\ud83d\\u0041\", \"metrics\": []}",
            "{\"schema\": 1, \"scale\": \"\\ude00\", \"metrics\": []}",
        ] {
            assert!(BenchReport::from_json(unpaired).is_err(), "{unpaired:?}");
        }

        for junk in [
            "",
            "[]",
            "{\"schema\": 2, \"scale\": \"x\", \"metrics\": []}",
            "{\"schema\": 1, \"metrics\": []}",
            "{\"schema\": 1, \"scale\": \"x\", \"metrics\": [1]}",
            "{\"schema\": 1, \"scale\": \"x\", \"metrics\": []} trailing",
            "{\"schema\": 1, \"scale\": \"x\", \"metrics\": [{\"experiment\": \"e\"}]}",
        ] {
            assert!(BenchReport::from_json(junk).is_err(), "{junk:?}");
        }
    }

    #[test]
    fn comparison_verdicts_cover_the_gate_rules() {
        let baseline = sample_report();
        let mut current = sample_report();
        current.metrics[0].value = 1.2e7; // -20%: within a 30% gate
        current.metrics[1].value = 1.0; // -60%: regression
        current.metrics[2].value = 1e3; // ungated: cannot fail
        current
            .metrics
            .push(metric("new", "metric", "ops/s", 1.0, true, true));
        let comparisons = compare(&baseline, &current, 0.30);
        assert_eq!(comparisons.len(), 4);
        assert_eq!(comparisons[0].verdict, Verdict::Pass);
        assert_eq!(comparisons[1].verdict, Verdict::Regressed);
        assert_eq!(comparisons[2].verdict, Verdict::Ungated);
        assert_eq!(comparisons[3].verdict, Verdict::MissingBaseline);
        let failing = failures(&comparisons);
        assert_eq!(failing.len(), 1);
        assert_eq!(failing[0].key, "service_throughput/coalescing speedup");
        assert!((failing[0].ratio.unwrap() - 0.4).abs() < 1e-12);

        // A dropped gated metric fails; a dropped ungated one does not.
        let empty = BenchReport {
            scale: "tiny".into(),
            metrics: Vec::new(),
        };
        let comparisons = compare(&baseline, &empty, 0.30);
        assert_eq!(
            comparisons
                .iter()
                .filter(|c| c.verdict == Verdict::MissingCurrent)
                .count(),
            2
        );
        assert_eq!(failures(&comparisons).len(), 2);

        // Lower-is-better metrics regress upward.
        let mut base_lat = sample_report();
        base_lat.metrics = vec![metric("lat", "p99", "ms", 10.0, false, true)];
        let mut cur_lat = base_lat.clone();
        cur_lat.metrics[0].value = 14.0; // +40%
        let comparisons = compare(&base_lat, &cur_lat, 0.30);
        assert_eq!(comparisons[0].verdict, Verdict::Regressed);
        cur_lat.metrics[0].value = 12.0; // +20%
        let comparisons = compare(&base_lat, &cur_lat, 0.30);
        assert_eq!(comparisons[0].verdict, Verdict::Pass);
    }

    #[test]
    fn quick_suite_produces_gated_and_ungated_metrics() {
        let report = quick_suite(&ExperimentScale::tiny());
        assert_eq!(report.scale, "tiny");
        assert!(report.metrics.iter().any(|m| m.gated));
        assert!(report.metrics.iter().any(|m| !m.gated));
        assert!(
            report
                .metrics
                .iter()
                .all(|m| m.value.is_finite() && m.value > 0.0),
            "every metric must measure something: {:?}",
            report.metrics
        );
        // The suite must include the coalescing gate at the highest client
        // count of the sweep.
        assert!(report
            .metrics
            .iter()
            .any(|m| m.experiment == "service_throughput" && m.gated));
        // And it must round-trip through its own JSON.
        let json = report.to_json();
        assert_eq!(BenchReport::from_json(&json).unwrap(), report);
    }
}
