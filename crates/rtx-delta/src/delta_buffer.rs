//! The mutable delta layer: a GPU-hash-table insert buffer.
//!
//! New `(key, rowID, value)` entries land in an open-addressing table probed
//! in cooperative groups, exactly like the WarpCore-style [`WarpHashTable`]
//! baseline (the [`gpu_baselines::slot_hash`] placement and
//! [`gpu_baselines::GROUP_SIZE`] probing width are shared). Unlike the
//! build-once baseline, the delta supports *incremental* batched inserts,
//! key deletes (slots become probe-chain tombstones) and growth by
//! rehashing; every mutation is charged as one kernel against the owning
//! device's cost model, and the table's footprint is accounted in the
//! device-memory tracker.
//!
//! [`WarpHashTable`]: gpu_baselines::WarpHashTable

use gpu_baselines::{slot_hash, GROUP_SIZE, TARGET_LOAD_FACTOR};
use gpu_device::{Device, DeviceBuffer, KernelStats};

/// Bytes per delta slot: 8-byte key + 4-byte rowID + 8-byte value + state,
/// padded to 24 for coalesced accesses.
pub const DELTA_SLOT_BYTES: u64 = 24;

/// Initial slot count of an empty delta buffer.
const INITIAL_CAPACITY: usize = 4 * GROUP_SIZE;

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
enum SlotState {
    /// Never written; terminates probe sequences.
    #[default]
    Empty,
    /// Holds a live entry.
    Occupied,
    /// Held an entry that was deleted; probe sequences continue across it.
    Tombstone,
}

#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    key: u64,
    row: u32,
    value: u64,
    state: SlotState,
}

/// One live delta entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaEntry {
    /// Global rowID assigned at insert time.
    pub row: u32,
    /// Indexed key.
    pub key: u64,
    /// Projected value carried with the row.
    pub value: u64,
}

/// The mutable insert buffer layered over the immutable base index.
#[derive(Debug)]
pub struct DeltaBuffer {
    device: Device,
    slots: Vec<Slot>,
    live: usize,
    tombstones: usize,
    /// Device allocation backing the table.
    table_buffer: DeviceBuffer<u8>,
}

impl DeltaBuffer {
    /// Creates an empty buffer on `device`.
    pub fn new(device: &Device) -> Self {
        DeltaBuffer {
            device: device.clone(),
            slots: vec![Slot::default(); INITIAL_CAPACITY],
            live: 0,
            tombstones: 0,
            table_buffer: device.alloc::<u8>(INITIAL_CAPACITY * DELTA_SLOT_BYTES as usize),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live entry is buffered.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of slots (live + tombstoned + empty).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Tombstoned slots currently lengthening probe chains.
    pub fn tombstoned_slots(&self) -> usize {
        self.tombstones
    }

    /// Device memory occupied by the table.
    pub fn memory_bytes(&self) -> u64 {
        self.table_buffer.size_bytes()
    }

    /// Current load factor ((live + tombstones) / capacity).
    pub fn load_factor(&self) -> f64 {
        (self.live + self.tombstones) as f64 / self.slots.len() as f64
    }

    /// Grows the table until `extra` additional entries fit under the target
    /// load factor, rehashing live entries (tombstones are dropped). Returns
    /// the simulated seconds charged for the rehash kernel, if one ran.
    fn ensure_capacity(&mut self, extra: usize) -> f64 {
        let needed = self.live + self.tombstones + extra;
        if (needed as f64) <= TARGET_LOAD_FACTOR * self.slots.len() as f64 {
            return 0.0;
        }
        let mut capacity = self.slots.len();
        while (self.live + extra) as f64 > TARGET_LOAD_FACTOR * capacity as f64 {
            capacity *= 2;
        }

        let old = std::mem::replace(&mut self.slots, vec![Slot::default(); capacity]);
        let old_capacity = old.len();
        self.tombstones = 0;
        self.live = 0;
        let mut insert_probes = 0u64;
        let mut moved = 0u64;
        for slot in old {
            if slot.state == SlotState::Occupied {
                insert_probes += self.place(slot.key, slot.row, slot.value);
                moved += 1;
            }
        }
        self.table_buffer = self
            .device
            .alloc::<u8>(capacity * DELTA_SLOT_BYTES as usize);

        // Rehash kernel: read the whole old table, write every moved entry.
        let stats = KernelStats {
            threads_launched: moved.max(1),
            kernel_launches: 1,
            instructions: moved * 12 + insert_probes * 4,
            dram_bytes_read: old_capacity as u64 * DELTA_SLOT_BYTES,
            dram_bytes_written: moved * DELTA_SLOT_BYTES,
            ..KernelStats::new()
        };
        let simulated = self.device.cost_model().simulated_time(&stats);
        self.device.profiler().record_kernel(stats);
        simulated.as_seconds()
    }

    /// Walks `key`'s probe sequence: `visit` receives each group's slot
    /// range in probe order and returns whether the walk may stop there
    /// (the cooperative-group termination rule). Returns the probed group
    /// count. All probing paths — insert placement, lookups, deletes —
    /// share this walker so they can never disagree on the sequence.
    fn probe_groups<F: FnMut(std::ops::Range<usize>) -> bool>(
        capacity: usize,
        key: u64,
        mut visit: F,
    ) -> u64 {
        let group_count = capacity / GROUP_SIZE;
        let start_group = slot_hash(key, capacity) / GROUP_SIZE;
        for probe in 0..group_count {
            let group = (start_group + probe) % group_count;
            if visit(group * GROUP_SIZE..(group + 1) * GROUP_SIZE) {
                return probe as u64 + 1;
            }
        }
        group_count as u64
    }

    /// Places one entry, returning the number of probed groups. The caller
    /// must have ensured capacity.
    fn place(&mut self, key: u64, row: u32, value: u64) -> u64 {
        let mut placed = false;
        let probes = Self::probe_groups(self.slots.len(), key, |range| {
            for slot_idx in range {
                let state = self.slots[slot_idx].state;
                if state != SlotState::Occupied {
                    if state == SlotState::Tombstone {
                        self.tombstones -= 1;
                    }
                    self.slots[slot_idx] = Slot {
                        key,
                        row,
                        value,
                        state: SlotState::Occupied,
                    };
                    self.live += 1;
                    placed = true;
                    return true;
                }
            }
            false
        });
        assert!(
            placed,
            "delta buffer over-full: ensure_capacity was not called"
        );
        probes
    }

    /// Inserts a batch of `(key, rowID, value)` entries (duplicate keys
    /// occupy separate slots, like the HT baseline). Returns the simulated
    /// seconds charged for the insert (and any growth rehash) kernels.
    pub fn insert_batch(&mut self, entries: &[(u64, u32, u64)]) -> f64 {
        if entries.is_empty() {
            return 0.0;
        }
        let mut simulated = self.ensure_capacity(entries.len());

        let mut insert_probes = 0u64;
        for &(key, row, value) in entries {
            insert_probes += self.place(key, row, value);
        }

        let n = entries.len() as u64;
        let stats = KernelStats {
            threads_launched: n,
            kernel_launches: 1,
            instructions: n * 12 + insert_probes * 4,
            dram_bytes_read: insert_probes * GROUP_SIZE as u64 * DELTA_SLOT_BYTES,
            dram_bytes_written: n * DELTA_SLOT_BYTES,
            ..KernelStats::new()
        };
        simulated += self.device.cost_model().simulated_time(&stats).as_seconds();
        self.device.profiler().record_kernel(stats);
        simulated
    }

    /// Deletes every live entry holding one of `keys`, tombstoning the
    /// slots. Returns the removed entries and the simulated seconds of the
    /// delete kernel.
    pub fn delete_batch(&mut self, keys: &[u64]) -> (Vec<DeltaEntry>, f64) {
        if keys.is_empty() || self.live == 0 {
            return (Vec::new(), 0.0);
        }
        let mut removed = Vec::new();
        let mut probes = 0u64;
        for &key in keys {
            probes += self.for_each_match_mut(key, |slot| {
                removed.push(DeltaEntry {
                    row: slot.row,
                    key: slot.key,
                    value: slot.value,
                });
                slot.state = SlotState::Tombstone;
            });
        }
        self.live -= removed.len();
        self.tombstones += removed.len();

        let n = keys.len() as u64;
        let stats = KernelStats {
            threads_launched: n,
            kernel_launches: 1,
            instructions: n * 12 + probes * GROUP_SIZE as u64,
            dram_bytes_read: probes * GROUP_SIZE as u64 * DELTA_SLOT_BYTES,
            dram_bytes_written: removed.len() as u64 * DELTA_SLOT_BYTES,
            ..KernelStats::new()
        };
        let simulated = self.device.cost_model().simulated_time(&stats);
        self.device.profiler().record_kernel(stats);
        (removed, simulated.as_seconds())
    }

    /// Runs `f` over every live slot matching `key`, returning the probed
    /// group count. Probing stops at the first group containing an `Empty`
    /// slot (tombstones keep the chain alive).
    fn for_each_match_mut<F: FnMut(&mut Slot)>(&mut self, key: u64, mut f: F) -> u64 {
        let slots = &mut self.slots;
        let capacity = slots.len();
        Self::probe_groups(capacity, key, |range| {
            let mut saw_empty = false;
            for slot in &mut slots[range] {
                match slot.state {
                    SlotState::Occupied if slot.key == key => f(slot),
                    SlotState::Empty => saw_empty = true,
                    _ => {}
                }
            }
            saw_empty
        })
    }

    /// Probes for `key`, invoking `on_hit` for every live matching entry.
    /// Returns the number of probed groups (for cost accounting by the
    /// caller's lookup kernel).
    pub fn probe<F: FnMut(DeltaEntry)>(&self, key: u64, mut on_hit: F) -> u64 {
        Self::probe_groups(self.slots.len(), key, |range| {
            let mut saw_empty = false;
            for slot in &self.slots[range] {
                match slot.state {
                    SlotState::Occupied if slot.key == key => {
                        on_hit(DeltaEntry {
                            row: slot.row,
                            key: slot.key,
                            value: slot.value,
                        });
                    }
                    SlotState::Empty => saw_empty = true,
                    _ => {}
                }
            }
            saw_empty
        })
    }

    /// The locality token of `key`'s probe start (used so that repeated
    /// lookups of hot keys hit the cache in the access classifier).
    pub fn group_token(&self, key: u64) -> u64 {
        (slot_hash(key, self.slots.len()) / GROUP_SIZE) as u64
    }

    /// Scans the whole table, invoking `on_hit` for every live entry whose
    /// key lies in `[lower, upper]` (the delta-side of a range lookup: the
    /// buffer is unordered, so ranges scan — the price of the mutable
    /// layer, kept small by compaction).
    pub fn scan_range<F: FnMut(DeltaEntry)>(&self, lower: u64, upper: u64, mut on_hit: F) {
        for slot in &self.slots {
            if slot.state == SlotState::Occupied && slot.key >= lower && slot.key <= upper {
                on_hit(DeltaEntry {
                    row: slot.row,
                    key: slot.key,
                    value: slot.value,
                });
            }
        }
    }

    /// All live entries sorted by rowID (the merge order of a compaction).
    pub fn entries_sorted_by_row(&self) -> Vec<DeltaEntry> {
        let mut entries: Vec<DeltaEntry> = self
            .slots
            .iter()
            .filter(|s| s.state == SlotState::Occupied)
            .map(|s| DeltaEntry {
                row: s.row,
                key: s.key,
                value: s.value,
            })
            .collect();
        entries.sort_unstable_by_key(|e| e.row);
        entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> Device {
        Device::default_eval()
    }

    #[test]
    fn insert_probe_round_trip() {
        let dev = device();
        let mut delta = DeltaBuffer::new(&dev);
        let entries: Vec<(u64, u32, u64)> =
            (0..100u64).map(|k| (k, k as u32 + 1000, k * 10)).collect();
        let sim = delta.insert_batch(&entries);
        assert!(sim > 0.0);
        assert_eq!(delta.len(), 100);
        for k in 0..100u64 {
            let mut hits = Vec::new();
            delta.probe(k, |e| hits.push(e));
            assert_eq!(
                hits,
                vec![DeltaEntry {
                    row: k as u32 + 1000,
                    key: k,
                    value: k * 10
                }]
            );
        }
        let mut miss = Vec::new();
        delta.probe(12345, |e| miss.push(e));
        assert!(miss.is_empty());
    }

    #[test]
    fn duplicate_keys_occupy_separate_slots() {
        let dev = device();
        let mut delta = DeltaBuffer::new(&dev);
        delta.insert_batch(&[(7, 1, 10), (7, 2, 20), (7, 3, 30)]);
        let mut rows = Vec::new();
        delta.probe(7, |e| rows.push(e.row));
        rows.sort_unstable();
        assert_eq!(rows, vec![1, 2, 3]);
    }

    #[test]
    fn growth_preserves_entries_and_reaccounts_memory() {
        let dev = device();
        let mut delta = DeltaBuffer::new(&dev);
        let initial_capacity = delta.capacity();
        let initial_bytes = delta.memory_bytes();
        let entries: Vec<(u64, u32, u64)> = (0..1000u64).map(|k| (k, k as u32, k)).collect();
        delta.insert_batch(&entries);
        assert!(delta.capacity() > initial_capacity);
        assert!(delta.memory_bytes() > initial_bytes);
        assert!(delta.load_factor() <= TARGET_LOAD_FACTOR + 1e-9);
        assert_eq!(dev.memory().current_bytes(), delta.memory_bytes());
        for k in (0..1000u64).step_by(97) {
            let mut hits = 0;
            delta.probe(k, |_| hits += 1);
            assert_eq!(hits, 1, "key {k} lost in rehash");
        }
    }

    #[test]
    fn delete_tombstones_and_keeps_probe_chains() {
        let dev = device();
        let mut delta = DeltaBuffer::new(&dev);
        let entries: Vec<(u64, u32, u64)> = (0..64u64).map(|k| (k, k as u32, k)).collect();
        delta.insert_batch(&entries);
        let (removed, sim) = delta.delete_batch(&[3, 5, 5, 999]);
        assert!(sim > 0.0);
        assert_eq!(
            removed.len(),
            2,
            "idempotent within a batch, misses ignored"
        );
        assert_eq!(delta.len(), 62);
        assert_eq!(delta.tombstoned_slots(), 2);
        // Remaining keys are still reachable across the tombstones.
        for k in 0..64u64 {
            let mut hits = 0;
            delta.probe(k, |_| hits += 1);
            assert_eq!(hits, u32::from(k != 3 && k != 5), "key {k}");
        }
    }

    #[test]
    fn tombstoned_slots_are_reused_by_inserts() {
        let dev = device();
        let mut delta = DeltaBuffer::new(&dev);
        delta.insert_batch(&[(1, 0, 0), (2, 1, 0)]);
        delta.delete_batch(&[1]);
        assert_eq!(delta.tombstoned_slots(), 1);
        delta.insert_batch(&[(1, 2, 5)]);
        // The tombstone at key 1's probe position is recycled.
        assert_eq!(delta.tombstoned_slots(), 0);
        let mut hits = Vec::new();
        delta.probe(1, |e| hits.push((e.row, e.value)));
        assert_eq!(hits, vec![(2, 5)]);
    }

    #[test]
    fn range_scan_and_row_order() {
        let dev = device();
        let mut delta = DeltaBuffer::new(&dev);
        delta.insert_batch(&[(50, 3, 1), (10, 1, 2), (30, 2, 3), (90, 0, 4)]);
        let mut in_range = Vec::new();
        delta.scan_range(10, 50, |e| in_range.push(e.key));
        in_range.sort_unstable();
        assert_eq!(in_range, vec![10, 30, 50]);

        let rows: Vec<u32> = delta
            .entries_sorted_by_row()
            .iter()
            .map(|e| e.row)
            .collect();
        assert_eq!(rows, vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_batches_are_free() {
        let dev = device();
        let mut delta = DeltaBuffer::new(&dev);
        assert_eq!(delta.insert_batch(&[]), 0.0);
        assert_eq!(
            delta.delete_batch(&[1]).1,
            0.0,
            "delete on empty buffer is free"
        );
        assert!(delta.is_empty());
    }
}
