//! Service tuning knobs.

use std::time::Duration;

use crate::adaptive::AdaptiveLingerConfig;

/// When the coalescer rebalances a sharded backend's hot shards (see
/// [`ServiceConfig::with_rebalance`]). Both thresholds must hold — enough
/// observed traffic for the per-shard counters to mean something, *and* a
/// sustained imbalance worth paying a migration for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebalanceConfig {
    /// Operations the shard counters must have accumulated since the last
    /// rebalance before another is considered (a rebalance resets them, so
    /// this doubles as the minimum spacing between passes).
    pub min_ops: u64,
    /// Trigger threshold on the load-imbalance ratio (hottest shard over
    /// mean), in permille: `1500` fires once one shard carries 1.5x its
    /// fair share.
    pub max_imbalance_permille: u64,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            min_ops: 1 << 14,
            max_imbalance_permille: 1500,
        }
    }
}

impl RebalanceConfig {
    /// The default thresholds.
    pub fn new() -> Self {
        RebalanceConfig::default()
    }

    /// Sets the minimum observed ops between rebalance passes (clamped to
    /// at least 1).
    pub fn with_min_ops(mut self, ops: u64) -> Self {
        self.min_ops = ops.max(1);
        self
    }

    /// Sets the imbalance trigger in permille (clamped to at least 1000 —
    /// a ratio below 1.0x never occurs).
    pub fn with_max_imbalance_permille(mut self, permille: u64) -> Self {
        self.max_imbalance_permille = permille.max(1000);
        self
    }
}

/// Configuration of a [`QueryService`](crate::QueryService).
///
/// The three policies interact the way they do in any batching front-end:
///
/// * **admission** ([`max_queue_depth`](ServiceConfig::max_queue_depth))
///   bounds the operations waiting in the submission queue — beyond it,
///   submissions fail with
///   [`ServeError::Overloaded`](crate::ServeError::Overloaded) instead of
///   growing the queue without bound (backpressure);
/// * **coalescing** ([`max_coalesce_ops`](ServiceConfig::max_coalesce_ops))
///   caps how many queued operations fuse into one backend submission, so
///   one giant fused batch cannot monopolise the executor or its result
///   buffers;
/// * **linger** ([`linger`](ServiceConfig::linger)) trades latency for
///   batch size: a non-full fusion waits up to this long for more client
///   batches to arrive before executing, which is what lets concurrent
///   small submitters fuse at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Admission limit: maximum operations (reads) / rows (writes) queued
    /// at once. A submission that would exceed it is rejected. Every
    /// request costs at least 1, so empty batches cannot flood the queue.
    pub max_queue_depth: usize,
    /// Maximum operations fused into one backend submission.
    pub max_coalesce_ops: usize,
    /// How long a non-full fusion waits for more client batches before
    /// executing. Zero executes whatever one queue drain finds.
    pub linger: Duration,
    /// Chunk size applied to the *fused* batch (per-client chunk settings
    /// are not meaningful once batches fuse). Zero means unbounded
    /// launches.
    pub chunk_size: usize,
    /// When set, the fixed [`linger`](ServiceConfig::linger) is replaced by
    /// the adaptive policy: the per-drain linger scales with the observed
    /// arrival rate and queue depth between the policy's floor and ceiling
    /// (see [`AdaptiveLingerConfig`]).
    pub adaptive_linger: Option<AdaptiveLingerConfig>,
    /// When set (and the backend is an updatable sharded index), the
    /// coalescer watches the per-shard load counters between fused
    /// submissions and migrates rows off sustained hot shards through the
    /// write fence (see [`RebalanceConfig`]).
    pub rebalance: Option<RebalanceConfig>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            max_queue_depth: 1 << 20,
            max_coalesce_ops: 1 << 16,
            linger: Duration::from_micros(200),
            chunk_size: 0,
            adaptive_linger: None,
            rebalance: None,
        }
    }
}

impl ServiceConfig {
    /// The default configuration.
    pub fn new() -> Self {
        ServiceConfig::default()
    }

    /// Sets the admission limit (clamped to at least 1).
    pub fn with_max_queue_depth(mut self, ops: usize) -> Self {
        self.max_queue_depth = ops.max(1);
        self
    }

    /// Sets the fusion cap (clamped to at least 1).
    pub fn with_max_coalesce_ops(mut self, ops: usize) -> Self {
        self.max_coalesce_ops = ops.max(1);
        self
    }

    /// Sets the linger time.
    pub fn with_linger(mut self, linger: Duration) -> Self {
        self.linger = linger;
        self
    }

    /// Sets the fused-batch chunk size (0 = unbounded).
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        self.chunk_size = chunk_size;
        self
    }

    /// Replaces the fixed linger with the adaptive policy.
    pub fn with_adaptive_linger(mut self, policy: AdaptiveLingerConfig) -> Self {
        self.adaptive_linger = Some(policy);
        self
    }

    /// Enables hot-shard rebalancing with the given thresholds.
    pub fn with_rebalance(mut self, rebalance: RebalanceConfig) -> Self {
        self.rebalance = Some(rebalance);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_clamps_degenerate_limits() {
        let c = ServiceConfig::new()
            .with_max_queue_depth(0)
            .with_max_coalesce_ops(0)
            .with_linger(Duration::ZERO)
            .with_chunk_size(128);
        assert_eq!(c.max_queue_depth, 1);
        assert_eq!(c.max_coalesce_ops, 1);
        assert_eq!(c.linger, Duration::ZERO);
        assert_eq!(c.chunk_size, 128);
        assert!(ServiceConfig::default().max_queue_depth > 0);
    }
}
