//! The flattened BVH representation.
//!
//! Nodes are stored in depth-first pre-order: an interior node's left child
//! is always the next node in the array and the right child index is stored
//! explicitly. This layout makes refitting simple (iterate nodes in reverse)
//! and mirrors the pointer-free layouts GPU traversal kernels use.

use rtx_math::Aabb;

/// One node of the flattened BVH.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BvhNode {
    /// Bounding volume of everything below this node.
    pub bounds: Aabb,
    /// For interior nodes: index of the right child (the left child is
    /// `self_index + 1`). Unused for leaves.
    pub right_child: u32,
    /// For leaves: offset of the first primitive in [`Bvh::prim_indices`].
    pub first_prim: u32,
    /// Number of primitives in the leaf; `0` marks an interior node.
    pub prim_count: u32,
}

impl BvhNode {
    /// Creates an interior node.
    pub fn interior(bounds: Aabb, right_child: u32) -> Self {
        BvhNode {
            bounds,
            right_child,
            first_prim: 0,
            prim_count: 0,
        }
    }

    /// Creates a leaf node referencing `prim_count` primitives starting at
    /// `first_prim` in the primitive index array.
    pub fn leaf(bounds: Aabb, first_prim: u32, prim_count: u32) -> Self {
        debug_assert!(prim_count > 0, "leaves must contain at least one primitive");
        BvhNode {
            bounds,
            right_child: u32::MAX,
            first_prim,
            prim_count,
        }
    }

    /// True when this node is a leaf.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.prim_count > 0
    }
}

/// A bounding volume hierarchy over an external primitive set.
///
/// The BVH stores only indices into the primitive set it was built over
/// (`prim_indices` is the build-time permutation); primitive data stays in
/// the build input, as it does for OptiX triangle acceleration structures.
#[derive(Debug, Clone)]
pub struct Bvh {
    /// Flattened nodes in depth-first pre-order. Node 0 is the root.
    pub nodes: Vec<BvhNode>,
    /// Permutation mapping leaf slots to primitive indices.
    pub prim_indices: Vec<u32>,
    /// Bytes of device memory the structure occupies. Uncompacted builds
    /// carry slack; [`Bvh::compact`] trims it.
    allocated_bytes: u64,
    /// Whether [`Bvh::compact`] has been run.
    compacted: bool,
    /// Whether the build allowed later refitting updates
    /// (`OPTIX_BUILD_FLAG_ALLOW_UPDATE`).
    allow_update: bool,
}

/// Ratio of allocated to useful bytes for an uncompacted build. OptiX
/// over-allocates conservatively during the build; the paper measures ~2×
/// shrinkage for triangle BVHs under compaction (Figure 7c).
pub const UNCOMPACTED_SLACK_FACTOR: f64 = 2.0;

impl Bvh {
    /// Assembles a BVH from its parts. `allow_update` records whether refits
    /// are permitted later (set by the builder from [`BuildConfig`]).
    ///
    /// [`BuildConfig`]: crate::builder::BuildConfig
    pub fn new(nodes: Vec<BvhNode>, prim_indices: Vec<u32>, allow_update: bool) -> Self {
        let tight = Self::tight_bytes_for(nodes.len(), prim_indices.len());
        let allocated = (tight as f64 * UNCOMPACTED_SLACK_FACTOR) as u64;
        Bvh {
            nodes,
            prim_indices,
            allocated_bytes: allocated,
            compacted: false,
            allow_update,
        }
    }

    /// Bytes needed for a tightly packed BVH with the given node and
    /// primitive-reference counts.
    pub fn tight_bytes_for(node_count: usize, prim_index_count: usize) -> u64 {
        (node_count * std::mem::size_of::<BvhNode>() + prim_index_count * 4) as u64
    }

    /// Number of primitives referenced by the hierarchy.
    pub fn primitive_count(&self) -> usize {
        self.prim_indices.len()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Root bounding volume (empty box for an empty BVH).
    pub fn root_bounds(&self) -> Aabb {
        self.nodes.first().map(|n| n.bounds).unwrap_or(Aabb::EMPTY)
    }

    /// Bytes of device memory currently occupied.
    pub fn memory_bytes(&self) -> u64 {
        self.allocated_bytes
    }

    /// Whether the structure has been compacted.
    pub fn is_compacted(&self) -> bool {
        self.compacted
    }

    /// Whether refitting updates are allowed.
    pub fn allows_update(&self) -> bool {
        self.allow_update
    }

    /// Emulates `optixAccelCompact()`: drops the build-time slack.
    ///
    /// Like OptiX, compaction is refused (it is a no-op) when the structure
    /// was built with updates enabled — the update flag "disables the effects
    /// of compaction" per the OptiX programming guide. Returns the number of
    /// bytes reclaimed.
    pub fn compact(&mut self) -> u64 {
        if self.allow_update || self.compacted {
            return 0;
        }
        let tight = Self::tight_bytes_for(self.nodes.len(), self.prim_indices.len());
        let reclaimed = self.allocated_bytes.saturating_sub(tight);
        self.allocated_bytes = tight;
        self.compacted = true;
        reclaimed
    }

    /// Maximum depth of the hierarchy (0 for an empty BVH, 1 for a single
    /// leaf).
    pub fn depth(&self) -> usize {
        if self.nodes.is_empty() {
            return 0;
        }
        self.depth_below(0)
    }

    fn depth_below(&self, idx: usize) -> usize {
        let node = &self.nodes[idx];
        if node.is_leaf() {
            1
        } else {
            let left = self.depth_below(idx + 1);
            let right = self.depth_below(node.right_child as usize);
            1 + left.max(right)
        }
    }

    /// Validates structural invariants, returning a description of the first
    /// violation. Used by tests and debug assertions:
    ///
    /// * every primitive index appears exactly once,
    /// * each interior node's bounds contain both children's bounds,
    /// * leaf ranges lie within the primitive index array.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes.is_empty() {
            if self.prim_indices.is_empty() {
                return Ok(());
            }
            return Err("no nodes but primitive indices present".to_string());
        }
        let mut seen = vec![false; self.prim_indices.len()];
        for (idx, node) in self.nodes.iter().enumerate() {
            if node.is_leaf() {
                let start = node.first_prim as usize;
                let end = start + node.prim_count as usize;
                if end > self.prim_indices.len() {
                    return Err(format!("leaf {idx} range {start}..{end} out of bounds"));
                }
                for slot in start..end {
                    let prim = self.prim_indices[slot] as usize;
                    if prim >= seen.len() {
                        return Err(format!(
                            "leaf {idx} references primitive {prim} out of range"
                        ));
                    }
                    if seen[prim] {
                        return Err(format!("primitive {prim} referenced twice"));
                    }
                    seen[prim] = true;
                }
            } else {
                let left = idx + 1;
                let right = node.right_child as usize;
                if right >= self.nodes.len() || left >= self.nodes.len() {
                    return Err(format!("interior {idx} child index out of bounds"));
                }
                if !node.bounds.contains_aabb(&self.nodes[left].bounds) {
                    return Err(format!("interior {idx} does not contain left child bounds"));
                }
                if !node.bounds.contains_aabb(&self.nodes[right].bounds) {
                    return Err(format!(
                        "interior {idx} does not contain right child bounds"
                    ));
                }
            }
        }
        if let Some(missing) = seen.iter().position(|s| !s) {
            return Err(format!("primitive {missing} not referenced by any leaf"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_math::Vec3f;

    fn tiny_bvh() -> Bvh {
        // Two leaves under one root.
        let leaf_a = BvhNode::leaf(
            Aabb::new(Vec3f::new(0.0, 0.0, 0.0), Vec3f::new(1.0, 1.0, 1.0)),
            0,
            1,
        );
        let leaf_b = BvhNode::leaf(
            Aabb::new(Vec3f::new(2.0, 0.0, 0.0), Vec3f::new(3.0, 1.0, 1.0)),
            1,
            1,
        );
        let root = BvhNode::interior(leaf_a.bounds.union(&leaf_b.bounds), 2);
        Bvh::new(vec![root, leaf_a, leaf_b], vec![0, 1], false)
    }

    #[test]
    fn node_kind_discrimination() {
        let leaf = BvhNode::leaf(Aabb::EMPTY, 0, 3);
        assert!(leaf.is_leaf());
        let interior = BvhNode::interior(Aabb::EMPTY, 5);
        assert!(!interior.is_leaf());
    }

    #[test]
    fn bvh_basic_accessors() {
        let bvh = tiny_bvh();
        assert_eq!(bvh.node_count(), 3);
        assert_eq!(bvh.primitive_count(), 2);
        assert_eq!(bvh.depth(), 2);
        assert!(!bvh.is_compacted());
        assert!(!bvh.allows_update());
        assert!(bvh.root_bounds().contains_point(Vec3f::new(2.5, 0.5, 0.5)));
        assert!(bvh.validate().is_ok());
    }

    #[test]
    fn compaction_reclaims_slack_once() {
        let mut bvh = tiny_bvh();
        let before = bvh.memory_bytes();
        let reclaimed = bvh.compact();
        assert!(reclaimed > 0);
        assert_eq!(bvh.memory_bytes(), before - reclaimed);
        assert!(bvh.is_compacted());
        assert_eq!(bvh.compact(), 0, "second compaction is a no-op");
    }

    #[test]
    fn compaction_disabled_for_updatable_builds() {
        let mut bvh = tiny_bvh();
        bvh.allow_update = true;
        assert_eq!(bvh.compact(), 0);
        assert!(!bvh.is_compacted());
    }

    #[test]
    fn empty_bvh_is_valid() {
        let bvh = Bvh::new(vec![], vec![], false);
        assert_eq!(bvh.depth(), 0);
        assert!(bvh.validate().is_ok());
        assert!(bvh.root_bounds().is_empty());
    }

    #[test]
    fn validate_catches_duplicate_primitives() {
        let leaf = BvhNode::leaf(Aabb::EMPTY, 0, 2);
        let bvh = Bvh::new(vec![leaf], vec![0, 0], false);
        assert!(bvh.validate().is_err());
    }

    #[test]
    fn validate_catches_non_containing_parent() {
        let leaf_a = BvhNode::leaf(Aabb::new(Vec3f::ZERO, Vec3f::new(1.0, 1.0, 1.0)), 0, 1);
        let leaf_b = BvhNode::leaf(
            Aabb::new(Vec3f::new(5.0, 5.0, 5.0), Vec3f::new(6.0, 6.0, 6.0)),
            1,
            1,
        );
        // Root bounds deliberately too small.
        let root = BvhNode::interior(leaf_a.bounds, 2);
        let bvh = Bvh::new(vec![root, leaf_a, leaf_b], vec![0, 1], false);
        assert!(bvh.validate().is_err());
    }

    #[test]
    fn tight_bytes_accounting() {
        let bytes = Bvh::tight_bytes_for(3, 2);
        assert_eq!(bytes, (3 * std::mem::size_of::<BvhNode>() + 8) as u64);
        let bvh = tiny_bvh();
        assert_eq!(
            bvh.memory_bytes(),
            (Bvh::tight_bytes_for(3, 2) as f64 * UNCOMPACTED_SLACK_FACTOR) as u64
        );
    }
}
