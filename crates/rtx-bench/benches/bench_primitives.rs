//! Primitive-type benchmarks: triangles vs. spheres vs. AABBs, compacted vs.
//! uncompacted (Figure 7).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_device::Device;
use rtindex_core::{PrimitiveKind, RtIndex, RtIndexConfig};
use rtx_workloads as wl;

fn bench_primitive_lookups(c: &mut Criterion) {
    let device = Device::default_eval();
    let keys = wl::dense_shuffled(1 << 16, 42);
    let queries = wl::point_lookups(&keys, 1 << 16, 43);
    let mut group = c.benchmark_group("primitive_point_lookups");
    for kind in PrimitiveKind::all() {
        let index = RtIndex::build(
            &device,
            &keys,
            RtIndexConfig::default().with_primitive(kind),
        )
        .unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &queries,
            |b, q| b.iter(|| index.point_lookup_batch(q, None).unwrap()),
        );
    }
    group.finish();
}

fn bench_primitive_builds(c: &mut Criterion) {
    let device = Device::default_eval();
    let keys = wl::dense_shuffled(1 << 14, 42);
    let mut group = c.benchmark_group("primitive_builds");
    for kind in PrimitiveKind::all() {
        for (label, compact) in [("compacted", true), ("uncompacted", false)] {
            let config = RtIndexConfig::default()
                .with_primitive(kind)
                .with_compaction(compact);
            group.bench_function(BenchmarkId::new(kind.name(), label), |b| {
                b.iter(|| RtIndex::build(&device, &keys, config).unwrap())
            });
        }
    }
    group.finish();
}

/// Shared Criterion configuration: small sample counts and short measurement
/// windows keep `cargo bench --workspace` runnable in CI while still
/// producing stable medians for the simulated workloads.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_primitive_lookups, bench_primitive_builds
}
criterion_main!(benches);
