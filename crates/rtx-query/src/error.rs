//! The unified error type of the backend-agnostic query API.

use std::sync::Arc;

/// Errors reported when building or querying a secondary index through the
/// unified API. Backend-native error types convert into this one (each
/// backend crate provides the `From` impl for its own error).
///
/// Backend names are carried as `Arc<str>`: services intern their backend's
/// name once and hot rejection paths (admission control, unsupported-traffic
/// prechecks) clone a pointer instead of a `String`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexError {
    /// The registry holds no builder under the requested name.
    UnknownBackend {
        /// The requested name.
        name: String,
        /// Every registered backend name.
        known: Vec<String>,
    },
    /// The backend cannot index the supplied key set (e.g. duplicate or
    /// 64-bit keys for the B+-tree, out-of-range keys for a narrow RX key
    /// mode). [`Registry::build_supported`](crate::registry::Registry)
    /// skips backends that report this, mirroring how the paper omits
    /// inapplicable baselines from its experiments.
    UnsupportedKeySet {
        /// Backend that rejected the key set.
        backend: Arc<str>,
        /// Human-readable reason.
        reason: String,
    },
    /// The backend does not support the requested operation (e.g. range
    /// lookups on the hash table).
    UnsupportedOperation {
        /// Backend that rejected the operation.
        backend: Arc<str>,
        /// The rejected operation.
        operation: &'static str,
    },
    /// The key set is too large for the backend's structure (e.g. it would
    /// exhaust the 32-bit rowID space or overflow a capacity computation).
    CapacityOverflow {
        /// Backend that rejected the build.
        backend: Arc<str>,
        /// Number of keys submitted.
        keys: usize,
        /// The largest supported key count.
        limit: u64,
    },
    /// A value column's length does not match the key column's.
    ValueColumnLengthMismatch {
        /// Number of keys (and expected values).
        expected: usize,
        /// Values supplied.
        actual: usize,
    },
    /// A batch requested a value fetch but the index was built without a
    /// value column.
    NoValueColumn {
        /// Backend the batch was submitted to.
        backend: Arc<str>,
    },
    /// A backend-specific failure that has no structured representation in
    /// the unified API.
    Backend {
        /// Backend that failed.
        backend: Arc<str>,
        /// The backend's error message.
        message: String,
    },
}

impl IndexError {
    /// True for errors that mean "this backend cannot serve this key set"
    /// (as opposed to a caller mistake or an internal failure);
    /// [`Registry::build_supported`](crate::registry::Registry) skips these.
    pub fn is_unsupported_key_set(&self) -> bool {
        matches!(self, IndexError::UnsupportedKeySet { .. })
    }
}

impl std::fmt::Display for IndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexError::UnknownBackend { name, known } => {
                write!(f, "unknown backend {name:?} (known: {})", known.join(", "))
            }
            IndexError::UnsupportedKeySet { backend, reason } => {
                write!(f, "{backend} cannot index this key set: {reason}")
            }
            IndexError::UnsupportedOperation { backend, operation } => {
                write!(f, "{backend} does not support {operation}")
            }
            IndexError::CapacityOverflow {
                backend,
                keys,
                limit,
            } => write!(f, "{backend} cannot index {keys} keys (limit: {limit})"),
            IndexError::ValueColumnLengthMismatch { expected, actual } => write!(
                f,
                "value column has {actual} entries but the key column holds {expected}"
            ),
            IndexError::NoValueColumn { backend } => write!(
                f,
                "{backend} was built without a value column but the batch requested a value fetch"
            ),
            IndexError::Backend { backend, message } => write!(f, "{backend}: {message}"),
        }
    }
}

impl std::error::Error for IndexError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_human_readable_messages() {
        let e = IndexError::UnknownBackend {
            name: "XX".into(),
            known: vec!["HT".into(), "RX".into()],
        };
        assert!(e.to_string().contains("XX"));
        assert!(e.to_string().contains("HT, RX"));

        let e = IndexError::UnsupportedKeySet {
            backend: "B+".into(),
            reason: "duplicate key 7".into(),
        };
        assert!(e.is_unsupported_key_set());
        assert!(e.to_string().contains("duplicate key 7"));

        let e = IndexError::UnsupportedOperation {
            backend: "HT".into(),
            operation: "range lookups",
        };
        assert!(!e.is_unsupported_key_set());
        assert!(e.to_string().contains("range lookups"));

        let e = IndexError::CapacityOverflow {
            backend: "SA".into(),
            keys: 5,
            limit: 4,
        };
        assert!(e.to_string().contains("5 keys"));

        let e = IndexError::ValueColumnLengthMismatch {
            expected: 3,
            actual: 2,
        };
        assert!(e.to_string().contains("value column"));

        let e = IndexError::NoValueColumn {
            backend: "RX".into(),
        };
        assert!(e.to_string().contains("value fetch"));

        let e = IndexError::Backend {
            backend: "RX".into(),
            message: "boom".into(),
        };
        assert!(e.to_string().contains("boom"));
    }
}
