//! End-to-end table tests against the full backend registry: the
//! acceptance scenario (HT + RX + RXD answering mixed point+range
//! queries oracle-exactly with the expected routing), CDC streams vs the
//! scan oracle, atomic rollback of rejected batches, durable and sharded
//! index specs, and forced-index execution.

use std::path::PathBuf;
use std::sync::Arc;

use gpu_device::Device;
use rtindex_core::RtIndexConfig;
use rtx_delta::DynamicRtConfig;
use rtx_query::{IngestBatch, Registry, Route, TableQuery, TableSchema};
use rtx_table::Table;
use rtx_workloads::{
    ingest_batches, table_queries, table_records, TableOracle, TableQueryConfig,
    TableWorkloadConfig,
};

fn registry() -> Arc<Registry> {
    let mut registry = Registry::new();
    gpu_baselines::register_baselines(&mut registry);
    rtindex_core::register_rx(&mut registry, RtIndexConfig::default());
    rtx_delta::register_dynamic(
        &mut registry,
        DynamicRtConfig::default().with_rx(RtIndexConfig::default()),
    );
    rtx_shard::install_sharding(&mut registry);
    rtx_durable::install_durability(&mut registry);
    Arc::new(registry)
}

fn schema() -> TableSchema {
    TableSchema::new(["id", "ts", "amount"])
        .with_value_column("amount")
        .with_index("id_ht", "id", "HT")
        .with_index("ts_rx", "ts", "RX")
        .with_index("id_rxd", "id", "RXD")
}

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "rtx-table-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ))
}

/// Asserts every query answers exactly what the oracle scans out.
fn assert_matches_oracle(
    table: &Table,
    oracle: &TableOracle,
    queries: &[TableQuery],
    context: &str,
) {
    for (qi, query) in queries.iter().enumerate() {
        let got = table.query(query).expect("query executes");
        let want = oracle.expected_query(table.schema(), query);
        assert_eq!(got.results.len(), want.len());
        for (pi, (g, w)) in got.results.iter().zip(&want).enumerate() {
            assert_eq!(
                (g.first_row, g.hit_count, g.value_sum),
                (w.first_row, w.hit_count, w.value_sum),
                "{context}: query {qi} predicate {pi} ({})",
                query.predicates()[pi]
            );
        }
    }
}

fn query_stream(seed: u64) -> Vec<TableQuery> {
    table_queries(&TableQueryConfig {
        queries: 25,
        predicates_per_query: 3,
        point_columns: vec!["id".into(), "ts".into()],
        range_columns: vec!["ts".into(), "amount".into()],
        key_domain: 512,
        range_span: 32,
        fetch_values: true,
        seed,
    })
}

#[test]
fn acceptance_mixed_query_routes_and_answers_exactly() {
    let device = Device::default_eval();
    let records = table_records(3, 512, 512, 1);
    let oracle = TableOracle::load(3, &records);
    let table = Table::load(schema(), &device, registry(), &records).expect("table builds");
    assert_eq!(table.row_count(), 512);
    assert_eq!(table.index_names(), vec!["id_ht", "ts_rx", "id_rxd"]);
    assert!(table.memory_bytes() > 0);

    // One mixed query: a point on `id`, a range on `ts`, and a range on
    // the unindexed `amount` column.
    let query = TableQuery::new()
        .point("id", records[7][0])
        .range("ts", 100, 260)
        .range("amount", 0, 50)
        .fetch_values(true);
    let out = table.query(&query).expect("mixed query executes");

    // Routing: the point goes to the hash table (cheapest point probe),
    // the range to RX (the hash table has no range capability), and the
    // unindexed column falls back to a row-store scan.
    assert_eq!(out.plan.routed_index(0), Some("id_ht"), "{}", out.plan);
    assert_eq!(out.plan.routed_index(1), Some("ts_rx"), "{}", out.plan);
    assert!(matches!(out.plan.choices[2].route, Route::Scan));
    assert_eq!(out.plan.scan_fallbacks(), 1);

    // Answers: oracle-exact, including the scan fallback.
    let want = oracle.expected_query(table.schema(), &query);
    for (g, w) in out.results.iter().zip(&want) {
        assert_eq!(
            (g.first_row, g.hit_count, g.value_sum),
            (w.first_row, w.hit_count, w.value_sum)
        );
    }
    assert!(out.metrics.simulated_time_s > 0.0);
    assert!(out.sim_ms() > 0.0);

    // And a whole generated stream stays oracle-exact.
    assert_matches_oracle(&table, &oracle, &query_stream(2), "static load");
}

#[test]
fn cdc_ingest_stream_stays_oracle_exact() {
    let device = Device::default_eval();
    let records = table_records(3, 256, 512, 3);
    let mut oracle = TableOracle::load(3, &records);
    let mut table = Table::load(schema(), &device, registry(), &records).expect("table builds");

    let batches = ingest_batches(&TableWorkloadConfig {
        key_domain: 512,
        ..TableWorkloadConfig::uniform(3, 8, 24, 4)
    });
    for (bi, batch) in batches.iter().enumerate() {
        let report = table.ingest(batch).expect("batch applies");
        oracle.apply_batch(batch);
        assert_eq!(table.row_count(), oracle.row_count(), "batch {bi}");
        // Read-only indexes rebuild on every mutating batch; the
        // updatable RXD absorbs inserts (and primary-column deletes) as
        // deltas.
        if report.inserted_rows > 0 {
            assert!(report.delta_ops > 0, "batch {bi}: {report:?}");
        }
        assert_matches_oracle(&table, &oracle, &query_stream(100 + bi as u64), "cdc");
    }
    let stats = table.stats();
    assert_eq!(stats.ingest_batches, batches.len() as u64);
    assert_eq!(stats.rolled_back_batches, 0);
    assert!(stats.inserted_rows > 0 && stats.deleted_rows > 0);
    assert!(stats.delta_ops > 0 && stats.index_rebuilds > 0);
}

#[test]
fn rejected_batch_rolls_back_atomically() {
    let device = Device::default_eval();
    // Unique primary keys so the B+-tree (which refuses duplicate keys)
    // builds; it rides along as a second index next to the updatable RXD.
    let records: Vec<Vec<u64>> = (0..128u64).map(|k| vec![k, k * 3 % 101, k * 7]).collect();
    let schema = TableSchema::new(["id", "ts", "amount"])
        .with_value_column("amount")
        .with_index("id_bt", "id", "B+")
        .with_index("id_rxd", "id", "RXD")
        .with_index("ts_rx", "ts", "RX");
    let oracle = TableOracle::load(3, &records);
    let mut table = Table::load(schema, &device, registry(), &records).expect("table builds");

    // A batch that first does legitimate work (deltas land in RXD, rows
    // land in the store) and then inserts a duplicate `id`, which the
    // B+-tree rejects at rebuild time.
    let poisoned = IngestBatch::new()
        .insert(vec![500, 1, 10])
        .delete(3)
        .insert(vec![42, 2, 20]); // id 42 already exists → B+ rejects
    let err = table.ingest(&poisoned).expect_err("B+ rejects duplicates");
    let msg = err.to_string();
    assert!(msg.contains("B+") || msg.contains("duplicate"), "{msg}");

    // All-or-nothing: the pre-batch state is fully restored.
    assert_eq!(table.row_count(), 128);
    let stats = table.stats();
    assert_eq!(stats.ingest_batches, 1);
    assert_eq!(stats.rolled_back_batches, 1);
    let probe = TableQuery::new()
        .point("id", 3) // the delete rolled back: still present
        .point("id", 500) // the insert rolled back: still absent
        .point("id", 42)
        .range("ts", 0, 100)
        .fetch_values(true);
    assert_matches_oracle(&table, &oracle, &[probe], "after rollback");

    // A clean batch afterwards applies normally.
    let ok = IngestBatch::new().delete(42).insert(vec![42, 9, 90]);
    table.ingest(&ok).expect("clean batch applies");
    assert_eq!(table.row_count(), 128);
    let got = table
        .query(&TableQuery::new().point("id", 42).fetch_values(true))
        .unwrap();
    assert_eq!(got.results[0].hit_count, 1);
    assert_eq!(got.results[0].value_sum, 90);
}

#[test]
fn durable_and_sharded_specs_serve_the_table() {
    let device = Device::default_eval();
    let dir = temp_dir("wal");
    let _ = std::fs::remove_dir_all(&dir);
    let spec = format!("RXD+wal:{}", dir.display());
    let schema = TableSchema::new(["id", "ts", "amount"])
        .with_value_column("amount")
        .with_index("id_wal", "id", spec)
        .with_index("ts_sharded", "ts", "RXD@2");
    let records = table_records(3, 200, 256, 7);
    let mut oracle = TableOracle::load(3, &records);
    let mut table =
        Table::load(schema.clone(), &device, registry(), &records).expect("table builds");
    assert!(dir.exists(), "the WAL directory materialises");

    let batches = ingest_batches(&TableWorkloadConfig {
        key_domain: 256,
        ..TableWorkloadConfig::uniform(3, 6, 16, 8)
    });
    for (bi, batch) in batches.iter().enumerate() {
        table.ingest(batch).expect("batch applies");
        oracle.apply_batch(batch);
        let queries = table_queries(&TableQueryConfig {
            queries: 10,
            predicates_per_query: 2,
            point_columns: vec!["id".into()],
            range_columns: vec!["ts".into()],
            key_domain: 256,
            range_span: 24,
            fetch_values: true,
            seed: 40 + bi as u64,
        });
        assert_matches_oracle(&table, &oracle, &queries, "durable+sharded");
    }

    // Rebuilding the same schema at the same path must not recover the
    // previous table's rows: the directory is table-private and wiped.
    let fresh = Table::load(schema, &device, registry(), &[]).expect("rebuild at same path");
    assert_eq!(fresh.row_count(), 0);
    let out = fresh
        .query(&TableQuery::new().point("id", records[0][0]))
        .unwrap();
    assert_eq!(out.results[0].hit_count, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn forced_execution_matches_the_planner_and_validates_targets() {
    let device = Device::default_eval();
    let records = table_records(3, 300, 512, 9);
    let table = Table::load(schema(), &device, registry(), &records).expect("table builds");

    // Point-on-id queries can be forced through either id index; both
    // must agree with the planner-chosen route.
    for key in [records[0][0], records[10][0], 9999] {
        let query = TableQuery::new().point("id", key).fetch_values(true);
        let planned = table.query(&query).unwrap();
        for index in ["id_ht", "id_rxd"] {
            let forced = table.query_forced(&query, index).unwrap();
            assert_eq!(forced.plan.routed_index(0), Some(index));
            assert_eq!(
                (forced.results[0].first_row, forced.results[0].hit_count),
                (planned.results[0].first_row, planned.results[0].hit_count),
                "forced {index} vs planned"
            );
        }
    }

    // Forcing an index that cannot serve the predicate is an error, not a
    // silent fallback.
    let range = TableQuery::new().range("ts", 0, 100);
    assert!(table.query_forced(&range, "id_ht").is_err(), "wrong column");
    let point = TableQuery::new().point("id", 1);
    assert!(table.query_forced(&point, "ts_rx").is_err(), "wrong column");
    assert!(table.query_forced(&point, "nope").is_err(), "unknown index");
    // HT has no range capability even on its own column.
    let id_range = TableQuery::new().range("id", 0, 100);
    assert!(table.query_forced(&id_range, "id_ht").is_err());
    let forced_range = table.query_forced(&id_range, "id_rxd").unwrap();
    let planned_range = table.query(&id_range).unwrap();
    assert_eq!(
        forced_range.results[0].hit_count,
        planned_range.results[0].hit_count
    );
}

#[test]
fn prefix_predicates_compile_to_ranges() {
    let device = Device::default_eval();
    let records: Vec<Vec<u64>> = (0..64u64).map(|k| vec![k, 0x40 + k, k]).collect();
    let oracle = TableOracle::load(3, &records);
    let table = Table::load(schema(), &device, registry(), &records).expect("table builds");
    // prefix 0x1 over the low 6 bits of `ts` = the range [0x40, 0x7F].
    let query = TableQuery::new()
        .prefix("ts", 0x1, 6)
        .prefix("id", 5, 0) // zero low bits = an exact point
        .fetch_values(true);
    let out = table.query(&query).unwrap();
    assert_eq!(out.plan.routed_index(0), Some("ts_rx"));
    let want = oracle.expected_query(table.schema(), &query);
    assert_eq!(out.results[0].hit_count, want[0].hit_count);
    assert_eq!(out.results[0].hit_count, 64); // 0x40..=0x7F covers all rows
    assert_eq!((out.results[1].first_row, out.results[1].hit_count), (5, 1));
}

#[test]
fn empty_tables_build_every_index_and_answer_misses() {
    let device = Device::default_eval();
    let table = Table::create(schema(), &device, registry()).expect("empty table builds");
    assert_eq!(table.row_count(), 0);
    let out = table
        .query(
            &TableQuery::new()
                .point("id", 1)
                .range("ts", 0, 1 << 10)
                .fetch_values(true),
        )
        .unwrap();
    assert!(out.results.iter().all(|r| r.hit_count == 0));

    // fetch_values on a value-less schema is rejected up front.
    let bare = TableSchema::new(["k"]).with_index("k_rx", "k", "RX");
    let table = Table::create(bare, &device, registry()).expect("value-less table builds");
    assert!(table
        .query(&TableQuery::new().point("k", 1).fetch_values(true))
        .is_err());
    assert!(
        table
            .query(&TableQuery::new().point("k", 1))
            .unwrap()
            .results[0]
            .hit_count
            == 0
    );
}

#[test]
fn composite_indexes_route_and_answer_prefix_queries() {
    let device = Device::default_eval();
    // [id, region, ts, amount]: regions group the rows, ts spreads inside
    // each region, ids are unique.
    let records: Vec<Vec<u64>> = (0..400u64)
        .map(|i| vec![i, i % 8, (i * 37) % 512, i * 3 + 1])
        .collect();
    let schema = TableSchema::new(["id", "region", "ts", "amount"])
        .with_value_column("amount")
        .with_index("id_ht", "id", "HT")
        .with_composite_index("region_ts", ["region", "ts"], "RX{u32,u32}")
        .with_composite_index("region_ts_sa", ["region", "ts"], "SA");
    let mut oracle = TableOracle::load(4, &records);
    let mut table =
        Table::load(schema, &device, registry(), &records).expect("composite table builds");
    assert_eq!(
        table.index_names(),
        vec!["id_ht", "region_ts", "region_ts_sa"]
    );

    // One query spanning every composite form: a full-tuple point, a pure
    // prefix, a prefix range, a bare range on the leading column, plus a
    // scalar point that the composite indexes serve as an encoded prefix.
    let query = TableQuery::new()
        .prefix_tuple(["region", "ts"], vec![records[11][1], records[11][2]])
        .prefix_tuple(["region"], vec![3])
        .prefix_range(["region", "ts"], vec![3], 100, 300)
        .prefix_range(["region"], vec![], 2, 5)
        .point("region", 6)
        .fetch_values(true);
    let out = table.query(&query).expect("composite query executes");

    // Every predicate keys on `region`, which only the composite indexes
    // lead on — nothing may fall back to a scan.
    assert_eq!(out.plan.scan_fallbacks(), 0, "{}", out.plan);
    for (pi, choice) in out.plan.choices.iter().enumerate() {
        assert!(
            matches!(choice.route, Route::Index { .. }),
            "predicate {pi} routed {}",
            out.plan
        );
    }

    let want = oracle.expected_query(table.schema(), &query);
    for (pi, (g, w)) in out.results.iter().zip(&want).enumerate() {
        assert_eq!(
            (g.first_row, g.hit_count, g.value_sum),
            (w.first_row, w.hit_count, w.value_sum),
            "predicate {pi} ({})",
            query.predicates()[pi]
        );
    }

    // A composite predicate over columns no index leads on scans instead.
    let scan_query = TableQuery::new()
        .prefix_range(["ts", "amount"], vec![100], 0, u64::MAX)
        .fetch_values(true);
    let out = table.query(&scan_query).expect("scan fallback executes");
    assert_eq!(out.plan.scan_fallbacks(), 1);
    let want = oracle.expected_query(table.schema(), &scan_query);
    assert_eq!(
        (out.results[0].first_row, out.results[0].hit_count),
        (want[0].first_row, want[0].hit_count)
    );

    // Forcing each composite index must agree with the planner's pick.
    let forced_query = TableQuery::new()
        .prefix_range(["region", "ts"], vec![5], 50, 450)
        .fetch_values(true);
    let planned = table.query(&forced_query).unwrap();
    for index in ["region_ts", "region_ts_sa"] {
        let forced = table.query_forced(&forced_query, index).unwrap();
        assert_eq!(forced.plan.routed_index(0), Some(index));
        assert_eq!(forced.results, planned.results, "forced {index}");
    }
    // Forcing the single-column hash index onto a multi-column predicate
    // is an error, not a silent fallback.
    assert!(table.query_forced(&forced_query, "id_ht").is_err());

    // CDC ingest: composite indexes rebuild each mutating batch and stay
    // oracle-exact through inserts and primary-key deletes.
    let batches = ingest_batches(&TableWorkloadConfig {
        key_domain: 512,
        ..TableWorkloadConfig::uniform(4, 6, 20, 11)
    });
    for (bi, batch) in batches.iter().enumerate() {
        table.ingest(batch).expect("batch applies");
        oracle.apply_batch(batch);
        assert_eq!(table.row_count(), oracle.row_count(), "batch {bi}");
        let probe = TableQuery::new()
            .prefix_tuple(["region"], vec![bi as u64 % 8])
            .prefix_range(["region", "ts"], vec![(bi as u64 + 3) % 8], 0, 256)
            .fetch_values(true);
        let got = table.query(&probe).expect("post-ingest query");
        let want = oracle.expected_query(table.schema(), &probe);
        for (pi, (g, w)) in got.results.iter().zip(&want).enumerate() {
            assert_eq!(
                (g.first_row, g.hit_count, g.value_sum),
                (w.first_row, w.hit_count, w.value_sum),
                "batch {bi} predicate {pi}"
            );
        }
    }
    assert!(table.stats().index_rebuilds > 0);
}
