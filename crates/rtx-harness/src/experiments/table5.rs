//! Table 5: warp occupancy and memory-bandwidth utilisation as the lookup
//! count grows.
//!
//! Small launches cannot keep enough warps per SM resident to hide memory
//! latency; the paper measures 3.89 active warps per SM at 2^13 lookups,
//! saturating toward the scheduler limit of 16 (and ~79 % of peak bandwidth)
//! at 2^21 lookups. Our occupancy model reproduces that curve directly.

use gpu_device::OccupancyModel;
use rtindex_core::{RtIndex, RtIndexConfig};
use rtx_workloads as wl;

use crate::report::{fmt_pct, Table};
use crate::scale::ExperimentScale;

/// Runs the occupancy experiment.
pub fn run(scale: &ExperimentScale) -> Vec<Table> {
    let device = crate::scaled_device(scale);
    let occupancy = OccupancyModel::new(device.spec().clone());
    let n = scale.default_keys();
    let keys = wl::dense_shuffled(n, scale.seed);
    let index = RtIndex::build(&device, &keys, RtIndexConfig::default()).expect("build");

    let mut table = Table::new(
        "Table 5: active warps per SM and % of peak memory bandwidth vs. lookup count",
        &[
            "lookups [2^n]",
            "active warps per SM",
            "memory BW [% of peak]",
            "throughput [lookups/s]",
        ],
    );
    for exp in scale.lookup_exponent_sweep(5) {
        let lookups = wl::point_lookups(&keys, 1usize << exp, scale.seed + exp as u64);
        let out = index.point_lookup_batch(&lookups, None).expect("lookup");
        let warps = occupancy.active_warps_per_sm(lookups.len() as u64);
        let bw = occupancy.bandwidth_utilisation(lookups.len() as u64);
        let throughput = lookups.len() as f64 / out.metrics.simulated_time_s.max(1e-12);
        table.push_row(vec![
            exp.to_string(),
            format!("{warps:.2}"),
            fmt_pct(bw),
            format!("{throughput:.3e}"),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_and_bandwidth_grow_with_lookup_count() {
        let tables = run(&ExperimentScale::tiny());
        let warps: Vec<f64> = tables[0]
            .column("active warps per SM")
            .unwrap()
            .iter()
            .map(|v| v.parse().unwrap())
            .collect();
        assert!(
            warps.windows(2).all(|w| w[0] < w[1]),
            "warps must increase: {warps:?}"
        );
        assert!(*warps.last().unwrap() <= 16.0);
        let bw: Vec<f64> = tables[0]
            .column("memory BW [% of peak]")
            .unwrap()
            .iter()
            .map(|v| v.parse().unwrap())
            .collect();
        assert!(bw.windows(2).all(|w| w[0] <= w[1]));
        assert!(*bw.last().unwrap() <= 80.0 + 1e-9);
    }

    #[test]
    fn throughput_saturates_for_large_batches() {
        // At the default 4090 spec, throughput should grow steeply at small
        // batch sizes and flatten near saturation — the Figure 10a shape.
        let scale = ExperimentScale::tiny();
        let tables = run(&scale);
        let tp: Vec<f64> = tables[0]
            .column("throughput [lookups/s]")
            .unwrap()
            .iter()
            .map(|v| v.parse().unwrap())
            .collect();
        assert!(tp.first().unwrap() < tp.last().unwrap());
    }
}
