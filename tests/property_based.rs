//! Property-based integration tests: random key sets and lookup batches
//! against the scan oracle, across the public API.

use proptest::prelude::*;
use rtindex::{Device, KeyMode, RtIndex, RtIndexConfig, MISS};
use rtx_workloads::GroundTruth;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Point lookups over arbitrary (possibly duplicated) small key sets
    /// return exactly the oracle's hit counts and row sets.
    #[test]
    fn prop_point_lookups_match_oracle(
        keys in prop::collection::vec(0u64..500, 1..200),
        queries in prop::collection::vec(0u64..600, 1..100),
    ) {
        let device = Device::default_eval();
        let truth = GroundTruth::new(&keys, None);
        let index = RtIndex::build(&device, &keys, RtIndexConfig::default()).unwrap();
        let out = index.point_lookup_batch(&queries, None).unwrap();
        for (q, r) in queries.iter().zip(&out.results) {
            prop_assert_eq!(r.hit_count, truth.point_hit_count(*q), "key {}", q);
            if r.hit_count > 0 {
                prop_assert_eq!(r.first_row, truth.point_first_row(*q));
            } else {
                prop_assert_eq!(r.first_row, MISS);
            }
        }
    }

    /// Range lookups return exactly the oracle's per-range counts and sums.
    #[test]
    fn prop_range_lookups_match_oracle(
        keys in prop::collection::vec(0u64..2000, 1..300),
        ranges in prop::collection::vec((0u64..2200, 0u64..300), 1..40),
    ) {
        let device = Device::default_eval();
        let values: Vec<u64> = (0..keys.len() as u64).map(|i| i + 1).collect();
        let truth = GroundTruth::new(&keys, Some(&values));
        let index = RtIndex::build(&device, &keys, RtIndexConfig::default()).unwrap();
        let ranges: Vec<(u64, u64)> = ranges.into_iter().map(|(l, w)| (l, l + w)).collect();
        let out = index.range_lookup_batch(&ranges, Some(&values)).unwrap();
        for (&(l, u), r) in ranges.iter().zip(&out.results) {
            prop_assert_eq!(r.hit_count, truth.range_hit_count(l, u), "range [{}, {}]", l, u);
            prop_assert_eq!(r.value_sum, truth.range_value_sum(l, u));
        }
    }

    /// All three key modes agree on hit/miss classification for keys within
    /// the Naive range.
    #[test]
    fn prop_key_modes_agree(
        keys in prop::collection::vec(0u64..(1 << 20), 1..150),
        queries in prop::collection::vec(0u64..(1 << 21), 1..80),
    ) {
        let device = Device::default_eval();
        let mut answers: Vec<Vec<bool>> = Vec::new();
        for mode in KeyMode::all() {
            let config = RtIndexConfig::default().with_key_mode(mode);
            let index = RtIndex::build(&device, &keys, config).unwrap();
            let out = index.point_lookup_batch(&queries, None).unwrap();
            answers.push(out.results.iter().map(|r| r.is_hit()).collect());
        }
        prop_assert_eq!(&answers[0], &answers[1]);
        prop_assert_eq!(&answers[1], &answers[2]);
    }

    /// Rebuilding with a new key column fully replaces the old one.
    #[test]
    fn prop_rebuild_replaces_keys(
        first in prop::collection::vec(0u64..1000, 1..100),
        second in prop::collection::vec(2000u64..3000, 1..100),
    ) {
        let device = Device::default_eval();
        let mut index = RtIndex::build(&device, &first, RtIndexConfig::default()).unwrap();
        index.rebuild(&second).unwrap();
        let out_old = index.point_lookup_batch(&first, None).unwrap();
        prop_assert_eq!(out_old.hit_count(), 0, "old keys must be gone");
        let out_new = index.point_lookup_batch(&second, None).unwrap();
        prop_assert_eq!(out_new.hit_count(), second.len());
    }
}
