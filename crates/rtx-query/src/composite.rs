//! The composite-key wrapper: serves typed multi-column queries on any
//! backend by mapping encoded keys into the 1-D `u64` space the backends
//! already index.
//!
//! Built by the registry whenever a name (or spec) carries a `{...}` key
//! schema, wrapping the ordinary resolution *outermost* — so sharded,
//! durable and builder-suffixed variants compose underneath without any
//! per-backend changes:
//!
//! * **direct codec** — a schema whose raw width fits 8 bytes encodes each
//!   tuple to a single `u64` that *is* the backend key. Compilation is
//!   stateless, arbitrary encoded bounds are valid, and the `{u64}` schema
//!   encodes a key to itself, keeping the raw path zero-overhead;
//! * **dictionary codec** — wider schemas (16/32-byte encodings) keep an
//!   order-preserving dictionary from [`EncodedKey`] to `u64`: build keys
//!   are ranked and spaced `2^16` apart, inserts take the midpoint of
//!   their neighbours' gap, so `u64` order equals encoded order equals
//!   tuple order. Typed queries compile ranges via the dictionary's
//!   nearest entries (a range over no entries is uniformly empty; a point
//!   miss probes the never-allocated `u64::MAX` sentinel). Raw `u64`
//!   updates are rejected — they would bypass the dictionary.
//!
//! For durable (`+wal:`) indexes the dictionary persists in a `KEYDICT`
//! sidecar next to the WAL: a versioned header carrying the key widths,
//! then CRC-framed entry batches appended before each mutating insert (a
//! torn tail is dropped on load; a crash between sidecar append and WAL
//! append leaves harmless orphan dictionary entries).

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::arena::ExecArena;
use crate::batch::{QueryBatch, QueryOps};
use crate::error::IndexError;
use crate::index::{SecondaryIndex, UpdatableIndex};
use crate::keys::{EncodedKey, EncodedRange, KeySchema, KeyTuple, TypedBatch};
use crate::registry::{parse_durable_name, IndexSpec, Registry};
use crate::types::{
    Capabilities, DurableStats, IndexBuildMetrics, MemoryUsage, QueryOutcome, UpdateReport,
};

/// Mapped dictionary values are spaced `2^GAP_BITS` apart at build time,
/// leaving that many midpoint-insert levels between any two build keys
/// before a gap exhausts (a clear error, not silent misordering). 16 bits
/// also keeps small key sets within `u32`, so B+ can serve wide composites
/// on the set sizes it accepts for raw keys.
const GAP_BITS: u32 = 16;

const SIDECAR_FILE: &str = "KEYDICT";
const SIDECAR_MAGIC: u32 = 0x5258_4B44; // "RXKD"
const SIDECAR_VERSION: u32 = 1;

fn composite_error(name: &str, message: String) -> IndexError {
    IndexError::Backend {
        backend: name.to_string().into(),
        message,
    }
}

/// The order-preserving dictionary of a wide (multi-limb) schema.
#[derive(Debug, Default, Clone)]
struct KeyDict {
    map: BTreeMap<EncodedKey, u64>,
}

impl KeyDict {
    /// Ranks the unique encoded build keys and spaces them `2^GAP_BITS`
    /// apart, starting above 0 so a below-first insert has room too.
    fn build(encoded: &[EncodedKey]) -> Self {
        let mut unique: Vec<EncodedKey> = encoded.to_vec();
        unique.sort_unstable();
        unique.dedup();
        let map = unique
            .into_iter()
            .enumerate()
            .map(|(rank, key)| (key, (rank as u64 + 1) << GAP_BITS))
            .collect();
        KeyDict { map }
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn get(&self, key: &EncodedKey) -> Option<u64> {
        self.map.get(key).copied()
    }

    /// Smallest mapped value whose encoded key is `>= key`.
    fn first_at_or_above(&self, key: &EncodedKey) -> Option<u64> {
        self.map.range(*key..).next().map(|(_, &m)| m)
    }

    /// Largest mapped value whose encoded key is `<= key`.
    fn last_at_or_below(&self, key: &EncodedKey) -> Option<u64> {
        self.map.range(..=*key).next_back().map(|(_, &m)| m)
    }

    /// Returns the mapped value for `key`, allocating the midpoint of its
    /// neighbours' gap for a fresh key (`true` in the pair). Fails when the
    /// gap between the neighbours is exhausted.
    fn insert(&mut self, key: EncodedKey) -> Result<(u64, bool), IndexError> {
        if let Some(mapped) = self.get(&key) {
            return Ok((mapped, false));
        }
        let prev = self
            .map
            .range(..key)
            .next_back()
            .map(|(_, &m)| m)
            .unwrap_or(0);
        let mapped = match self.map.range(key..).next().map(|(_, &m)| m) {
            Some(next) => {
                if next - prev < 2 {
                    return Err(IndexError::Backend {
                        backend: "composite-dict".into(),
                        message: format!(
                            "key-dictionary gap exhausted between mapped values {prev} and \
                             {next}; rebuild the index to re-space the dictionary"
                        ),
                    });
                }
                prev + (next - prev) / 2
            }
            // Append above the current top: one gap step, not the midpoint
            // to `u64::MAX` — the mapped image stays dense, so encoded
            // ranges stay narrow for row-decomposed backends. `u64::MAX`
            // itself is the reserved miss sentinel.
            None => match prev.checked_add(1 << GAP_BITS) {
                Some(m) if m < u64::MAX => m,
                _ => {
                    return Err(IndexError::Backend {
                        backend: "composite-dict".into(),
                        message: "key-dictionary mapped space exhausted at the top; \
                                  rebuild the index to re-space the dictionary"
                            .to_string(),
                    });
                }
            },
        };
        self.map.insert(key, mapped);
        Ok((mapped, true))
    }

    fn memory_bytes(&self, encoded_width: usize) -> u64 {
        (self.map.len() * (encoded_width + 8)) as u64
    }
}

/// How typed tuples reach the backend's `u64` key space.
enum Codec {
    /// Single-limb schema: the encoded key is the backend key.
    Direct,
    /// Multi-limb schema: dictionary-mapped.
    Dict(KeyDict),
}

/// A typed composite-key index: a [`KeySchema`]-aware wrapper around any
/// backend built by the registry (plain, sharded, durable — the wrapper is
/// outermost). Typed batches compile to encoded `u64` operations here;
/// raw `u64` operations pass straight through and address the encoded
/// (direct codec) or dictionary-mapped (wide codec) key domain.
pub struct CompositeIndex<I: ?Sized> {
    name: String,
    schema: KeySchema,
    codec: Codec,
    sidecar: Option<PathBuf>,
    inner: Box<I>,
}

impl<I: ?Sized + SecondaryIndex> CompositeIndex<I> {
    /// The inner backend the wrapper delegates to.
    pub fn inner(&self) -> &I {
        &self.inner
    }

    /// Compiles a typed batch into the raw batch the inner backend runs:
    /// stateless encoding for the direct codec, dictionary mapping for
    /// wide schemas.
    pub fn compile(&self, batch: &TypedBatch) -> Result<QueryBatch, IndexError> {
        match &self.codec {
            Codec::Direct => self.schema.compile(batch),
            Codec::Dict(dict) => {
                let mut out = QueryBatch::new().fetch_values(batch.fetches_values());
                if let Some(chunk) = batch.chunk_size() {
                    out = out.with_chunk_size(chunk);
                }
                for op in batch.ops() {
                    out = match self.schema.compile_op(op)? {
                        EncodedRange::Point(key) => match dict.get(&key) {
                            Some(mapped) => out.point(mapped),
                            // u64::MAX is never allocated: a guaranteed miss.
                            None => out.point(u64::MAX),
                        },
                        EncodedRange::Range(lower, upper) => {
                            match (
                                dict.first_at_or_above(&lower),
                                dict.last_at_or_below(&upper),
                            ) {
                                (Some(lo), Some(hi)) if lo <= hi => out.range(lo, hi),
                                // No dictionary entry in the window: the
                                // canonical inverted (empty) range.
                                _ => out.range(1, 0),
                            }
                        }
                        EncodedRange::Empty => out.range(1, 0),
                    };
                }
                Ok(out)
            }
        }
    }

    fn dict_bytes(&self) -> u64 {
        match &self.codec {
            Codec::Direct => 0,
            Codec::Dict(dict) => dict.memory_bytes(self.schema.encoded_width()),
        }
    }
}

impl CompositeIndex<dyn UpdatableIndex> {
    /// Maps typed rows to backend keys for a write, allocating (and
    /// persisting) dictionary entries for fresh wide keys. `allocate`
    /// distinguishes inserts/upserts from deletes, which must not grow the
    /// dictionary; unmapped delete keys become the miss sentinel (the
    /// inner delete ignores unknown keys).
    fn map_rows_for_write(
        &mut self,
        rows: &[KeyTuple],
        allocate: bool,
    ) -> Result<Vec<u64>, IndexError> {
        let encoded = rows
            .iter()
            .map(|row| self.schema.encode(row))
            .collect::<Result<Vec<_>, _>>()?;
        match &mut self.codec {
            Codec::Direct => Ok(encoded.iter().map(|e| e.limb(0)).collect()),
            Codec::Dict(dict) => {
                let mut mapped = Vec::with_capacity(encoded.len());
                let mut fresh = Vec::new();
                for key in encoded {
                    if allocate {
                        let (m, new) = dict.insert(key)?;
                        if new {
                            fresh.push((key, m));
                        }
                        mapped.push(m);
                    } else {
                        mapped.push(dict.get(&key).unwrap_or(u64::MAX));
                    }
                }
                if !fresh.is_empty() {
                    if let Some(path) = &self.sidecar {
                        // Sidecar first, WAL second: a crash in between
                        // leaves orphan dictionary entries, which are
                        // harmless (never probed as hits).
                        append_sidecar(path, &self.schema, &fresh).map_err(|e| {
                            composite_error(&self.name, format!("sidecar append failed: {e}"))
                        })?;
                    }
                }
                Ok(mapped)
            }
        }
    }

    fn reject_raw_writes(&self) -> Result<(), IndexError> {
        if matches!(self.codec, Codec::Dict(_)) {
            return Err(IndexError::UnsupportedOperation {
                backend: self.name.clone().into(),
                operation: "raw u64 updates on a dictionary-mapped composite index",
            });
        }
        Ok(())
    }
}

/// The [`SecondaryIndex`] delegation shared by the read-only and updatable
/// wrappers (two concrete `dyn` inner types, one behaviour).
macro_rules! delegate_secondary_index {
    () => {
        fn name(&self) -> &str {
            &self.name
        }
        fn key_count(&self) -> usize {
            self.inner.key_count()
        }
        fn memory_bytes(&self) -> u64 {
            self.inner.memory_bytes() + self.dict_bytes()
        }
        fn build_metrics(&self) -> IndexBuildMetrics {
            self.inner.build_metrics()
        }
        fn capabilities(&self) -> Capabilities {
            self.inner.capabilities()
        }
        fn has_value_column(&self) -> bool {
            self.inner.has_value_column()
        }
        fn memory_usage(&self) -> MemoryUsage {
            let mut usage = self.inner.memory_usage();
            usage.base_bytes += self.dict_bytes();
            usage
        }
        fn durability_stats(&self) -> Option<DurableStats> {
            self.inner.durability_stats()
        }
        fn key_schema(&self) -> Option<&KeySchema> {
            Some(&self.schema)
        }
        fn execute_typed(&self, batch: &TypedBatch) -> Result<QueryOutcome, IndexError> {
            let compiled = self.compile(batch)?;
            self.execute(&compiled)
        }
        fn point_chunk(
            &self,
            queries: &[u64],
            fetch_values: bool,
        ) -> Result<crate::types::BatchOutcome, IndexError> {
            self.inner.point_chunk(queries, fetch_values)
        }
        fn range_chunk(
            &self,
            ranges: &[(u64, u64)],
            fetch_values: bool,
        ) -> Result<crate::types::BatchOutcome, IndexError> {
            self.inner.range_chunk(ranges, fetch_values)
        }
        fn execute_in(
            &self,
            batch: &QueryBatch,
            arena: &mut ExecArena,
        ) -> Result<QueryOutcome, IndexError> {
            self.inner.execute_in(batch, arena)
        }
        fn execute_ops_in(
            &self,
            ops: &QueryOps,
            arena: &mut ExecArena,
        ) -> Result<QueryOutcome, IndexError> {
            self.inner.execute_ops_in(ops, arena)
        }
    };
}

impl SecondaryIndex for CompositeIndex<dyn SecondaryIndex> {
    delegate_secondary_index!();
}

impl SecondaryIndex for CompositeIndex<dyn UpdatableIndex> {
    delegate_secondary_index!();
}

impl UpdatableIndex for CompositeIndex<dyn UpdatableIndex> {
    fn insert(&mut self, keys: &[u64], values: &[u64]) -> Result<UpdateReport, IndexError> {
        self.reject_raw_writes()?;
        self.inner.insert(keys, values)
    }

    fn delete(&mut self, keys: &[u64]) -> Result<UpdateReport, IndexError> {
        self.reject_raw_writes()?;
        self.inner.delete(keys)
    }

    fn upsert(&mut self, keys: &[u64], values: &[u64]) -> Result<UpdateReport, IndexError> {
        self.reject_raw_writes()?;
        self.inner.upsert(keys, values)
    }

    fn insert_rows(
        &mut self,
        rows: &[KeyTuple],
        values: &[u64],
    ) -> Result<UpdateReport, IndexError> {
        let keys = self.map_rows_for_write(rows, true)?;
        self.inner.insert(&keys, values)
    }

    fn delete_rows(&mut self, rows: &[KeyTuple]) -> Result<UpdateReport, IndexError> {
        let keys = self.map_rows_for_write(rows, false)?;
        self.inner.delete(&keys)
    }

    fn upsert_rows(
        &mut self,
        rows: &[KeyTuple],
        values: &[u64],
    ) -> Result<UpdateReport, IndexError> {
        let keys = self.map_rows_for_write(rows, true)?;
        self.inner.upsert(&keys, values)
    }

    fn poll_reorganisation(&mut self) -> Result<u64, IndexError> {
        self.inner.poll_reorganisation()
    }

    fn await_reorganisation(&mut self) -> Result<u64, IndexError> {
        self.inner.await_reorganisation()
    }

    fn reorganisation_in_flight(&self) -> bool {
        self.inner.reorganisation_in_flight()
    }

    fn compact(&mut self) -> Result<UpdateReport, IndexError> {
        self.inner.compact()
    }

    fn checkpoint_rows(&self) -> Option<Vec<(u64, u64)>> {
        self.inner.checkpoint_rows()
    }

    fn checkpoint(&mut self) -> Result<u64, IndexError> {
        self.inner.checkpoint()
    }
}

/// The composite display name in canonical grammar order: schema after the
/// backend/builder/shard productions, before the durability suffix.
fn composite_name(rest: &str, schema: &KeySchema) -> String {
    match rest.split_once("+wal:") {
        Some((base, path)) => format!("{base}{schema}+wal:{path}"),
        None => format!("{rest}{schema}"),
    }
}

/// What a composite build feeds the inner backend.
struct Prepared {
    keys: Vec<u64>,
    codec: Codec,
    sidecar: Option<PathBuf>,
    write_sidecar: bool,
}

fn prepare(rest: &str, spec: &IndexSpec<'_>, schema: &KeySchema) -> Result<Prepared, IndexError> {
    if schema.limbs() == 1 {
        // Direct codec: encoded keys are backend keys; raw `spec.keys` are
        // accepted as pre-encoded (for `{u64}` they are the keys).
        let keys = match &spec.rows {
            Some(rows) => schema.encode_rows(rows)?,
            None => spec.keys.to_vec(),
        };
        return Ok(Prepared {
            keys,
            codec: Codec::Direct,
            sidecar: None,
            write_sidecar: false,
        });
    }

    let sidecar = parse_durable_name(rest).map(|(_, path)| Path::new(path).join(SIDECAR_FILE));
    match &spec.rows {
        Some(rows) => {
            let encoded = rows
                .iter()
                .map(|row| schema.encode(row))
                .collect::<Result<Vec<_>, _>>()?;
            let dict = KeyDict::build(&encoded);
            let keys = encoded
                .iter()
                .map(|e| dict.get(e).expect("build key is in the dictionary"))
                .collect();
            Ok(Prepared {
                keys,
                codec: Codec::Dict(dict),
                sidecar,
                write_sidecar: true,
            })
        }
        None if spec.keys.is_empty() => {
            // Empty build, or a durable reopen: the dictionary reloads
            // from the sidecar while the inner index replays its WAL.
            let dict = match &sidecar {
                Some(path) if path.exists() => load_sidecar(path, schema)
                    .map_err(|e| composite_error(rest, format!("sidecar load failed: {e}")))?,
                _ => KeyDict::default(),
            };
            Ok(Prepared {
                keys: Vec::new(),
                codec: Codec::Dict(dict),
                sidecar,
                write_sidecar: false,
            })
        }
        None => Err(composite_error(
            rest,
            format!(
                "a wide key schema {schema} builds from typed rows (IndexSpec::rows); \
                 raw u64 keys cannot be dictionary-mapped"
            ),
        )),
    }
}

fn inner_spec<'a>(spec: &IndexSpec<'a>, keys: &'a [u64]) -> IndexSpec<'a> {
    IndexSpec {
        device: spec.device,
        keys,
        values: spec.values.clone(),
        builder: spec.builder,
        durability: spec.durability.clone(),
        key_schema: None,
        rows: None,
    }
}

fn finish_sidecar<I: ?Sized + SecondaryIndex>(
    rest: &str,
    schema: &KeySchema,
    prepared: &Prepared,
    inner: &I,
) -> Result<(), IndexError> {
    let Some(path) = &prepared.sidecar else {
        return Ok(());
    };
    if prepared.write_sidecar {
        let Codec::Dict(dict) = &prepared.codec else {
            return Ok(());
        };
        write_sidecar(path, schema, dict)
            .map_err(|e| composite_error(rest, format!("sidecar write failed: {e}")))?;
    } else if let Codec::Dict(dict) = &prepared.codec {
        if dict.len() == 0 && inner.key_count() > 0 {
            return Err(composite_error(
                rest,
                format!(
                    "durable index holds {} keys but the {SIDECAR_FILE} sidecar is missing or \
                     empty; the dictionary cannot be reconstructed",
                    inner.key_count()
                ),
            ));
        }
    }
    Ok(())
}

/// Builds a read-only composite index: resolves `rest` through the plain
/// registry grammar and wraps it with the schema's codec.
pub(crate) fn build_read_only(
    registry: &Registry,
    rest: &str,
    spec: &IndexSpec<'_>,
    schema: KeySchema,
) -> Result<Box<dyn SecondaryIndex>, IndexError> {
    let prepared = prepare(rest, spec, &schema)?;
    let inner = registry.build_base(rest, &inner_spec(spec, &prepared.keys))?;
    finish_sidecar(rest, &schema, &prepared, inner.as_ref())?;
    Ok(Box::new(CompositeIndex::<dyn SecondaryIndex> {
        name: composite_name(rest, &schema),
        schema,
        codec: prepared.codec,
        sidecar: prepared.sidecar,
        inner,
    }))
}

/// Builds an updatable composite index (see [`build_read_only`]).
pub(crate) fn build_updatable(
    registry: &Registry,
    rest: &str,
    spec: &IndexSpec<'_>,
    schema: KeySchema,
) -> Result<Box<dyn UpdatableIndex>, IndexError> {
    let prepared = prepare(rest, spec, &schema)?;
    let inner = registry.build_base_updatable(rest, &inner_spec(spec, &prepared.keys))?;
    finish_sidecar(rest, &schema, &prepared, inner.as_ref())?;
    Ok(Box::new(CompositeIndex::<dyn UpdatableIndex> {
        name: composite_name(rest, &schema),
        schema,
        codec: prepared.codec,
        sidecar: prepared.sidecar,
        inner,
    }))
}

// ---------------------------------------------------------------------------
// Sidecar persistence: [header][frame]*, torn-tail tolerant.
// header = magic u32 | version u32 | raw_width u32 | encoded_width u32 (LE)
// frame  = entry_count u32 | crc32(payload) u32 | payload
// entry  = encoded key (big-endian bytes, encoded_width) | mapped u64 (LE)
// ---------------------------------------------------------------------------

fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

fn sidecar_header(schema: &KeySchema) -> [u8; 16] {
    let mut header = [0u8; 16];
    header[0..4].copy_from_slice(&SIDECAR_MAGIC.to_le_bytes());
    header[4..8].copy_from_slice(&SIDECAR_VERSION.to_le_bytes());
    header[8..12].copy_from_slice(&(schema.raw_width() as u32).to_le_bytes());
    header[12..16].copy_from_slice(&(schema.encoded_width() as u32).to_le_bytes());
    header
}

fn frame_bytes(schema: &KeySchema, entries: &[(EncodedKey, u64)]) -> Vec<u8> {
    let width = schema.encoded_width();
    let mut payload = Vec::with_capacity(entries.len() * (width + 8));
    for (key, mapped) in entries {
        for limb in key.limbs() {
            payload.extend_from_slice(&limb.to_be_bytes());
        }
        payload.extend_from_slice(&mapped.to_le_bytes());
    }
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

fn write_sidecar(path: &Path, schema: &KeySchema, dict: &KeyDict) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let entries: Vec<(EncodedKey, u64)> = dict.map.iter().map(|(k, &m)| (*k, m)).collect();
    let mut file = std::fs::File::create(path)?;
    file.write_all(&sidecar_header(schema))?;
    file.write_all(&frame_bytes(schema, &entries))?;
    file.sync_all()
}

fn append_sidecar(
    path: &Path,
    schema: &KeySchema,
    entries: &[(EncodedKey, u64)],
) -> std::io::Result<()> {
    let mut file = std::fs::OpenOptions::new().append(true).open(path)?;
    file.write_all(&frame_bytes(schema, entries))?;
    file.sync_all()
}

fn load_sidecar(path: &Path, schema: &KeySchema) -> std::io::Result<KeyDict> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    if bytes.len() < 16 {
        return Err(bad("sidecar shorter than its header"));
    }
    let word = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
    if word(0) != SIDECAR_MAGIC {
        return Err(bad("bad sidecar magic"));
    }
    if word(4) != SIDECAR_VERSION {
        return Err(bad("unsupported sidecar version"));
    }
    let width = schema.encoded_width();
    if word(8) as usize != schema.raw_width() || word(12) as usize != width {
        return Err(bad("sidecar key widths do not match the schema"));
    }

    let limbs = schema.limbs();
    let entry = width + 8;
    let mut dict = KeyDict::default();
    let mut at = 16usize;
    while bytes.len() >= at + 8 {
        let count = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().unwrap());
        let Some(payload) = bytes.get(at + 8..at + 8 + count * entry) else {
            break; // torn tail: drop the partial frame
        };
        if crc32(payload) != crc {
            break; // torn or corrupt tail
        }
        for chunk in payload.chunks_exact(entry) {
            let mut key_limbs = [0u64; 4];
            for (i, limb) in key_limbs.iter_mut().enumerate().take(limbs) {
                *limb = u64::from_be_bytes(chunk[i * 8..(i + 1) * 8].try_into().unwrap());
            }
            let mapped = u64::from_le_bytes(chunk[width..width + 8].try_into().unwrap());
            dict.map
                .insert(EncodedKey::from_limbs(&key_limbs[..limbs]), mapped);
        }
        at += 8 + count * entry;
    }
    Ok(dict)
}

/// Strips the brace-enclosed schema production from a spec name:
/// `"RX:sah@4{u32,u32}"` → `("RX:sah@4", schema)`. Returns `None` for
/// names without braces, an error for unterminated or invalid schemas.
pub fn parse_schema_name(name: &str) -> Result<Option<(String, KeySchema)>, IndexError> {
    let Some(start) = name.find('{') else {
        return Ok(None);
    };
    let end = name[start..].find('}').map(|i| start + i).ok_or_else(|| {
        composite_error(name, "unterminated key schema (missing '}')".to_string())
    })?;
    let schema = KeySchema::parse(&name[start..=end])?;
    Ok(Some((
        format!("{}{}", &name[..start], &name[end + 1..]),
        schema,
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyValue;

    fn enc(schema: &KeySchema, tuple: &[KeyValue]) -> EncodedKey {
        schema.encode(tuple).unwrap()
    }

    #[test]
    fn dict_build_ranks_and_spaces() {
        let schema = KeySchema::parse("{u64,u64}").unwrap();
        let tuples: Vec<KeyTuple> = vec![
            vec![2u64.into(), 0u64.into()],
            vec![1u64.into(), 5u64.into()],
            vec![1u64.into(), 5u64.into()], // duplicate collapses
            vec![1u64.into(), 9u64.into()],
        ];
        let encoded: Vec<EncodedKey> = tuples.iter().map(|t| enc(&schema, t)).collect();
        let dict = KeyDict::build(&encoded);
        assert_eq!(dict.len(), 3);
        assert_eq!(dict.get(&encoded[1]), Some(1 << GAP_BITS));
        assert_eq!(dict.get(&encoded[3]), Some(2 << GAP_BITS));
        assert_eq!(dict.get(&encoded[0]), Some(3 << GAP_BITS));
    }

    #[test]
    fn dict_inserts_take_midpoints_until_gap_exhaustion() {
        let schema = KeySchema::parse("{u64,u64}").unwrap();
        let e = |a: u64, b: u64| enc(&schema, &[a.into(), b.into()]);
        let mut dict = KeyDict::build(&[e(10, 0), e(20, 0)]);

        // Existing key: stable mapping, not fresh.
        assert_eq!(dict.insert(e(10, 0)).unwrap(), (1 << GAP_BITS, false));
        // Between the two build keys.
        let (mid, fresh) = dict.insert(e(15, 0)).unwrap();
        assert!(fresh && (1 << GAP_BITS) < mid && mid < (2 << GAP_BITS));
        // Below the first and above the last stay ordered too.
        let (low, _) = dict.insert(e(5, 0)).unwrap();
        let (high, _) = dict.insert(e(30, 0)).unwrap();
        assert!(low < (1 << GAP_BITS) && high > (2 << GAP_BITS));

        // Bisecting one gap repeatedly must exhaust in ~GAP_BITS steps.
        let mut err = None;
        for i in 0..2 * GAP_BITS as u64 {
            if let Err(e_) = dict.insert(e(10, i + 1)) {
                err = Some(e_);
                break;
            }
        }
        let err = err.expect("gap must exhaust");
        assert!(err.to_string().contains("gap exhausted"), "{err}");
    }

    #[test]
    fn sidecar_round_trips_and_tolerates_torn_tails() {
        let schema = KeySchema::parse("{u32,str16,u32}").unwrap();
        let e = |a: u64, s: &str, c: u64| enc(&schema, &[a.into(), s.into(), c.into()]);
        let dict = KeyDict::build(&[e(1, "a", 2), e(1, "b", 3), e(9, "zz", 0)]);

        let dir = std::env::temp_dir().join(format!(
            "rtx-composite-sidecar-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(SIDECAR_FILE);
        write_sidecar(&path, &schema, &dict).unwrap();

        // Append a frame, then a torn half-frame.
        append_sidecar(&path, &schema, &[(e(4, "mid", 7), 99 << GAP_BITS)]).unwrap();
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        file.write_all(&[3, 0, 0, 0, 1, 2]).unwrap(); // nonsense partial frame
        drop(file);

        let loaded = load_sidecar(&path, &schema).unwrap();
        assert_eq!(loaded.len(), 4);
        assert_eq!(loaded.get(&e(1, "b", 3)), dict.get(&e(1, "b", 3)));
        assert_eq!(loaded.get(&e(4, "mid", 7)), Some(99 << GAP_BITS));

        // A schema-width mismatch is refused.
        let other = KeySchema::parse("{u64,u64}").unwrap();
        assert!(load_sidecar(&path, &other).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn schema_names_parse_out_of_any_position() {
        let (rest, schema) = parse_schema_name("RX:sah@4:hash{u32,u32,str16}")
            .unwrap()
            .unwrap();
        assert_eq!(rest, "RX:sah@4:hash");
        assert_eq!(schema.to_string(), "{u32,u32,str16}");

        let (rest, _) = parse_schema_name("RXD{u64,u64}+wal:/tmp/x")
            .unwrap()
            .unwrap();
        assert_eq!(rest, "RXD+wal:/tmp/x");

        assert!(parse_schema_name("RX").unwrap().is_none());
        assert!(parse_schema_name("RX{u32").is_err());
        assert!(parse_schema_name("RX{nope}").is_err());
    }

    #[test]
    fn composite_names_put_the_schema_before_durability() {
        let schema = KeySchema::parse("{u32,u32}").unwrap();
        assert_eq!(composite_name("RX:sah@4", &schema), "RX:sah@4{u32,u32}");
        assert_eq!(
            composite_name("RXD+wal:/tmp/x", &schema),
            "RXD{u32,u32}+wal:/tmp/x"
        );
    }
}
